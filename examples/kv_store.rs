//! A small concurrent key-value service built on the Natarajan-Mittal BST and
//! the Michael hash map, showing the same application code running under
//! different reclamation schemes — in the second half, the executor
//! pattern: a sharded registry serving short-lived tasks through a
//! `HandlePool` instead of one long-lived handle per OS thread — and, in the
//! final act, a *growing* service: the split-ordered resizable hash map fed a
//! Zipfian stream with TTL expiry, its superseded bucket arrays retired
//! through the reclamation scheme while readers keep traversing.
//!
//! Run with `cargo run --release --example kv_store`.

use std::sync::Arc;
use std::time::Instant;

use wfe_suite::{
    ConcurrentMap, DomainConfig, HandlePool, He, MichaelHashMap, NatarajanBst, Reclaimer,
    ReclaimerConfig, ResizableHashMap, Wfe,
};

/// Runs a mixed workload against any map type under any reclamation scheme,
/// one long-lived handle per thread (the paper's deployment model).
fn exercise<R: Reclaimer, M: ConcurrentMap<R>>(label: &str) {
    const THREADS: usize = 4;
    const OPS: u64 = 50_000;
    const KEY_RANGE: u64 = 10_000;

    let domain = R::with_config(ReclaimerConfig::with_max_threads(THREADS));
    let map = M::with_domain(Arc::clone(&domain));
    let start = Instant::now();

    std::thread::scope(|scope| {
        for t in 0..THREADS as u64 {
            let map = &map;
            let domain = Arc::clone(&domain);
            scope.spawn(move || {
                let mut handle = domain.register();
                // A simple deterministic mixed workload: ~50% reads, ~25%
                // inserts, ~25% removes over a shared key range. The op
                // selector uses the high bits: `x % 4` would be correlated
                // with `key % 4` (4 divides the key range), which partitions
                // inserts and removes onto disjoint keys and starves the
                // remove path.
                let mut x = t.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                for _ in 0..OPS {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let key = x % KEY_RANGE;
                    match (x >> 60) % 4 {
                        0 => {
                            map.insert(&mut handle, key, key * 2);
                        }
                        1 => {
                            map.remove(&mut handle, key);
                        }
                        _ => {
                            if let Some(value) = map.get(&mut handle, key) {
                                assert_eq!(value, key * 2);
                            }
                        }
                    }
                }
            });
        }
    });

    let stats = domain.stats();
    println!(
        "{label:45} {:>9.1} ops/ms   unreclaimed at end: {}   cache hits: {:.1}%",
        (THREADS as u64 * OPS) as f64 / start.elapsed().as_millis().max(1) as f64,
        stats.unreclaimed,
        stats.cache_hit_rate() * 100.0
    );
}

/// The executor pattern: a pool of workers serves a stream of short "tasks",
/// each of which checks a handle out of a shared `HandlePool`, touches the
/// map a few times, and checks it back in — no registry traffic per task.
/// The registry is explicitly sharded, as a NUMA deployment would pin it.
fn pooled_service_demo() {
    const WORKERS: usize = 4;
    const TASKS_PER_WORKER: u64 = 2_000;
    const OPS_PER_TASK: u64 = 32;
    const KEY_RANGE: u64 = 10_000;

    // One domain, four registry shards (0 would auto-size from the host).
    let domain = Wfe::with_config(DomainConfig {
        shards: 4,
        ..DomainConfig::with_max_threads(WORKERS * 2)
    });
    let map = MichaelHashMap::<u64, Wfe>::with_domain(Arc::clone(&domain));
    let pool = HandlePool::new(Arc::clone(&domain));
    let start = Instant::now();

    std::thread::scope(|scope| {
        for t in 0..WORKERS as u64 {
            let map = &map;
            let pool = Arc::clone(&pool);
            scope.spawn(move || {
                let mut x = (t + 1).wrapping_mul(0xD129_0D3B_33F5_7A11) | 1;
                for _ in 0..TASKS_PER_WORKER {
                    // One task: check out, work, check in (drop).
                    let mut handle = pool.check_out().expect("registry sized for the workers");
                    for _ in 0..OPS_PER_TASK {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let key = x % KEY_RANGE;
                        match (x >> 60) % 4 {
                            0 => {
                                map.insert(&mut handle, key, key * 2);
                            }
                            1 => {
                                map.remove(&mut handle, key);
                            }
                            _ => {
                                map.get(&mut handle, key);
                            }
                        }
                    }
                }
            });
        }
    });

    let elapsed = start.elapsed();
    let pool_stats = pool.stats();
    let stats = domain.stats();
    let registry = domain.registry();
    println!(
        "{:45} {:>9.1} ops/ms   unreclaimed at end: {}",
        "Michael hash map + WFE + HandlePool",
        (WORKERS as u64 * TASKS_PER_WORKER * OPS_PER_TASK) as f64
            / elapsed.as_millis().max(1) as f64,
        stats.unreclaimed
    );
    println!(
        "  pool: {} check-outs, {:.1}% served from the pool, {} parked now",
        pool_stats.checkouts,
        pool_stats.hit_rate() * 100.0,
        pool_stats.parked
    );
    println!(
        "  block cache: {:.1}% of cacheable allocs recycled ({} hits / {} misses), \
         {} bytes parked now",
        stats.cache_hit_rate() * 100.0,
        stats.cache_hits,
        stats.cache_misses,
        stats.cached_bytes
    );
    let occupancy: Vec<usize> = (0..registry.shard_count())
        .map(|shard| registry.shard_occupancy(shard))
        .collect();
    println!(
        "  registry: {} slots in {} shards, per-shard occupancy {:?} (scans skip idle shards)",
        registry.capacity(),
        registry.shard_count(),
        occupancy
    );
}

/// The growing service: the split-ordered resizable map starts with a tiny
/// directory and is fed a Zipfian-popularity stream with a sliding TTL window
/// — the cache-expiry churn of a real kv service. Every directory doubling
/// retires the superseded bucket array through the reclamation scheme, so the
/// map's growth rides the same retire→scan→free pipeline as node removal.
fn resizable_service_demo<R: Reclaimer>(label: &str) {
    const THREADS: usize = 4;
    const OPS: u64 = 50_000;
    const KEY_RANGE: u64 = 20_000;
    const TTL_WINDOW: u64 = 1_024;

    let domain = R::with_config(ReclaimerConfig::with_max_threads(THREADS));
    // Start deliberately tiny (2 buckets) so the growth path is exercised
    // hard: the first few thousand inserts trigger doubling after doubling.
    let map = ResizableHashMap::<u64, R>::with_initial_buckets(Arc::clone(&domain), 2);
    let start = Instant::now();

    std::thread::scope(|scope| {
        for t in 0..THREADS as u64 {
            let map = &map;
            let domain = Arc::clone(&domain);
            scope.spawn(move || {
                let mut handle = domain.register();
                // SplitMix64 stream per thread: replayable, and the Zipfian
                // skew comes from squaring the uniform draw — cheap and close
                // enough for a demo (the bench harness has the real
                // inverse-CDF generator).
                let mut x = (t + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let mut tick = 0u64;
                let fresh_base = (t + 1) << 32;
                for _ in 0..OPS {
                    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    let mut z = x;
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    z ^= z >> 31;
                    let uniform = (z >> 11) as f64 / (1u64 << 53) as f64;
                    let popular = ((uniform * uniform) * KEY_RANGE as f64) as u64;
                    match z % 10 {
                        // 20% of ops: TTL churn on this thread's own keys —
                        // insert a fresh key, expire the one that slid out of
                        // the window.
                        0 | 1 => {
                            map.insert(&mut handle, fresh_base + tick, tick);
                            if tick >= TTL_WINDOW {
                                map.remove(&mut handle, fresh_base + tick - TTL_WINDOW);
                            }
                            tick += 1;
                        }
                        // 80% of ops: Zipf-skewed gets over the shared range.
                        _ => {
                            map.get(&mut handle, popular);
                        }
                    }
                }
            });
        }
    });

    let stats = domain.stats();
    let service = map.stats();
    println!(
        "{label:45} {:>9.1} ops/ms   unreclaimed at end: {}",
        (THREADS as u64 * OPS) as f64 / start.elapsed().as_millis().max(1) as f64,
        stats.unreclaimed,
    );
    println!(
        "  growth: {} buckets ({} doublings, {} bucket slots migrated), \
         load factor {:.2}, {} live entries",
        map.buckets(),
        service.resizes,
        service.migrated_buckets,
        service.load_factor,
        map.len()
    );
}

fn main() {
    println!("key-value store example: 4 threads, mixed workload\n");
    exercise::<Wfe, NatarajanBst<u64, Wfe>>("Natarajan-Mittal BST + WFE");
    exercise::<He, NatarajanBst<u64, He>>("Natarajan-Mittal BST + Hazard Eras");
    exercise::<Wfe, MichaelHashMap<u64, Wfe>>("Michael hash map + WFE");
    exercise::<He, MichaelHashMap<u64, He>>("Michael hash map + Hazard Eras");

    println!("\npooled service: 4 workers x 2000 tasks, handle checked out per task\n");
    pooled_service_demo();

    println!("\ngrowing service: Zipfian gets + TTL churn on the resizable map\n");
    resizable_service_demo::<Wfe>("Resizable hash map + WFE");
    resizable_service_demo::<He>("Resizable hash map + Hazard Eras");
}
