//! A small concurrent key-value service built on the Natarajan-Mittal BST and
//! the Michael hash map, showing the same application code running under
//! different reclamation schemes — and, in the second half, the executor
//! pattern: a sharded registry serving short-lived tasks through a
//! `HandlePool` instead of one long-lived handle per OS thread.
//!
//! Run with `cargo run --release --example kv_store`.

use std::sync::Arc;
use std::time::Instant;

use wfe_suite::{
    ConcurrentMap, DomainConfig, HandlePool, He, MichaelHashMap, NatarajanBst, Reclaimer,
    ReclaimerConfig, Wfe,
};

/// Runs a mixed workload against any map type under any reclamation scheme,
/// one long-lived handle per thread (the paper's deployment model).
fn exercise<R: Reclaimer, M: ConcurrentMap<R>>(label: &str) {
    const THREADS: usize = 4;
    const OPS: u64 = 50_000;
    const KEY_RANGE: u64 = 10_000;

    let domain = R::with_config(ReclaimerConfig::with_max_threads(THREADS));
    let map = M::with_domain(Arc::clone(&domain));
    let start = Instant::now();

    std::thread::scope(|scope| {
        for t in 0..THREADS as u64 {
            let map = &map;
            let domain = Arc::clone(&domain);
            scope.spawn(move || {
                let mut handle = domain.register();
                // A simple deterministic mixed workload: ~50% reads, ~25%
                // inserts, ~25% removes over a shared key range. The op
                // selector uses the high bits: `x % 4` would be correlated
                // with `key % 4` (4 divides the key range), which partitions
                // inserts and removes onto disjoint keys and starves the
                // remove path.
                let mut x = t.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                for _ in 0..OPS {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let key = x % KEY_RANGE;
                    match (x >> 60) % 4 {
                        0 => {
                            map.insert(&mut handle, key, key * 2);
                        }
                        1 => {
                            map.remove(&mut handle, key);
                        }
                        _ => {
                            if let Some(value) = map.get(&mut handle, key) {
                                assert_eq!(value, key * 2);
                            }
                        }
                    }
                }
            });
        }
    });

    let stats = domain.stats();
    println!(
        "{label:45} {:>9.1} ops/ms   unreclaimed at end: {}   cache hits: {:.1}%",
        (THREADS as u64 * OPS) as f64 / start.elapsed().as_millis().max(1) as f64,
        stats.unreclaimed,
        stats.cache_hit_rate() * 100.0
    );
}

/// The executor pattern: a pool of workers serves a stream of short "tasks",
/// each of which checks a handle out of a shared `HandlePool`, touches the
/// map a few times, and checks it back in — no registry traffic per task.
/// The registry is explicitly sharded, as a NUMA deployment would pin it.
fn pooled_service_demo() {
    const WORKERS: usize = 4;
    const TASKS_PER_WORKER: u64 = 2_000;
    const OPS_PER_TASK: u64 = 32;
    const KEY_RANGE: u64 = 10_000;

    // One domain, four registry shards (0 would auto-size from the host).
    let domain = Wfe::with_config(DomainConfig {
        shards: 4,
        ..DomainConfig::with_max_threads(WORKERS * 2)
    });
    let map = MichaelHashMap::<u64, Wfe>::with_domain(Arc::clone(&domain));
    let pool = HandlePool::new(Arc::clone(&domain));
    let start = Instant::now();

    std::thread::scope(|scope| {
        for t in 0..WORKERS as u64 {
            let map = &map;
            let pool = Arc::clone(&pool);
            scope.spawn(move || {
                let mut x = (t + 1).wrapping_mul(0xD129_0D3B_33F5_7A11) | 1;
                for _ in 0..TASKS_PER_WORKER {
                    // One task: check out, work, check in (drop).
                    let mut handle = pool.check_out().expect("registry sized for the workers");
                    for _ in 0..OPS_PER_TASK {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let key = x % KEY_RANGE;
                        match (x >> 60) % 4 {
                            0 => {
                                map.insert(&mut handle, key, key * 2);
                            }
                            1 => {
                                map.remove(&mut handle, key);
                            }
                            _ => {
                                map.get(&mut handle, key);
                            }
                        }
                    }
                }
            });
        }
    });

    let elapsed = start.elapsed();
    let pool_stats = pool.stats();
    let stats = domain.stats();
    let registry = domain.registry();
    println!(
        "{:45} {:>9.1} ops/ms   unreclaimed at end: {}",
        "Michael hash map + WFE + HandlePool",
        (WORKERS as u64 * TASKS_PER_WORKER * OPS_PER_TASK) as f64
            / elapsed.as_millis().max(1) as f64,
        stats.unreclaimed
    );
    println!(
        "  pool: {} check-outs, {:.1}% served from the pool, {} parked now",
        pool_stats.checkouts,
        pool_stats.hit_rate() * 100.0,
        pool_stats.parked
    );
    println!(
        "  block cache: {:.1}% of cacheable allocs recycled ({} hits / {} misses), \
         {} bytes parked now",
        stats.cache_hit_rate() * 100.0,
        stats.cache_hits,
        stats.cache_misses,
        stats.cached_bytes
    );
    let occupancy: Vec<usize> = (0..registry.shard_count())
        .map(|shard| registry.shard_occupancy(shard))
        .collect();
    println!(
        "  registry: {} slots in {} shards, per-shard occupancy {:?} (scans skip idle shards)",
        registry.capacity(),
        registry.shard_count(),
        occupancy
    );
}

fn main() {
    println!("key-value store example: 4 threads, mixed workload\n");
    exercise::<Wfe, NatarajanBst<u64, Wfe>>("Natarajan-Mittal BST + WFE");
    exercise::<He, NatarajanBst<u64, He>>("Natarajan-Mittal BST + Hazard Eras");
    exercise::<Wfe, MichaelHashMap<u64, Wfe>>("Michael hash map + WFE");
    exercise::<He, MichaelHashMap<u64, He>>("Michael hash map + Hazard Eras");

    println!("\npooled service: 4 workers x 2000 tasks, handle checked out per task\n");
    pooled_service_demo();
}
