//! A small concurrent key-value store built on the Natarajan-Mittal BST and
//! the Michael hash map, showing the same application code running under
//! different reclamation schemes.
//!
//! Run with `cargo run --release --example kv_store`.

use std::sync::Arc;
use std::time::Instant;

use wfe_suite::{ConcurrentMap, He, MichaelHashMap, NatarajanBst, Reclaimer, ReclaimerConfig, Wfe};

/// Runs a mixed workload against any map type under any reclamation scheme.
fn exercise<R: Reclaimer, M: ConcurrentMap<R>>(label: &str) {
    const THREADS: usize = 4;
    const OPS: u64 = 50_000;
    const KEY_RANGE: u64 = 10_000;

    let domain = R::with_config(ReclaimerConfig::with_max_threads(THREADS));
    let map = M::with_domain(Arc::clone(&domain));
    let start = Instant::now();

    std::thread::scope(|scope| {
        for t in 0..THREADS as u64 {
            let map = &map;
            let domain = Arc::clone(&domain);
            scope.spawn(move || {
                let mut handle = domain.register();
                // A simple deterministic mixed workload: ~50% reads, ~25%
                // inserts, ~25% removes over a shared key range.
                let mut x = t.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                for _ in 0..OPS {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let key = x % KEY_RANGE;
                    match x % 4 {
                        0 => {
                            map.insert(&mut handle, key, key * 2);
                        }
                        1 => {
                            map.remove(&mut handle, key);
                        }
                        _ => {
                            if let Some(value) = map.get(&mut handle, key) {
                                assert_eq!(value, key * 2);
                            }
                        }
                    }
                }
            });
        }
    });

    let stats = domain.stats();
    println!(
        "{label:45} {:>9.1} ops/ms   unreclaimed at end: {}",
        (THREADS as u64 * OPS) as f64 / start.elapsed().as_millis().max(1) as f64,
        stats.unreclaimed
    );
}

fn main() {
    println!("key-value store example: 4 threads, mixed workload\n");
    exercise::<Wfe, NatarajanBst<u64, Wfe>>("Natarajan-Mittal BST + WFE");
    exercise::<He, NatarajanBst<u64, He>>("Natarajan-Mittal BST + Hazard Eras");
    exercise::<Wfe, MichaelHashMap<u64, Wfe>>("Michael hash map + WFE");
    exercise::<He, MichaelHashMap<u64, He>>("Michael hash map + Hazard Eras");
}
