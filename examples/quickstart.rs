//! Quickstart: a Treiber stack (the paper's Figure 2 example) shared by a few
//! threads, guarded by Wait-Free Eras.
//!
//! Run with `cargo run --release --example quickstart`.

use std::sync::Arc;

use wfe_suite::{Atomic, Handle, Reclaimer, ReclaimerConfig, TreiberStack, Wfe};

fn main() {
    const THREADS: usize = 4;
    const PER_THREAD: usize = 100_000;

    // One WFE domain guards the stack; every thread registers a handle.
    let domain = Wfe::with_config(ReclaimerConfig::with_max_threads(THREADS));
    let stack = TreiberStack::<usize, Wfe>::new(Arc::clone(&domain));

    let popped: usize = std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for t in 0..THREADS {
            let stack = &stack;
            let domain = Arc::clone(&domain);
            workers.push(scope.spawn(move || {
                let mut handle = domain.register();
                let mut popped = 0;
                for i in 0..PER_THREAD {
                    stack.push(&mut handle, t * PER_THREAD + i);
                    if i % 2 == 0 && stack.pop(&mut handle).is_some() {
                        popped += 1;
                    }
                }
                popped
            }));
        }
        workers.into_iter().map(|w| w.join().unwrap()).sum()
    });

    // The same safe API the stack uses internally, on a raw shared location:
    // lease a Shield, enter a Guard bracket, read through the shield.
    let mut handle = domain.register();
    let mut shield = handle.shield::<u64>().expect("slots available");
    let node = handle.alloc(7u64);
    let root: Atomic<u64> = Atomic::new(node);
    {
        let guard = handle.enter();
        let value = shield.protect(&guard, &root, None);
        // SAFETY: `shield` does not re-protect while `value` is in use —
        // the one obligation the typed deref carries.
        let seen = unsafe { value.as_ref() };
        assert_eq!(seen, Some(&7), "one shield, one pointer");
    }
    root.store(core::ptr::null_mut(), std::sync::atomic::Ordering::SeqCst);
    {
        let guard = handle.enter();
        // SAFETY: `node` was just unlinked from `root`; retired exactly once.
        unsafe { wfe_suite::Protected::from_unlinked(node).retire_in(&guard) };
    }
    drop(shield);
    drop(handle);

    let stats = domain.stats();
    println!("pushed           : {}", THREADS * PER_THREAD);
    println!("popped           : {popped}");
    println!("blocks allocated : {}", stats.allocated);
    println!("blocks retired   : {}", stats.retired);
    println!("blocks freed     : {}", stats.freed);
    println!("still unreclaimed: {}", stats.unreclaimed);
    println!("WFE slow paths   : {}", stats.slow_path);
    println!("WFE helps        : {}", stats.helps);
    assert!(stats.freed <= stats.retired);
}
