//! Quickstart: a Treiber stack (the paper's Figure 2 example) shared by a few
//! threads, guarded by Wait-Free Eras.
//!
//! Run with `cargo run --release --example quickstart`.

use std::sync::Arc;

use wfe_suite::{Reclaimer, ReclaimerConfig, TreiberStack, Wfe};

fn main() {
    const THREADS: usize = 4;
    const PER_THREAD: usize = 100_000;

    // One WFE domain guards the stack; every thread registers a handle.
    let domain = Wfe::with_config(ReclaimerConfig::with_max_threads(THREADS));
    let stack = TreiberStack::<usize, Wfe>::new(Arc::clone(&domain));

    let popped: usize = std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for t in 0..THREADS {
            let stack = &stack;
            let domain = Arc::clone(&domain);
            workers.push(scope.spawn(move || {
                let mut handle = domain.register();
                let mut popped = 0;
                for i in 0..PER_THREAD {
                    stack.push(&mut handle, t * PER_THREAD + i);
                    if i % 2 == 0 && stack.pop(&mut handle).is_some() {
                        popped += 1;
                    }
                }
                popped
            }));
        }
        workers.into_iter().map(|w| w.join().unwrap()).sum()
    });

    let stats = domain.stats();
    println!("pushed           : {}", THREADS * PER_THREAD);
    println!("popped           : {popped}");
    println!("blocks allocated : {}", stats.allocated);
    println!("blocks retired   : {}", stats.retired);
    println!("blocks freed     : {}", stats.freed);
    println!("still unreclaimed: {}", stats.unreclaimed);
    println!("WFE slow paths   : {}", stats.slow_path);
    println!("WFE helps        : {}", stats.helps);
    assert!(stats.freed <= stats.retired);
}
