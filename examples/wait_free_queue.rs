//! The headline scenario of the paper: the Kogan-Petrank wait-free queue with
//! fully wait-free memory reclamation.
//!
//! The original KP queue assumes a garbage collector; pairing it with WFE is
//! what makes it wait-free end to end for the first time. This example runs a
//! producer/consumer workload under WFE and then under Hazard Pointers for
//! comparison.
//!
//! Run with `cargo run --release --example wait_free_queue`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use wfe_suite::{Hp, KoganPetrankQueue, Reclaimer, ReclaimerConfig, Wfe};

fn run<R: Reclaimer>(label: &str) {
    const PRODUCERS: usize = 2;
    const CONSUMERS: usize = 2;
    const PER_PRODUCER: u64 = 50_000;

    let domain = R::with_config(ReclaimerConfig::with_max_threads(PRODUCERS + CONSUMERS));
    let queue = KoganPetrankQueue::<u64, R>::new(Arc::clone(&domain));
    let consumed = AtomicU64::new(0);
    let start = Instant::now();

    std::thread::scope(|scope| {
        for p in 0..PRODUCERS as u64 {
            let queue = &queue;
            let domain = Arc::clone(&domain);
            scope.spawn(move || {
                let mut handle = domain.register();
                for i in 0..PER_PRODUCER {
                    queue.enqueue(&mut handle, p * PER_PRODUCER + i);
                }
            });
        }
        for _ in 0..CONSUMERS {
            let queue = &queue;
            let domain = Arc::clone(&domain);
            let consumed = &consumed;
            scope.spawn(move || {
                let mut handle = domain.register();
                let target = (PRODUCERS as u64 * PER_PRODUCER) / CONSUMERS as u64;
                let mut got = 0;
                while got < target {
                    if queue.dequeue(&mut handle).is_some() {
                        got += 1;
                        consumed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    let elapsed = start.elapsed();
    let stats = domain.stats();
    println!("--- {label} ---");
    println!("progress guarantee of reclamation: {:?}", R::progress());
    println!("elements consumed : {}", consumed.load(Ordering::Relaxed));
    println!("elapsed           : {elapsed:?}");
    println!("blocks allocated  : {}", stats.allocated);
    println!("blocks retired    : {}", stats.retired);
    println!("blocks freed      : {}", stats.freed);
    println!("still unreclaimed : {}", stats.unreclaimed);
    println!("slow paths / helps: {} / {}", stats.slow_path, stats.helps);
    println!();
}

fn main() {
    run::<Wfe>("Kogan-Petrank queue + WFE (wait-free end to end)");
    run::<Hp>("Kogan-Petrank queue + Hazard Pointers (lock-free reclamation)");
}
