//! The headline scenario of the paper: a wait-free queue with fully
//! wait-free memory reclamation — wait-free *end to end*.
//!
//! The Ramalhete-Correia CRTurn queue completes every operation in a bounded
//! number of steps, but that guarantee used to stop at the memory manager:
//! with lock-free reclamation (e.g. Hazard Pointers) a single stalled thread
//! can delay `retire` scans indefinitely. Pairing CRTurn with WFE closes the
//! gap — every queue operation *and* every reclamation operation is bounded.
//!
//! This example runs the same producer/consumer workload over three
//! pairings: CRTurn+WFE (wait-free end to end), CRTurn+HP (wait-free queue,
//! lock-free reclamation) and Kogan-Petrank+WFE (the paper's other wait-free
//! queue) for comparison.
//!
//! Run with `cargo run --release --example wait_free_queue`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use wfe_suite::{ConcurrentQueue, CrTurnQueue, Hp, KoganPetrankQueue, Reclaimer, Wfe};

const PRODUCERS: usize = 2;
const CONSUMERS: usize = 2;
const PER_PRODUCER: u64 = 50_000;

fn run<R: Reclaimer, Q: ConcurrentQueue<R>>(label: &str) {
    let domain = R::with_config(wfe_suite::ReclaimerConfig::with_max_threads(
        PRODUCERS + CONSUMERS + 1,
    ));
    let queue = Q::with_domain(Arc::clone(&domain));
    let consumed = AtomicU64::new(0);
    let start = Instant::now();

    std::thread::scope(|scope| {
        for p in 0..PRODUCERS as u64 {
            let queue = &queue;
            let domain = Arc::clone(&domain);
            scope.spawn(move || {
                let mut handle = domain.register();
                for i in 0..PER_PRODUCER {
                    queue.enqueue(&mut handle, p * PER_PRODUCER + i);
                }
            });
        }
        for _ in 0..CONSUMERS {
            let queue = &queue;
            let domain = Arc::clone(&domain);
            let consumed = &consumed;
            scope.spawn(move || {
                let mut handle = domain.register();
                let target = (PRODUCERS as u64 * PER_PRODUCER) / CONSUMERS as u64;
                let mut got = 0;
                while got < target {
                    if queue.dequeue(&mut handle).is_some() {
                        got += 1;
                        consumed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    let elapsed = start.elapsed();
    let stats = domain.stats();
    println!("--- {label} ---");
    println!("progress guarantee of reclamation: {:?}", R::progress());
    println!("elements consumed : {}", consumed.load(Ordering::Relaxed));
    println!("elapsed           : {elapsed:?}");
    println!("blocks allocated  : {}", stats.allocated);
    println!("blocks retired    : {}", stats.retired);
    println!("blocks freed      : {}", stats.freed);
    println!("still unreclaimed : {}", stats.unreclaimed);
    println!("slow paths / helps: {} / {}", stats.slow_path, stats.helps);
    println!();
}

fn main() {
    run::<Wfe, CrTurnQueue<u64, Wfe>>("CRTurn queue + WFE (wait-free end to end)");
    run::<Hp, CrTurnQueue<u64, Hp>>("CRTurn queue + Hazard Pointers (lock-free reclamation)");
    run::<Wfe, KoganPetrankQueue<u64, Wfe>>("Kogan-Petrank queue + WFE (wait-free end to end)");
}
