//! Forces WFE onto its slow path, the validation the paper describes in §5:
//! "We also tested our algorithm by forcing the slow path to be taken all the
//! time to validate that our implementation still works correctly under
//! stress conditions."
//!
//! The readers get a single fast-path attempt while dedicated "era bumper"
//! threads advance the era clock on every allocation, so a large fraction of
//! `get_protected()` calls must publish a help request and be completed by
//! the helping machinery inside `alloc_block()`/`retire()`.
//!
//! Run with `cargo run --release --example slow_path_stress`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use wfe_suite::{Handle, MichaelList, Protected, Reclaimer, ReclaimerConfig, Wfe};

fn main() {
    const READERS: usize = 3;
    const BUMPERS: usize = 2;
    const OPS_PER_READER: u64 = 200_000;

    let domain = Wfe::with_config(ReclaimerConfig {
        fast_path_attempts: 1, // force the slow path as aggressively as possible
        era_freq: 1,           // every allocation advances the era clock
        cleanup_freq: 8,
        ..ReclaimerConfig::with_max_threads(READERS + BUMPERS)
    });
    let list = MichaelList::<u64, Wfe>::new(Arc::clone(&domain));
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        // Hostile era bumpers: allocate and immediately retire blocks so the
        // global era never stays still.
        for _ in 0..BUMPERS {
            let domain = Arc::clone(&domain);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut handle = domain.register();
                while !stop.load(Ordering::Relaxed) {
                    let guard = handle.enter();
                    let block = guard.alloc(0u64);
                    // SAFETY: the block was never published, so it is
                    // trivially unlinked and retired exactly once.
                    unsafe { Protected::from_unlinked(block).retire_in(&guard) };
                }
            });
        }
        // Readers/writers hammering a shared list through get_protected().
        let readers: Vec<_> = (0..READERS as u64)
            .map(|t| {
                let domain = Arc::clone(&domain);
                let list = &list;
                scope.spawn(move || {
                    let mut handle = domain.register();
                    for i in 0..OPS_PER_READER {
                        let key = (t * OPS_PER_READER + i) % 512;
                        match i % 3 {
                            0 => {
                                list.insert(&mut handle, key, key);
                            }
                            1 => {
                                list.remove(&mut handle, key);
                            }
                            _ => {
                                list.get(&mut handle, key);
                            }
                        }
                    }
                })
            })
            .collect();
        for reader in readers {
            reader.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });

    let stats = domain.stats();
    println!("operations executed : {}", READERS as u64 * OPS_PER_READER);
    println!("blocks allocated    : {}", stats.allocated);
    println!("blocks retired      : {}", stats.retired);
    println!("blocks freed        : {}", stats.freed);
    println!("still unreclaimed   : {}", stats.unreclaimed);
    println!("slow-path cycles    : {}", stats.slow_path);
    println!("help_thread calls   : {}", stats.helps);
    assert!(
        stats.slow_path > 0,
        "the stress configuration must exercise the slow path"
    );
    println!("\nslow path exercised and all operations completed correctly");
}
