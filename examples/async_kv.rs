//! The async deployment model end to end: 50 000 short-lived tasks on a
//! 4-worker executor share one key-value map under WFE, each task carrying a
//! `Send`-able `TaskHandle` across its `.await` points while protection stays
//! poll-scoped (`AsyncGuard` is `!Send` — holding it across an `.await` does
//! not compile; see the `compile_fail` doctests in `wfe-task`).
//!
//! The pool is prewarmed so the steady-state hit rate is ~1.0: after warm-up
//! no task ever touches the registry — check-out, work, check-in are all
//! O(1) lock-free freelist traffic.
//!
//! Run with `cargo run --release --example async_kv`.

use std::sync::Arc;
use std::time::Instant;

use wfe_suite::{
    ConcurrentMap, DomainConfig, HandlePool, MichaelHashMap, Reclaimer, TaskHandle, Wfe,
};

const WORKERS: usize = 4;
const TASKS: usize = 50_000;
const OPS_PER_TASK: u64 = 32;
const YIELD_EVERY: u64 = 8;
const KEY_RANGE: u64 = 10_000;
/// Await this many joins at a time so the live-task window (and therefore the
/// number of simultaneously checked-out handles) stays bounded.
const WAVE: usize = 512;

fn main() {
    println!(
        "async kv example: {TASKS} tasks on {WORKERS} workers, \
         {OPS_PER_TASK} map ops per task, yield every {YIELD_EVERY} ops\n"
    );

    // Handle concurrency is bounded by the join wave, not the task count:
    // at most WAVE tasks are live at once. Size the registry for that peak
    // plus slack, then prewarm it so every check-out is a pool hit.
    let domain = Wfe::with_config(DomainConfig {
        shards: WORKERS,
        ..DomainConfig::with_max_threads(WAVE + WORKERS)
    });
    let map = Arc::new(MichaelHashMap::<u64, Wfe>::with_domain(Arc::clone(&domain)));
    let pool = HandlePool::new(Arc::clone(&domain));
    pool.prewarm(WAVE);
    pool.reset_stats();

    let rt = mini_rt::Runtime::new(WORKERS);
    let start = Instant::now();
    let completed = rt.block_on(async {
        let mut completed = 0usize;
        let mut pending = Vec::with_capacity(WAVE);
        for t in 0..TASKS {
            let map = Arc::clone(&map);
            let pool = Arc::clone(&pool);
            pending.push(rt.spawn(async move {
                // The handle is checked out once and travels with the task
                // across every suspension point below.
                let mut task = TaskHandle::acquire(&pool).await;
                let mut x = (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                for op in 0..OPS_PER_TASK {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let key = x % KEY_RANGE;
                    match x % 4 {
                        0 => {
                            map.insert(task.raw(), key, key * 2);
                        }
                        1 => {
                            map.remove(task.raw(), key);
                        }
                        _ => {
                            if let Some(value) = map.get(task.raw(), key) {
                                assert_eq!(value, key * 2);
                            }
                        }
                    }
                    if op % YIELD_EVERY == YIELD_EVERY - 1 {
                        // No protection is held here: each map op opened and
                        // closed its own bracket, so the suspended task pins
                        // no memory while parked.
                        mini_rt::yield_now().await;
                    }
                }
            })); // task drop parks the handle for the next task
            if pending.len() == WAVE {
                for handle in pending.drain(..) {
                    handle.await;
                    completed += 1;
                }
            }
        }
        for handle in pending {
            handle.await;
            completed += 1;
        }
        completed
    });
    let elapsed = start.elapsed();

    assert_eq!(completed, TASKS);
    let ops = TASKS as u64 * OPS_PER_TASK;
    let stats = pool.stats();
    println!(
        "completed {completed} tasks ({ops} map ops) in {:.0} ms  ({:.1} ops/ms)",
        elapsed.as_secs_f64() * 1e3,
        ops as f64 / elapsed.as_millis().max(1) as f64
    );
    println!(
        "pool: {} check-outs, hit rate {:.3} (prewarmed — no registry traffic), {} parked now",
        stats.checkouts,
        stats.hit_rate(),
        stats.parked
    );
    println!("domain: unreclaimed at end: {}", domain.stats().unreclaimed);
    assert!(
        stats.hit_rate() > 0.999,
        "prewarmed pool must serve every check-out (hit rate {:.3})",
        stats.hit_rate()
    );
}
