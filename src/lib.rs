//! # wfe-suite
//!
//! A from-scratch Rust reproduction of *"Universal Wait-Free Memory
//! Reclamation"* (Nikolaev & Ravindran, PPoPP 2020).
//!
//! The paper contributes **Wait-Free Eras (WFE)**: the first universal
//! safe-memory-reclamation scheme in which *every* operation — including the
//! pointer-protection read `get_protected()` — completes in a bounded number
//! of steps, so wait-free data structures finally keep their progress
//! guarantee end to end.
//!
//! This workspace contains everything the paper's evaluation needs, built from
//! scratch:
//!
//! * [`wfe_core`] — the WFE scheme itself (fast path, slow path, helping,
//!   tagged reservations, the modified cleanup scan);
//! * [`wfe_reclaim`] — the common reclamation API plus the baselines the paper
//!   compares against: EBR, Hazard Pointers, Hazard Eras, 2GEIBR and a
//!   leak-memory baseline;
//! * [`wfe_ds`] — the workloads: Treiber stack, Harris-Michael list, Michael
//!   hash map, the Shalev-Herlihy split-ordered *resizable* hash map (bucket
//!   arrays retired through the reclaimer), Natarajan-Mittal BST, the
//!   Kogan-Petrank and CRTurn wait-free queues and a Michael-Scott queue;
//! * [`wfe_atomics`] — the 128-bit wide-CAS substrate WFE requires;
//! * [`wfe_sync`] — the swappable sync layer every crate draws its atomics
//!   from: std-backed (zero-cost) normally, instrumented for the
//!   deterministic model checker under `--cfg wfe_model`;
//! * [`wfe_task`] — the async layer: `Send`-able [`TaskHandle`]s over a
//!   [`HandlePool`] whose protection brackets ([`AsyncGuard`]) are scoped to
//!   a single poll and cannot be held across an `.await`;
//! * `wfe-bench` — the harness regenerating Figures 5–11.
//!
//! ## Quick start
//!
//! ```
//! use wfe_suite::{DomainConfig, Reclaimer, TreiberStack, Wfe};
//! use std::sync::Arc;
//!
//! // One reclamation domain guards one (or more) data structures.
//! let domain = Wfe::with_config(DomainConfig::builder().max_threads(8).build());
//! let stack = TreiberStack::<String, Wfe>::new(Arc::clone(&domain));
//!
//! // Each thread registers once and passes its handle to every operation.
//! let mut handle = domain.register();
//! stack.push(&mut handle, "hello".to_string());
//! assert_eq!(stack.pop(&mut handle), Some("hello".to_string()));
//! assert_eq!(stack.pop(&mut handle), None);
//! ```
//!
//! Custom data structures use the same typed protection layer the built-in
//! ones are written against: [`Handle::shield`] leases a reservation slot as
//! an owned [`Shield`], [`Handle::enter`] opens a [`Guard`] bracket, and
//! [`Shield::protect`] returns a borrow-checked [`Protected`] pointer whose
//! `as_ref()` carries a single `unsafe` obligation — the shield has not
//! re-protected while the reference is live — that debug builds verify at
//! runtime. See the README quickstart and `docs/ARCHITECTURE.md` ("Safe
//! API") for the full tour, including the raw→guard migration table.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub use wfe_atomics;
pub use wfe_core;
pub use wfe_ds;
pub use wfe_reclaim;
pub use wfe_sync;
pub use wfe_task;

pub use wfe_core::{Wfe, WfeHandle};
pub use wfe_ds::{
    ConcurrentMap, ConcurrentQueue, CrTurnQueue, KoganPetrankQueue, MapServiceStats,
    MichaelHashMap, MichaelList, MichaelScottQueue, NatarajanBst, ResizableHashMap, TreiberStack,
};
pub use wfe_reclaim::{
    Atomic, BlockCacheConfig, DomainConfig, DomainConfigBuilder, Ebr, Guard, Handle, HandlePool,
    He, Hp, Ibr2Ge, Leak, Linked, PoolStats, PooledHandle, Progress, Protected, RawHandle,
    Reclaimer, ReclaimerConfig, Shield, ShieldError, ShieldSlots, SmrStats, ThreadRegistry,
};
pub use wfe_task::{AsyncGuard, TaskHandle};

// Compile the fenced Rust examples of the prose documentation as doc-tests
// (`cargo test --doc`), so the guides cannot drift from the API.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
mod readme_doctests {}

#[cfg(doctest)]
#[doc = include_str!("../docs/ARCHITECTURE.md")]
mod architecture_doctests {}
