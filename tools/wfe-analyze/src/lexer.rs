//! A hand-rolled Rust lexer, just deep enough for the analyzer's rules.
//!
//! The analyzer needs two views of a source file:
//!
//! * a **token stream** with comments, strings and character literals
//!   stripped, so path matches like `core::sync::atomic` or keyword scans
//!   like `unsafe {` cannot be fooled by mentions inside comments or string
//!   literals, and
//! * a **per-line map** of the comments that were stripped, so the rules can
//!   ask "does the comment attached to this line carry a `// SAFETY:` /
//!   `// ORDER:` / allow-marker tag?".
//!
//! The lexer handles the constructs that matter for not mis-tokenizing real
//! Rust: nested block comments, doc comments, string/raw-string/byte-string
//! literals, character literals vs. lifetimes, raw identifiers, and numeric
//! literals (so `0..n` does not glue into a malformed float). It does **not**
//! attempt full fidelity — operators are emitted one character at a time and
//! numbers are kept as text — because the rules only ever match identifier /
//! punctuation sequences.

/// What a token is, as far as the rules care.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`unsafe`, `Ordering`, `core`, ...).
    Ident,
    /// A single punctuation character (`:`, `{`, `.`, `#`, ...).
    Punct,
    /// A numeric literal, kept as text (`4`, `0x10`, `1_000usize`).
    Number,
    /// Anything else that occupies source text (string literals, chars,
    /// lifetimes). The rules skip these, but they must exist as tokens so
    /// that brace matching stays aligned with the source.
    Other,
}

/// One token: kind, source text, and the 0-based line it starts on.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Classification used by the rules.
    pub kind: TokKind,
    /// The token's text. For [`TokKind::Other`] this is a placeholder.
    pub text: String,
    /// 0-based source line of the token's first character.
    pub line: usize,
}

/// Comment/code facts about one source line.
#[derive(Debug, Clone, Default)]
pub struct LineInfo {
    /// The concatenated text of every comment that touches this line
    /// (line comments, doc comments, and each line a block comment spans).
    pub comment: Option<String>,
    /// Whether any code token starts on this line.
    pub has_code: bool,
    /// The last character of the last code token on this line, used to
    /// decide whether the line *ends a statement* (`;`, `{`, `}`) when the
    /// rules walk upward looking for an attached comment.
    pub last_code_char: Option<char>,
}

impl LineInfo {
    /// True when the line holds neither code nor comment (blank line).
    pub fn is_blank(&self) -> bool {
        !self.has_code && self.comment.is_none()
    }

    /// True when the line's last code character terminates a statement or
    /// opens/closes a block — the boundaries at which an attached-comment
    /// search stops walking upward.
    pub fn ends_statement(&self) -> bool {
        matches!(self.last_code_char, Some(';' | '{' | '}'))
    }

    fn push_comment(&mut self, text: &str) {
        match &mut self.comment {
            Some(existing) => {
                existing.push('\n');
                existing.push_str(text);
            }
            None => self.comment = Some(text.to_string()),
        }
    }
}

/// The result of lexing one file.
pub struct Lexed {
    /// Code tokens in source order, comments and literals stripped/opaque.
    pub toks: Vec<Tok>,
    /// Per-line comment/code facts, indexed by 0-based line number.
    pub lines: Vec<LineInfo>,
}

/// Lexes `src` into tokens plus per-line comment information.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let line_count = src.lines().count().max(1);
    let mut lines = vec![LineInfo::default(); line_count + 1];
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 0;

    // Records a code token and updates the line map.
    macro_rules! push_tok {
        ($kind:expr, $text:expr, $line:expr, $last:expr) => {{
            let l: usize = $line;
            lines[l].has_code = true;
            lines[l].last_code_char = $last;
            toks.push(Tok {
                kind: $kind,
                text: $text,
                line: l,
            });
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                // Line comment (includes `///` and `//!` doc comments).
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                lines[line].push_comment(&text);
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Block comment; Rust block comments nest.
                let mut depth = 1;
                let mut seg_start = i;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else if chars[i] == '\n' {
                        let text: String = chars[seg_start..i].iter().collect();
                        lines[line].push_comment(&text);
                        line += 1;
                        i += 1;
                        seg_start = i;
                    } else {
                        i += 1;
                    }
                }
                let text: String = chars[seg_start..i].iter().collect();
                lines[line].push_comment(&text);
            }
            '"' => {
                i = skip_string(&chars, i, &mut line);
                push_tok!(TokKind::Other, String::from("\"..\""), line, Some('"'));
            }
            'r' | 'b' | 'c' if starts_prefixed_literal(&chars, i) => {
                let (next, is_string) = skip_prefixed_literal(&chars, i, &mut line);
                if is_string {
                    i = next;
                    push_tok!(TokKind::Other, String::from("\"..\""), line, Some('"'));
                } else {
                    // `r#ident` raw identifier: lex the ident after `r#`.
                    let start = i + 2;
                    let mut j = start;
                    while j < chars.len() && is_ident_continue(chars[j]) {
                        j += 1;
                    }
                    let text: String = chars[start..j].iter().collect();
                    let last = text.chars().last();
                    push_tok!(TokKind::Ident, text, line, last);
                    i = j;
                }
            }
            '\'' => {
                // Lifetime (`'a`) or character literal (`'x'`, `'\n'`).
                if is_lifetime(&chars, i) {
                    let mut j = i + 1;
                    while j < chars.len() && is_ident_continue(chars[j]) {
                        j += 1;
                    }
                    push_tok!(TokKind::Other, String::from("'_"), line, Some('_'));
                    i = j;
                } else {
                    let mut j = i + 1;
                    while j < chars.len() && chars[j] != '\'' {
                        if chars[j] == '\\' {
                            j += 1;
                        }
                        j += 1;
                    }
                    push_tok!(TokKind::Other, String::from("'c'"), line, Some('\''));
                    i = (j + 1).min(chars.len());
                }
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let last = text.chars().last();
                push_tok!(TokKind::Ident, text, line, last);
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < chars.len() {
                    let d = chars[i];
                    if d.is_ascii_alphanumeric() || d == '_' {
                        i += 1;
                    } else if d == '.'
                        && chars.get(i + 1).is_some_and(|n| n.is_ascii_digit())
                        && chars
                            .get(i.wrapping_sub(1))
                            .is_some_and(|p| p.is_ascii_digit())
                    {
                        // `1.5` continues the number; `0..n` does not.
                        i += 1;
                    } else {
                        break;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                let last = text.chars().last();
                push_tok!(TokKind::Number, text, line, last);
            }
            c => {
                push_tok!(TokKind::Punct, c.to_string(), line, Some(c));
                i += 1;
            }
        }
    }

    Lexed { toks, lines }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// True when `'` at `i` begins a lifetime rather than a char literal: the
/// next character starts an identifier and the character after the
/// identifier-run is not a closing quote (`'a'` is a char, `'a,` a lifetime).
fn is_lifetime(chars: &[char], i: usize) -> bool {
    let Some(&next) = chars.get(i + 1) else {
        return false;
    };
    if !is_ident_start(next) {
        return false;
    }
    let mut j = i + 1;
    while j < chars.len() && is_ident_continue(chars[j]) {
        j += 1;
    }
    chars.get(j) != Some(&'\'')
}

/// True when `r`/`b`/`c` at `i` prefixes a literal (`r"`, `r#"`, `b"`, `b'`,
/// `br"`, `r#ident`, ...) rather than starting a plain identifier.
fn starts_prefixed_literal(chars: &[char], i: usize) -> bool {
    let mut j = i;
    // Up to two prefix letters (`br`, `rb` does not exist but harmless).
    while j < chars.len() && matches!(chars[j], 'r' | 'b' | 'c') && j - i < 2 {
        j += 1;
    }
    match chars.get(j) {
        Some('"') => true,
        Some('\'') => chars[i] == 'b', // byte char literal b'x'
        Some('#') => {
            // `r#"..."#` raw string or `r#ident` raw identifier — both are
            // handled by `skip_prefixed_literal`, which reports which.
            chars[i] == 'r' || chars[i] == 'b' || chars[i] == 'c'
        }
        _ => false,
    }
}

/// Skips the literal starting at `i`. Returns the index after it and whether
/// it really was a literal (`false` means: raw identifier, caller lexes it).
fn skip_prefixed_literal(chars: &[char], i: usize, line: &mut usize) -> (usize, bool) {
    let mut j = i;
    while j < chars.len() && matches!(chars[j], 'r' | 'b' | 'c') && j - i < 2 {
        j += 1;
    }
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    match chars.get(j) {
        Some('"') if hashes > 0 || chars[i..j].contains(&'r') => {
            // Raw string: ends at `"` followed by `hashes` hashes.
            j += 1;
            loop {
                match chars.get(j) {
                    None => return (j, true),
                    Some('\n') => {
                        *line += 1;
                        j += 1;
                    }
                    Some('"') => {
                        let mut k = 0;
                        while k < hashes && chars.get(j + 1 + k) == Some(&'#') {
                            k += 1;
                        }
                        j += 1 + k;
                        if k == hashes {
                            return (j, true);
                        }
                    }
                    Some(_) => j += 1,
                }
            }
        }
        Some('"') => (skip_string(chars, j, line), true),
        Some('\'') => {
            // Byte char literal b'x' / b'\n'.
            j += 1;
            while j < chars.len() && chars[j] != '\'' {
                if chars[j] == '\\' {
                    j += 1;
                }
                j += 1;
            }
            ((j + 1).min(chars.len()), true)
        }
        _ => (i, false), // raw identifier `r#ident`
    }
}

/// Skips a `"..."` string starting at the opening quote at `i`; returns the
/// index just past the closing quote and advances `line` across embedded
/// newlines.
fn skip_string(chars: &[char], i: usize, line: &mut usize) -> usize {
    let mut j = i + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => {
                // A `\<newline>` line-continuation still advances the line.
                if chars.get(j + 1) == Some(&'\n') {
                    *line += 1;
                }
                j += 2;
            }
            '\n' => {
                *line += 1;
                j += 1;
            }
            '"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}
