//! The four reclamation-specific rules.
//!
//! | rule | marker | what it enforces |
//! |------|--------|------------------|
//! | `raw-atomic` | `wfe-analyze: allow(raw-atomic)` | no `core::sync::atomic` / `std::sync::atomic` paths outside `crates/sync` — the `--cfg wfe_model` interposition must see every atomic |
//! | `undocumented-unsafe` | `wfe-analyze: allow(undocumented-unsafe)` | every `unsafe` block / `unsafe fn` / `unsafe impl` carries a `// SAFETY:` comment (or a `# Safety` doc section) |
//! | `unjustified-ordering` | `wfe-analyze: allow(unjustified-ordering)` | every non-`SeqCst` `Ordering` in shipped code carries an `// ORDER:` justification; all sites are emitted into `docs/ORDERINGS.md` |
//! | `shield-budget` | `wfe-analyze: allow(shield-budget)` | the statically-counted `.shield()` leases per operation equal the structure's declared `REQUIRED_SLOTS` |

use std::collections::HashMap;
use std::collections::HashSet;

use crate::lexer::{Lexed, Tok, TokKind};
use crate::spans::{allowed, has_tag, TestSpans};

/// One rule violation, reported as `file:line: [rule] message`.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (doubles as the allow-marker name).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

/// One non-`SeqCst` atomic-ordering site, destined for the ledger.
#[derive(Debug, Clone)]
pub struct OrderSite {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The atomic operation the ordering parameterizes (best-effort:
    /// the nearest preceding called identifier, e.g. `store`, `fetch_add`).
    pub op: String,
    /// The ordering itself (`Relaxed`, `Acquire`, `Release`, `AcqRel`).
    pub ordering: String,
    /// Text of the attached `// ORDER:` justification, if any.
    pub justification: Option<String>,
}

/// The shield-budget audit result for one data-structure file.
#[derive(Debug, Clone)]
pub struct ShieldAudit {
    /// Workspace-relative path.
    pub file: String,
    /// The declared `REQUIRED_SLOTS` value.
    pub declared: usize,
    /// The statically-computed maximum simultaneous leases of any function.
    pub computed: usize,
    /// Per-function lease counts (only functions that lease at all).
    pub breakdown: Vec<(String, usize)>,
}

fn is_punct(t: &Tok, c: &str) -> bool {
    t.kind == TokKind::Punct && t.text == c
}

fn is_ident(t: &Tok, name: &str) -> bool {
    t.kind == TokKind::Ident && t.text == name
}

/// True when `toks[i..]` spells the path `seg0 :: seg1 :: ...`.
fn path_at(toks: &[Tok], i: usize, segments: &[&str]) -> bool {
    let mut j = i;
    for (n, seg) in segments.iter().enumerate() {
        if n > 0 {
            if !(toks.get(j).is_some_and(|t| is_punct(t, ":"))
                && toks.get(j + 1).is_some_and(|t| is_punct(t, ":")))
            {
                return false;
            }
            j += 2;
        }
        if !toks.get(j).is_some_and(|t| is_ident(t, seg)) {
            return false;
        }
        j += 1;
    }
    true
}

// ---------------------------------------------------------------------------
// Rule 1: atomics hygiene
// ---------------------------------------------------------------------------

/// Flags `core::sync::atomic` / `std::sync::atomic` paths anywhere outside
/// `crates/sync`. Inside test code the finding is still reported — the model
/// checker schedules test threads too — but the message says which world the
/// site lives in so deliberate oracle atomics can be marker-allowed with a
/// clear conscience.
pub fn check_atomics_hygiene(
    file: &str,
    lexed: &Lexed,
    tests: &TestSpans,
    out: &mut Vec<Violation>,
) {
    if file.starts_with("crates/sync/") {
        // The one crate allowed to touch the raw atomics: it *is* the
        // interposition layer.
        return;
    }
    let toks = &lexed.toks;
    for i in 0..toks.len() {
        let head = &toks[i];
        if !(is_ident(head, "core") || is_ident(head, "std")) {
            continue;
        }
        if !path_at(toks, i, &[&head.text, "sync", "atomic"]) {
            continue;
        }
        if allowed(&lexed.lines, head.line, "raw-atomic") {
            continue;
        }
        let world = if tests.contains(i) {
            "test code"
        } else {
            "shipped code"
        };
        out.push(Violation {
            file: file.to_string(),
            line: head.line + 1,
            rule: "raw-atomic",
            message: format!(
                "`{}::sync::atomic` in {world} bypasses the `wfe_sync` interposition \
                 layer (the `--cfg wfe_model` checker will not schedule it); import \
                 through `wfe_sync::atomic` or add `// wfe-analyze: allow(raw-atomic)` \
                 with a justification",
                head.text
            ),
        });
    }
}

// ---------------------------------------------------------------------------
// Rule 2: SAFETY coverage
// ---------------------------------------------------------------------------

/// Flags `unsafe` blocks, functions, traits and impls that carry neither a
/// `// SAFETY:` comment nor (for declarations) a `# Safety` doc section.
pub fn check_safety_coverage(file: &str, lexed: &Lexed, out: &mut Vec<Violation>) {
    let toks = &lexed.toks;
    for i in 0..toks.len() {
        if !is_ident(&toks[i], "unsafe") {
            continue;
        }
        // Classify what this `unsafe` introduces.
        let mut j = i + 1;
        // `unsafe extern "C" fn` — skip the ABI tokens.
        if toks.get(j).is_some_and(|t| is_ident(t, "extern")) {
            j += 1;
            if toks.get(j).is_some_and(|t| t.kind == TokKind::Other) {
                j += 1;
            }
        }
        let (what, is_decl) = match toks.get(j) {
            Some(t) if is_punct(t, "{") => ("unsafe block", false),
            // `unsafe fn name` is a declaration; `unsafe fn(` is a
            // function-pointer *type*, which carries no obligation here.
            Some(t)
                if is_ident(t, "fn")
                    && toks.get(j + 1).is_some_and(|n| n.kind == TokKind::Ident) =>
            {
                ("unsafe fn", true)
            }
            Some(t) if is_ident(t, "impl") => ("unsafe impl", true),
            Some(t) if is_ident(t, "trait") => ("unsafe trait", true),
            // `#[unsafe(no_mangle)]`-style attribute or a trait-bound
            // position — not a site this rule covers.
            _ => continue,
        };
        let line = toks[i].line;
        let documented = has_tag(&lexed.lines, line, "SAFETY:")
            || (is_decl && has_tag(&lexed.lines, line, "# Safety"));
        if documented || allowed(&lexed.lines, line, "undocumented-unsafe") {
            continue;
        }
        out.push(Violation {
            file: file.to_string(),
            line: line + 1,
            rule: "undocumented-unsafe",
            message: format!(
                "{what} without a `// SAFETY:` comment{}; state the obligation being \
                 discharged (or add `// wfe-analyze: allow(undocumented-unsafe)`)",
                if is_decl {
                    " or `# Safety` doc section"
                } else {
                    ""
                }
            ),
        });
    }
}

// ---------------------------------------------------------------------------
// Rule 3: ordering ledger
// ---------------------------------------------------------------------------

const WEAK_ORDERINGS: [&str; 4] = ["Relaxed", "Acquire", "Release", "AcqRel"];

/// Collects every non-`SeqCst` ordering site in shipped (non-test) code and
/// flags the ones without an `// ORDER:` justification. Sites are recorded
/// for the ledger whether or not they are justified.
pub fn check_orderings(
    file: &str,
    lexed: &Lexed,
    tests: &TestSpans,
    sites: &mut Vec<OrderSite>,
    out: &mut Vec<Violation>,
) {
    // Integration/model test trees are test code wholesale.
    if file.starts_with("tests/") || file.contains("/tests/") {
        return;
    }
    let toks = &lexed.toks;

    // Pass 1: which weak orderings are imported as bare names?
    let mut imported: HashSet<&str> = HashSet::new();
    let mut use_spans: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if is_ident(&toks[i], "use") {
            let start = i;
            let mut j = i + 1;
            let mut saw_ordering = false;
            while j < toks.len() && !is_punct(&toks[j], ";") {
                if is_ident(&toks[j], "Ordering") {
                    saw_ordering = true;
                }
                if saw_ordering {
                    if let Some(ord) = WEAK_ORDERINGS.iter().find(|o| is_ident(&toks[j], o)) {
                        imported.insert(ord);
                    }
                }
                j += 1;
            }
            use_spans.push((start, j));
            i = j;
        }
        i += 1;
    }
    let in_use = |idx: usize| use_spans.iter().any(|&(a, b)| a <= idx && idx <= b);

    // Pass 2: the sites themselves.
    for i in 0..toks.len() {
        let Some(ord) = WEAK_ORDERINGS.iter().find(|o| is_ident(&toks[i], o)) else {
            continue;
        };
        if tests.contains(i) || in_use(i) {
            continue;
        }
        let qualified = i >= 3
            && is_punct(&toks[i - 1], ":")
            && is_punct(&toks[i - 2], ":")
            && is_ident(&toks[i - 3], "Ordering");
        if !qualified && !imported.contains(*ord) {
            continue; // some unrelated identifier that happens to collide
        }
        let line = toks[i].line;
        let justification = crate::spans::tag_text(&lexed.lines, line, "ORDER:");
        sites.push(OrderSite {
            file: file.to_string(),
            line: line + 1,
            op: enclosing_call(toks, i),
            ordering: (*ord).to_string(),
            justification: justification.clone(),
        });
        if justification.is_none() && !allowed(&lexed.lines, line, "unjustified-ordering") {
            out.push(Violation {
                file: file.to_string(),
                line: line + 1,
                rule: "unjustified-ordering",
                message: format!(
                    "`Ordering::{ord}` without an `// ORDER:` justification; say why \
                     this access can be weaker than SeqCst (what pairs with it, or why \
                     no ordering is needed)"
                ),
            });
        }
    }
}

/// Best-effort name of the call the ordering at `i` parameterizes: the
/// nearest preceding identifier that is directly followed by `(`.
fn enclosing_call(toks: &[Tok], i: usize) -> String {
    let lo = i.saturating_sub(24);
    for j in (lo..i).rev() {
        if toks[j].kind == TokKind::Ident && toks.get(j + 1).is_some_and(|t| is_punct(t, "(")) {
            return toks[j].text.clone();
        }
    }
    String::from("?")
}

/// Renders the ordering ledger (`docs/ORDERINGS.md`) from the collected
/// sites. Deterministic: sites arrive in file-walk order, which is sorted.
pub fn render_ledger(sites: &[OrderSite]) -> String {
    let mut out = String::new();
    out.push_str("# Atomic-ordering ledger\n\n");
    out.push_str(
        "Every non-`SeqCst` atomic access in shipped (non-test) code, with its\n\
         `// ORDER:` justification. Generated by `cargo run -p wfe-analyze --\n\
         --write-ledger`; regenerate instead of editing (`--deny` fails CI when\n\
         this file is stale).\n",
    );
    let mut current_file = "";
    for site in sites {
        if site.file != current_file {
            current_file = &site.file;
            out.push_str(&format!("\n## `{}`\n\n", site.file));
            out.push_str("| line | op | ordering | justification |\n");
            out.push_str("|-----:|----|----------|---------------|\n");
        }
        out.push_str(&format!(
            "| {} | `{}` | `{}` | {} |\n",
            site.line,
            site.op,
            site.ordering,
            site.justification
                .as_deref()
                .unwrap_or("**(unjustified)**")
                .replace('|', "\\|"),
        ));
    }
    let total = sites.len();
    let unjustified = sites.iter().filter(|s| s.justification.is_none()).count();
    out.push_str(&format!(
        "\n---\n\n{total} weak-ordering sites, {unjustified} unjustified.\n"
    ));
    out
}

// ---------------------------------------------------------------------------
// Rule 4: shield-budget audit
// ---------------------------------------------------------------------------

/// A function body, for the intra-file lease analysis.
struct FnBody {
    name: String,
    /// Token range of the body, exclusive of the outer braces.
    range: (usize, usize),
}

/// Audits files that declare a literal `REQUIRED_SLOTS` const: statically
/// counts the `.shield()` leases each function acquires (directly, through
/// lease-closures called N times, and through same-file helper functions)
/// and compares the per-operation maximum against the declared budget.
pub fn check_shield_budget(
    file: &str,
    lexed: &Lexed,
    tests: &TestSpans,
    audits: &mut Vec<ShieldAudit>,
    out: &mut Vec<Violation>,
) {
    let toks = &lexed.toks;

    // The declared budget: `const REQUIRED_SLOTS: usize = <int>;`.
    let mut declared: Option<(usize, usize)> = None; // (value, tok index)
    for i in 0..toks.len() {
        if is_ident(&toks[i], "REQUIRED_SLOTS")
            && toks.get(i + 1).is_some_and(|t| is_punct(t, ":"))
            && toks.get(i + 2).is_some_and(|t| is_ident(t, "usize"))
            && toks.get(i + 3).is_some_and(|t| is_punct(t, "="))
        {
            if let Some(num) = toks.get(i + 4).filter(|t| t.kind == TokKind::Number) {
                let digits: String = num
                    .text
                    .chars()
                    .take_while(|c| c.is_ascii_digit())
                    .collect();
                if let Ok(v) = digits.parse() {
                    declared = Some((v, i));
                    break;
                }
            }
            // Non-literal (delegating) consts are out of scope for the audit.
            return;
        }
    }
    let Some((declared, decl_idx)) = declared else {
        return;
    };

    // Collect function bodies outside test code.
    let mut fns: Vec<FnBody> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if is_ident(&toks[i], "fn")
            && !tests.contains(i)
            && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
        {
            let name = toks[i + 1].text.clone();
            // The body is the first top-level `{`..`}` after the signature;
            // a top-level `;` first means a trait-method declaration without
            // a body. Depth-tracked because return types like
            // `-> [Shield<..>; 2]` embed `;` inside brackets.
            let mut j = i + 2;
            let mut open = None;
            let mut depth = 0i32;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        open = Some(j);
                        break;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if let Some(open) = open {
                let close = match_brace(toks, open);
                fns.push(FnBody {
                    name,
                    range: (open + 1, close),
                });
                i = open; // descend: nested fns are collected too
            }
        }
        i += 1;
    }

    // Per-function lease counts, memoized over the call graph. Same-named
    // functions (trait + inherent impls) merge to the larger count; cycles
    // contribute zero, which keeps self-delegating wrappers finite.
    let index: HashMap<&str, Vec<usize>> =
        fns.iter()
            .enumerate()
            .fold(HashMap::new(), |mut m, (n, f)| {
                m.entry(f.name.as_str()).or_default().push(n);
                m
            });
    let mut memo: HashMap<usize, usize> = HashMap::new();
    let mut active: HashSet<usize> = HashSet::new();
    let mut breakdown: Vec<(String, usize)> = Vec::new();
    let mut computed = 0usize;
    for n in 0..fns.len() {
        let leases = fn_leases(n, &fns, &index, toks, &mut memo, &mut active);
        if leases > 0 {
            computed = computed.max(leases);
            breakdown.push((fns[n].name.clone(), leases));
        }
    }

    audits.push(ShieldAudit {
        file: file.to_string(),
        declared,
        computed,
        breakdown: breakdown.clone(),
    });
    if computed != declared && !allowed(&lexed.lines, toks[decl_idx].line, "shield-budget") {
        let detail: Vec<String> = breakdown
            .iter()
            .map(|(name, n)| format!("{name}: {n}"))
            .collect();
        out.push(Violation {
            file: file.to_string(),
            line: toks[decl_idx].line + 1,
            rule: "shield-budget",
            message: format!(
                "REQUIRED_SLOTS is {declared} but the widest operation statically \
                 leases {computed} shields ({}); fix the const or the leases",
                detail.join(", ")
            ),
        });
    }
}

/// Index of the `}` matching the `{` at `open`.
fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if is_punct(t, "{") {
            depth += 1;
        } else if is_punct(t, "}") {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Leases acquired by one invocation of `fns[n]`:
/// direct `.shield(` / `.shield::<..>(` calls, plus `sites × calls` for each
/// lease-closure defined in the body, plus the (memoized) leases of every
/// same-file function it calls, multiplied by the number of call sites.
fn fn_leases(
    n: usize,
    fns: &[FnBody],
    index: &HashMap<&str, Vec<usize>>,
    toks: &[Tok],
    memo: &mut HashMap<usize, usize>,
    active: &mut HashSet<usize>,
) -> usize {
    if let Some(&v) = memo.get(&n) {
        return v;
    }
    if !active.insert(n) {
        return 0; // recursion: the cycle itself leases nothing extra
    }
    let (start, end) = fns[n].range;
    // Nested fn bodies inside this range belong to the nested fn, not to us.
    let nested: Vec<(usize, usize)> = fns
        .iter()
        .enumerate()
        .filter(|&(m, f)| m != n && f.range.0 > start && f.range.1 < end)
        .map(|(_, f)| f.range)
        .collect();
    let owned = |idx: usize| !nested.iter().any(|&(a, b)| a <= idx && idx <= b);

    // Lease-closures: `let <name> = [move] |...| <body>`.
    struct Closure {
        name: String,
        def: (usize, usize),
        sites: usize,
    }
    let mut closures: Vec<Closure> = Vec::new();
    let mut i = start;
    while i < end {
        if is_ident(&toks[i], "let")
            && owned(i)
            && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
        {
            let mut j = i + 2;
            if toks.get(j).is_some_and(|t| is_punct(t, "=")) {
                j += 1;
                if toks.get(j).is_some_and(|t| is_ident(t, "move")) {
                    j += 1;
                }
                if toks.get(j).is_some_and(|t| is_punct(t, "|")) {
                    // Skip the parameter list to the closing `|`.
                    let mut k = j + 1;
                    while k < end && !is_punct(&toks[k], "|") {
                        k += 1;
                    }
                    k += 1;
                    // Body: a block, or an expression up to the let's `;`.
                    let body_end = if toks.get(k).is_some_and(|t| is_punct(t, "{")) {
                        match_brace(toks, k)
                    } else {
                        let mut d = 0i32;
                        let mut m = k;
                        while m < end {
                            match toks[m].text.as_str() {
                                "(" | "[" | "{" => d += 1,
                                ")" | "]" | "}" => d -= 1,
                                ";" if d == 0 => break,
                                _ => {}
                            }
                            m += 1;
                        }
                        m
                    };
                    let sites = count_shield_sites(toks, k, body_end);
                    closures.push(Closure {
                        name: toks[i + 1].text.clone(),
                        def: (i, body_end),
                        sites,
                    });
                    i = body_end;
                    continue;
                }
            }
        }
        i += 1;
    }
    let in_closure = |idx: usize, closures: &[Closure]| {
        closures.iter().any(|c| c.def.0 <= idx && idx <= c.def.1)
    };

    let mut total = 0usize;
    // Direct `.shield(` sites outside closure definitions.
    let mut i = start;
    while i < end {
        if is_punct(&toks[i], ".")
            && toks.get(i + 1).is_some_and(|t| is_ident(t, "shield"))
            && owned(i)
            && !in_closure(i, &closures)
        {
            total += 1;
        }
        i += 1;
    }
    // Closure invocations and same-file helper calls.
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|tt| is_punct(tt, "("))
            && owned(i)
            && !in_closure(i, &closures)
            // A method call `x.name(...)` resolves elsewhere; only bare /
            // path calls (`name(..)`, `Self::name(..)`) stay in this file.
            && !(i > 0 && is_punct(&toks[i - 1], "."))
        {
            if let Some(c) = closures.iter().find(|c| c.name == t.text) {
                total += c.sites;
            } else if let Some(callees) = index.get(t.text.as_str()) {
                let mut best = 0;
                for &m in callees {
                    if m != n {
                        best = best.max(fn_leases(m, fns, index, toks, memo, active));
                    }
                }
                total += best;
            }
        }
        i += 1;
    }

    active.remove(&n);
    memo.insert(n, total);
    total
}

/// Counts `.shield(` / `.shield::<..>(` call sites in `toks[start..end]`.
fn count_shield_sites(toks: &[Tok], start: usize, end: usize) -> usize {
    let mut count = 0;
    for i in start..end.min(toks.len()) {
        if is_punct(&toks[i], ".") && toks.get(i + 1).is_some_and(|t| is_ident(t, "shield")) {
            count += 1;
        }
    }
    count
}
