//! `wfe-analyze` — reclamation-aware static analysis for the WFE workspace.
//!
//! The suite's safety argument (wait-free bounded reclamation) rests on
//! invariants that ordinary tests cannot see: every synchronization site must
//! go through the `wfe-sync` interposition layer or the `--cfg wfe_model`
//! checker silently skips it; every weakened memory ordering is a proof
//! obligation; every `unsafe` block is a contract; and every data structure's
//! `REQUIRED_SLOTS` must equal the shields its widest operation actually
//! leases. This tool walks every `.rs` file under `crates/`, `src/` and
//! `tests/` of the workspace and enforces exactly those four rules — see
//! [`rules`] for the inventory and the allow-marker grammar.
//!
//! It is deliberately dependency-free (a hand-rolled [`lexer`], no `syn`):
//! the build container has no network, and the analyzer must never be the
//! thing that keeps the workspace from building.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod lexer;
pub mod rules;
pub mod spans;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use rules::{OrderSite, ShieldAudit, Violation};

/// What to analyze and how.
pub struct Config {
    /// Workspace root; `crates/`, `src/` and `tests/` under it are scanned.
    pub root: PathBuf,
}

/// The outcome of one analysis run.
pub struct Report {
    /// All rule violations, in (file, line) order.
    pub violations: Vec<Violation>,
    /// Every weak-ordering site found in shipped code (the ledger's rows).
    pub order_sites: Vec<OrderSite>,
    /// Shield-budget audit, one row per structure with a literal
    /// `REQUIRED_SLOTS`.
    pub audits: Vec<ShieldAudit>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Renders the ordering ledger for `docs/ORDERINGS.md`.
    pub fn ledger(&self) -> String {
        rules::render_ledger(&self.order_sites)
    }

    /// True when `docs/ORDERINGS.md` under `root` matches this report's
    /// ledger byte for byte.
    pub fn ledger_is_fresh(&self, root: &Path) -> bool {
        fs::read_to_string(root.join("docs/ORDERINGS.md"))
            .map(|on_disk| on_disk == self.ledger())
            .unwrap_or(false)
    }
}

/// The directories scanned, relative to the workspace root.
const SCAN_ROOTS: [&str; 3] = ["crates", "src", "tests"];

/// Runs the analysis over the workspace at `config.root`.
pub fn run(config: &Config) -> io::Result<Report> {
    let mut files = Vec::new();
    for dir in SCAN_ROOTS {
        collect_rs_files(&config.root.join(dir), &mut files)?;
    }
    files.sort();

    let mut report = Report {
        violations: Vec::new(),
        order_sites: Vec::new(),
        audits: Vec::new(),
        files_scanned: files.len(),
    };
    for path in &files {
        let rel = path
            .strip_prefix(&config.root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(path)?;
        let lexed = lexer::lex(&src);
        let tests = spans::test_spans(&lexed.toks);
        rules::check_atomics_hygiene(&rel, &lexed, &tests, &mut report.violations);
        rules::check_safety_coverage(&rel, &lexed, &mut report.violations);
        rules::check_orderings(
            &rel,
            &lexed,
            &tests,
            &mut report.order_sites,
            &mut report.violations,
        );
        rules::check_shield_budget(
            &rel,
            &lexed,
            &tests,
            &mut report.audits,
            &mut report.violations,
        );
    }
    report
        .violations
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

/// Recursively collects `.rs` files under `dir` (which may not exist —
/// fixture trees do not always have all three scan roots).
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            // `target/` never holds sources we own.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locates the workspace root by walking upward from `start` until a
/// `Cargo.toml` containing a `[workspace]` table is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
