//! Test-code spans and attached-comment lookups.
//!
//! Two cross-cutting questions every rule asks:
//!
//! * is this token inside `#[cfg(test)]` / `#[test]` code?
//! * does the comment *attached* to this line carry some tag
//!   (`SAFETY:`, `ORDER:`, `wfe-analyze: allow(...)`)?
//!
//! "Attached" mirrors what a human reader considers the comment for a
//! statement: the trailing comment on the line itself, a trailing comment on
//! an earlier line of the same multi-line statement, or the contiguous run
//! of comment-only lines directly above the statement (attributes are
//! transparent, blank lines break the attachment).

use crate::lexer::{LineInfo, Tok, TokKind};

/// Token-index ranges (inclusive) that belong to test-only code.
pub struct TestSpans(Vec<(usize, usize)>);

impl TestSpans {
    /// True when token `idx` falls inside any test span.
    pub fn contains(&self, idx: usize) -> bool {
        self.0.iter().any(|&(a, b)| a <= idx && idx <= b)
    }
}

/// Computes the token ranges covered by `#[cfg(test)]` (including
/// `#[cfg(all(test, ...))]` and friends) and `#[test]` attributes. The span
/// of such an attribute is the item that follows it: everything up to the
/// matching `}` of its first brace, or up to `;` for brace-less items.
pub fn test_spans(toks: &[Tok]) -> TestSpans {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokKind::Punct
            && toks[i].text == "#"
            && toks.get(i + 1).is_some_and(|t| t.text == "[")
        {
            // Collect the attribute's tokens up to the matching `]`.
            let attr_start = i;
            let mut depth = 0;
            let mut j = i + 1;
            let mut is_test_attr = false;
            let mut attr_head: Option<&str> = None;
            while j < toks.len() {
                let t = &toks[j];
                match (t.kind.clone(), t.text.as_str()) {
                    (TokKind::Punct, "[") => depth += 1,
                    (TokKind::Punct, "]") => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    (TokKind::Ident, name) => {
                        if attr_head.is_none() {
                            attr_head = Some(t.text.as_str());
                            // `#[test]` or tool attributes like
                            // `#[cfg(test)]`: decided below.
                            if name == "test" {
                                is_test_attr = true;
                            }
                        } else if attr_head == Some("cfg") && name == "test" {
                            // `test` anywhere inside `cfg(...)` — covers
                            // `cfg(test)`, `cfg(all(test, ...))`, etc.
                            is_test_attr = true;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            if is_test_attr {
                // The attribute covers the following item: skip any further
                // attributes, then span to the matching `}` of the first `{`
                // (or to `;` for items like `#[cfg(test)] use ...;`).
                let mut k = j + 1;
                while k < toks.len()
                    && toks[k].text == "#"
                    && toks.get(k + 1).is_some_and(|t| t.text == "[")
                {
                    let mut d = 0;
                    k += 1;
                    while k < toks.len() {
                        if toks[k].text == "[" {
                            d += 1;
                        } else if toks[k].text == "]" {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        k += 1;
                    }
                    k += 1;
                }
                let mut brace = 0i32;
                let mut end = k;
                while end < toks.len() {
                    match toks[end].text.as_str() {
                        "{" => brace += 1,
                        "}" => {
                            brace -= 1;
                            if brace == 0 {
                                break;
                            }
                        }
                        ";" if brace == 0 => break,
                        _ => {}
                    }
                    end += 1;
                }
                spans.push((attr_start, end.min(toks.len().saturating_sub(1))));
                i = j + 1;
                continue;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    TestSpans(spans)
}

/// Maximum number of lines an attached-comment search walks upward. Bounds
/// pathological files; real statements and comment runs are far shorter.
const MAX_WALK: usize = 40;

/// True when a comment attached to 0-based `line` contains `needle`.
///
/// Searched, in order: the line's own (trailing) comment; trailing comments
/// on earlier lines of the same statement (a line belongs to the statement
/// above it while that line does not end in `;`/`{`/`}`); and the contiguous
/// run of comment-only lines directly above the statement. Blank lines break
/// the attachment, attribute lines do not.
pub fn has_tag(lines: &[LineInfo], line: usize, needle: &str) -> bool {
    tag_text(lines, line, needle).is_some()
}

/// Like [`has_tag`], but returns the text that follows `needle` in the
/// attached comment (trimmed, up to the end of the comment line) — e.g. the
/// justification after `ORDER:`. Returns an empty string when the tag exists
/// with no trailing text.
pub fn tag_text(lines: &[LineInfo], line: usize, needle: &str) -> Option<String> {
    let extract = |l: usize| -> Option<String> {
        let comment = lines.get(l)?.comment.as_deref()?;
        let pos = comment.find(needle)?;
        let rest = &comment[pos + needle.len()..];
        let rest = rest.lines().next().unwrap_or("");
        Some(rest.trim().trim_end_matches("*/").trim().to_string())
    };
    if let Some(t) = extract(line) {
        return Some(t);
    }
    let mut l = line;
    let mut in_statement = true;
    for _ in 0..MAX_WALK {
        if l == 0 {
            return None;
        }
        l -= 1;
        let info = lines.get(l)?;
        if in_statement {
            if info.has_code {
                if info.ends_statement() {
                    // `l` ends the *previous* statement; its trailing
                    // comment (if any) belongs to that statement, not ours.
                    return None;
                }
                // Earlier line of the same statement: its trailing comment
                // counts, and the walk continues.
                if let Some(t) = extract(l) {
                    return Some(t);
                }
            } else if info.is_blank() {
                return None;
            } else {
                // Comment-only line directly above (part of) the statement:
                // we are now in the comment run.
                in_statement = false;
                if let Some(t) = extract(l) {
                    return Some(t);
                }
            }
        } else if info.has_code || info.is_blank() {
            return None;
        } else if let Some(t) = extract(l) {
            return Some(t);
        }
    }
    None
}

/// The allow-marker grammar: `// wfe-analyze: allow(<rule>)`, attached to
/// the offending line like any other tag. Returns the marker text for
/// `rule`, e.g. `wfe-analyze: allow(raw-atomic)`.
pub fn marker(rule: &str) -> String {
    format!("wfe-analyze: allow({rule})")
}

/// True when the line carries the allow-marker for `rule`.
pub fn allowed(lines: &[LineInfo], line: usize, rule: &str) -> bool {
    has_tag(lines, line, &marker(rule))
}
