//! CLI for the `wfe-analyze` static analyzer.
//!
//! ```text
//! cargo run -p wfe-analyze --             # report, exit 0
//! cargo run -p wfe-analyze -- --deny      # report, exit 1 on any violation
//!                                         # or a stale docs/ORDERINGS.md
//! cargo run -p wfe-analyze -- --write-ledger   # regenerate docs/ORDERINGS.md
//! cargo run -p wfe-analyze -- --root PATH      # analyze another tree
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use wfe_analyze::{find_workspace_root, run, Config};

fn main() -> ExitCode {
    let mut deny = false;
    let mut write_ledger = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--write-ledger" => write_ledger = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "wfe-analyze: reclamation-aware static analysis\n\
                     \n\
                     USAGE: wfe-analyze [--root PATH] [--deny] [--write-ledger]\n\
                     \n\
                     Rules: raw-atomic, undocumented-unsafe, unjustified-ordering,\n\
                     shield-budget. Allow markers: `// wfe-analyze: allow(<rule>)`\n\
                     attached to the offending line. See docs/ARCHITECTURE.md,\n\
                     \"Static analysis & sanitizers\"."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("could not locate a workspace root (looked for Cargo.toml with [workspace]); pass --root");
            return ExitCode::from(2);
        }
    };

    let report = match run(&Config { root: root.clone() }) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analysis failed: {e}");
            return ExitCode::from(2);
        }
    };

    for v in &report.violations {
        println!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
    }

    println!(
        "\nshield-budget audit ({} structures):",
        report.audits.len()
    );
    for a in &report.audits {
        let verdict = if a.computed == a.declared {
            "ok"
        } else {
            "MISMATCH"
        };
        let detail: Vec<String> = a
            .breakdown
            .iter()
            .map(|(name, n)| format!("{name}:{n}"))
            .collect();
        println!(
            "  {}: declared {} / computed {} [{verdict}] ({})",
            a.file,
            a.declared,
            a.computed,
            detail.join(" ")
        );
    }

    if write_ledger {
        let path = root.join("docs/ORDERINGS.md");
        if let Err(e) = std::fs::write(&path, report.ledger()) {
            eprintln!("failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "wrote {} ({} sites)",
            path.display(),
            report.order_sites.len()
        );
    }

    let mut failures = report.violations.len();
    if deny && !write_ledger && !report.ledger_is_fresh(&root) {
        println!(
            "docs/ORDERINGS.md is stale; regenerate with `cargo run -p wfe-analyze -- --write-ledger`"
        );
        failures += 1;
    }

    println!(
        "\n{} files scanned, {} weak-ordering sites, {} violations",
        report.files_scanned,
        report.order_sites.len(),
        report.violations.len()
    );
    if deny && failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
