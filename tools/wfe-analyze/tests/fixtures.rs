//! The fixture corpus: one passing and one failing tree per rule.
//!
//! Each fixture directory under `tests/fixtures/` is a miniature workspace
//! root (the analyzer scans `crates/`, `src/` and `tests/` beneath it), so
//! these tests exercise the whole pipeline — file walk, lexer, comment
//! attachment, rules, ledger rendering — not individual functions. The `.rs`
//! files inside the fixtures are data, not code: cargo never compiles them,
//! and they reference types (`Handle`, `wfe_sync`) that only exist in the
//! real workspace.

use std::path::PathBuf;

use wfe_analyze::{run, Config, Report};

fn fixture_root(fixture: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(fixture)
}

fn analyze(fixture: &str) -> Report {
    run(&Config {
        root: fixture_root(fixture),
    })
    .expect("fixture tree is readable")
}

/// The violations as compact `(rule, file, line)` triples.
fn triples(report: &Report) -> Vec<(&str, &str, usize)> {
    report
        .violations
        .iter()
        .map(|v| (v.rule, v.file.as_str(), v.line))
        .collect()
}

// ---------------------------------------------------------------------------
// Rule 1: atomics hygiene
// ---------------------------------------------------------------------------

#[test]
fn raw_atomic_pass() {
    let report = analyze("raw_atomic/pass");
    // Both escape hatches hold: the `crates/sync` exemption and the
    // allow-marker on the FFI type alias.
    assert_eq!(report.files_scanned, 2);
    assert_eq!(triples(&report), vec![]);
}

#[test]
fn raw_atomic_fail() {
    let report = analyze("raw_atomic/fail");
    assert_eq!(
        triples(&report),
        vec![
            ("raw-atomic", "src/lib.rs", 3),
            ("raw-atomic", "src/lib.rs", 11),
        ]
    );
    // The message says which world the site lives in, so deliberate oracle
    // atomics in tests can be marker-allowed with a clear conscience.
    assert!(report.violations[0].message.contains("shipped code"));
    assert!(report.violations[1].message.contains("test code"));
}

// ---------------------------------------------------------------------------
// Rule 2: SAFETY coverage
// ---------------------------------------------------------------------------

#[test]
fn safety_pass() {
    // `# Safety` doc section on the decl, `// SAFETY:` on the block and the
    // impl, allow-marker on the exempt fn: all four styles satisfy the rule.
    let report = analyze("safety/pass");
    assert_eq!(triples(&report), vec![]);
}

#[test]
fn safety_fail() {
    let report = analyze("safety/fail");
    assert_eq!(
        triples(&report),
        vec![
            ("undocumented-unsafe", "src/lib.rs", 5),
            ("undocumented-unsafe", "src/lib.rs", 10),
            ("undocumented-unsafe", "src/lib.rs", 13),
        ]
    );
    // Declarations are offered the `# Safety` alternative; blocks are not.
    assert!(report.violations[0].message.contains("# Safety"));
    assert!(!report.violations[1].message.contains("# Safety"));
}

// ---------------------------------------------------------------------------
// Rule 3: ordering ledger
// ---------------------------------------------------------------------------

#[test]
fn ordering_pass() {
    let report = analyze("ordering/pass");
    assert_eq!(triples(&report), vec![]);
    // Four sites reach the ledger (the test-module Relaxed pair does not),
    // and the walk-up attaches the trailing AcqRel comment to the failure
    // ordering on the line below it.
    let rows: Vec<(usize, &str, &str)> = report
        .order_sites
        .iter()
        .map(|s| (s.line, s.op.as_str(), s.ordering.as_str()))
        .collect();
    assert_eq!(
        rows,
        vec![
            (7, "store", "Release"),
            (12, "load", "Acquire"),
            (19, "compare_exchange", "AcqRel"),
            (20, "compare_exchange", "Acquire"),
        ]
    );
    assert!(report.order_sites.iter().all(|s| s.justification.is_some()));
    assert!(report
        .ledger()
        .contains("4 weak-ordering sites, 0 unjustified"));
}

#[test]
fn ordering_fail() {
    let report = analyze("ordering/fail");
    // The naked Relaxed is a violation; the marker-allowed shim is not —
    // but both are ledger rows, and both rows read as unjustified.
    assert_eq!(
        triples(&report),
        vec![("unjustified-ordering", "src/lib.rs", 6)]
    );
    assert_eq!(report.order_sites.len(), 2);
    let ledger = report.ledger();
    assert!(ledger.contains("**(unjustified)**"));
    assert!(ledger.contains("2 weak-ordering sites, 2 unjustified"));
    // No docs/ORDERINGS.md in the fixture tree: the freshness check must
    // report stale rather than erroring.
    assert!(!report.ledger_is_fresh(&fixture_root("ordering/fail")));
}

// ---------------------------------------------------------------------------
// Rule 4: shield-budget audit
// ---------------------------------------------------------------------------

#[test]
fn shield_budget_pass() {
    let report = analyze("shield_budget/pass");
    assert_eq!(triples(&report), vec![]);
    let audit = &report.audits[0];
    assert_eq!((audit.declared, audit.computed), (3, 3));
    // All three counting modes contribute: two direct leases + a same-file
    // helper (get = 3), a lease-closure invoked twice (insert = 2), and the
    // helper itself (1).
    assert_eq!(
        audit.breakdown,
        vec![
            (String::from("get"), 3),
            (String::from("insert"), 2),
            (String::from("helper"), 1),
        ]
    );
}

#[test]
fn shield_budget_fail() {
    let report = analyze("shield_budget/fail");
    assert_eq!(triples(&report), vec![("shield-budget", "src/lib.rs", 3)]);
    let audit = &report.audits[0];
    assert_eq!((audit.declared, audit.computed), (1, 2));
    assert!(report.violations[0].message.contains("leases 2 shields"));
}

// ---------------------------------------------------------------------------
// The workspace itself
// ---------------------------------------------------------------------------

#[test]
fn workspace_is_clean() {
    // The same gate CI's `--deny` run enforces, kept in `cargo test` reach:
    // the real workspace has no violations and a fresh ordering ledger.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = wfe_analyze::find_workspace_root(&manifest).expect("workspace root above tools/");
    let report = run(&Config { root: root.clone() }).expect("workspace tree is readable");
    assert_eq!(triples(&report), vec![]);
    assert!(
        report.ledger_is_fresh(&root),
        "docs/ORDERINGS.md is stale; run `cargo run -p wfe-analyze -- --write-ledger`"
    );
}
