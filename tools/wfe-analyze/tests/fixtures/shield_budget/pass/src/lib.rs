//! REQUIRED_SLOTS matches the widest operation across every counting mode:
//! direct leases, a same-file helper, and a lease-closure called twice.

pub const REQUIRED_SLOTS: usize = 3;

pub struct Map;

impl Map {
    pub fn get(&self, handle: &mut Handle) -> bool {
        let _a = handle.shield::<u64>().unwrap();
        let _b = handle.shield::<u64>().unwrap();
        helper(handle)
    }

    pub fn insert(&self, handle: &mut Handle) {
        let lease = || handle.shield::<u64>().unwrap();
        let _a = lease();
        let _b = lease();
    }
}

fn helper(handle: &mut Handle) -> bool {
    let _c = handle.shield::<u64>().unwrap();
    true
}
