//! The declared budget undercounts the widest operation.

pub const REQUIRED_SLOTS: usize = 1;

pub fn swap_pair(handle: &mut Handle) {
    let _first = handle.shield::<u64>().unwrap();
    let _second = handle.shield::<u64>().unwrap();
}
