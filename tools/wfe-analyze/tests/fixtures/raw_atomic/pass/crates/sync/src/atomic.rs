//! The interposition layer itself — the one subtree allowed raw atomics.

pub use core::sync::atomic::{AtomicUsize, Ordering};
