//! Shipped code goes through the interposition layer.

use wfe_sync::atomic::{AtomicUsize, Ordering};

pub fn bump(counter: &AtomicUsize) {
    counter.fetch_add(1, Ordering::SeqCst);
}

// wfe-analyze: allow(raw-atomic): an FFI signature must name the std type.
pub type RawCounter = std::sync::atomic::AtomicU64;
