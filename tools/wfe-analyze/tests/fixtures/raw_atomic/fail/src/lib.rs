//! Shipped code that bypasses the interposition layer.

use std::sync::atomic::AtomicUsize;

pub fn make() -> AtomicUsize {
    AtomicUsize::new(0)
}

#[cfg(test)]
mod tests {
    use core::sync::atomic::AtomicBool;

    #[test]
    fn oracle() {
        let _flag = AtomicBool::new(false);
    }
}
