//! Undocumented unsafe in every position the rule distinguishes.

pub struct Token(pub u64);

pub unsafe fn grab() -> Token {
    Token(0)
}

pub fn peek(ptr: *const u64) -> u64 {
    unsafe { *ptr }
}

unsafe impl Sync for Token {}
