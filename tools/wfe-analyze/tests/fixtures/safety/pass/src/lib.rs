//! Every unsafe site carries its obligation, one per documentation style.

pub struct Node(pub u64);

/// Reads through `ptr`.
///
/// # Safety
///
/// `ptr` must point to a live `Node`.
pub unsafe fn read(ptr: *const Node) -> u64 {
    // SAFETY: caller upholds the `# Safety` contract: `ptr` is live.
    unsafe { (*ptr).0 }
}

// SAFETY: Node is plain data; no thread affinity.
unsafe impl Send for Node {}

pub unsafe fn exempt() {} // wfe-analyze: allow(undocumented-unsafe): the marker itself is under test.
