//! One naked weak ordering and one marker-allowed shim.

use wfe_sync::atomic::{AtomicUsize, Ordering};

pub fn bump(counter: &AtomicUsize) {
    counter.fetch_add(1, Ordering::Relaxed);
}

pub fn read(counter: &AtomicUsize) -> usize {
    // wfe-analyze: allow(unjustified-ordering): migration shim; its ledger row stays unjustified.
    counter.load(Ordering::Relaxed)
}
