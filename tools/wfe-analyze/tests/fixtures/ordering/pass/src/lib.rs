//! Every weak ordering carries a justification, one per attachment style:
//! trailing comment, comment above, and walk-up within a split statement.

use wfe_sync::atomic::{AtomicUsize, Ordering};

pub fn publish(flag: &AtomicUsize) {
    flag.store(1, Ordering::Release); // ORDER: pairs with the Acquire load in `consume`.
}

pub fn consume(flag: &AtomicUsize) -> bool {
    // ORDER: pairs with the Release store in `publish`.
    flag.load(Ordering::Acquire) == 1
}

pub fn try_claim(flag: &AtomicUsize) -> bool {
    flag.compare_exchange(
        0,
        1,
        Ordering::AcqRel, // ORDER: success publishes the claim; failure observes the winner.
        Ordering::Acquire,
    )
    .is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weak_orderings_in_tests_are_not_ledger_rows() {
        let flag = AtomicUsize::new(0);
        flag.store(1, Ordering::Relaxed);
        assert_eq!(flag.load(Ordering::Relaxed), 1);
    }
}
