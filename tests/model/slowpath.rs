//! Model tests for the WFE slow path: the announce/help protocol that makes
//! `get_protected` wait-free.
//!
//! With `fast_path_attempts: 1` the *first* protect a handle issues after a
//! `clear` is deterministic: the reservation holds `ERA_INF`, the single
//! fast-path attempt can never observe a stable era, and the handle must
//! announce a slow-path request. Whether that request is then *helped* (by a
//! writer's `increment_era` scanning the state table) or self-cancelled is
//! schedule-dependent — so the slow-path entry is asserted on every
//! schedule, while helping is accumulated across the whole seeded batch.

// wfe-analyze: allow(raw-atomic): model-test oracle state — deliberately a std
// atomic so the checker never schedules an interleaving point on bookkeeping.
use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering::SeqCst};
use std::sync::Arc;

use wfe_core::Wfe;
use wfe_reclaim::{Atomic, Handle, Protected, RawHandle, Reclaimer, ReclaimerConfig};
use wfe_sync::atomic::Ordering;

use crate::SCHEDULES;

#[test]
fn slow_path_engages_deterministically_and_writers_help_pending_requests() {
    let slow_entries = Arc::new(StdAtomicU64::new(0));
    let helps = Arc::new(StdAtomicU64::new(0));
    let slow_acc = Arc::clone(&slow_entries);
    let helps_acc = Arc::clone(&helps);
    shuttle::check_random(
        move || {
            let domain = Wfe::with_config(ReclaimerConfig {
                fast_path_attempts: 1,
                era_freq: 1,
                cleanup_freq: 1,
                ..ReclaimerConfig::with_max_threads(2)
            });
            let mut writer = domain.register();
            let node = writer.alloc(5u64);
            let root = Arc::new(Atomic::new(node));

            let reader = {
                let domain = Arc::clone(&domain);
                let root = Arc::clone(&root);
                shuttle::thread::spawn(move || {
                    let mut reader = domain.register();
                    let mut shield = reader.shield::<u64>().unwrap();
                    // Two bracketed protects: each `enter`/drop pair clears
                    // the reservation back to `ERA_INF`, so *both* protects
                    // must re-enter the slow path — whatever the writer is
                    // doing to the era clock meanwhile.
                    for _ in 0..2 {
                        let guard = reader.enter();
                        let p = shield.protect(&guard, &root, None);
                        if !p.is_null() {
                            // Value integrity: a helped result must point at
                            // the same block a self-cancelled one would.
                            // SAFETY: `shield` does not re-protect while `p`
                            // is in use.
                            assert_eq!(unsafe { p.as_ref() }, Some(&5));
                        }
                    }
                })
            };

            // Era churn: with `era_freq: 1` every allocation runs
            // `increment_era`, which first sweeps the state table and helps
            // any announced request it finds in flight.
            for _ in 0..3 {
                let filler = writer.alloc(0u64);
                let guard = writer.enter();
                // SAFETY: never linked anywhere; retired exactly once.
                unsafe { Protected::from_unlinked(filler).retire_in(&guard) };
            }
            reader.join().unwrap();

            root.store(core::ptr::null_mut(), Ordering::SeqCst);
            {
                let guard = writer.enter();
                // SAFETY: just unlinked from its only root, retired once.
                unsafe { Protected::from_unlinked(node).retire_in(&guard) };
            }
            writer.force_cleanup();
            let stats = domain.stats();
            assert_eq!(stats.unreclaimed, 0);
            assert!(
                stats.slow_path >= 2,
                "fast_path_attempts=1 must funnel every post-clear protect \
                 into the slow path (saw {})",
                stats.slow_path
            );
            slow_acc.fetch_add(stats.slow_path, SeqCst);
            helps_acc.fetch_add(stats.helps, SeqCst);
        },
        SCHEDULES,
    );
    // Helping needs a writer's era bump to land inside the reader's
    // announce window — schedule-dependent, but over the whole seeded batch
    // the wait-free guarantee is vacuous if no request was ever completed by
    // a helper.
    assert!(
        helps.load(SeqCst) > 0,
        "no schedule ever helped an announced request ({} slow-path entries)",
        slow_entries.load(SeqCst)
    );
}

#[test]
fn protect_vs_era_bump_is_exhaustively_explored() {
    // Tiny core for the bounded-exhaustive strategy: one slow-path protect
    // racing one era-bumping retire, every schedule with up to two
    // preemptions. Exhaustive completion here means the announce loop's
    // self-cancel CAS and the helper's result CAS compose correctly in
    // *every* bounded interleaving, not just the sampled ones.
    let (schedules, complete) = shuttle::explore(
        || {
            let domain = Wfe::with_config(ReclaimerConfig {
                fast_path_attempts: 1,
                era_freq: 1,
                cleanup_freq: 1,
                ..ReclaimerConfig::with_max_threads(2)
            });
            let mut writer = domain.register();
            let node = writer.alloc(3u64);
            let root = Arc::new(Atomic::new(node));

            let reader = {
                let domain = Arc::clone(&domain);
                let root = Arc::clone(&root);
                shuttle::thread::spawn(move || {
                    let mut reader = domain.register();
                    let mut shield = reader.shield::<u64>().unwrap();
                    let guard = reader.enter();
                    let p = shield.protect(&guard, &root, None);
                    if !p.is_null() {
                        // SAFETY: `shield` does not re-protect while `p` is
                        // in use.
                        assert_eq!(unsafe { p.as_ref() }, Some(&3));
                    }
                })
            };

            let filler = writer.alloc(0u64);
            {
                let guard = writer.enter();
                // SAFETY: never linked anywhere; retired exactly once.
                unsafe { Protected::from_unlinked(filler).retire_in(&guard) };
            }
            reader.join().unwrap();

            root.store(core::ptr::null_mut(), Ordering::SeqCst);
            {
                let guard = writer.enter();
                // SAFETY: just unlinked from its only root, retired once.
                unsafe { Protected::from_unlinked(node).retire_in(&guard) };
            }
            writer.force_cleanup();
            let stats = domain.stats();
            assert_eq!(stats.unreclaimed, 0);
            assert!(stats.slow_path >= 1);
        },
        2,
        500_000,
    );
    assert!(
        complete,
        "exploration hit the schedule budget after {schedules} schedules"
    );
    assert!(schedules > 0);
}
