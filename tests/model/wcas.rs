//! Model tests for the double-width CAS primitive (`AtomicPair`).
//!
//! The native `cmpxchg16b` path announces its own interleaving point (the
//! inline asm bypasses the instrumented atomics), so these schedules exercise
//! the same hardware path production uses. The striped-lock fallback has its
//! own single-test process in `tests/model_fallback.rs` — mixing native and
//! lock-based operations on one pair is not linearizable, so the two paths
//! must never share a process.

use std::sync::Arc;

use wfe_atomics::AtomicPair;
use wfe_sync::atomic::Ordering;

use crate::SCHEDULES;

/// One versioned increment: bump the value word and the version word
/// together, as every WCAS user in the suite does.
fn versioned_increment(pair: &AtomicPair) {
    loop {
        let (value, version) = pair.load();
        if pair
            .compare_exchange((value, version), (value + 1, version + 1))
            .is_ok()
        {
            return;
        }
    }
}

#[test]
fn wcas_increments_are_conserved() {
    shuttle::check_random(
        || {
            let pair = Arc::new(AtomicPair::new(0, 0));
            let t = {
                let pair = Arc::clone(&pair);
                shuttle::thread::spawn(move || {
                    versioned_increment(&pair);
                    versioned_increment(&pair);
                })
            };
            versioned_increment(&pair);
            versioned_increment(&pair);
            t.join().unwrap();
            assert_eq!(pair.load(), (4, 4), "an increment was lost");
        },
        SCHEDULES,
    );
}

#[test]
fn half_store_races_wcas_without_tearing() {
    // A single-word publisher racing a full-width CAS bumper: whatever the
    // interleaving, the pair must only ever hold states that some
    // serialization of the two threads produces — the version word counts
    // exactly the successful wide CASes, and the value word is one of the
    // published values.
    shuttle::check_random(
        || {
            let pair = Arc::new(AtomicPair::new(0, 0));
            let t = {
                let pair = Arc::clone(&pair);
                shuttle::thread::spawn(move || {
                    for era in 1..=3 {
                        pair.store_first(era, Ordering::SeqCst);
                    }
                })
            };
            let mut bumps = 0u64;
            while bumps < 2 {
                let (value, version) = pair.load();
                if pair
                    .compare_exchange((value, version), (value, version + 1))
                    .is_ok()
                {
                    bumps += 1;
                }
            }
            t.join().unwrap();
            let (value, version) = pair.load();
            assert_eq!(version, 2, "exactly the successful CASes count");
            assert!(value <= 3, "value word out of the published range: {value}");
        },
        SCHEDULES,
    );
}

#[test]
fn wcas_tiny_core_is_exhaustively_explored() {
    // Two threads, one versioned increment each: small enough for the
    // bounded-exhaustive DFS strategy to enumerate *every* schedule with up
    // to two preemptions, not just sample them.
    let (schedules, complete) = shuttle::explore(
        || {
            let pair = Arc::new(AtomicPair::new(0, 0));
            let t = {
                let pair = Arc::clone(&pair);
                shuttle::thread::spawn(move || versioned_increment(&pair))
            };
            versioned_increment(&pair);
            t.join().unwrap();
            assert_eq!(pair.load(), (2, 2));
        },
        2,
        200_000,
    );
    assert!(complete, "the WCAS core must be fully explorable");
    assert!(schedules > 1, "the exploration found only one interleaving");
}
