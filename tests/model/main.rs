//! Deterministic-interleaving model tests (`--cfg wfe_model` builds only).
//!
//! Build and run with:
//!
//! ```text
//! RUSTFLAGS="--cfg wfe_model" cargo test --test model
//! ```
//!
//! Under that cfg every `wfe_sync` atomic routes through the vendored
//! `shuttle` scheduler: the tests below drive small cores — WCAS, the
//! type-stable stack, the shield lease table, Hazard Eras protect/retire —
//! through seeded, replayable schedules. A failing schedule panics with the
//! seed that reproduces it; `WFE_MODEL_SEED=<seed>` replays exactly that
//! schedule, and `WFE_MODEL_SCHEDULES=<n>` rescales every batch (e.g. for a
//! quick local run).
//!
//! In a normal build (no `wfe_model`) this whole target compiles to an empty
//! crate, so plain `cargo test` is unaffected.

#![cfg(wfe_model)]

mod aba;
mod cache;
mod era;
mod orphan;
mod resize;
mod shield;
mod slowpath;
mod task;
mod wcas;

/// Schedules per model test: the acceptance bar is that the real
/// implementations survive at least this many distinct interleavings.
/// `WFE_MODEL_SCHEDULES` overrides it at run time.
pub(crate) const SCHEDULES: usize = 10_000;
