//! Model tests for the era clock: protection vs concurrent retire/cleanup,
//! and direct injection through the `EraSource` handle the schemes expose.

// wfe-analyze: allow(raw-atomic): model-test oracle state — deliberately a std
// atomic so the checker never schedules an interleaving point on bookkeeping.
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::Arc;

use wfe_reclaim::{Atomic, Handle, He, Protected, RawHandle, Reclaimer, ReclaimerConfig};
use wfe_sync::atomic::Ordering;

use crate::SCHEDULES;

/// A payload whose drop is observable, so a schedule that frees a block
/// under a live reservation is caught in the act.
struct Canary {
    value: u64,
    freed: Arc<AtomicBool>,
}

impl Drop for Canary {
    fn drop(&mut self) {
        self.freed.store(true, SeqCst);
    }
}

#[test]
fn protection_pins_the_block_across_every_retire_cleanup_interleaving() {
    // The race from the Hazard Eras correctness argument: a reader's
    // `get_protected` (era reservation) against a writer's unlink → retire →
    // cleanup (which snapshots reservations and frees what nothing covers).
    // With `era_freq`/`cleanup_freq` of 1 every retirement bumps the era and
    // scans, so the snapshot race window is open on every schedule. If the
    // reader's protect returned the block, the block must not be freed until
    // the reader's bracket closes — on any interleaving.
    shuttle::check_random(
        || {
            let domain = He::with_config(ReclaimerConfig {
                cleanup_freq: 1,
                era_freq: 1,
                ..ReclaimerConfig::with_max_threads(2)
            });
            let freed = Arc::new(AtomicBool::new(false));
            let mut writer = domain.register();
            let node = writer.alloc(Canary {
                value: 7,
                freed: Arc::clone(&freed),
            });
            let root = Arc::new(Atomic::new(node));

            let reader = {
                let domain = Arc::clone(&domain);
                let root = Arc::clone(&root);
                let freed = Arc::clone(&freed);
                shuttle::thread::spawn(move || {
                    let mut reader = domain.register();
                    let mut shield = reader.shield::<Canary>().unwrap();
                    let guard = reader.enter();
                    let p = shield.protect(&guard, &root, None);
                    if !p.is_null() {
                        // SAFETY: `shield` does not re-protect while `p` is
                        // in use.
                        let canary = unsafe { p.as_ref() }.unwrap();
                        assert!(
                            !freed.load(SeqCst),
                            "block freed while a reservation covered it"
                        );
                        assert_eq!(canary.value, 7);
                    }
                })
            };

            root.store(core::ptr::null_mut(), Ordering::SeqCst);
            {
                let guard = writer.enter();
                // SAFETY: just unlinked from its only root, retired once.
                unsafe { Protected::from_unlinked(node).retire_in(&guard) };
            }
            writer.force_cleanup();
            reader.join().unwrap();
            // The reader's handle is gone: nothing reserves the block now.
            writer.force_cleanup();
            assert!(freed.load(SeqCst), "the block outlived every reservation");
            assert_eq!(domain.stats().unreclaimed, 0);
        },
        SCHEDULES,
    );
}

#[test]
fn protect_stabilizes_against_injected_era_bumps() {
    // `era_source()` is the injection point the sync layer exposes: bump the
    // global era from another thread while a reader runs `get_protected`.
    // The protect loop re-reads until the era it published equals the era it
    // re-observes, so a bounded burst of concurrent bumps may only delay it,
    // never make it return an unprotected pointer.
    shuttle::check_random(
        || {
            let domain = He::with_config(ReclaimerConfig::with_max_threads(2));
            let before = domain.era_source().load(Ordering::SeqCst);
            let bumper = {
                let domain = Arc::clone(&domain);
                shuttle::thread::spawn(move || {
                    for _ in 0..3 {
                        domain.era_source().advance(Ordering::AcqRel);
                    }
                })
            };

            let mut handle = domain.register();
            let node = handle.alloc(11u64);
            let root: Atomic<u64> = Atomic::new(node);
            let mut shield = handle.shield::<u64>().unwrap();
            let guard = handle.enter();
            let p = shield.protect(&guard, &root, None);
            // SAFETY: `shield` does not re-protect while `p` is in use.
            assert_eq!(unsafe { p.as_ref() }, Some(&11));
            drop(guard);

            bumper.join().unwrap();
            // `>=`: the handle's own allocations may also advance the clock.
            assert!(
                domain.era_source().load(Ordering::SeqCst) >= before + 3,
                "the injected advances must all land on the clock"
            );

            root.store(core::ptr::null_mut(), Ordering::SeqCst);
            {
                let guard = handle.enter();
                // SAFETY: just unlinked, retired once.
                unsafe { Protected::from_unlinked(node).retire_in(&guard) };
            }
            handle.force_cleanup();
            assert_eq!(domain.stats().unreclaimed, 0);
        },
        SCHEDULES,
    );
}
