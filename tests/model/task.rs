//! Model tests for the async task-handle layer: `TaskHandle` check-out /
//! park / re-poll races over the shared [`HandlePool`].
//!
//! The executor itself is *not* under test here — mini-rt parks workers on
//! std condvars, which the model build does not instrument — so these
//! schedules drive the synchronous surface (`TaskHandle::check_out`,
//! `release`, `with_guard`) from `shuttle` threads. That surface is exactly
//! what every `.await`-adjacent transition in the async layer reduces to:
//! `acquire` loops `check_out`, and dropping the handle at task end is
//! `release`.

// wfe-analyze: allow(raw-atomic): model-test oracle state — deliberately a std
// atomic so the checker never schedules an interleaving point on bookkeeping.
use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering::SeqCst};
use std::sync::Arc;

use wfe_reclaim::{Handle, HandlePool, He, Protected, RawHandle, Reclaimer, ReclaimerConfig};
use wfe_sync::atomic::Ordering;
use wfe_task::TaskHandle;

use crate::SCHEDULES;

#[test]
fn task_handles_are_exclusive_on_every_schedule() {
    // Two shuttle threads ping-pong handles through a two-slot pool. Each
    // live `TaskHandle` owns a registry slot exclusively; if any
    // check-out/park interleaving ever revived a handle twice (or handed the
    // same slot to two tasks), the per-slot occupancy flag below would
    // observe a second owner.
    shuttle::check_random(
        || {
            let domain = He::with_config(ReclaimerConfig::with_max_threads(2));
            let pool = HandlePool::new(Arc::clone(&domain));
            let in_use: Arc<Vec<StdAtomicUsize>> =
                Arc::new((0..2).map(|_| StdAtomicUsize::new(0)).collect());

            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let pool = Arc::clone(&pool);
                    let in_use = Arc::clone(&in_use);
                    shuttle::thread::spawn(move || {
                        let mut done = 0;
                        while done < 2 {
                            let Some(mut task) = TaskHandle::check_out(&pool) else {
                                // Transient exhaustion (a park in flight):
                                // retryable by contract.
                                shuttle::thread::yield_now();
                                continue;
                            };
                            let tid = task.thread_id();
                            assert_eq!(
                                in_use[tid].fetch_add(1, SeqCst),
                                0,
                                "two live task handles share registry slot {tid}"
                            );
                            let node = task.raw().alloc(7u64);
                            task.with_guard(|guard| {
                                // SAFETY: never linked anywhere; retired
                                // exactly once.
                                unsafe { Protected::from_unlinked(node).retire_in(&guard) };
                            });
                            assert_eq!(in_use[tid].fetch_sub(1, SeqCst), 1);
                            task.release();
                            done += 1;
                        }
                    })
                })
                .collect();
            for worker in workers {
                worker.join().unwrap();
            }

            // Last pool reference: parked handles drop, run their final
            // cleanup, and release their registry slots.
            drop(pool);
            let mut sweeper = domain.register();
            sweeper.force_cleanup();
            assert_eq!(
                domain.stats().unreclaimed,
                0,
                "a retired block survived every handle's teardown"
            );
        },
        SCHEDULES,
    );
}

#[test]
fn parked_task_handles_pin_nothing_under_concurrent_retire() {
    // A task protects a block through `with_guard`, then releases its handle
    // back to the pool while a writer concurrently unlinks, retires, and
    // sweeps. `release` parks through `end_op`, so on *every* interleaving
    // the parked handle must leave no reservation behind: the final cleanup
    // must always reach zero unreclaimed blocks.
    shuttle::check_random(
        || {
            let domain = He::with_config(ReclaimerConfig {
                cleanup_freq: 1,
                era_freq: 1,
                ..ReclaimerConfig::with_max_threads(2)
            });
            let pool = HandlePool::new(Arc::clone(&domain));
            let mut writer = domain.register();
            let node = writer.alloc(9u64);
            let root = Arc::new(wfe_reclaim::Atomic::new(node));

            let reader = {
                let pool = Arc::clone(&pool);
                let root = Arc::clone(&root);
                shuttle::thread::spawn(move || {
                    let mut task =
                        TaskHandle::check_out(&pool).expect("one registry slot is reserved");
                    let mut shield = task.shield::<u64>().unwrap();
                    task.with_guard(|guard| {
                        let p = shield.protect(&guard, &root, None);
                        if !p.is_null() {
                            // SAFETY: `shield` does not re-protect while `p`
                            // is in use.
                            assert_eq!(unsafe { p.as_ref() }, Some(&9));
                        }
                    });
                    task.release();
                })
            };

            root.store(core::ptr::null_mut(), Ordering::SeqCst);
            {
                let guard = writer.enter();
                // SAFETY: just unlinked from its only root, retired once.
                unsafe { Protected::from_unlinked(node).retire_in(&guard) };
            }
            reader.join().unwrap();
            writer.force_cleanup();
            assert_eq!(
                domain.stats().unreclaimed,
                0,
                "a parked task handle pinned a retired block"
            );
        },
        SCHEDULES,
    );
}

/// The racing core for the replay test below: with a single registry slot,
/// observing `parked() > 0` does not yet mean the handle is poppable — the
/// park path publishes the counter *before* pushing the handle onto the
/// freelist, so a check-out landing inside that window sees an exhausted
/// registry and an empty freelist at once.
fn transient_exhaustion_body() {
    let domain = He::with_config(ReclaimerConfig::with_max_threads(1));
    let pool = HandlePool::new(Arc::clone(&domain));
    let parker = {
        let pool = Arc::clone(&pool);
        shuttle::thread::spawn(move || {
            let task = TaskHandle::check_out(&pool).expect("the only slot is free at spawn");
            task.release();
        })
    };
    while pool.parked() == 0 {
        shuttle::thread::yield_now();
    }
    assert!(
        TaskHandle::check_out(&pool).is_some(),
        "transient exhaustion: the parked counter is ahead of the freelist"
    );
    parker.join().unwrap();
}

#[test]
fn transient_pool_exhaustion_is_findable_and_replays_byte_identically() {
    // This is the race `check_out`'s docs declare retryable. The model
    // checker must (a) find a schedule exhibiting it — proving the window is
    // real, not documentation folklore — and (b) replay the printed seed to
    // a byte-identical failure report, which is the property the async layer
    // leans on when a CI-only interleaving needs reproducing locally.
    let config = shuttle::Config {
        schedules: 4096,
        seed: 0x7A5C,
        ..shuttle::Config::default()
    };
    let (seed, report) = shuttle::search_for_failure(config.clone(), transient_exhaustion_body)
        .expect("the counter-before-push park window must be discoverable");
    assert!(
        report.contains("transient exhaustion"),
        "the search tripped a different assertion: {report}"
    );
    let replayed = shuttle::run_seed(&config, seed, transient_exhaustion_body)
        .expect("the reported seed must reproduce the failure");
    assert_eq!(replayed, report, "replay diverged from the original run");
}
