//! Model tests for the guard API's lease table and staleness detection.

use std::sync::Arc;

use wfe_reclaim::{Atomic, Handle, He, RawHandle, Reclaimer, ReclaimerConfig};

use crate::SCHEDULES;

#[test]
fn shield_lease_and_cross_thread_release_stay_exclusive() {
    // A `Shield` is an owned lease, so it can be dropped on a different
    // thread than the one that leased it. The release (a `fetch_and` on the
    // shared bitmap) races the owner thread re-leasing: no interleaving may
    // double-lease a slot (the table's debug assertion would fire) or lose
    // one (the loop below would never obtain a third shield).
    shuttle::check_random(
        || {
            let domain = He::with_config(ReclaimerConfig {
                slots_per_thread: 2,
                ..ReclaimerConfig::with_max_threads(1)
            });
            let handle = domain.register();
            let a = Handle::shield::<u64>(&handle).unwrap();
            let b = Handle::shield::<u64>(&handle).unwrap();
            assert_eq!(
                Handle::shield::<u64>(&handle).unwrap_err().slots,
                2,
                "a full table reports exhaustion instead of stomping"
            );
            let t = shuttle::thread::spawn(move || drop(a));
            let fresh = loop {
                match Handle::shield::<u64>(&handle) {
                    Ok(shield) => break shield,
                    Err(_) => shuttle::thread::yield_now(),
                }
            };
            t.join().unwrap();
            assert_eq!(fresh.slot(), 0, "the released slot is the one re-leased");
            assert_ne!(fresh.slot(), b.slot());
            assert_eq!(handle.shield_slots().leased(), 2);
        },
        SCHEDULES,
    );
}

#[test]
fn shield_lease_table_is_exhaustively_explored() {
    // Tiny core for the bounded-exhaustive strategy: one cross-thread
    // release racing one re-lease, every schedule with up to two
    // preemptions.
    let (schedules, complete) = shuttle::explore(
        || {
            let domain = He::with_config(ReclaimerConfig {
                slots_per_thread: 2,
                ..ReclaimerConfig::with_max_threads(1)
            });
            let handle = domain.register();
            let a = Handle::shield::<u64>(&handle).unwrap();
            // `b` keeps the table full, so the loop below can only succeed
            // by observing the cross-thread release of `a`'s slot.
            let b = Handle::shield::<u64>(&handle).unwrap();
            let t = shuttle::thread::spawn(move || drop(a));
            let fresh = loop {
                match Handle::shield::<u64>(&handle) {
                    Ok(shield) => break shield,
                    Err(_) => shuttle::thread::yield_now(),
                }
            };
            t.join().unwrap();
            assert_eq!(fresh.slot(), 0);
            drop(b);
        },
        2,
        500_000,
    );
    assert!(complete, "the lease-table core must be fully explorable");
    assert!(schedules > 1);
}

/// Regression for the PR 5 staleness hazard: a `Shield` re-protects while a
/// `Protected` derived from its previous reservation is still live, with a
/// concurrent writer retiring the block the stale value points at. The
/// debug-mode generation stamp must turn the later `as_ref` into a "stale
/// Protected" panic — on *every* schedule, because staleness is a
/// thread-local property the interleaving cannot mask.
#[cfg(debug_assertions)]
#[test]
fn stale_protected_panics_on_every_schedule() {
    let body = || {
        let domain = He::with_config(ReclaimerConfig {
            cleanup_freq: 1,
            era_freq: 1,
            ..ReclaimerConfig::with_max_threads(2)
        });
        let mut reader = domain.register();
        let mut writer = domain.register();
        let a = writer.alloc(1u64);
        let b = writer.alloc(2u64);
        let root_a = Arc::new(Atomic::new(a));
        let root_b: Atomic<u64> = Atomic::new(b);

        // The reader takes both protections first: `stale` is `a` under the
        // shield's first reservation, then the re-protect of `root_b` ends
        // that reservation while `stale` stays live — the PR 5 hazard.
        let mut shield = reader.shield::<u64>().unwrap();
        let guard = reader.enter();
        let stale = shield.protect(&guard, &root_a, None);
        assert!(!stale.is_null());
        let fresh = shield.protect(&guard, &root_b, None);
        // SAFETY: `fresh` is the shield's current reservation.
        assert_eq!(unsafe { fresh.as_ref() }, Some(&2));

        // The writer now unlinks, retires and (era-freq 1, cleanup-freq 1)
        // actually frees `a` at some point of the schedule — nothing
        // reserves it any more, so the stale dereference below is a real
        // use-after-free unless the generation stamp stops it.
        let t = {
            let root_a = Arc::clone(&root_a);
            // Raw pointers are not `Send`; the address is, and the block it
            // names is owned by the writer from here on.
            let a_addr = a as usize;
            shuttle::thread::spawn(move || {
                let a = a_addr as *mut wfe_reclaim::Linked<u64>;
                root_a.store(core::ptr::null_mut(), wfe_sync::atomic::Ordering::SeqCst);
                let wguard = writer.enter();
                // SAFETY: `a` was just unlinked from its only root and is
                // retired exactly once.
                unsafe { wfe_reclaim::Protected::from_unlinked(a).retire_in(&wguard) };
                drop(wguard);
                writer.force_cleanup();
            })
        };
        t.join().unwrap();
        // SAFETY: deliberately violated contract — the generation stamp must
        // turn this use-after-reprotect into a panic, never a stale read.
        let _ = unsafe { stale.as_ref() };
        unreachable!("the stale dereference returned instead of panicking");
    };

    // Deterministic across schedules: every one of these seeds must fail,
    // and each must fail with the staleness report, not an unrelated one.
    for base_seed in 0..24u64 {
        let config = shuttle::Config {
            schedules: 1,
            seed: base_seed,
            ..shuttle::Config::default()
        };
        let (seed, report) = shuttle::search_for_failure(config.clone(), body)
            .expect("the stale dereference must panic under every schedule");
        assert!(
            report.contains("stale Protected"),
            "schedule {base_seed} failed for another reason: {report}"
        );
        // And the reported seed replays to the identical report.
        let replayed = shuttle::run_seed(&config, seed, body)
            .expect("the reported seed must reproduce the panic");
        assert_eq!(replayed, report, "replay diverged from the original run");
    }
}
