//! Model tests for the split-ordered resizable hash map's growth path: a
//! directory doubling publishes a new bucket array with one CAS and retires
//! the superseded array through the reclamation scheme.
//!
//! Three properties are driven through exact interleavings:
//!
//! 1. **Key conservation** — an insert racing a migration neither loses its
//!    key nor duplicates it: after the dust settles every inserted key is
//!    removable exactly once.
//! 2. **Lookup during a split** — a reader that picked up the old bucket
//!    array keeps traversing safely while the resizer retires it, even with
//!    the most aggressive cleanup cadence (every retirement scans and frees).
//! 3. **Retired exactly once** — every superseded bucket array is reported
//!    by exactly one resize winner; concurrent resizers never retire the
//!    same array twice.
//!
//! The mutant hunt de-fences the publish step (`debug_set_racy_publish`
//! swaps the CAS for a load/check/store) and proves the checker catches the
//! resulting double-retire within the PCT budget, with byte-identical seed
//! replay.

// wfe-analyze: allow(raw-atomic): model-test oracle state — deliberately a std
// atomic so the checker never schedules an interleaving point on bookkeeping.
use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};
use std::sync::Arc;

use wfe_suite::{He, Leak, RawHandle, Reclaimer, ReclaimerConfig, ResizableHashMap};

use crate::SCHEDULES;

#[test]
fn insert_racing_a_migration_neither_loses_nor_duplicates_keys() {
    shuttle::check_random(
        || {
            let domain = He::with_config(ReclaimerConfig::with_max_threads(2));
            let map = Arc::new(ResizableHashMap::<u64, He>::with_initial_buckets(
                Arc::clone(&domain),
                2,
            ));

            let inserter = {
                let domain = Arc::clone(&domain);
                let map = Arc::clone(&map);
                shuttle::thread::spawn(move || {
                    let mut handle = domain.register();
                    for key in 0..4u64 {
                        assert!(map.insert(&mut handle, key, key * 10), "keys are fresh");
                    }
                })
            };

            // The migration: double the directory while the inserts land.
            let mut handle = domain.register();
            map.force_resize(&mut handle);
            inserter.join().unwrap();

            // Conservation: each key is present, removable exactly once, and
            // gone afterwards — a key split onto the wrong bucket chain or
            // linked twice would fail one of these.
            for key in 0..4u64 {
                assert_eq!(map.get(&mut handle, key), Some(key * 10), "key {key} lost");
                assert!(map.remove(&mut handle, key), "key {key} not removable");
                assert!(!map.remove(&mut handle, key), "key {key} linked twice");
            }
            assert_eq!(map.len(), 0);
        },
        SCHEDULES,
    );
}

#[test]
fn lookup_during_a_split_survives_the_old_array_being_retired() {
    // `era_freq`/`cleanup_freq` of 1: every retirement bumps the era and
    // scans, so a superseded bucket array is freed at the first instant no
    // reservation covers it — the reader below is all that keeps it alive.
    shuttle::check_random(
        || {
            let domain = He::with_config(ReclaimerConfig {
                cleanup_freq: 1,
                era_freq: 1,
                ..ReclaimerConfig::with_max_threads(2)
            });
            let map = Arc::new(ResizableHashMap::<u64, He>::with_initial_buckets(
                Arc::clone(&domain),
                2,
            ));
            let mut writer = domain.register();
            assert!(map.insert(&mut writer, 42, 7));

            let reader = {
                let domain = Arc::clone(&domain);
                let map = Arc::clone(&map);
                shuttle::thread::spawn(move || {
                    let mut reader = domain.register();
                    // Two lookups: schedules exist where the first runs on the
                    // old array and the second on the new one, and ones where
                    // a single lookup spans the publish.
                    assert_eq!(map.get(&mut reader, 42), Some(7));
                    assert_eq!(map.get(&mut reader, 42), Some(7));
                })
            };

            // Two doublings back to back, each retiring the array the reader
            // may be standing on.
            assert!(map.force_resize(&mut writer));
            assert!(map.force_resize(&mut writer));
            reader.join().unwrap();

            assert_eq!(map.get(&mut writer, 42), Some(7));
            drop(writer);
            let mut sweeper = domain.register();
            sweeper.force_cleanup();
            assert_eq!(
                domain.stats().unreclaimed,
                0,
                "both superseded arrays must drain once nothing reserves them"
            );
        },
        SCHEDULES,
    );
}

/// Two racing resizers against one map; each stores the address of the array
/// it retired (0 = lost the publish race) into its slot.
///
/// Under `Leak` nothing is ever freed, so a reported address can never be
/// recycled into a later array — equal addresses mean the same array really
/// was retired twice.
fn racing_resizers(racy_publish: bool) -> (usize, usize, u64) {
    let domain = Leak::with_config(ReclaimerConfig::with_max_threads(2));
    let map = Arc::new(ResizableHashMap::<u64, Leak>::with_initial_buckets(
        Arc::clone(&domain),
        2,
    ));
    map.debug_set_racy_publish(racy_publish);

    let retired = [Arc::new(AtomicUsize::new(0)), Arc::new(AtomicUsize::new(0))];
    let workers: Vec<_> = (0..2)
        .map(|worker| {
            let domain = Arc::clone(&domain);
            let map = Arc::clone(&map);
            let slot = Arc::clone(&retired[worker]);
            shuttle::thread::spawn(move || {
                let mut handle = domain.register();
                if let Some(address) = map.debug_force_resize(&mut handle) {
                    slot.store(address, SeqCst);
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().unwrap();
    }
    (
        retired[0].load(SeqCst),
        retired[1].load(SeqCst),
        map.stats().resizes,
    )
}

#[test]
fn superseded_bucket_arrays_are_retired_exactly_once() {
    shuttle::check_random(
        || {
            let (first, second, resizes) = racing_resizers(false);
            let winners = [first, second].iter().filter(|&&a| a != 0).count() as u64;
            assert!(winners >= 1, "some resizer must win the publish");
            assert_eq!(
                winners, resizes,
                "every publish winner retires one array, losers retire none"
            );
            if first != 0 && second != 0 {
                assert_ne!(first, second, "one bucket array retired twice");
            }
        },
        SCHEDULES,
    );
}

/// The mutant driver: with the publish de-fenced, both racers can observe
/// the same old array, both "win", and both report it — the double-retire
/// the CAS exists to prevent.
fn de_fenced_publish_driver() {
    let (first, second, _) = racing_resizers(true);
    // A plain panic, not `assert_ne!`: the report must not embed the raw
    // heap addresses, or byte-identical replay comparison would be defeated
    // by allocator nondeterminism between runs.
    if first != 0 && first == second {
        panic!("one bucket array retired twice");
    }
}

#[test]
fn de_fencing_the_publish_is_caught_and_the_seed_replays_identically() {
    let config = shuttle::Config {
        schedules: 10_000,
        pct_depth: Some(3),
        ..shuttle::Config::default()
    };
    let failure = shuttle::search_for_failure(config.clone(), de_fenced_publish_driver);
    let (seed, report) =
        failure.expect("some schedule must make both de-fenced publishes win on the same array");
    assert!(
        report.contains("retired twice"),
        "unexpected failure report: {report}"
    );

    // Determinism: replaying the reported per-schedule seed must reproduce
    // the identical failure, twice, byte for byte. The seed drives the
    // strategy, so replay runs under the same PCT config as the search.
    let first = shuttle::run_seed(&config, seed, de_fenced_publish_driver)
        .expect("the reported seed must reproduce the failure");
    let second = shuttle::run_seed(&config, seed, de_fenced_publish_driver)
        .expect("replaying the seed must fail again");
    assert_eq!(first, second, "replays of one seed must be byte-identical");
}
