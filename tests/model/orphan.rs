//! Model test for handle teardown: a thread dying with retired-but-unfreed
//! blocks parks them on the domain's orphan stack, and a surviving thread's
//! cleanup adopts them. The race is orphan push (in the dying handle's drop)
//! against adoption (in the survivor's scan) — no interleaving may leak a
//! block or free one twice.

// wfe-analyze: allow(raw-atomic): model-test oracle state — deliberately a std
// atomic so the checker never schedules an interleaving point on bookkeeping.
use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};
use std::sync::Arc;

use wfe_reclaim::{Handle, He, Protected, RawHandle, Reclaimer, ReclaimerConfig};

use crate::SCHEDULES;

struct DropCounter(Arc<AtomicUsize>);

impl Drop for DropCounter {
    fn drop(&mut self) {
        self.0.fetch_add(1, SeqCst);
    }
}

#[test]
fn orphaned_batches_are_adopted_exactly_once() {
    const BLOCKS: usize = 2;
    shuttle::check_random(
        || {
            let domain = He::with_config(ReclaimerConfig {
                cleanup_freq: 1,
                era_freq: 1,
                ..ReclaimerConfig::with_max_threads(2)
            });
            let drops = Arc::new(AtomicUsize::new(0));

            // The dying thread: retire BLOCKS never-published blocks, then
            // drop the handle mid-race — whatever survived its own cleanups
            // goes to the orphan stack.
            let dying = {
                let domain = Arc::clone(&domain);
                let drops = Arc::clone(&drops);
                shuttle::thread::spawn(move || {
                    let mut handle = domain.register();
                    for _ in 0..BLOCKS {
                        let node = handle.alloc(DropCounter(Arc::clone(&drops)));
                        let guard = handle.enter();
                        // SAFETY: never published anywhere, so it counts as
                        // unlinked; retired exactly once.
                        unsafe { Protected::from_unlinked(node).retire_in(&guard) };
                    }
                })
            };

            // The survivor: scan concurrently, adopting whatever orphan
            // batches are parked at that moment of the schedule.
            let mut survivor = domain.register();
            for _ in 0..3 {
                survivor.force_cleanup();
                shuttle::thread::yield_now();
            }
            dying.join().unwrap();
            survivor.force_cleanup();

            assert_eq!(
                drops.load(SeqCst),
                BLOCKS,
                "every orphaned block must be freed exactly once"
            );
            let stats = domain.stats();
            assert_eq!(stats.unreclaimed, 0, "no block may leak across teardown");
            assert_eq!(stats.freed, BLOCKS as u64);
        },
        SCHEDULES,
    );
}
