//! The block-cache experiment: concurrent push/pop churn against a
//! [`ShardCache`] under exact interleavings.
//!
//! The cache parks raw block addresses on a bounded, versioned
//! `TypeStableStack` per size class, with an optimistic length reservation
//! deciding cache-vs-overflow. The properties driven here:
//!
//! 1. **Block conservation** — across any interleaving of pushers and
//!    poppers, every block the cache accepted (`push` returned `true`) is
//!    handed out exactly once: by a racing `pop`, or by the drain at the
//!    end. A duplicated hand-out (the ABA shape, were the freelist
//!    unversioned) or a lost block breaks the count.
//! 2. **Boundedness** — once quiesced, the bytes parked never exceed
//!    `per_class_capacity × class size`, even though the length reservation
//!    transiently overshoots while pushes are in flight.
//! 3. **Replay determinism** — a deliberately racy expectation (a pop that
//!    assumes a concurrent push is already visible) fails under some
//!    schedule, and replaying the reported seed reproduces a byte-identical
//!    failure report.
//!
//! Blocks are allocated directly with the class layout (the same layout
//! `alloc_class` uses), so a block the cache drains internally is returned
//! with the layout it expects.

use std::sync::Arc;

use wfe_reclaim::{BlockCacheConfig, BlockCaches, SizeClass};
use wfe_sync::atomic::{AtomicUsize, Ordering};

use crate::SCHEDULES;

/// One-shard caches with a tiny per-class bound, so short schedules reach
/// the overflow path too.
fn small_caches(per_class_capacity: usize) -> BlockCaches {
    BlockCaches::new(
        &BlockCacheConfig {
            enabled: true,
            per_class_capacity,
        },
        1,
    )
}

/// Allocates one block of `class`'s fixed layout, as the block layer does.
fn alloc_block(class: SizeClass) -> *mut u8 {
    // SAFETY: class layouts are valid and non-zero-sized.
    let ptr = unsafe { std::alloc::alloc(class.layout()) };
    assert!(!ptr.is_null(), "allocation failed");
    ptr
}

/// Returns a block obtained from [`alloc_block`] (directly or via a pop).
///
/// # Safety
///
/// `ptr` must carry `class`'s layout and must not be freed twice.
unsafe fn free_block(class: SizeClass, ptr: *mut u8) {
    // SAFETY: forwarded contract.
    unsafe { std::alloc::dealloc(ptr, class.layout()) };
}

/// The conservation driver: two threads interleave pushes and pops over one
/// shard cache with capacity 2, then the main thread drains what is left.
fn churn_vs_drain() {
    let class = SizeClass::of(48, 8).expect("fits the smallest class");
    const CAPACITY: usize = 2;
    let caches = Arc::new(small_caches(CAPACITY));
    let cached = Arc::new(AtomicUsize::new(0));
    let handed_out = Arc::new(AtomicUsize::new(0));
    let workers: Vec<_> = (0..2)
        .map(|worker| {
            let caches = Arc::clone(&caches);
            let cached = Arc::clone(&cached);
            let handed_out = Arc::clone(&handed_out);
            shuttle::thread::spawn(move || {
                let cache = caches.shard(0).expect("cache enabled");
                for round in 0..3 {
                    // Thread 0 leads with pushes, thread 1 with pops, so the
                    // schedules cover both push-vs-push and pop-vs-drain.
                    if (round + worker) % 2 == 0 {
                        // SAFETY: freshly allocated with this class, pushed
                        // exactly once.
                        if unsafe { cache.push(class, alloc_block(class)) } {
                            cached.fetch_add(1, Ordering::SeqCst);
                        }
                    } else if let Some(block) = cache.pop(class) {
                        handed_out.fetch_add(1, Ordering::SeqCst);
                        // SAFETY: a popped block is exclusively owned and
                        // freed exactly once.
                        unsafe { free_block(class, block) };
                    }
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().unwrap();
    }

    let cache = caches.shard(0).expect("cache enabled");
    assert!(
        cache.cached_bytes() as usize <= CAPACITY * class.size(),
        "quiesced cache exceeds its byte bound"
    );
    let mut drained = 0usize;
    while let Some(block) = cache.pop(class) {
        drained += 1;
        // SAFETY: each parked block is popped (hence freed) exactly once.
        unsafe { free_block(class, block) };
    }
    assert_eq!(
        cached.load(Ordering::SeqCst),
        handed_out.load(Ordering::SeqCst) + drained,
        "block conservation violated: a cached block was lost or handed out twice"
    );
}

/// A deliberately racy driver: the main thread pops while another thread is
/// still mid-push and asserts the push must already be visible — false under
/// any schedule that runs the pop first.
fn racy_pop_expectation() {
    let class = SizeClass::of(48, 8).expect("fits the smallest class");
    let caches = Arc::new(small_caches(2));
    let pusher = {
        let caches = Arc::clone(&caches);
        shuttle::thread::spawn(move || {
            let cache = caches.shard(0).expect("cache enabled");
            // SAFETY: freshly allocated with this class, pushed exactly once.
            let pushed = unsafe { cache.push(class, alloc_block(class)) };
            assert!(pushed, "below capacity");
        })
    };
    let cache = caches.shard(0).expect("cache enabled");
    let popped = cache.pop(class);
    pusher.join().unwrap();
    if let Some(block) = popped {
        // SAFETY: popped once, freed once; the un-popped case is drained by
        // the caches' drop.
        unsafe { free_block(class, block) };
    } else {
        panic!("racy expectation: the concurrent push was not yet visible");
    }
}

#[test]
fn shard_cache_conserves_blocks_under_push_pop_drain_races() {
    shuttle::check_random(churn_vs_drain, SCHEDULES);
}

#[test]
fn racy_pop_expectation_fails_and_the_seed_replays_identically() {
    let failure = shuttle::search_for_failure(
        shuttle::Config {
            schedules: 10_000,
            ..shuttle::Config::default()
        },
        racy_pop_expectation,
    );
    let (seed, report) = failure.expect("some schedule must run the pop before the push");
    assert!(
        report.contains("racy expectation"),
        "unexpected failure report: {report}"
    );

    // Determinism: replaying the reported per-schedule seed must reproduce
    // the identical failure, twice, byte for byte.
    let config = shuttle::Config::default();
    let first = shuttle::run_seed(&config, seed, racy_pop_expectation)
        .expect("the reported seed must reproduce the failure");
    let second = shuttle::run_seed(&config, seed, racy_pop_expectation)
        .expect("replaying the seed must fail again");
    assert_eq!(first, second, "replays of one seed must be byte-identical");
}
