//! The ABA experiment: the versioned `TypeStableStack` against a
//! de-versioned mutant of itself, driven through identical schedules.
//!
//! Type-stable recycling means a popped node can re-enter the stack at the
//! same address. A plain single-word Treiber stack then suffers the classic
//! ABA failure: a CAS that compares only the head pointer succeeds against a
//! *recycled* head and splices a mid-removal node back into the list, after
//! which a node can sit on the main list and the spare freelist at once —
//! observable as a popped node with no payload, or as lost/duplicated
//! payloads. The real stack versions both list heads with a wide CAS, which
//! is exactly the countermeasure the mutant deletes.
//!
//! The shortest corrupting trace needs three virtual threads:
//!
//! 1. `t1` starts a pop of head `A`, reads `A.next == B`, and is preempted
//!    before its CAS;
//! 2. `t2` pops `A` (recycling it to the freelist), and `t3` pops `B` but is
//!    preempted after unlinking it and before parking it on the freelist —
//!    `B` is now in limbo, on neither list;
//! 3. `t2` pushes a new value, which recycles `A` as the new head;
//! 4. `t1` resumes: its pointer-only CAS sees head `== A` and succeeds,
//!    installing the in-limbo `B` as head; `t3` then parks `B` on the
//!    freelist, and the stack is corrupt.
//!
//! The mutant test asserts the scheduler *finds* that trace (and that the
//! reported seed replays it exactly); the real-stack test asserts the
//! versioned CAS survives the same driver for the full schedule budget.

use std::sync::Arc;

use wfe_reclaim::TypeStableStack;
use wfe_sync::atomic::{AtomicUsize, Ordering};

use crate::SCHEDULES;

/// The operations the shared driver needs from either stack.
trait LifoStack: Default + Send + Sync + 'static {
    fn push(&self, value: usize);
    fn pop(&self) -> Option<usize>;
}

impl LifoStack for TypeStableStack<usize> {
    fn push(&self, value: usize) {
        TypeStableStack::push(self, value);
    }
    fn pop(&self) -> Option<usize> {
        TypeStableStack::pop(self)
    }
}

/// A node of the mutant: same shape as the real stack's node.
struct MutantNode {
    payload: Option<usize>,
    next: AtomicUsize,
}

/// The de-versioned mutant: `TypeStableStack` with the version word of both
/// list heads deleted, so every CAS compares the bare pointer. Everything
/// else — type-stable nodes, the spare freelist, the recycling protocol —
/// matches the real implementation.
#[derive(Default)]
struct VersionlessStack {
    head: AtomicUsize,
    spares: AtomicUsize,
}

// SAFETY: same argument as the real stack — nodes are owned by the stack and
// payloads (plain `usize`s) move through the atomics.
unsafe impl Send for VersionlessStack {}
// SAFETY: all shared state is behind atomics.
unsafe impl Sync for VersionlessStack {}

impl VersionlessStack {
    fn pop_node(list: &AtomicUsize) -> Option<*mut MutantNode> {
        loop {
            let head = list.load(Ordering::SeqCst);
            if head == 0 {
                return None;
            }
            let node = head as *mut MutantNode;
            // SAFETY: type-stable — nodes are only freed in `drop`.
            let next = unsafe { (*node).next.load(Ordering::SeqCst) };
            // The mutation: the CAS compares only the pointer, so a recycled
            // head is indistinguishable from an unchanged one.
            if list
                .compare_exchange(head, next, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return Some(node);
            }
        }
    }

    fn push_node(list: &AtomicUsize, node: *mut MutantNode) {
        loop {
            let head = list.load(Ordering::SeqCst);
            // SAFETY: type-stable — see `pop_node`.
            unsafe { (*node).next.store(head, Ordering::SeqCst) };
            if list
                .compare_exchange(head, node as usize, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return;
            }
        }
    }
}

impl LifoStack for VersionlessStack {
    fn push(&self, value: usize) {
        let node = Self::pop_node(&self.spares).unwrap_or_else(|| {
            Box::into_raw(Box::new(MutantNode {
                payload: None,
                next: AtomicUsize::new(0),
            }))
        });
        // SAFETY: the node was popped off a list or freshly allocated, so
        // this thread owns its payload (modulo the ABA bug under test, which
        // manifests as the assertion in `pop`, not as a data race on
        // `payload` — corrupted schedules panic before a second owner
        // appears in the explored traces).
        unsafe { (*node).payload = Some(value) };
        Self::push_node(&self.head, node);
    }

    fn pop(&self) -> Option<usize> {
        let node = Self::pop_node(&self.head)?;
        // SAFETY: as in `push` — exclusive unless ABA struck.
        let payload = unsafe { (*node).payload.take() };
        Self::push_node(&self.spares, node);
        assert!(
            payload.is_some(),
            "ABA corruption: popped a node with no payload (a mid-removal \
             node was spliced back by a pointer-only CAS)"
        );
        payload
    }
}

impl Drop for VersionlessStack {
    fn drop(&mut self) {
        // A corrupted stack can hold cycles and share nodes between the two
        // lists, so collect the reachable set first and free each node once.
        let mut seen: Vec<usize> = Vec::new();
        for list in [&self.head, &self.spares] {
            let mut cursor = list.load(Ordering::SeqCst);
            while cursor != 0 && !seen.contains(&cursor) {
                seen.push(cursor);
                // SAFETY: nodes are freed only below, after the walk.
                cursor = unsafe { (*(cursor as *mut MutantNode)).next.load(Ordering::SeqCst) };
            }
        }
        for &node in &seen {
            // SAFETY: `seen` is deduplicated, so each node is freed once.
            drop(unsafe { Box::from_raw(node as *mut MutantNode) });
        }
    }
}

/// The shared driver: three poppers race a recycling push over a three-node
/// stack, then the main thread drains and checks payload conservation.
fn recycling_race<S: LifoStack>() {
    let stack = Arc::new(S::default());
    for value in [1, 2, 3] {
        stack.push(value);
    }
    let t1 = {
        let stack = Arc::clone(&stack);
        shuttle::thread::spawn(move || stack.pop())
    };
    let t2 = {
        let stack = Arc::clone(&stack);
        shuttle::thread::spawn(move || {
            let popped = stack.pop();
            stack.push(4);
            popped
        })
    };
    let t3 = {
        let stack = Arc::clone(&stack);
        shuttle::thread::spawn(move || stack.pop())
    };
    let mut got: Vec<usize> = [t1.join().unwrap(), t2.join().unwrap(), t3.join().unwrap()]
        .into_iter()
        .flatten()
        .collect();
    // Bounded drain: a corrupted stack can self-loop, and conservation is
    // checked below anyway.
    for _ in 0..8 {
        match stack.pop() {
            Some(value) => got.push(value),
            None => break,
        }
    }
    got.sort_unstable();
    assert_eq!(got, vec![1, 2, 3, 4], "payload conservation violated");
}

#[test]
fn versioned_stack_survives_the_recycling_race() {
    shuttle::check_random(recycling_race::<TypeStableStack<usize>>, SCHEDULES);
}

#[test]
fn de_versioned_mutant_fails_and_the_seed_replays() {
    // The PCT strategy is built for exactly this shape of bug: the trace
    // needs two threads preempted inside their pops while a third runs, i.e.
    // a small number of priority-change points.
    let failure = shuttle::search_for_failure(
        shuttle::Config {
            schedules: 200_000,
            pct_depth: Some(3),
            ..shuttle::Config::default()
        },
        recycling_race::<VersionlessStack>,
    );
    let (seed, report) =
        failure.expect("the scheduler must find the ABA trace against the de-versioned mutant");
    assert!(
        report.contains("ABA corruption") || report.contains("conservation"),
        "unexpected failure report: {report}"
    );

    // Determinism: replaying the reported per-schedule seed under the same
    // strategy must reproduce the identical failure, twice.
    let config = shuttle::Config {
        pct_depth: Some(3),
        ..shuttle::Config::default()
    };
    let first = shuttle::run_seed(&config, seed, recycling_race::<VersionlessStack>)
        .expect("the reported seed must reproduce the failure");
    let second = shuttle::run_seed(&config, seed, recycling_race::<VersionlessStack>)
        .expect("replaying the seed must fail again");
    assert_eq!(first, second, "replays of one seed must be identical");
}
