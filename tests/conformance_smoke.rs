//! Smoke test: every reclamation scheme in the suite (`Ebr`, `Hp`, `He`,
//! `Ibr2Ge`, `Leak`, `Wfe`) driven through the shared conformance scenarios
//! in `wfe_reclaim::conformance`, via the public `wfe-suite` facade.
//!
//! Each scheme also runs these scenarios in its own crate's unit tests; this
//! file guarantees a plain `cargo test -q` at the workspace root covers all
//! six schemes uniformly even if those per-crate tests are filtered out, and
//! pins down that the conformance suite stays usable from *outside* the
//! `wfe-reclaim` crate (it is deliberately compiled into the library).

use std::sync::Arc;

use wfe_suite::wfe_reclaim::conformance;
use wfe_suite::{CrTurnQueue, Ebr, He, Hp, Ibr2Ge, Leak, Reclaimer, ReclaimerConfig, Wfe};

/// Instantiates the conformance battery for one scheme.
///
/// `protection`, `bound` and `adoption` are opt-outs: `Leak` never reclaims,
/// so "dropping the protection allows reclamation", the unreclaimed-memory
/// bound and live orphan adoption do not apply to it (its orphans are instead
/// asserted to survive until domain drop); `Ebr`/`Ibr2Ge` get no bound either
/// (epoch advance is batched, so the single-threaded-churn bound is
/// scheme-specific).
macro_rules! conformance_smoke {
    ($module:ident, $scheme:ty, protection: $protection:expr, bound: $bound:expr,
     adoption: $adoption:expr) => {
        mod $module {
            use super::*;

            #[test]
            fn basic_lifecycle() {
                conformance::basic_lifecycle::<$scheme>();
            }

            #[test]
            fn protection_blocks_reclamation() {
                if $protection {
                    conformance::protection_blocks_reclamation::<$scheme>();
                }
            }

            #[test]
            fn all_blocks_freed_on_drop() {
                conformance::all_blocks_freed_on_drop::<$scheme>();
            }

            #[test]
            fn concurrent_stack_stress() {
                conformance::concurrent_stack_stress::<$scheme>(4, 1_000);
            }

            #[test]
            fn unreclaimed_is_bounded() {
                if let Some(bound) = $bound {
                    conformance::unreclaimed_is_bounded::<$scheme>(bound);
                }
            }

            #[test]
            fn orphan_adoption_reclaims_exited_threads_blocks() {
                conformance::orphan_adoption_reclaims_exited_threads_blocks::<$scheme>($adoption);
            }
        }
    };
}

conformance_smoke!(ebr, Ebr, protection: true, bound: None, adoption: true);
conformance_smoke!(hp, Hp, protection: true, bound: Some(2_000), adoption: true);
conformance_smoke!(he, He, protection: true, bound: Some(4_000), adoption: true);
conformance_smoke!(ibr2ge, Ibr2Ge, protection: true, bound: None, adoption: true);
conformance_smoke!(leak, Leak, protection: false, bound: None, adoption: false);
conformance_smoke!(wfe, Wfe, protection: true, bound: Some(4_000), adoption: true);

/// CRTurn-specific conformance: the queue composes with every scheme. A
/// short two-thread producer/consumer run plus a drain must conserve every
/// element under each of the six reclaimers (the figure sweep of Fig. 5c/5d
/// relies on exactly this matrix).
fn crturn_conserves_elements_under<R: Reclaimer>() {
    const PER_THREAD: u64 = 500;
    let domain = R::with_config(ReclaimerConfig {
        cleanup_freq: 8,
        era_freq: 16,
        ..ReclaimerConfig::with_max_threads(3)
    });
    let queue = CrTurnQueue::<u64, R>::new(Arc::clone(&domain));
    let consumed = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..2u64 {
            let queue = &queue;
            let domain = Arc::clone(&domain);
            let consumed = &consumed;
            scope.spawn(move || {
                let mut handle = domain.register();
                for i in 1..=PER_THREAD {
                    queue.enqueue(&mut handle, t * PER_THREAD + i);
                    if i % 2 == 0 {
                        if let Some(v) = queue.dequeue(&mut handle) {
                            consumed.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let mut handle = domain.register();
    while let Some(v) = queue.dequeue(&mut handle) {
        consumed.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
    }
    let expected: u64 = (1..=2 * PER_THREAD).sum();
    assert_eq!(
        consumed.load(std::sync::atomic::Ordering::Relaxed),
        expected
    );
}

macro_rules! crturn_smoke {
    ($($test:ident: $scheme:ty;)*) => {
        mod crturn {
            use super::*;
            $(
                #[test]
                fn $test() {
                    crturn_conserves_elements_under::<$scheme>();
                }
            )*
        }
    };
}

crturn_smoke! {
    under_ebr: Ebr;
    under_hp: Hp;
    under_he: He;
    under_ibr2ge: Ibr2Ge;
    under_leak: Leak;
    under_wfe: Wfe;
}
