//! Smoke test: every reclamation scheme in the suite (`Ebr`, `Hp`, `He`,
//! `Ibr2Ge`, `Leak`, `Wfe`) driven through the shared conformance scenarios
//! in `wfe_reclaim::conformance`, via the public `wfe-suite` facade.
//!
//! Each scheme also runs these scenarios in its own crate's unit tests; this
//! file guarantees a plain `cargo test -q` at the workspace root covers all
//! six schemes uniformly even if those per-crate tests are filtered out, and
//! pins down that the conformance suite stays usable from *outside* the
//! `wfe-reclaim` crate (it is deliberately compiled into the library).

use wfe_suite::wfe_reclaim::conformance;
use wfe_suite::{Ebr, He, Hp, Ibr2Ge, Leak, Wfe};

/// Instantiates the conformance battery for one scheme.
///
/// `protection` and `bound` are opt-outs: `Leak` never reclaims, so "dropping
/// the protection allows reclamation" and the unreclaimed-memory bound do not
/// apply to it; `Ebr`/`Ibr2Ge` get no bound either (epoch advance is
/// batched, so the single-threaded-churn bound is scheme-specific).
macro_rules! conformance_smoke {
    ($module:ident, $scheme:ty, protection: $protection:expr, bound: $bound:expr) => {
        mod $module {
            use super::*;

            #[test]
            fn basic_lifecycle() {
                conformance::basic_lifecycle::<$scheme>();
            }

            #[test]
            fn protection_blocks_reclamation() {
                if $protection {
                    conformance::protection_blocks_reclamation::<$scheme>();
                }
            }

            #[test]
            fn all_blocks_freed_on_drop() {
                conformance::all_blocks_freed_on_drop::<$scheme>();
            }

            #[test]
            fn concurrent_stack_stress() {
                conformance::concurrent_stack_stress::<$scheme>(4, 1_000);
            }

            #[test]
            fn unreclaimed_is_bounded() {
                if let Some(bound) = $bound {
                    conformance::unreclaimed_is_bounded::<$scheme>(bound);
                }
            }
        }
    };
}

conformance_smoke!(ebr, Ebr, protection: true, bound: None);
conformance_smoke!(hp, Hp, protection: true, bound: Some(2_000));
conformance_smoke!(he, He, protection: true, bound: Some(4_000));
conformance_smoke!(ibr2ge, Ibr2Ge, protection: true, bound: None);
conformance_smoke!(leak, Leak, protection: false, bound: None);
conformance_smoke!(wfe, Wfe, protection: true, bound: Some(4_000));
