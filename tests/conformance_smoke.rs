//! Smoke test: every reclamation scheme in the suite (`Ebr`, `Hp`, `He`,
//! `Ibr2Ge`, `Leak`, `Wfe`) driven through the shared conformance scenarios
//! in `wfe_reclaim::conformance`, via the public `wfe-suite` facade.
//!
//! Each scheme also runs these scenarios in its own crate's unit tests; this
//! file guarantees a plain `cargo test -q` at the workspace root covers all
//! six schemes uniformly even if those per-crate tests are filtered out, and
//! pins down that the conformance suite stays usable from *outside* the
//! `wfe-reclaim` crate (it is deliberately compiled into the library).

use std::sync::Arc;

use wfe_suite::wfe_reclaim::conformance;
use wfe_suite::{
    Atomic, CrTurnQueue, Ebr, Handle, He, Hp, Ibr2Ge, Leak, RawHandle, Reclaimer, ReclaimerConfig,
    ResizableHashMap, Wfe,
};

/// Instantiates the conformance battery for one scheme.
///
/// `protection`, `bound` and `adoption` are opt-outs: `Leak` never reclaims,
/// so "dropping the protection allows reclamation", the unreclaimed-memory
/// bound and live orphan adoption do not apply to it (its orphans are instead
/// asserted to survive until domain drop); `Ebr`/`Ibr2Ge` get no bound either
/// (epoch advance is batched, so the single-threaded-churn bound is
/// scheme-specific).
macro_rules! conformance_smoke {
    ($module:ident, $scheme:ty, protection: $protection:expr, bound: $bound:expr,
     adoption: $adoption:expr) => {
        mod $module {
            use super::*;

            #[test]
            fn basic_lifecycle() {
                conformance::basic_lifecycle::<$scheme>();
            }

            #[test]
            fn protection_blocks_reclamation() {
                if $protection {
                    conformance::protection_blocks_reclamation::<$scheme>();
                }
            }

            #[test]
            fn all_blocks_freed_on_drop() {
                conformance::all_blocks_freed_on_drop::<$scheme>();
            }

            #[test]
            fn concurrent_stack_stress() {
                conformance::concurrent_stack_stress::<$scheme>(4, 1_000);
            }

            #[test]
            fn unreclaimed_is_bounded() {
                if let Some(bound) = $bound {
                    conformance::unreclaimed_is_bounded::<$scheme>(bound);
                }
            }

            #[test]
            fn orphan_adoption_reclaims_exited_threads_blocks() {
                conformance::orphan_adoption_reclaims_exited_threads_blocks::<$scheme>($adoption);
            }
        }
    };
}

conformance_smoke!(ebr, Ebr, protection: true, bound: None, adoption: true);
conformance_smoke!(hp, Hp, protection: true, bound: Some(2_000), adoption: true);
conformance_smoke!(he, He, protection: true, bound: Some(4_000), adoption: true);
conformance_smoke!(ibr2ge, Ibr2Ge, protection: true, bound: None, adoption: true);
conformance_smoke!(leak, Leak, protection: false, bound: None, adoption: false);
conformance_smoke!(wfe, Wfe, protection: true, bound: Some(4_000), adoption: true);

/// CRTurn-specific conformance: the queue composes with every scheme. A
/// short two-thread producer/consumer run plus a drain must conserve every
/// element under each of the six reclaimers (the figure sweep of Fig. 5c/5d
/// relies on exactly this matrix).
fn crturn_conserves_elements_under<R: Reclaimer>() {
    const PER_THREAD: u64 = 500;
    let domain = R::with_config(ReclaimerConfig {
        cleanup_freq: 8,
        era_freq: 16,
        ..ReclaimerConfig::with_max_threads(3)
    });
    let queue = CrTurnQueue::<u64, R>::new(Arc::clone(&domain));
    let consumed = wfe_sync::atomic::AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..2u64 {
            let queue = &queue;
            let domain = Arc::clone(&domain);
            let consumed = &consumed;
            scope.spawn(move || {
                let mut handle = domain.register();
                for i in 1..=PER_THREAD {
                    queue.enqueue(&mut handle, t * PER_THREAD + i);
                    if i % 2 == 0 {
                        if let Some(v) = queue.dequeue(&mut handle) {
                            consumed.fetch_add(v, wfe_sync::atomic::Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let mut handle = domain.register();
    while let Some(v) = queue.dequeue(&mut handle) {
        consumed.fetch_add(v, wfe_sync::atomic::Ordering::Relaxed);
    }
    let expected: u64 = (1..=2 * PER_THREAD).sum();
    assert_eq!(consumed.load(wfe_sync::atomic::Ordering::Relaxed), expected);
}

macro_rules! crturn_smoke {
    ($($test:ident: $scheme:ty;)*) => {
        mod crturn {
            use super::*;
            $(
                #[test]
                fn $test() {
                    crturn_conserves_elements_under::<$scheme>();
                }
            )*
        }
    };
}

crturn_smoke! {
    under_ebr: Ebr;
    under_hp: Hp;
    under_he: He;
    under_ibr2ge: Ibr2Ge;
    under_leak: Leak;
    under_wfe: Wfe;
}

/// Resizable-map conformance: the split-ordered map's growth path composes
/// with every scheme. Two writer threads insert disjoint key ranges while a
/// third keeps forcing directory doublings; every key must survive every
/// migration under each of the six reclaimers.
fn resizable_map_conserves_elements_under<R: Reclaimer>() {
    const PER_THREAD: u64 = 400;
    let domain = R::with_config(ReclaimerConfig {
        cleanup_freq: 8,
        era_freq: 16,
        ..ReclaimerConfig::with_max_threads(4)
    });
    let map = ResizableHashMap::<u64, R>::with_initial_buckets(Arc::clone(&domain), 2);
    std::thread::scope(|scope| {
        for t in 0..2u64 {
            let map = &map;
            let domain = Arc::clone(&domain);
            scope.spawn(move || {
                let mut handle = domain.register();
                for i in 0..PER_THREAD {
                    let key = t * PER_THREAD + i;
                    assert!(map.insert(&mut handle, key, key * 3), "key {key} is fresh");
                }
            });
        }
        let map = &map;
        let domain = Arc::clone(&domain);
        scope.spawn(move || {
            let mut handle = domain.register();
            for _ in 0..6 {
                map.force_resize(&mut handle);
                std::thread::yield_now();
            }
        });
    });
    let mut handle = domain.register();
    for key in 0..2 * PER_THREAD {
        assert_eq!(
            map.get(&mut handle, key),
            Some(key * 3),
            "key {key} lost across migrations"
        );
    }
    assert_eq!(map.len(), 2 * PER_THREAD as usize);
    assert!(
        map.stats().resizes >= 6,
        "the resizer thread's doublings landed"
    );
}

/// The mid-resize handle-drop case: a thread grows the map (the superseded
/// bucket arrays land in *its* retired batches) and exits while another
/// thread's reservation still covers its batch — so the exiting thread's
/// final scan cannot drain it and the arrays are parked on the orphan stack.
/// A later thread's cleanup must adopt and free them (`reclaims: true`);
/// under `Leak` the orphans instead survive until domain drop.
///
/// The reservation is a raw-SPI protect on a sentinel block retired by the
/// doomed handle into the same batches as the arrays (hazard-pointer schemes
/// pin only what is explicitly protected, so the sentinel is what guarantees
/// a non-empty orphan batch under every scheme; era schemes additionally pin
/// the arrays themselves through the open operation's span).
fn resizable_map_orphaned_arrays_adopted_under<R: Reclaimer>(reclaims: bool) {
    let domain = R::with_config(ReclaimerConfig {
        // No organic scans: whatever the doomed handle retires stays in its
        // batches until its drop-time final scan.
        cleanup_freq: usize::MAX,
        era_freq: 1,
        ..ReclaimerConfig::with_max_threads(3)
    });
    let map = ResizableHashMap::<u64, R>::with_initial_buckets(Arc::clone(&domain), 2);
    let mut adopter = domain.register();
    let mut reader = domain.register();
    {
        let mut doomed = domain.register();
        let sentinel = doomed.alloc(0u64);
        let root: Atomic<u64> = Atomic::new(sentinel);
        reader.begin_op();
        let protected = reader.protect(&root, 0, std::ptr::null_mut());
        assert!(!protected.is_null());

        for key in 0..64 {
            assert!(map.insert(&mut doomed, key, key));
        }
        for _ in 0..4 {
            assert!(map.force_resize(&mut doomed));
        }
        // The sentinel is unreachable (its root is this local) but pinned by
        // the reader; it rides the same batches as the superseded arrays.
        // SAFETY: allocated above on this domain, never retired elsewhere.
        unsafe { doomed.retire(sentinel) };
        // `doomed` drops here, mid-growth from the map's point of view: the
        // reader's reservation blocks its final scan from draining the
        // batch, which is pushed onto the orphan stack instead.
    }
    assert!(
        domain.stats().unreclaimed > 0,
        "the reader's reservation must orphan the exiting thread's batch"
    );

    reader.clear();
    reader.end_op();
    adopter.force_cleanup();
    adopter.force_cleanup();

    let stats = domain.stats();
    if reclaims {
        assert_eq!(
            stats.unreclaimed, 0,
            "adoption must free the exited thread's retired bucket arrays"
        );
        assert!(
            stats.adopted_batches > 0,
            "the batch must arrive via the orphan path, not a live scan"
        );
    } else {
        assert!(
            stats.unreclaimed > 0,
            "Leak parks orphans until domain drop"
        );
    }
    // The map itself is untouched by the orphan dance.
    for key in 0..64 {
        assert_eq!(map.get(&mut adopter, key), Some(key));
    }
}

macro_rules! resizable_smoke {
    ($($module:ident: $scheme:ty, adoption: $adoption:expr;)*) => {
        mod resizable {
            use super::*;
            $(
                mod $module {
                    use super::*;

                    #[test]
                    fn conserves_elements_across_resizes() {
                        resizable_map_conserves_elements_under::<$scheme>();
                    }

                    #[test]
                    fn orphaned_bucket_arrays_are_adopted() {
                        resizable_map_orphaned_arrays_adopted_under::<$scheme>($adoption);
                    }
                }
            )*
        }
    };
}

resizable_smoke! {
    under_ebr: Ebr, adoption: true;
    under_hp: Hp, adoption: true;
    under_he: He, adoption: true;
    under_ibr2ge: Ibr2Ge, adoption: true;
    under_leak: Leak, adoption: false;
    under_wfe: Wfe, adoption: true;
}
