//! Resize-storm stress: writer threads hammer the split-ordered resizable
//! map while a dedicated thread forces directory doubling after doubling —
//! every superseded bucket array retired mid-traffic. Run in release mode by
//! the CI `resize-stress` leg.
//!
//! The workloads are randomized but replayable: a failure prints the run
//! seed, and `WFE_STRESS_SEED=<seed>` pins the identical workload streams.

use std::collections::BTreeMap;
use std::sync::Arc;

use wfe_suite::{He, RawHandle, Reclaimer, ReclaimerConfig, ResizableHashMap, Wfe};

/// The per-run seed feeding every randomized workload below:
/// `WFE_STRESS_SEED` pins it, otherwise it derives from the clock so
/// successive runs explore different workloads.
fn run_seed() -> u64 {
    use std::sync::OnceLock;
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        std::env::var("WFE_STRESS_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_nanos() as u64)
                    .unwrap_or(0)
                    | 1
            })
    })
}

/// Holds the run seed for one test body and, if that body panics, prints the
/// seed on the way out — so a flaky stress failure is replayable with
/// `WFE_STRESS_SEED=<seed>` instead of lost to the next scheduler roll.
struct ReplayableSeed(u64);

impl ReplayableSeed {
    fn for_this_test() -> Self {
        Self(run_seed())
    }

    /// The seed for `thread`'s workload stream (odd, so xorshift never
    /// degenerates to zero).
    fn stream(&self, thread: u64) -> u64 {
        ((thread + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ self.0) | 1
    }
}

impl Drop for ReplayableSeed {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "randomized workload failed; replay it with WFE_STRESS_SEED={}",
                self.0
            );
        }
    }
}

/// The storm: writers own disjoint key namespaces (thread id in the high
/// bits) and check every return value against a thread-local model — exact
/// even under concurrency, because nobody else touches their keys — while a
/// resizer thread forces doublings and readers sample *other* threads'
/// namespaces, checking the value stamp of whatever they find. Afterwards
/// the surviving contents are audited sequentially and the domain must
/// drain to zero once the map and all handles are gone.
fn resize_storm_under<R: Reclaimer>() {
    const THREADS: u64 = 4;
    const STORMS: usize = 24;
    let ops: u64 = if cfg!(debug_assertions) {
        20_000
    } else {
        80_000
    };

    let seed = ReplayableSeed::for_this_test();
    let domain = R::with_config(ReclaimerConfig {
        cleanup_freq: 16,
        era_freq: 32,
        ..ReclaimerConfig::with_max_threads(THREADS as usize + 1)
    });
    // Two buckets: the storm and the organic load-factor trigger both start
    // from the smallest possible directory.
    let map = ResizableHashMap::<u64, R>::with_initial_buckets(Arc::clone(&domain), 2);

    let (storm_wins, models): (u64, Vec<BTreeMap<u64, u64>>) = std::thread::scope(|scope| {
        let writers: Vec<_> = (0..THREADS)
            .map(|t| {
                let map = &map;
                let domain = Arc::clone(&domain);
                let mut x = seed.stream(t);
                scope.spawn(move || {
                    let mut handle = domain.register();
                    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
                    let own_base = t << 48;
                    for _ in 0..ops {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let key = own_base | (x % 512);
                        match (x >> 60) % 8 {
                            // Mostly writes: churn keeps nodes flowing through
                            // retirement while the arrays do the same.
                            0..=2 => {
                                let expected = !model.contains_key(&key);
                                assert_eq!(
                                    map.insert(&mut handle, key, key * 3),
                                    expected,
                                    "insert of {key} disagreed with the model"
                                );
                                model.entry(key).or_insert(key * 3);
                            }
                            3..=5 => {
                                assert_eq!(
                                    map.remove(&mut handle, key),
                                    model.remove(&key).is_some(),
                                    "remove of {key} disagreed with the model"
                                );
                            }
                            6 => {
                                assert_eq!(
                                    map.get(&mut handle, key),
                                    model.get(&key).copied(),
                                    "get of {key} disagreed with the model"
                                );
                            }
                            // Cross-namespace read: the value may come and go
                            // under our feet, but a present value must carry
                            // its owner's stamp.
                            _ => {
                                let foreign = ((t + 1) % THREADS) << 48 | (x % 512);
                                if let Some(value) = map.get(&mut handle, foreign) {
                                    assert_eq!(value, foreign * 3, "torn value at {foreign}");
                                }
                            }
                        }
                    }
                    model
                })
            })
            .collect();

        let storm = {
            let map = &map;
            let domain = Arc::clone(&domain);
            scope.spawn(move || {
                let mut handle = domain.register();
                // A forced doubling can lose the publish race to an organic
                // (load-factor-triggered) one, or bounce off `MAX_BUCKETS`
                // once the directory is saturated; count what actually won.
                let mut wins = 0u64;
                for _ in 0..STORMS {
                    if map.force_resize(&mut handle) {
                        wins += 1;
                    }
                    std::thread::yield_now();
                }
                wins
            })
        };
        let storm_wins = storm.join().unwrap();
        let models = writers.into_iter().map(|w| w.join().unwrap()).collect();
        (storm_wins, models)
    });

    // Sequential audit: the union of the per-thread models is exactly the
    // map's surviving content.
    let mut handle = domain.register();
    let mut live = 0usize;
    for model in &models {
        live += model.len();
        for (&key, &value) in model {
            assert_eq!(map.get(&mut handle, key), Some(value), "key {key} lost");
        }
    }
    assert_eq!(map.len(), live, "the map holds exactly the surviving keys");
    let service = map.stats();
    assert!(
        service.resizes >= storm_wins.max(1),
        "every winning forced doubling is counted (storm won {storm_wins}, map counted {})",
        service.resizes
    );
    assert!(service.migrated_buckets > 0);
    assert!(map.buckets() > 2, "the storm grew the directory");

    // Teardown: with map and every handle gone, one cleanup pass must drain
    // all retired nodes *and* all superseded bucket arrays.
    drop(map);
    handle.force_cleanup();
    drop(handle);
    let mut sweeper = domain.register();
    sweeper.force_cleanup();
    assert_eq!(
        domain.stats().unreclaimed,
        0,
        "the storm's retired arrays and nodes must all drain"
    );
}

#[test]
fn resize_storm_wfe() {
    resize_storm_under::<Wfe>();
}

#[test]
fn resize_storm_he() {
    resize_storm_under::<He>();
}
