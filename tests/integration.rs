//! Cross-crate integration tests: every data structure under every
//! reclamation scheme, exercised through the public `wfe-suite` API.

use std::sync::Arc;
use wfe_sync::atomic::{AtomicU64, Ordering};

use wfe_suite::{
    Atomic, ConcurrentMap, ConcurrentQueue, CrTurnQueue, DomainConfig, Ebr, Handle, HandlePool, He,
    Hp, Ibr2Ge, KoganPetrankQueue, Leak, MichaelHashMap, MichaelList, MichaelScottQueue,
    NatarajanBst, Progress, RawHandle, Reclaimer, ReclaimerConfig, TreiberStack, Wfe,
};

/// The per-run seed feeding every randomized workload below:
/// `WFE_STRESS_SEED` pins it, otherwise it derives from the clock so
/// successive runs explore different workloads.
fn run_seed() -> u64 {
    use std::sync::OnceLock;
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        std::env::var("WFE_STRESS_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_nanos() as u64)
                    .unwrap_or(0)
                    | 1
            })
    })
}

/// Holds the run seed for one test body and, if that body panics, prints the
/// seed on the way out — so a flaky stress failure is replayable with
/// `WFE_STRESS_SEED=<seed>` instead of lost to the next scheduler roll.
struct ReplayableSeed(u64);

impl ReplayableSeed {
    fn for_this_test() -> Self {
        Self(run_seed())
    }

    /// The seed for `thread`'s workload stream (odd, so xorshift never
    /// degenerates to zero).
    fn stream(&self, thread: u64) -> u64 {
        ((thread + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ self.0) | 1
    }
}

impl Drop for ReplayableSeed {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "randomized workload failed; replay it with WFE_STRESS_SEED={}",
                self.0
            );
        }
    }
}

/// Exercises one map type under one scheme with a small concurrent workload
/// and then checks the final contents sequentially.
fn exercise_map<R: Reclaimer, M: ConcurrentMap<R>>() {
    const THREADS: usize = 4;
    const OPS: u64 = 3_000;
    const KEY_RANGE: u64 = 64;

    let seed = ReplayableSeed::for_this_test();
    let domain = R::with_config(ReclaimerConfig {
        cleanup_freq: 8,
        era_freq: 16,
        ..ReclaimerConfig::with_max_threads(THREADS)
    });
    let map = M::with_domain(Arc::clone(&domain));
    std::thread::scope(|scope| {
        for t in 0..THREADS as u64 {
            let map = &map;
            let domain = Arc::clone(&domain);
            let mut x = seed.stream(t);
            scope.spawn(move || {
                let mut handle = domain.register();
                for _ in 0..OPS {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let key = x % KEY_RANGE;
                    match x % 3 {
                        0 => {
                            map.insert(&mut handle, key, key + 1);
                        }
                        1 => {
                            map.remove(&mut handle, key);
                        }
                        _ => {
                            if let Some(v) = map.get(&mut handle, key) {
                                assert_eq!(v, key + 1, "value integrity");
                            }
                        }
                    }
                }
            });
        }
    });

    // Sequential sanity sweep: whatever survived behaves like a set.
    let mut handle = domain.register();
    for key in 0..KEY_RANGE {
        let present = map.get(&mut handle, key).is_some();
        assert_eq!(map.remove(&mut handle, key), present);
        assert_eq!(map.get(&mut handle, key), None);
        assert!(map.insert(&mut handle, key, key + 1));
        assert_eq!(map.get(&mut handle, key), Some(key + 1));
    }
    let stats = domain.stats();
    assert!(stats.freed <= stats.retired);
}

/// Exercises one queue type under one scheme and checks element conservation.
fn exercise_queue<R: Reclaimer, Q: ConcurrentQueue<R>>() {
    const THREADS: usize = 4;
    const PER_THREAD: u64 = 2_000;

    let domain = R::with_config(ReclaimerConfig {
        cleanup_freq: 8,
        era_freq: 16,
        ..ReclaimerConfig::with_max_threads(THREADS + 1)
    });
    let queue = Q::with_domain(Arc::clone(&domain));
    let consumed_sum = AtomicU64::new(0);
    let consumed_count = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..THREADS as u64 {
            let queue = &queue;
            let domain = Arc::clone(&domain);
            let consumed_sum = &consumed_sum;
            let consumed_count = &consumed_count;
            scope.spawn(move || {
                let mut handle = domain.register();
                for i in 1..=PER_THREAD {
                    queue.enqueue(&mut handle, t * PER_THREAD + i);
                    if i % 2 == 0 {
                        if let Some(v) = queue.dequeue(&mut handle) {
                            consumed_sum.fetch_add(v, Ordering::Relaxed);
                            consumed_count.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let mut handle = domain.register();
    while let Some(v) = queue.dequeue(&mut handle) {
        consumed_sum.fetch_add(v, Ordering::Relaxed);
        consumed_count.fetch_add(1, Ordering::Relaxed);
    }
    let expected: u64 = (0..THREADS as u64)
        .flat_map(|t| (1..=PER_THREAD).map(move |i| t * PER_THREAD + i))
        .sum();
    assert_eq!(
        consumed_count.load(Ordering::Relaxed),
        THREADS as u64 * PER_THREAD
    );
    assert_eq!(consumed_sum.load(Ordering::Relaxed), expected);
}

macro_rules! map_matrix {
    ($($test:ident: $scheme:ty, $map:ident;)*) => {
        $(
            #[test]
            fn $test() {
                exercise_map::<$scheme, $map<u64, $scheme>>();
            }
        )*
    };
}

map_matrix! {
    list_under_wfe: Wfe, MichaelList;
    list_under_he: He, MichaelList;
    list_under_hp: Hp, MichaelList;
    list_under_ebr: Ebr, MichaelList;
    list_under_ibr: Ibr2Ge, MichaelList;
    list_under_leak: Leak, MichaelList;
    hashmap_under_wfe: Wfe, MichaelHashMap;
    hashmap_under_he: He, MichaelHashMap;
    hashmap_under_hp: Hp, MichaelHashMap;
    hashmap_under_ebr: Ebr, MichaelHashMap;
    hashmap_under_ibr: Ibr2Ge, MichaelHashMap;
    hashmap_under_leak: Leak, MichaelHashMap;
    bst_under_wfe: Wfe, NatarajanBst;
    bst_under_he: He, NatarajanBst;
    bst_under_hp: Hp, NatarajanBst;
    bst_under_ebr: Ebr, NatarajanBst;
    bst_under_ibr: Ibr2Ge, NatarajanBst;
    bst_under_leak: Leak, NatarajanBst;
}

macro_rules! queue_matrix {
    ($($test:ident: $scheme:ty, $queue:ident;)*) => {
        $(
            #[test]
            fn $test() {
                exercise_queue::<$scheme, $queue<u64, $scheme>>();
            }
        )*
    };
}

queue_matrix! {
    kp_queue_under_wfe: Wfe, KoganPetrankQueue;
    kp_queue_under_he: He, KoganPetrankQueue;
    kp_queue_under_hp: Hp, KoganPetrankQueue;
    kp_queue_under_ebr: Ebr, KoganPetrankQueue;
    kp_queue_under_ibr: Ibr2Ge, KoganPetrankQueue;
    crturn_queue_under_wfe: Wfe, CrTurnQueue;
    crturn_queue_under_he: He, CrTurnQueue;
    crturn_queue_under_hp: Hp, CrTurnQueue;
    crturn_queue_under_ebr: Ebr, CrTurnQueue;
    crturn_queue_under_ibr: Ibr2Ge, CrTurnQueue;
    crturn_queue_under_leak: Leak, CrTurnQueue;
    ms_queue_under_wfe: Wfe, MichaelScottQueue;
    ms_queue_under_he: He, MichaelScottQueue;
    ms_queue_under_hp: Hp, MichaelScottQueue;
    ms_queue_under_ebr: Ebr, MichaelScottQueue;
    ms_queue_under_ibr: Ibr2Ge, MichaelScottQueue;
}

#[test]
fn crturn_helping_completes_operations_of_a_stalled_thread() {
    // The observable wait-free property: one thread stalls mid-operation
    // (after publishing its request, before doing any helping) and the other
    // threads still complete a fixed number of enqueues and dequeues — their
    // progress cannot depend on the stalled thread resuming. The stalled
    // requests themselves are finished *by the helpers*.
    const WORKERS: usize = 3;
    const PER_WORKER: u64 = 2_000;
    const STALLED_VALUE: u64 = u64::MAX;

    let domain = Wfe::with_config(ReclaimerConfig {
        cleanup_freq: 8,
        era_freq: 16,
        ..ReclaimerConfig::with_max_threads(WORKERS + 1)
    });
    let queue = CrTurnQueue::<u64, Wfe>::new(Arc::clone(&domain));
    let mut stalled = domain.register();

    // The stalled thread opens an enqueue request and never helps anyone.
    queue.stall_enqueue_publish(&mut stalled, STALLED_VALUE);

    let consumed_count = AtomicU64::new(0);
    let stalled_value_seen = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..WORKERS as u64 {
            let queue = &queue;
            let domain = Arc::clone(&domain);
            let consumed_count = &consumed_count;
            let stalled_value_seen = &stalled_value_seen;
            scope.spawn(move || {
                let mut handle = domain.register();
                for i in 1..=PER_WORKER {
                    // Every worker operation completes in bounded steps even
                    // though one registered thread never moves again.
                    queue.enqueue(&mut handle, t * PER_WORKER + i);
                    if let Some(v) = queue.dequeue(&mut handle) {
                        consumed_count.fetch_add(1, Ordering::Relaxed);
                        if v == STALLED_VALUE {
                            stalled_value_seen.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    // Drain: everything the workers enqueued plus the stalled thread's
    // element (appended by helpers) must come out exactly once.
    let mut handle = domain.register();
    let mut drained = 0u64;
    while let Some(v) = queue.dequeue(&mut handle) {
        drained += 1;
        if v == STALLED_VALUE {
            stalled_value_seen.fetch_add(1, Ordering::Relaxed);
        }
    }
    assert_eq!(
        consumed_count.load(Ordering::Relaxed) + drained,
        WORKERS as u64 * PER_WORKER + 1,
        "all worker elements plus the stalled element were consumed"
    );
    assert_eq!(
        stalled_value_seen.load(Ordering::Relaxed),
        1,
        "helpers appended the stalled thread's element exactly once"
    );
}

#[test]
fn crturn_helping_grants_a_stalled_dequeue_under_contention() {
    // Same property on the dequeue side: a thread opens a dequeue request
    // and stalls; concurrent dequeuers grant it a node in turn order while
    // completing their own operations.
    const WORKERS: usize = 2;
    const PER_WORKER: u64 = 1_000;

    let domain = Wfe::with_config(ReclaimerConfig::with_max_threads(WORKERS + 1));
    let queue = CrTurnQueue::<u64, Wfe>::new(Arc::clone(&domain));
    let mut stalled = domain.register();
    let mut total = 0u64;
    {
        let mut handle = domain.register();
        for i in 1..=(WORKERS as u64 * PER_WORKER + 1) {
            queue.enqueue(&mut handle, i);
            total += i;
        }
    }

    let ticket = queue.stall_dequeue_publish(&mut stalled);
    let consumed_sum = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..WORKERS {
            let queue = &queue;
            let domain = Arc::clone(&domain);
            let consumed_sum = &consumed_sum;
            scope.spawn(move || {
                let mut handle = domain.register();
                for _ in 0..PER_WORKER {
                    let v = queue
                        .dequeue(&mut handle)
                        .expect("enough elements were prefilled");
                    consumed_sum.fetch_add(v, Ordering::Relaxed);
                }
            });
        }
    });

    // The workers' dequeues served the stalled request's turn long ago; the
    // resumed operation just picks up the granted node.
    let granted = queue
        .resume_dequeue(&mut stalled, ticket)
        .expect("helpers granted the stalled request");
    assert_eq!(consumed_sum.load(Ordering::Relaxed) + granted, total);
    assert_eq!(queue.dequeue(&mut stalled), None, "queue fully drained");
}

/// Structures assert at construction (in debug builds) that the domain has
/// at least `required_slots()` reservation slots per thread — catching the
/// misconfiguration at the constructor instead of as a reservation-index
/// panic (or worse, a silent protection failure) deep inside an operation.
#[test]
#[cfg(debug_assertions)]
#[should_panic(expected = "reservation slots per thread")]
fn underprovisioned_domain_is_rejected_at_construction() {
    let domain = Wfe::with_config(ReclaimerConfig {
        slots_per_thread: 2,
        ..ReclaimerConfig::with_max_threads(2)
    });
    // The BST needs 5 slots; a 2-slot domain must be refused.
    let _ = NatarajanBst::<u64, Wfe>::new(domain);
}

#[test]
#[cfg(debug_assertions)]
#[should_panic(expected = "CrTurnQueue needs 3 reservation slots")]
fn underprovisioned_domain_is_rejected_by_crturn() {
    let domain = Wfe::with_config(ReclaimerConfig {
        slots_per_thread: 2,
        ..ReclaimerConfig::with_max_threads(2)
    });
    let _ = CrTurnQueue::<u64, Wfe>::new(domain);
}

#[test]
fn progress_guarantees_are_reported_correctly() {
    assert_eq!(Wfe::progress(), Progress::WaitFree);
    assert_eq!(He::progress(), Progress::LockFree);
    assert_eq!(Hp::progress(), Progress::LockFree);
    assert_eq!(Ibr2Ge::progress(), Progress::LockFree);
    assert_eq!(Ebr::progress(), Progress::Blocking);
    assert_eq!(Leak::progress(), Progress::None);
}

#[test]
fn stack_shared_between_structures_of_one_domain() {
    // A single domain can guard multiple data structures at once.
    let domain = Wfe::with_config(ReclaimerConfig::with_max_threads(4));
    let stack = TreiberStack::<u64, Wfe>::new(Arc::clone(&domain));
    let list = MichaelList::<u64, Wfe>::new(Arc::clone(&domain));
    let mut handle = domain.register();
    for i in 0..100 {
        stack.push(&mut handle, i);
        list.insert(&mut handle, i, i);
    }
    for i in (0..100).rev() {
        assert_eq!(stack.pop(&mut handle), Some(i));
        assert!(list.remove(&mut handle, i));
    }
    assert!(stack.is_empty());
}

#[test]
fn wfe_under_forced_slow_path_keeps_structures_correct() {
    // End-to-end version of the paper's "force the slow path" validation.
    let domain = Wfe::with_config(ReclaimerConfig {
        fast_path_attempts: 1,
        era_freq: 1,
        cleanup_freq: 4,
        ..ReclaimerConfig::with_max_threads(4)
    });
    let map = MichaelHashMap::<u64, Wfe>::with_buckets(Arc::clone(&domain), 64);
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let map = &map;
            let domain = Arc::clone(&domain);
            scope.spawn(move || {
                let mut handle = domain.register();
                for i in 0..3_000u64 {
                    let key = (t * 3_000 + i) % 256;
                    if i % 2 == 0 {
                        map.insert(&mut handle, key, key);
                    } else {
                        map.remove(&mut handle, key);
                    }
                }
            });
        }
    });
    let stats = domain.stats();
    assert!(stats.freed <= stats.retired);
    // With one fast-path attempt and constant era movement the slow path must
    // have been taken at least once across four threads.
    assert!(stats.slow_path > 0, "slow path exercised: {stats:?}");
}

/// Shard-skip correctness: a reservation published by a thread whose slot
/// lives in one registry shard is never missed by a cleanup scan run from a
/// thread in a *different* shard. The registry is configured with one slot
/// per shard, so the reader and the writer are guaranteed to land in
/// distinct shards.
fn exercise_cross_shard_protection<R: Reclaimer>() {
    use std::sync::mpsc;

    let domain = R::with_config(DomainConfig {
        // Scans only when forced, so the pin is observable deterministically.
        cleanup_freq: usize::MAX,
        shards: 8,
        ..DomainConfig::with_max_threads(8)
    });
    assert_eq!(domain.registry().shard_count(), 8);

    let mut writer = domain.register();
    let node = writer.alloc(42u64);
    let root: Atomic<u64> = Atomic::new(node);

    let (protected_tx, protected_rx) = mpsc::channel::<usize>();
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let (done_tx, done_rx) = mpsc::channel::<()>();

    std::thread::scope(|scope| {
        {
            let domain = Arc::clone(&domain);
            let root = &root;
            scope.spawn(move || {
                let mut reader = domain.register();
                let mut shield = reader.shield::<u64>().expect("slots available");
                let tid = reader.thread_id();
                {
                    let guard = reader.enter();
                    let seen = shield.protect(&guard, root, None);
                    protected_tx.send(tid).unwrap();
                    assert!(!seen.is_null());
                    release_rx.recv().unwrap();
                } // guard drop withdraws the reservation
                drop(shield);
                drop(reader);
                done_tx.send(()).unwrap();
            });
        }

        let reader_tid = protected_rx.recv().unwrap();
        let registry = domain.registry();
        assert_ne!(
            registry.shard_of(writer.thread_id()),
            registry.shard_of(reader_tid),
            "reader and writer occupy different shards"
        );
        assert!(registry.occupied_shards() >= 2);

        // Unlink and retire while the cross-shard reservation is live: the
        // writer's scan must visit the reader's shard and keep the block.
        root.store(core::ptr::null_mut(), Ordering::SeqCst);
        // SAFETY: `node` was unlinked from `root` above and retired once.
        unsafe { writer.retire(node) };
        writer.force_cleanup();
        assert_eq!(
            domain.stats().unreclaimed,
            1,
            "a reservation in another shard pins the block"
        );

        // Withdraw the reservation; the next scan may free the block.
        release_tx.send(()).unwrap();
        done_rx.recv().unwrap();
        writer.force_cleanup();
        assert_eq!(
            domain.stats().unreclaimed,
            0,
            "block freed once the cross-shard reservation is withdrawn"
        );
    });
}

macro_rules! cross_shard_matrix {
    ($($test:ident: $scheme:ty;)*) => {
        $(
            #[test]
            fn $test() {
                exercise_cross_shard_protection::<$scheme>();
            }
        )*
    };
}

cross_shard_matrix! {
    cross_shard_protection_under_wfe: Wfe;
    cross_shard_protection_under_he: He;
    cross_shard_protection_under_hp: Hp;
    cross_shard_protection_under_ebr: Ebr;
    cross_shard_protection_under_ibr: Ibr2Ge;
}

#[test]
fn pooled_handles_serve_a_task_churn_workload_across_threads() {
    // The executor pattern end to end: workers check handles out of a shared
    // pool per short task; the map stays consistent, the pool absorbs the
    // churn and the registry never exceeds the worker count.
    const WORKERS: usize = 4;
    const TASKS: usize = 300;
    const OPS_PER_TASK: u64 = 16;

    let domain = Wfe::with_config(DomainConfig {
        shards: 4,
        cleanup_freq: 8,
        era_freq: 16,
        ..DomainConfig::with_max_threads(WORKERS)
    });
    let map = MichaelHashMap::<u64, Wfe>::with_domain(Arc::clone(&domain));
    let pool = HandlePool::new(Arc::clone(&domain));

    let seed = ReplayableSeed::for_this_test();
    std::thread::scope(|scope| {
        for t in 0..WORKERS as u64 {
            let map = &map;
            let pool = Arc::clone(&pool);
            let mut x = seed.stream(t);
            scope.spawn(move || {
                for _ in 0..TASKS {
                    let mut handle = loop {
                        match pool.check_out() {
                            Some(handle) => break handle,
                            None => std::thread::yield_now(),
                        }
                    };
                    for _ in 0..OPS_PER_TASK {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let key = x % 128;
                        match x % 3 {
                            0 => {
                                map.insert(&mut handle, key, key + 1);
                            }
                            1 => {
                                map.remove(&mut handle, key);
                            }
                            _ => {
                                if let Some(v) = map.get(&mut handle, key) {
                                    assert_eq!(v, key + 1, "value integrity");
                                }
                            }
                        }
                    }
                }
            });
        }
    });

    let stats = pool.stats();
    assert_eq!(stats.checkouts, (WORKERS * TASKS) as u64);
    assert!(
        stats.hits > stats.checkouts / 2,
        "steady-state churn is served from the pool: {stats:?}"
    );
    assert!(domain.registry().registered() <= WORKERS);
    drop(pool);
    assert_eq!(domain.registry().registered(), 0);
    let smr = domain.stats();
    assert!(smr.freed <= smr.retired);
}
