//! Model test for the WCAS striped-lock fallback (`--cfg wfe_model` builds).
//!
//! Lives in its own integration-test binary — and must stay the only test
//! that forces the fallback — because `force_lock_fallback_for_tests` flips
//! a process-global switch: native `cmpxchg16b` operations and lock-based
//! ones on the same pair are not linearizable against each other, so the
//! fallback path needs a process where *every* pair operation takes a lock.
//! (`crates/atomics/tests/lock_fallback.rs` is the same pattern for normal
//! builds.)

#![cfg(wfe_model)]

use std::sync::Arc;

use wfe_atomics::{force_lock_fallback_for_tests, wcas_is_lock_free, AtomicPair};

#[test]
fn forced_fallback_conserves_increments_under_the_model() {
    force_lock_fallback_for_tests();
    assert!(!wcas_is_lock_free(), "the fallback must be pinned");
    // The striped spin-lock spins through `wfe_sync::hint::spin_loop`, which
    // under the model is a yield-flavored interleaving point — so a virtual
    // thread parked while holding a stripe cannot livelock its rival; the
    // scheduler always finds the holder runnable.
    shuttle::check_random(
        || {
            let pair = Arc::new(AtomicPair::new(0, 0));
            let t = {
                let pair = Arc::clone(&pair);
                shuttle::thread::spawn(move || {
                    for _ in 0..2 {
                        loop {
                            let (value, version) = pair.load();
                            if pair
                                .compare_exchange((value, version), (value + 1, version + 1))
                                .is_ok()
                            {
                                break;
                            }
                        }
                    }
                })
            };
            for _ in 0..2 {
                loop {
                    let (value, version) = pair.load();
                    if pair
                        .compare_exchange((value, version), (value + 1, version + 1))
                        .is_ok()
                    {
                        break;
                    }
                }
            }
            t.join().unwrap();
            assert_eq!(pair.load(), (4, 4), "an increment was lost");
        },
        2_000,
    );
}
