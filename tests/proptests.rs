//! Property-based tests (proptest): data-structure semantics against
//! sequential model types, and WCAS/tagging invariants.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

// Through the sync layer (not `std::sync::atomic`) so the test compiles
// unchanged under `--cfg wfe_model`, where the two atomic types diverge.
use wfe_suite::wfe_sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use wfe_suite::wfe_atomics::AtomicPair;
use wfe_suite::wfe_reclaim::conformance::DropCounter;
use wfe_suite::wfe_reclaim::ptr::tag;
use wfe_suite::wfe_reclaim::BlockCacheConfig;
use wfe_suite::{
    Atomic, CrTurnQueue, Ebr, Handle, HandlePool, He, Hp, Ibr2Ge, KoganPetrankQueue, Leak, Linked,
    MichaelHashMap, MichaelList, MichaelScottQueue, NatarajanBst, PooledHandle, RawHandle,
    Reclaimer, ReclaimerConfig, ResizableHashMap, Shield, Wfe,
};

/// An operation applied both to the concurrent structure and to the model.
#[derive(Debug, Clone)]
enum MapAction {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
}

fn map_action_strategy(key_range: u64) -> impl Strategy<Value = MapAction> {
    prop_oneof![
        (0..key_range, any::<u64>()).prop_map(|(k, v)| MapAction::Insert(k, v)),
        (0..key_range).prop_map(MapAction::Remove),
        (0..key_range).prop_map(MapAction::Get),
    ]
}

/// Applies a sequence of actions to a map and to a `BTreeMap` model and checks
/// that every return value agrees.
fn check_map_against_model<M>(actions: &[MapAction])
where
    M: wfe_suite::ConcurrentMap<Wfe>,
{
    let domain = Wfe::with_config(ReclaimerConfig {
        cleanup_freq: 4,
        era_freq: 8,
        ..ReclaimerConfig::with_max_threads(2)
    });
    let map = M::with_domain(Arc::clone(&domain));
    let mut handle = domain.register();
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for action in actions {
        match *action {
            MapAction::Insert(key, value) => {
                let expected = !model.contains_key(&key);
                assert_eq!(map.insert(&mut handle, key, value), expected);
                model.entry(key).or_insert(value);
            }
            MapAction::Remove(key) => {
                assert_eq!(map.remove(&mut handle, key), model.remove(&key).is_some());
            }
            MapAction::Get(key) => {
                assert_eq!(map.get(&mut handle, key), model.get(&key).copied());
            }
        }
    }
}

/// An operation of the kv-service shape applied to the resizable map and its
/// sequential oracle: the uniform map actions plus TTL ticks (insert a fresh
/// key, expire the one that slid out of the window) and forced directory
/// doublings.
#[derive(Debug, Clone)]
enum ServiceAction {
    Map(MapAction),
    TtlTick,
    ForceResize,
}

fn service_action_strategy(key_range: u64) -> impl Strategy<Value = ServiceAction> {
    // The vendored `prop_oneof!` picks arms uniformly; repeating the map arm
    // weights the mix toward ordinary operations (4:2:1 roughly matches the
    // kv-service legs: mostly point ops, some TTL churn, occasional resize).
    prop_oneof![
        map_action_strategy(key_range).prop_map(ServiceAction::Map),
        map_action_strategy(key_range).prop_map(ServiceAction::Map),
        map_action_strategy(key_range).prop_map(ServiceAction::Map),
        map_action_strategy(key_range).prop_map(ServiceAction::Map),
        Just(ServiceAction::TtlTick),
        Just(ServiceAction::TtlTick),
        Just(ServiceAction::ForceResize),
    ]
}

/// TTL window of the oracle test: a tick expires the key inserted
/// `TTL_WINDOW` ticks earlier.
const TTL_WINDOW: usize = 8;

/// Applies a kv-service action sequence to the resizable map and to a
/// `std::collections::HashMap` oracle and checks every return value agrees —
/// across forced resizes, which must be invisible to the map's semantics.
/// TTL keys live in a disjoint namespace (high bit set) so ticks never
/// collide with the uniform actions.
fn check_resizable_against_oracle<R: Reclaimer>(actions: &[ServiceAction]) {
    let domain = R::with_config(ReclaimerConfig {
        cleanup_freq: 4,
        era_freq: 8,
        ..ReclaimerConfig::with_max_threads(2)
    });
    // Two buckets: the load-factor trigger fires within a handful of inserts,
    // so organic resizes interleave with the forced ones.
    let map = ResizableHashMap::<u64, R>::with_initial_buckets(Arc::clone(&domain), 2);
    let mut handle = domain.register();
    let mut oracle: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let mut ttl_live: VecDeque<u64> = VecDeque::new();
    let mut next_fresh: u64 = 1 << 63;
    for action in actions {
        match action {
            ServiceAction::Map(map_action) => match *map_action {
                MapAction::Insert(key, value) => {
                    let expected = !oracle.contains_key(&key);
                    prop_assert_eq!(map.insert(&mut handle, key, value), expected);
                    oracle.entry(key).or_insert(value);
                }
                MapAction::Remove(key) => {
                    prop_assert_eq!(map.remove(&mut handle, key), oracle.remove(&key).is_some());
                }
                MapAction::Get(key) => {
                    prop_assert_eq!(map.get(&mut handle, key), oracle.get(&key).copied());
                }
            },
            ServiceAction::TtlTick => {
                let fresh = next_fresh;
                next_fresh += 1;
                prop_assert!(map.insert(&mut handle, fresh, fresh), "fresh keys are new");
                oracle.insert(fresh, fresh);
                ttl_live.push_back(fresh);
                if ttl_live.len() > TTL_WINDOW {
                    let expired = ttl_live.pop_front().unwrap();
                    prop_assert!(map.remove(&mut handle, expired), "expired key was live");
                    prop_assert!(oracle.remove(&expired).is_some());
                }
            }
            ServiceAction::ForceResize => {
                map.force_resize(&mut handle);
            }
        }
        prop_assert_eq!(map.len(), oracle.len(), "sizes agree after every step");
    }
    // Full final audit: every oracle entry is in the map, nothing extra.
    for (&key, &value) in &oracle {
        prop_assert_eq!(map.get(&mut handle, key), Some(value));
    }
    let keys: Vec<u64> = oracle.keys().copied().collect();
    for key in keys {
        prop_assert!(map.remove(&mut handle, key));
    }
    prop_assert_eq!(map.len(), 0);
}

/// Drives inserts/removes of drop-counting payloads through the resizable
/// map with forced resizes mixed in, proving — via the drop counter — that
/// no payload is ever dropped twice and none leaks once map and domain are
/// gone. The superseded bucket arrays retired by the resizes ride the same
/// pipeline, so a directory double-free would corrupt the count too.
fn check_resizable_drop_accounting<R: Reclaimer>(steps: &[(u64, u8)]) {
    let drops = Arc::new(AtomicUsize::new(0));
    let mut allocated = 0usize;
    {
        let domain = R::with_config(ReclaimerConfig {
            cleanup_freq: 3,
            era_freq: 2,
            ..ReclaimerConfig::with_max_threads(2)
        });
        let map = ResizableHashMap::<DropCounter, R>::with_initial_buckets(Arc::clone(&domain), 2);
        let mut handle = domain.register();
        for &(key, op) in steps {
            match op % 4 {
                // Insert allocates a payload whether or not the key is fresh
                // (a duplicate's payload is dropped on the spot).
                0 | 1 => {
                    map.insert(&mut handle, key, DropCounter::new(&drops));
                    allocated += 1;
                }
                2 => {
                    map.remove(&mut handle, key);
                }
                _ => {
                    map.force_resize(&mut handle);
                }
            }
            prop_assert!(
                drops.load(Ordering::SeqCst) <= allocated,
                "a payload was dropped twice"
            );
        }
        drop(map);
        drop(handle);
        drop(domain);
    }
    prop_assert_eq!(
        drops.load(Ordering::SeqCst),
        allocated,
        "every payload dropped exactly once across resizes, none leaked"
    );
}

/// One step of the shield lease/release churn property test.
#[derive(Debug, Clone, Copy)]
enum ShieldStep {
    /// Lease one more shield (must succeed below capacity, must report
    /// exhaustion as `Err` at capacity).
    Lease,
    /// Drop one outstanding shield (index modulo the live count).
    Release(usize),
    /// Enter a guard bracket and protect through every outstanding shield.
    ProtectAll,
}

fn shield_step_strategy() -> impl Strategy<Value = ShieldStep> {
    prop_oneof![
        Just(ShieldStep::Lease),
        (0usize..8).prop_map(ShieldStep::Release),
        Just(ShieldStep::ProtectAll),
    ]
}

/// Shield leases behave like a counted resource under churn: a lease below
/// capacity always succeeds (released slots are really recycled — the slot
/// space can never be exhausted by lease/release round-trips), a lease at
/// capacity reports `Err` instead of stomping, and the lease count tracked by
/// the handle always equals the number of live `Shield`s.
fn check_shield_lease_churn<R: Reclaimer>(steps: &[ShieldStep]) {
    const SLOTS: usize = 5;
    let domain = R::with_config(ReclaimerConfig {
        slots_per_thread: SLOTS,
        ..ReclaimerConfig::with_max_threads(2)
    });
    let mut handle = domain.register();
    let node = handle.alloc(7u64);
    let root: Atomic<u64> = Atomic::new(node);
    let mut shields: Vec<Shield<u64, R::Handle>> = Vec::new();
    for step in steps {
        match *step {
            ShieldStep::Lease => {
                if shields.len() < SLOTS {
                    match handle.shield::<u64>() {
                        Ok(shield) => shields.push(shield),
                        Err(err) => panic!(
                            "lease failed below capacity ({} of {SLOTS} leased): {err}",
                            shields.len()
                        ),
                    }
                } else {
                    prop_assert!(
                        handle.shield::<u64>().is_err(),
                        "a lease at capacity must report exhaustion"
                    );
                }
            }
            ShieldStep::Release(index) => {
                if !shields.is_empty() {
                    let index = index % shields.len();
                    drop(shields.swap_remove(index));
                }
            }
            ShieldStep::ProtectAll => {
                let guard = handle.enter();
                for shield in shields.iter_mut() {
                    let protected = shield.protect(&guard, &root, None);
                    prop_assert!(!protected.is_null());
                    // SAFETY: `protected` is dereferenced before its shield
                    // (or any other) protects again.
                    prop_assert_eq!(unsafe { protected.as_ref() }, Some(&7));
                }
            }
        }
        prop_assert_eq!(
            handle.shield_slots().leased(),
            shields.len(),
            "lease table tracks live shields exactly"
        );
        let slots: Vec<usize> = shields.iter().map(|shield| shield.slot()).collect();
        let mut deduped = slots.clone();
        deduped.sort_unstable();
        deduped.dedup();
        prop_assert_eq!(deduped.len(), slots.len(), "no two shields share a slot");
    }
    drop(shields);
    prop_assert_eq!(handle.shield_slots().leased(), 0, "all slots returned");
    drop(handle);
    // SAFETY: the block was never retired and nothing references it any more.
    // SAFETY: test-owned block, never retired; freed exactly once.
    unsafe { Linked::dealloc(node) };
}

/// One step of the retirement-pipeline property test, acting on one of a
/// small pool of handle slots.
#[derive(Debug, Clone, Copy)]
enum SmrStep {
    /// Register a handle in the slot (no-op if occupied).
    Register(usize),
    /// Allocate and retire one drop-counting block through the slot's handle.
    Retire(usize),
    /// Drop the slot's handle (orphaning whatever its final scan kept).
    DropHandle(usize),
    /// Force a cleanup pass (batch scan + orphan adoption) on the handle.
    Cleanup(usize),
}

fn smr_step_strategy(pool: usize) -> impl Strategy<Value = SmrStep> {
    prop_oneof![
        (0..pool).prop_map(SmrStep::Register),
        (0..pool).prop_map(SmrStep::Retire),
        (0..pool).prop_map(SmrStep::DropHandle),
        (0..pool).prop_map(SmrStep::Cleanup),
    ]
}

/// Drives an interleaved retire/drop/adopt sequence against one scheme and
/// checks — via drop-counting payloads — that no block is ever freed twice
/// (the counter can never outrun the allocations) and none is leaked (after
/// the domain drops, every allocation was dropped exactly once).
fn check_retirement_pipeline<R: Reclaimer>(steps: &[SmrStep]) {
    const POOL: usize = 4;
    let drops = Arc::new(AtomicUsize::new(0));
    let mut allocated = 0usize;
    {
        // Tiny frequencies so short sequences still trip batch scans and
        // era advances.
        let domain = R::with_config(ReclaimerConfig {
            cleanup_freq: 3,
            era_freq: 2,
            ..ReclaimerConfig::with_max_threads(POOL)
        });
        let mut handles: Vec<Option<R::Handle>> = (0..POOL).map(|_| None).collect();
        for &step in steps {
            match step {
                SmrStep::Register(slot) => {
                    if handles[slot].is_none() {
                        handles[slot] = domain.try_register();
                        assert!(handles[slot].is_some(), "pool never exceeds max_threads");
                    }
                }
                SmrStep::Retire(slot) => {
                    if let Some(handle) = handles[slot].as_mut() {
                        let block = handle.alloc(DropCounter::new(&drops));
                        allocated += 1;
                        // SAFETY: block just allocated by this handle, never published —
                        // this is its only retire.
                        unsafe { handle.retire(block) };
                    }
                }
                SmrStep::DropHandle(slot) => {
                    handles[slot] = None;
                }
                SmrStep::Cleanup(slot) => {
                    if let Some(handle) = handles[slot].as_mut() {
                        handle.force_cleanup();
                    }
                }
            }
            assert!(
                drops.load(Ordering::SeqCst) <= allocated,
                "a block was freed twice"
            );
        }
        drop(handles);
        drop(domain);
    }
    assert_eq!(
        drops.load(Ordering::SeqCst),
        allocated,
        "every retired block dropped exactly once, none leaked"
    );
}

/// Drives the same interleaved retire/drop/adopt sequence as
/// [`check_retirement_pipeline`], but with the per-shard block cache pinned
/// explicitly on or off. With the cache on, a tiny per-class capacity forces
/// the overflow path too, and freed blocks are recycled through the shard
/// freelists into later allocations — the drop counter still may never
/// outrun the allocations (a recycled block must not re-drop its payload),
/// and once the domain drops (draining its caches) every allocation must
/// have been dropped exactly once. The cache-off run of the identical step
/// sequence is the parity baseline.
fn check_retirement_pipeline_with_cache<R: Reclaimer>(steps: &[SmrStep], cache: bool) {
    const POOL: usize = 4;
    let drops = Arc::new(AtomicUsize::new(0));
    let mut allocated = 0usize;
    {
        let domain = R::with_config(ReclaimerConfig {
            cleanup_freq: 3,
            era_freq: 2,
            block_cache: BlockCacheConfig {
                enabled: cache,
                per_class_capacity: 2,
            },
            ..ReclaimerConfig::with_max_threads(POOL)
        });
        let mut handles: Vec<Option<R::Handle>> = (0..POOL).map(|_| None).collect();
        for &step in steps {
            match step {
                SmrStep::Register(slot) => {
                    if handles[slot].is_none() {
                        handles[slot] = domain.try_register();
                        assert!(handles[slot].is_some(), "pool never exceeds max_threads");
                    }
                }
                SmrStep::Retire(slot) => {
                    if let Some(handle) = handles[slot].as_mut() {
                        let block = handle.alloc(DropCounter::new(&drops));
                        allocated += 1;
                        // SAFETY: block just allocated by this handle, never published —
                        // this is its only retire.
                        unsafe { handle.retire(block) };
                    }
                }
                SmrStep::DropHandle(slot) => {
                    handles[slot] = None;
                }
                SmrStep::Cleanup(slot) => {
                    if let Some(handle) = handles[slot].as_mut() {
                        handle.force_cleanup();
                    }
                }
            }
            assert!(
                drops.load(Ordering::SeqCst) <= allocated,
                "a recycled block re-dropped its payload"
            );
        }
        if !cache {
            assert_eq!(
                domain.stats().cache_hits + domain.stats().cached_bytes,
                0,
                "a disabled cache must see no traffic"
            );
        }
        drop(handles);
        drop(domain);
    }
    assert_eq!(
        drops.load(Ordering::SeqCst),
        allocated,
        "every retired block dropped exactly once, none leaked through the cache"
    );
}

/// One step of the handle-pool property test, acting on one of a small pool
/// of guard slots.
#[derive(Debug, Clone, Copy)]
enum PoolStep {
    /// Check a handle out into the slot (no-op if occupied).
    CheckOut(usize),
    /// Allocate and retire one drop-counting block through the slot's guard.
    Retire(usize),
    /// Check the slot's handle back in (parks it on the pool's freelist).
    CheckIn(usize),
    /// Force a cleanup pass on the slot's guard.
    Cleanup(usize),
}

fn pool_step_strategy(slots: usize) -> impl Strategy<Value = PoolStep> {
    prop_oneof![
        (0..slots).prop_map(PoolStep::CheckOut),
        (0..slots).prop_map(PoolStep::Retire),
        (0..slots).prop_map(PoolStep::CheckIn),
        (0..slots).prop_map(PoolStep::Cleanup),
    ]
}

/// Drives an interleaved check-out/retire/check-in sequence through a
/// `HandlePool` and finishes by dropping the pool *with handles still
/// parked*: drop-counting payloads prove no block is freed twice along the
/// way and none is leaked once pool and domain are gone.
fn check_handle_pool<R: Reclaimer>(steps: &[PoolStep]) {
    const SLOTS: usize = 3;
    let drops = Arc::new(AtomicUsize::new(0));
    let mut allocated = 0usize;
    {
        // Tiny frequencies so short sequences still trip batch scans, plus a
        // deliberately sharded registry.
        let domain = R::with_config(ReclaimerConfig {
            cleanup_freq: 3,
            era_freq: 2,
            shards: SLOTS,
            ..ReclaimerConfig::with_max_threads(SLOTS)
        });
        let pool = HandlePool::new(Arc::clone(&domain));
        let mut guards: Vec<Option<PooledHandle<R>>> = (0..SLOTS).map(|_| None).collect();
        for &step in steps {
            match step {
                PoolStep::CheckOut(slot) => {
                    if guards[slot].is_none() {
                        guards[slot] = pool.check_out();
                        assert!(guards[slot].is_some(), "registry sized for the guard slots");
                    }
                }
                PoolStep::Retire(slot) => {
                    if let Some(guard) = guards[slot].as_mut() {
                        let block = guard.alloc(DropCounter::new(&drops));
                        allocated += 1;
                        // SAFETY: block just allocated through this guard, never published —
                        // this is its only retire.
                        unsafe { guard.retire(block) };
                    }
                }
                PoolStep::CheckIn(slot) => {
                    guards[slot] = None;
                }
                PoolStep::Cleanup(slot) => {
                    if let Some(guard) = guards[slot].as_mut() {
                        guard.force_cleanup();
                    }
                }
            }
            assert!(
                drops.load(Ordering::SeqCst) <= allocated,
                "a block was freed twice"
            );
        }
        // Check everything in, then drop the pool while those handles are
        // parked: each parked handle must tear down the ordinary way
        // (final scan + orphan parking + registry release).
        drop(guards);
        drop(pool);
        assert_eq!(domain.registry().registered(), 0, "every slot released");
        drop(domain);
    }
    assert_eq!(
        drops.load(Ordering::SeqCst),
        allocated,
        "every retired block dropped exactly once, none leaked"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn handle_pool_checkout_checkin_never_double_frees_or_leaks_wfe(
        steps in proptest::collection::vec(pool_step_strategy(3), 1..250)
    ) {
        check_handle_pool::<Wfe>(&steps);
    }

    #[test]
    fn handle_pool_checkout_checkin_never_double_frees_or_leaks_he(
        steps in proptest::collection::vec(pool_step_strategy(3), 1..250)
    ) {
        check_handle_pool::<He>(&steps);
    }

    #[test]
    fn michael_list_matches_btreemap(actions in proptest::collection::vec(map_action_strategy(32), 1..400)) {
        check_map_against_model::<MichaelList<u64, Wfe>>(&actions);
    }

    #[test]
    fn hash_map_matches_btreemap(actions in proptest::collection::vec(map_action_strategy(64), 1..400)) {
        check_map_against_model::<MichaelHashMap<u64, Wfe>>(&actions);
    }

    #[test]
    fn natarajan_bst_matches_btreemap(actions in proptest::collection::vec(map_action_strategy(64), 1..400)) {
        check_map_against_model::<NatarajanBst<u64, Wfe>>(&actions);
    }

    #[test]
    fn resizable_map_matches_hashmap_wfe(
        actions in proptest::collection::vec(service_action_strategy(64), 1..400)
    ) {
        check_resizable_against_oracle::<Wfe>(&actions);
    }

    #[test]
    fn resizable_map_matches_hashmap_he(
        actions in proptest::collection::vec(service_action_strategy(64), 1..400)
    ) {
        check_resizable_against_oracle::<He>(&actions);
    }

    #[test]
    fn resizable_map_matches_hashmap_hp(
        actions in proptest::collection::vec(service_action_strategy(64), 1..400)
    ) {
        check_resizable_against_oracle::<Hp>(&actions);
    }

    #[test]
    fn resizable_map_never_double_frees_or_leaks_wfe(
        steps in proptest::collection::vec((0u64..48, any::<u8>()), 1..300)
    ) {
        check_resizable_drop_accounting::<Wfe>(&steps);
    }

    #[test]
    fn resizable_map_never_double_frees_or_leaks_he(
        steps in proptest::collection::vec((0u64..48, any::<u8>()), 1..300)
    ) {
        check_resizable_drop_accounting::<He>(&steps);
    }

    #[test]
    fn resizable_map_never_double_frees_or_leaks_hp(
        steps in proptest::collection::vec((0u64..48, any::<u8>()), 1..300)
    ) {
        check_resizable_drop_accounting::<Hp>(&steps);
    }

    #[test]
    fn crturn_queue_matches_msqueue_and_vecdeque(ops in proptest::collection::vec(proptest::option::weighted(0.6, any::<u64>()), 1..300)) {
        // Cross-implementation check: the wait-free CRTurn queue, the
        // lock-free Michael-Scott queue and a sequential `VecDeque` model all
        // see the same randomized op sequence (`Some(v)` = enqueue v, `None`
        // = dequeue) and must agree on every result — which pins down FIFO
        // order per producer and element conservation in one stroke.
        let domain = Wfe::with_config(ReclaimerConfig::with_max_threads(2));
        let crturn = CrTurnQueue::<u64, Wfe>::new(Arc::clone(&domain));
        let msq = MichaelScottQueue::<u64, Wfe>::new(Arc::clone(&domain));
        let mut handle = domain.register();
        let mut model: VecDeque<u64> = VecDeque::new();
        for op in &ops {
            match op {
                Some(value) => {
                    crturn.enqueue(&mut handle, *value);
                    msq.enqueue(&mut handle, *value);
                    model.push_back(*value);
                }
                None => {
                    let expected = model.pop_front();
                    prop_assert_eq!(crturn.dequeue(&mut handle), expected);
                    prop_assert_eq!(msq.dequeue(&mut handle), expected);
                }
            }
        }
        while let Some(expected) = model.pop_front() {
            prop_assert_eq!(crturn.dequeue(&mut handle), Some(expected));
            prop_assert_eq!(msq.dequeue(&mut handle), Some(expected));
        }
        prop_assert_eq!(crturn.dequeue(&mut handle), None);
        prop_assert_eq!(msq.dequeue(&mut handle), None);
    }

    #[test]
    fn crturn_queue_conserves_elements_across_producers(
        ops in proptest::collection::vec(0usize..3, 1..200)
    ) {
        // Per-producer FIFO + conservation with two interleaved "producers"
        // (two registered handles of one domain): ops are (who, value) pairs
        // where who==2 dequeues and who<2 enqueues a value stamped with the
        // producer id. Dequeued values must come out in stamped order per
        // producer, and nothing may be lost or invented.
        let domain = Wfe::with_config(ReclaimerConfig::with_max_threads(3));
        let queue = CrTurnQueue::<u64, Wfe>::new(Arc::clone(&domain));
        let mut handles = [domain.register(), domain.register()];
        let mut seq = [0u64, 0u64];
        let mut pending = [0i64, 0i64];
        let mut last_dequeued = [None::<u64>, None::<u64>];
        for &who in &ops {
            if who == 2 {
                if let Some(v) = queue.dequeue(&mut handles[0]) {
                    let producer = (v >> 32) as usize;
                    let stamp = v & 0xFFFF_FFFF;
                    if let Some(prev) = last_dequeued[producer] {
                        prop_assert!(stamp > prev, "producer {} out of order", producer);
                    }
                    last_dequeued[producer] = Some(stamp);
                    pending[producer] -= 1;
                    prop_assert!(pending[producer] >= 0, "invented element");
                }
            } else {
                let stamped = ((who as u64) << 32) | seq[who];
                queue.enqueue(&mut handles[who], stamped);
                seq[who] += 1;
                pending[who] += 1;
            }
        }
        while let Some(v) = queue.dequeue(&mut handles[1]) {
            pending[(v >> 32) as usize] -= 1;
        }
        prop_assert_eq!(pending, [0, 0], "every enqueued element was dequeued");
    }

    #[test]
    fn kp_queue_matches_vecdeque(ops in proptest::collection::vec(proptest::option::weighted(0.6, any::<u64>()), 1..300)) {
        // `Some(v)` = enqueue v, `None` = dequeue.
        let domain = Wfe::with_config(ReclaimerConfig::with_max_threads(2));
        let queue = KoganPetrankQueue::<u64, Wfe>::new(Arc::clone(&domain));
        let mut handle = domain.register();
        let mut model: VecDeque<u64> = VecDeque::new();
        for op in &ops {
            match op {
                Some(value) => {
                    queue.enqueue(&mut handle, *value);
                    model.push_back(*value);
                }
                None => {
                    prop_assert_eq!(queue.dequeue(&mut handle), model.pop_front());
                }
            }
        }
        // Drain both and compare the tails.
        while let Some(expected) = model.pop_front() {
            prop_assert_eq!(queue.dequeue(&mut handle), Some(expected));
        }
        prop_assert_eq!(queue.dequeue(&mut handle), None);
    }

    #[test]
    fn retirement_pipeline_never_double_frees_or_leaks_wfe(
        steps in proptest::collection::vec(smr_step_strategy(4), 1..250)
    ) {
        check_retirement_pipeline::<Wfe>(&steps);
    }

    #[test]
    fn retirement_pipeline_never_double_frees_or_leaks_he(
        steps in proptest::collection::vec(smr_step_strategy(4), 1..250)
    ) {
        check_retirement_pipeline::<He>(&steps);
    }

    #[test]
    fn retirement_pipeline_never_double_frees_or_leaks_hp(
        steps in proptest::collection::vec(smr_step_strategy(4), 1..250)
    ) {
        check_retirement_pipeline::<Hp>(&steps);
    }

    #[test]
    fn block_cache_pipeline_never_double_frees_or_leaks_wfe(
        steps in proptest::collection::vec(smr_step_strategy(4), 1..250)
    ) {
        check_retirement_pipeline_with_cache::<Wfe>(&steps, true);
        check_retirement_pipeline_with_cache::<Wfe>(&steps, false);
    }

    #[test]
    fn block_cache_pipeline_never_double_frees_or_leaks_he(
        steps in proptest::collection::vec(smr_step_strategy(4), 1..250)
    ) {
        check_retirement_pipeline_with_cache::<He>(&steps, true);
        check_retirement_pipeline_with_cache::<He>(&steps, false);
    }

    #[test]
    fn block_cache_pipeline_never_double_frees_or_leaks_hp(
        steps in proptest::collection::vec(smr_step_strategy(4), 1..250)
    ) {
        check_retirement_pipeline_with_cache::<Hp>(&steps, true);
        check_retirement_pipeline_with_cache::<Hp>(&steps, false);
    }

    #[test]
    fn shield_leases_never_exhaust_under_churn_wfe(
        steps in proptest::collection::vec(shield_step_strategy(), 1..200)
    ) {
        check_shield_lease_churn::<Wfe>(&steps);
    }

    #[test]
    fn shield_leases_never_exhaust_under_churn_he(
        steps in proptest::collection::vec(shield_step_strategy(), 1..200)
    ) {
        check_shield_lease_churn::<He>(&steps);
    }

    #[test]
    fn shield_leases_never_exhaust_under_churn_hp(
        steps in proptest::collection::vec(shield_step_strategy(), 1..200)
    ) {
        check_shield_lease_churn::<Hp>(&steps);
    }

    #[test]
    fn shield_leases_never_exhaust_under_churn_ebr(
        steps in proptest::collection::vec(shield_step_strategy(), 1..200)
    ) {
        check_shield_lease_churn::<Ebr>(&steps);
    }

    #[test]
    fn shield_leases_never_exhaust_under_churn_ibr(
        steps in proptest::collection::vec(shield_step_strategy(), 1..200)
    ) {
        check_shield_lease_churn::<Ibr2Ge>(&steps);
    }

    #[test]
    fn shield_leases_never_exhaust_under_churn_leak(
        steps in proptest::collection::vec(shield_step_strategy(), 1..200)
    ) {
        check_shield_lease_churn::<Leak>(&steps);
    }

    #[test]
    fn wcas_pair_semantics(initial in any::<(u64, u64)>(), expected in any::<(u64, u64)>(), new in any::<(u64, u64)>()) {
        let pair = AtomicPair::new(initial.0, initial.1);
        let result = pair.compare_exchange(expected, new);
        if expected == initial {
            prop_assert_eq!(result, Ok(initial));
            prop_assert_eq!(pair.load(), new);
        } else {
            prop_assert_eq!(result, Err(initial));
            prop_assert_eq!(pair.load(), initial);
        }
    }

    #[test]
    fn pointer_tagging_roundtrips(tag_bits in 0usize..4) {
        let domain = Wfe::with_config(ReclaimerConfig::with_max_threads(1));
        let mut handle = domain.register();
        let node: *mut Linked<u64> = handle.alloc(7u64);
        prop_assume!(tag_bits <= tag::low_bits::<u64>());
        let tagged = tag::with_tag(node, tag_bits);
        prop_assert_eq!(tag::untagged(tagged), node);
        prop_assert_eq!(tag::tag_of(tagged), tag_bits);
        // SAFETY: test-owned block, never retired; freed exactly once.
        unsafe { Linked::dealloc(node) };
    }
}
