//! Domain-drop leak check for the per-shard block cache.
//!
//! The cache parks freed block memory on per-shard freelists; a dropping
//! domain must drain every parked block back to the allocator. In debug
//! builds the block layer keeps a process-wide balance of class allocations
//! minus class deallocations, so the check is exact — but the counter is
//! global, which is why this is the *only* test in its binary: nothing else
//! may allocate class blocks in this process.

use wfe_suite::wfe_reclaim::cache::outstanding_cached_allocs;
use wfe_suite::wfe_reclaim::BlockCacheConfig;
use wfe_suite::{Ebr, Handle, He, Hp, Ibr2Ge, Leak, RawHandle, Reclaimer, ReclaimerConfig, Wfe};

/// Churns alloc→retire→cleanup→alloc cycles through one scheme with the
/// cache pinned on at a small capacity (so the overflow path runs too), then
/// drops handle and domain. `expect_cache_traffic` is false for `Leak`,
/// which never frees during the run and is deliberately unwired from the
/// cache layer.
fn churn_and_drop<R: Reclaimer>(expect_cache_traffic: bool) {
    let domain = R::with_config(ReclaimerConfig {
        cleanup_freq: 1,
        era_freq: 1,
        block_cache: BlockCacheConfig {
            enabled: true,
            per_class_capacity: 8,
        },
        ..ReclaimerConfig::with_max_threads(2)
    });
    let mut handle = domain.register();
    for round in 0..128u64 {
        let node = handle.alloc(round);
        // SAFETY: never published; retired exactly once.
        unsafe { handle.retire(node) };
        if round % 16 == 0 {
            handle.force_cleanup();
        }
    }
    handle.force_cleanup();
    if expect_cache_traffic {
        let stats = domain.stats();
        assert!(
            stats.cache_hits + stats.cached_bytes > 0,
            "the churn loop must actually exercise the cache"
        );
    }
    drop(handle);
    drop(domain);
}

#[test]
fn domain_drop_returns_every_cached_block_to_the_allocator() {
    churn_and_drop::<Wfe>(true);
    churn_and_drop::<He>(true);
    churn_and_drop::<Hp>(true);
    churn_and_drop::<Ebr>(true);
    churn_and_drop::<Ibr2Ge>(true);
    churn_and_drop::<Leak>(false);
    // Leftover Arcs are gone: every domain (and its caches) has dropped, so
    // the debug-build balance of class allocations must be back to zero.
    // Release builds return `None` (no counter) and the test degrades to the
    // churn itself.
    if let Some(balance) = outstanding_cached_allocs() {
        assert_eq!(
            balance, 0,
            "a dropped domain leaked {balance} class-allocated block(s)"
        );
    }
}
