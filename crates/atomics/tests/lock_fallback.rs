//! Exercises the portable striped-lock WCAS fallback — the path every
//! non-`x86_64` target (and any x86_64 CPU without `cmpxchg16b`) takes.
//!
//! This lives in its own integration-test binary, i.e. its own process: the
//! fallback is forced before any [`AtomicPair`] is touched, because mixing
//! native and lock-based operations on the same pair is not linearizable.
//! Every test in this file re-asserts the forced mode first, so test-ordering
//! and parallelism inside the binary are safe.

use wfe_sync::atomic::{AtomicBool, Ordering};

use wfe_atomics::{wcas_is_lock_free, AtomicPair};

fn force_fallback() {
    wfe_atomics::force_lock_fallback_for_tests();
    assert!(
        !wcas_is_lock_free(),
        "fallback must report non-lock-free pair operations"
    );
}

#[test]
fn fallback_load_store_roundtrip() {
    force_fallback();
    let pair = AtomicPair::new(1, 2);
    assert_eq!(pair.load(), (1, 2));
    pair.store((3, 4));
    assert_eq!(pair.load(), (3, 4));
    pair.store_first(9, Ordering::SeqCst);
    assert_eq!(pair.load(), (9, 4));
    pair.store_second(11, Ordering::SeqCst);
    assert_eq!(pair.load(), (9, 11));
}

#[test]
fn fallback_compare_exchange_success_and_failure() {
    force_fallback();
    let pair = AtomicPair::new(10, 20);
    assert_eq!(pair.compare_exchange((10, 20), (30, 40)), Ok((10, 20)));
    assert_eq!(pair.load(), (30, 40));
    assert_eq!(pair.compare_exchange((31, 40), (0, 0)), Err((30, 40)));
    assert_eq!(pair.compare_exchange((30, 41), (0, 0)), Err((30, 40)));
    assert_eq!(pair.load(), (30, 40));
}

#[test]
fn fallback_concurrent_paired_increments_stay_consistent() {
    force_fallback();
    const THREADS: usize = 4;
    const PER_THREAD: u64 = 5_000;
    let pair = AtomicPair::new(0, 0);
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                let mut done = 0;
                while done < PER_THREAD {
                    let cur = pair.load();
                    assert_eq!(cur.0, cur.1, "halves must always match");
                    if pair.compare_exchange(cur, (cur.0 + 1, cur.1 + 1)).is_ok() {
                        done += 1;
                    }
                }
            });
        }
    });
    let total = THREADS as u64 * PER_THREAD;
    assert_eq!(pair.load(), (total, total));
}

#[test]
fn fallback_half_store_vs_wcas() {
    // The scenario the stripe lock exists for: a fast-path `store_first`
    // racing a pair-wide CAS must never let the CAS observe (or produce) a
    // torn pair.
    force_fallback();
    let pair = AtomicPair::new(0, 0);
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut era = 1u64;
            while !stop.load(Ordering::SeqCst) {
                pair.store_first(era, Ordering::SeqCst);
                era += 1;
            }
        });
        scope.spawn(|| {
            let mut expected_tag = 0u64;
            for _ in 0..20_000 {
                let cur = pair.load();
                assert_eq!(cur.1, expected_tag, "tag word must never tear");
                if pair.compare_exchange(cur, (cur.0, cur.1 + 1)).is_ok() {
                    expected_tag += 1;
                }
            }
            stop.store(true, Ordering::SeqCst);
        });
    });
    assert!(pair.load().1 > 0);
}
