//! Exponential backoff for contended retry loops.

use wfe_sync::{hint, thread};

/// Exponential backoff used by retry loops in the data-structure crate.
///
/// Backoff never appears on any path that the paper requires to be wait-free
/// (it would not endanger wait-freedom — the number of spins is bounded — but
/// the reclamation hot paths are already bounded by construction). It is used
/// by the benchmark data structures to reduce CAS contention, which is the
/// same role `std::hint::spin_loop` plays in the original C++ harness.
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// Maximum exponent: at most `2^MAX_SPIN_EXP` spin-loop hints per call.
    const MAX_SPIN_EXP: u32 = 6;
    /// Exponent past which [`Backoff::snooze`] yields to the OS scheduler.
    const MAX_YIELD_EXP: u32 = 10;

    /// Creates a fresh backoff counter.
    pub const fn new() -> Self {
        Self { step: 0 }
    }

    /// Resets the counter, e.g. after a successful CAS.
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Spins for a short, exponentially growing number of iterations.
    pub fn spin(&mut self) {
        for _ in 0..1u32 << self.step.min(Self::MAX_SPIN_EXP) {
            hint::spin_loop();
        }
        if self.step <= Self::MAX_SPIN_EXP {
            self.step += 1;
        }
    }

    /// Spins like [`Backoff::spin`], but once the exponent saturates it yields
    /// the current thread, which is friendlier when threads oversubscribe the
    /// available cores (the paper's 120-thread runs on 96 cores do exactly
    /// that).
    pub fn snooze(&mut self) {
        if self.step <= Self::MAX_SPIN_EXP {
            self.spin();
        } else {
            thread::yield_now();
            if self.step <= Self::MAX_YIELD_EXP {
                self.step += 1;
            }
        }
    }

    /// Returns `true` once spinning has saturated and the caller may want to
    /// park or switch strategies.
    pub fn is_completed(&self) -> bool {
        self.step > Self::MAX_YIELD_EXP
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_saturates() {
        let mut b = Backoff::new();
        for _ in 0..100 {
            b.spin();
        }
        assert_eq!(b.step, Backoff::MAX_SPIN_EXP + 1);
        b.reset();
        assert_eq!(b.step, 0);
    }

    #[test]
    fn snooze_eventually_completes() {
        let mut b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..1000 {
            b.snooze();
        }
        assert!(b.is_completed());
    }
}
