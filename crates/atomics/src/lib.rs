//! Low-level atomic substrate for the WFE suite.
//!
//! The Wait-Free Eras algorithm (Nikolaev & Ravindran, PPoPP 2020) assumes two
//! hardware capabilities beyond what ordinary lock-free code needs:
//!
//! * **wait-free fetch-and-add** — provided natively by `x86_64` and AArch64
//!   (≥ v8.1); Rust's [`core::sync::atomic::AtomicU64::fetch_add`] maps to it,
//! * **WCAS** — a *wide* compare-and-swap covering two adjacent 64-bit words
//!   (`cmpxchg16b` on `x86_64`, `casp` on AArch64). Stable Rust does not expose
//!   a 128-bit atomic, so this crate implements one.
//!
//! The crate also provides the small utilities every scheme in the suite
//! shares: [`CachePadded`] to keep per-thread records on distinct cache lines
//! and [`Backoff`] for contended retry loops.
//!
//! # WCAS portability
//!
//! On `x86_64` the pair operations use the `cmpxchg16b` instruction through
//! inline assembly (runtime-detected once; virtually every 64-bit x86 CPU
//! manufactured after 2006 supports it). On other architectures, or on the
//! exceedingly rare x86_64 CPU without `cmpxchg16b`, the implementation falls
//! back to a striped spin-lock. The fallback is *correct* but no longer
//! lock-free, mirroring the paper's remark that platforms without WCAS should
//! fall back to plain Hazard Eras semantics and forfeit wait-freedom.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod backoff;
mod pad;
mod wcas;

pub use backoff::Backoff;
pub use pad::CachePadded;
#[doc(hidden)]
pub use wcas::force_lock_fallback_for_tests;
pub use wcas::{wcas_is_lock_free, AtomicPair, Pair};
