//! Low-level atomic substrate for the WFE suite.
//!
//! The Wait-Free Eras algorithm (Nikolaev & Ravindran, PPoPP 2020) assumes two
//! hardware capabilities beyond what ordinary lock-free code needs:
//!
//! * **wait-free fetch-and-add** — provided natively by `x86_64` and AArch64
//!   (≥ v8.1); Rust's [`core::sync::atomic::AtomicU64::fetch_add`] maps to it,
//! * **WCAS** — a *wide* compare-and-swap covering two adjacent 64-bit words
//!   (`cmpxchg16b` on `x86_64`, `casp` on AArch64). Stable Rust does not expose
//!   a 128-bit atomic, so the suite implements one.
//!
//! Since the sync-layer refactor the primitives themselves — [`AtomicPair`],
//! [`CachePadded`] and the single-word atomics — live in the `wfe-sync` crate,
//! which compiles them against bare `core::sync::atomic` in normal builds and
//! against the deterministic virtual scheduler under `--cfg wfe_model` (see
//! `wfe-sync`'s crate docs). This crate re-exports them unchanged, so its
//! public API is exactly what it was before the refactor, and keeps the one
//! utility that is policy rather than primitive: [`Backoff`].
//!
//! # WCAS portability
//!
//! On `x86_64` the pair operations use the `cmpxchg16b` instruction through
//! inline assembly (runtime-detected once; virtually every 64-bit x86 CPU
//! manufactured after 2006 supports it). On other architectures, or on the
//! exceedingly rare x86_64 CPU without `cmpxchg16b`, the implementation falls
//! back to a striped spin-lock. The fallback is *correct* but no longer
//! lock-free, mirroring the paper's remark that platforms without WCAS should
//! fall back to plain Hazard Eras semantics and forfeit wait-freedom.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod backoff;

pub use backoff::Backoff;
#[doc(hidden)]
pub use wfe_sync::force_lock_fallback_for_tests;
pub use wfe_sync::{wcas_is_lock_free, AtomicPair, CachePadded, Pair};
