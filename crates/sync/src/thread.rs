//! Swappable `std::thread` subset.

/// Cooperatively yields the current thread.
///
/// Normal builds call [`std::thread::yield_now`]. Under `--cfg wfe_model`
/// this becomes a yield-flavored interleaving point on the virtual scheduler
/// (a no-op outside a model schedule).
#[inline]
pub fn yield_now() {
    #[cfg(not(wfe_model))]
    std::thread::yield_now();
    #[cfg(wfe_model)]
    shuttle::thread::yield_now();
}
