//! Swappable `core::hint` subset.

/// Spin-loop hint.
///
/// Normal builds emit the CPU pause instruction via [`core::hint::spin_loop`].
/// Under `--cfg wfe_model` a spin is a *yield-flavored* interleaving point:
/// re-running the spinner explores nothing, so the scheduler is asked to
/// prefer another runnable virtual thread (which is also what makes model
/// schedules containing spin-wait loops terminate).
#[inline]
pub fn spin_loop() {
    #[cfg(not(wfe_model))]
    core::hint::spin_loop();
    #[cfg(wfe_model)]
    shuttle::hint::spin_loop();
}
