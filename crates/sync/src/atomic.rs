//! The swappable atomic types.
//!
//! Normal builds re-export `core::sync::atomic` — this module costs nothing,
//! by construction. Under `--cfg wfe_model` each type becomes a
//! `#[repr(transparent)]` wrapper over the corresponding core atomic whose
//! every operation first crosses a [`shuttle`] interleaving point, handing the
//! deterministic scheduler a chance to switch virtual threads *before* the
//! access. Because the wrappers still perform real atomic operations, code
//! built with `wfe_model` that runs *outside* a model schedule (unit tests,
//! helper threads) behaves exactly like a normal build — `shuttle::point()`
//! is a no-op there.

#[cfg(not(wfe_model))]
pub use core::sync::atomic::{
    fence, AtomicBool, AtomicI64, AtomicPtr, AtomicU64, AtomicU8, AtomicUsize, Ordering,
};

#[cfg(wfe_model)]
pub use core::sync::atomic::Ordering;
#[cfg(wfe_model)]
pub use model::{fence, AtomicBool, AtomicI64, AtomicPtr, AtomicU64, AtomicU8, AtomicUsize};

#[cfg(wfe_model)]
mod model {
    use core::fmt;
    use core::sync::atomic::Ordering;

    /// An atomic fence is itself an interleaving point under the model.
    #[inline]
    pub fn fence(order: Ordering) {
        shuttle::point();
        core::sync::atomic::fence(order);
    }

    macro_rules! model_int_atomic {
        ($(#[$doc:meta])* $name:ident, $core:ty, $int:ty) => {
            $(#[$doc])*
            #[repr(transparent)]
            #[derive(Default)]
            pub struct $name {
                inner: $core,
            }

            impl $name {
                /// Creates a new atomic integer.
                pub const fn new(value: $int) -> Self {
                    Self { inner: <$core>::new(value) }
                }

                /// Loads the value (one interleaving point).
                #[inline]
                pub fn load(&self, order: Ordering) -> $int {
                    shuttle::point();
                    self.inner.load(order)
                }

                /// Stores `value` (one interleaving point).
                #[inline]
                pub fn store(&self, value: $int, order: Ordering) {
                    shuttle::point();
                    self.inner.store(value, order)
                }

                /// Swaps in `value`, returning the previous value.
                #[inline]
                pub fn swap(&self, value: $int, order: Ordering) -> $int {
                    shuttle::point();
                    self.inner.swap(value, order)
                }

                /// Compare-and-exchange, as in `core::sync::atomic`.
                #[inline]
                pub fn compare_exchange(
                    &self,
                    current: $int,
                    new: $int,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$int, $int> {
                    shuttle::point();
                    self.inner.compare_exchange(current, new, success, failure)
                }

                /// Weak compare-and-exchange (may fail spuriously on real
                /// hardware; under the model it never does, which only makes
                /// the explored schedules a subset of the real ones).
                #[inline]
                pub fn compare_exchange_weak(
                    &self,
                    current: $int,
                    new: $int,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$int, $int> {
                    shuttle::point();
                    self.inner.compare_exchange_weak(current, new, success, failure)
                }

                /// Atomic add, returning the previous value.
                #[inline]
                pub fn fetch_add(&self, value: $int, order: Ordering) -> $int {
                    shuttle::point();
                    self.inner.fetch_add(value, order)
                }

                /// Atomic subtract, returning the previous value.
                #[inline]
                pub fn fetch_sub(&self, value: $int, order: Ordering) -> $int {
                    shuttle::point();
                    self.inner.fetch_sub(value, order)
                }

                /// Atomic bitwise AND, returning the previous value.
                #[inline]
                pub fn fetch_and(&self, value: $int, order: Ordering) -> $int {
                    shuttle::point();
                    self.inner.fetch_and(value, order)
                }

                /// Atomic bitwise OR, returning the previous value.
                #[inline]
                pub fn fetch_or(&self, value: $int, order: Ordering) -> $int {
                    shuttle::point();
                    self.inner.fetch_or(value, order)
                }

                /// Consumes the atomic, returning the value (no point:
                /// exclusive access cannot race).
                #[inline]
                pub fn into_inner(self) -> $int {
                    self.inner.into_inner()
                }

                /// Mutable access to the value (no point: exclusive access).
                #[inline]
                pub fn get_mut(&mut self) -> &mut $int {
                    self.inner.get_mut()
                }
            }

            impl fmt::Debug for $name {
                fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                    // No interleaving point for Debug output.
                    fmt::Debug::fmt(&self.inner, f)
                }
            }

            impl From<$int> for $name {
                fn from(value: $int) -> Self {
                    Self::new(value)
                }
            }
        };
    }

    model_int_atomic!(
        /// Model-instrumented `AtomicUsize`.
        AtomicUsize,
        core::sync::atomic::AtomicUsize,
        usize
    );
    model_int_atomic!(
        /// Model-instrumented `AtomicU64`.
        AtomicU64,
        core::sync::atomic::AtomicU64,
        u64
    );
    model_int_atomic!(
        /// Model-instrumented `AtomicU8`.
        AtomicU8,
        core::sync::atomic::AtomicU8,
        u8
    );
    model_int_atomic!(
        /// Model-instrumented `AtomicI64`.
        AtomicI64,
        core::sync::atomic::AtomicI64,
        i64
    );

    /// Model-instrumented `AtomicBool`.
    #[repr(transparent)]
    #[derive(Default)]
    pub struct AtomicBool {
        inner: core::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Creates a new atomic boolean.
        pub const fn new(value: bool) -> Self {
            Self {
                inner: core::sync::atomic::AtomicBool::new(value),
            }
        }

        /// Loads the value (one interleaving point).
        #[inline]
        pub fn load(&self, order: Ordering) -> bool {
            shuttle::point();
            self.inner.load(order)
        }

        /// Stores `value` (one interleaving point).
        #[inline]
        pub fn store(&self, value: bool, order: Ordering) {
            shuttle::point();
            self.inner.store(value, order)
        }

        /// Swaps in `value`, returning the previous value.
        #[inline]
        pub fn swap(&self, value: bool, order: Ordering) -> bool {
            shuttle::point();
            self.inner.swap(value, order)
        }

        /// Compare-and-exchange, as in `core::sync::atomic`.
        #[inline]
        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            shuttle::point();
            self.inner.compare_exchange(current, new, success, failure)
        }

        /// Weak compare-and-exchange.
        #[inline]
        pub fn compare_exchange_weak(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            shuttle::point();
            self.inner
                .compare_exchange_weak(current, new, success, failure)
        }

        /// Consumes the atomic, returning the value.
        #[inline]
        pub fn into_inner(self) -> bool {
            self.inner.into_inner()
        }
    }

    impl fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            fmt::Debug::fmt(&self.inner, f)
        }
    }

    /// Model-instrumented `AtomicPtr<T>`.
    #[repr(transparent)]
    pub struct AtomicPtr<T> {
        inner: core::sync::atomic::AtomicPtr<T>,
    }

    impl<T> AtomicPtr<T> {
        /// Creates a new atomic pointer.
        pub const fn new(value: *mut T) -> Self {
            Self {
                inner: core::sync::atomic::AtomicPtr::new(value),
            }
        }

        /// Loads the pointer (one interleaving point).
        #[inline]
        pub fn load(&self, order: Ordering) -> *mut T {
            shuttle::point();
            self.inner.load(order)
        }

        /// Stores `value` (one interleaving point).
        #[inline]
        pub fn store(&self, value: *mut T, order: Ordering) {
            shuttle::point();
            self.inner.store(value, order)
        }

        /// Swaps in `value`, returning the previous pointer.
        #[inline]
        pub fn swap(&self, value: *mut T, order: Ordering) -> *mut T {
            shuttle::point();
            self.inner.swap(value, order)
        }

        /// Compare-and-exchange, as in `core::sync::atomic`.
        #[inline]
        pub fn compare_exchange(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            shuttle::point();
            self.inner.compare_exchange(current, new, success, failure)
        }

        /// Consumes the atomic, returning the pointer.
        #[inline]
        pub fn into_inner(self) -> *mut T {
            self.inner.into_inner()
        }
    }

    impl<T> fmt::Debug for AtomicPtr<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            fmt::Debug::fmt(&self.inner, f)
        }
    }
}
