//! Cache-line padding.

use core::fmt;
use core::ops::{Deref, DerefMut};

/// Pads and aligns a value to (at least) the size of a cache line.
///
/// Per-thread records that are written by their owner on every operation
/// (reservations, counters, retire-list heads) must not share a cache line
/// with records owned by other threads, otherwise the resulting false sharing
/// dominates the cost of every scheme in the suite. The alignment of 128
/// bytes covers the adjacent-line prefetcher on Intel CPUs, matching the
/// convention used by `crossbeam-utils`.
#[derive(Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

// SAFETY: padding adds no shared state — `CachePadded<T>` is exactly a `T`
// at a stricter alignment, so it is Send/Sync precisely when `T` is.
unsafe impl<T: Send> Send for CachePadded<T> {}
// SAFETY: as above — alignment does not change thread-safety of the payload.
unsafe impl<T: Sync> Sync for CachePadded<T> {}

impl<T> CachePadded<T> {
    /// Wraps `value` in cache-line padding.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Consumes the padding wrapper, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::mem::{align_of, size_of};

    #[test]
    fn alignment_is_at_least_128() {
        assert!(align_of::<CachePadded<u8>>() >= 128);
        assert!(size_of::<CachePadded<u8>>() >= 128);
        assert!(align_of::<CachePadded<[u64; 32]>>() >= 128);
    }

    #[test]
    fn deref_roundtrip() {
        let mut padded = CachePadded::new(7u64);
        assert_eq!(*padded, 7);
        *padded = 9;
        assert_eq!(padded.into_inner(), 9);
    }

    #[test]
    fn adjacent_elements_do_not_share_lines() {
        let arr = [CachePadded::new(0u8), CachePadded::new(1u8)];
        let a = &arr[0] as *const _ as usize;
        let b = &arr[1] as *const _ as usize;
        assert!(b - a >= 128);
    }

    #[test]
    fn debug_and_from() {
        let padded: CachePadded<u32> = 3u32.into();
        assert_eq!(format!("{padded:?}"), "CachePadded(3)");
    }
}
