//! A double-width (128-bit) atomic built from two adjacent 64-bit words.
//!
//! The WFE algorithm stores two kinds of 16-byte records that must be updated
//! with a single wide compare-and-swap (WCAS):
//!
//! * a *reservation*: `(era, tag)`,
//! * a slow-path *result*: `(pointer, era-or-tag)`.
//!
//! Both are represented here as an [`AtomicPair`]: two adjacent `AtomicU64`s
//! aligned to 16 bytes. The halves stay individually addressable because the
//! fast path of the algorithm only ever touches the first word (the era),
//! while the slow path and the helpers use WCAS on the whole pair.

use core::fmt;

use crate::atomic::{AtomicBool, AtomicU64, Ordering};
use crate::pad::CachePadded;

/// A pair of 64-bit words updated together by [`AtomicPair::compare_exchange`].
///
/// `.0` is the *first* word (low half, e.g. an era) and `.1` the *second*
/// (high half, e.g. a tag).
pub type Pair = (u64, u64);

/// Returns `true` when the running CPU executes WCAS with a native
/// instruction (`cmpxchg16b`), i.e. pair operations are lock-free and the
/// wait-freedom argument of the paper holds.
///
/// When this returns `false` the [`AtomicPair`] operations transparently fall
/// back to a striped spin-lock: still linearizable, no longer lock-free.
pub fn wcas_is_lock_free() -> bool {
    native_wcas_available()
}

// ---------------------------------------------------------------------------
// Runtime detection
// ---------------------------------------------------------------------------

/// Tri-state cache for the runtime `cmpxchg16b` detection: 0 = unknown,
/// 1 = available, 2 = unavailable.
///
/// Deliberately a *raw* core atomic, not a [`crate::atomic`] one: detection
/// is a constant after the first call, so modeling it would only add a
/// meaningless interleaving point to every pair operation.
static NATIVE_WCAS: core::sync::atomic::AtomicU8 = core::sync::atomic::AtomicU8::new(0);

#[inline]
fn native_wcas_available() -> bool {
    // ORDER: feature-detection memo; any thread recomputes the same value.
    match NATIVE_WCAS.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let avail = detect_native_wcas();
            NATIVE_WCAS.store(if avail { 1 } else { 2 }, Ordering::Relaxed); // ORDER: feature-detection memo; any thread recomputes the same value.
            avail
        }
    }
}

#[cfg(all(target_arch = "x86_64", not(any(miri, wfe_portable_wcas))))]
fn detect_native_wcas() -> bool {
    std::is_x86_feature_detected!("cmpxchg16b")
}

/// On every architecture other than `x86_64` the native-WCAS inline assembly
/// below is not compiled, so detection reports "unavailable" at compile time
/// and all pair operations take the portable striped-lock fallback. The
/// fallback is linearizable but not lock-free: as the crate docs explain,
/// such targets keep WFE *correct* while forfeiting the wait-freedom bound
/// (the paper's remark about platforms without WCAS). An AArch64 `casp` fast
/// path would slot in here behind another `target_arch` gate.
///
/// The same stub also serves two portable configurations on x86_64 itself:
/// under Miri (whose interpreter has no inline assembly) and under
/// `--cfg wfe_portable_wcas` (a build-time switch so the fallback can be
/// exercised — and model-checked — on hardware that would normally take the
/// native path).
#[cfg(any(not(target_arch = "x86_64"), miri, wfe_portable_wcas))]
fn detect_native_wcas() -> bool {
    false
}

/// Forces every *subsequent* pair operation onto the portable striped-lock
/// fallback, as if the CPU had no native WCAS.
///
/// This is a test-only hook: mixing native and lock-based operations on the
/// same [`AtomicPair`] is not linearizable, so this must be called before any
/// pair is touched — in practice from a dedicated test process (see
/// `crates/atomics/tests/lock_fallback.rs`). It is hidden from docs and must
/// not be called from production code.
#[doc(hidden)]
pub fn force_lock_fallback_for_tests() {
    NATIVE_WCAS.store(2, Ordering::Relaxed); // ORDER: feature-detection memo; the test forces a fixed value before sharing.
}

// ---------------------------------------------------------------------------
// The AtomicPair type
// ---------------------------------------------------------------------------

/// Two adjacent `u64` words that can be compare-and-swapped as one unit.
///
/// All pair-wide operations behave as `SeqCst`; the single-word accessors take
/// an explicit [`Ordering`] just like the standard atomics.
#[repr(C, align(16))]
pub struct AtomicPair {
    first: AtomicU64,
    second: AtomicU64,
}

impl AtomicPair {
    /// Creates a pair initialised to `(first, second)`.
    pub const fn new(first: u64, second: u64) -> Self {
        Self {
            first: AtomicU64::new(first),
            second: AtomicU64::new(second),
        }
    }

    /// Loads the first word.
    #[inline]
    pub fn load_first(&self, order: Ordering) -> u64 {
        self.first.load(order)
    }

    /// Loads the second word.
    #[inline]
    pub fn load_second(&self, order: Ordering) -> u64 {
        self.second.load(order)
    }

    /// Stores the first word, leaving the second untouched.
    ///
    /// This is the fast-path operation of Hazard Eras / WFE (publishing a new
    /// era while the slow-path tag stays the same).
    #[inline]
    pub fn store_first(&self, value: u64, order: Ordering) {
        if native_wcas_available() {
            self.first.store(value, order);
        } else {
            // Under the lock-based fallback every *write* must hold the
            // stripe lock so that a concurrent pair-wide CAS never observes a
            // half-updated pair between its read and its write.
            let _guard = stripe_lock(self as *const _ as usize);
            self.first.store(value, order);
        }
    }

    /// Stores the second word, leaving the first untouched.
    #[inline]
    pub fn store_second(&self, value: u64, order: Ordering) {
        if native_wcas_available() {
            self.second.store(value, order);
        } else {
            let _guard = stripe_lock(self as *const _ as usize);
            self.second.store(value, order);
        }
    }

    /// Atomically loads both words as one observation.
    #[inline]
    pub fn load(&self) -> Pair {
        if native_wcas_available() {
            // The inline-asm path bypasses the instrumented atomics, so it
            // must announce its own interleaving point under the model.
            crate::point();
            // A compare-exchange whose expected value is an arbitrary guess
            // returns the current contents whether it succeeds or not, which
            // is the standard way to perform a 16-byte atomic load with
            // `cmpxchg16b`. Using (0, 0) as both expected and new value makes
            // a "successful" exchange write back the value that was already
            // there.
            // SAFETY: `self.as_ptr()` is 16-byte aligned (repr(C, align(16)))
            // and `native_wcas_available()` verified cmpxchg16b support.
            unsafe { cmpxchg16b(self.as_ptr(), (0, 0), (0, 0)).0 }
        } else {
            let _guard = stripe_lock(self as *const _ as usize);
            (
                self.first.load(Ordering::SeqCst),
                self.second.load(Ordering::SeqCst),
            )
        }
    }

    /// Atomically stores both words.
    pub fn store(&self, value: Pair) {
        if native_wcas_available() {
            let mut current = self.load();
            loop {
                match self.compare_exchange(current, value) {
                    Ok(_) => return,
                    Err(observed) => current = observed,
                }
            }
        } else {
            let _guard = stripe_lock(self as *const _ as usize);
            self.first.store(value.0, Ordering::SeqCst);
            self.second.store(value.1, Ordering::SeqCst);
        }
    }

    /// Wide compare-and-swap: if the pair equals `current`, replace it with
    /// `new` and return `Ok(current)`; otherwise return `Err(observed)`.
    ///
    /// Pair-wide operations are always sequentially consistent — `lock
    /// cmpxchg16b` is a full barrier — which is what the (SC) pseudo-code of
    /// the paper assumes for its WCAS steps.
    #[inline]
    pub fn compare_exchange(&self, current: Pair, new: Pair) -> Result<Pair, Pair> {
        if native_wcas_available() {
            crate::point(); // see `load`: the asm path needs its own point
                            // SAFETY: `self.as_ptr()` is 16-byte aligned (repr(C, align(16)))
                            // and `native_wcas_available()` verified cmpxchg16b support.
            let (observed, ok) = unsafe { cmpxchg16b(self.as_ptr(), current, new) };
            if ok {
                Ok(observed)
            } else {
                Err(observed)
            }
        } else {
            // The stripe lock serializes pair-wide operations against each
            // other and against half-word *writes*, but half-word *reads*
            // (`load_first`/`load_second` on the fast path) deliberately skip
            // it. Those unlocked readers only get an ordering edge from the
            // accesses themselves, so everything under the lock must be
            // `SeqCst` to honour the pair-wide SC contract documented above —
            // `Relaxed` would let a weakly-ordered target (the very targets
            // that take this fallback) publish a reservation era that a
            // concurrent unlocked scan does not observe.
            let _guard = stripe_lock(self as *const _ as usize);
            let observed = (
                self.first.load(Ordering::SeqCst),
                self.second.load(Ordering::SeqCst),
            );
            if observed == current {
                self.first.store(new.0, Ordering::SeqCst);
                self.second.store(new.1, Ordering::SeqCst);
                Ok(observed)
            } else {
                Err(observed)
            }
        }
    }

    #[inline]
    fn as_ptr(&self) -> *mut Pair {
        self as *const Self as *mut Pair
    }
}

impl Default for AtomicPair {
    fn default() -> Self {
        Self::new(0, 0)
    }
}

impl fmt::Debug for AtomicPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (a, b) = self.load();
        f.debug_struct("AtomicPair")
            .field("first", &a)
            .field("second", &b)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Native cmpxchg16b
// ---------------------------------------------------------------------------

/// Performs `lock cmpxchg16b` on `dst`.
///
/// Returns the previously stored pair and whether the exchange succeeded.
///
/// # Safety
///
/// `dst` must be valid for reads and writes, 16-byte aligned, and only ever
/// accessed through atomic operations. The caller must have verified that the
/// CPU supports `cmpxchg16b` (see [`native_wcas_available`]).
#[cfg(all(target_arch = "x86_64", not(any(miri, wfe_portable_wcas))))]
#[inline]
unsafe fn cmpxchg16b(dst: *mut Pair, current: Pair, new: Pair) -> (Pair, bool) {
    debug_assert!(
        dst as usize % 16 == 0,
        "WCAS target must be 16-byte aligned"
    );
    let (cur_lo, cur_hi) = current;
    let (new_lo, new_hi) = new;
    let prev_lo: u64;
    let prev_hi: u64;
    let ok: u8;
    // `rbx` (the implicit low word of the replacement value) cannot be named
    // as a Rust asm operand, so the low word is stashed in `rsi` and
    // exchanged with `rbx` around the instruction. Every other operand is
    // pinned to a named register too: with generic `in(reg)` / `out(reg_byte)`
    // classes the register allocator is free to pick `rbx`/`bl` for them —
    // it does not know the template touches `rbx` — which corrupts the
    // operand mid-template (observed in release builds as `cmpxchg16b [rbx]`
    // executing after `rbx` was swapped away).
    // SAFETY: the caller guarantees `dst` is valid, 16-byte aligned, only
    // accessed atomically, and that the CPU supports `cmpxchg16b`; `rbx` is
    // saved and restored around the instruction as described above.
    unsafe {
        core::arch::asm!(
            "xchg rsi, rbx",
            "lock cmpxchg16b xmmword ptr [rdi]",
            "sete r8b",
            "mov rbx, rsi",
            in("rdi") dst,
            inout("rsi") new_lo => _,
            out("r8b") ok,
            in("rcx") new_hi,
            inout("rax") cur_lo => prev_lo,
            inout("rdx") cur_hi => prev_hi,
            options(nostack),
        );
    }
    ((prev_lo, prev_hi), ok != 0)
}

#[cfg(any(not(target_arch = "x86_64"), miri, wfe_portable_wcas))]
#[inline]
// SAFETY: never called — `native_wcas_available()` reports false in every
// configuration that compiles this stub, so it exists purely to satisfy
// name resolution.
unsafe fn cmpxchg16b(_dst: *mut Pair, _current: Pair, _new: Pair) -> (Pair, bool) {
    unreachable!("native WCAS is never reported as available in portable builds")
}

// ---------------------------------------------------------------------------
// Striped spin-lock fallback
// ---------------------------------------------------------------------------

const STRIPES: usize = 64;

struct StripeLock(CachePadded<AtomicBool>);

#[allow(clippy::declare_interior_mutable_const)]
const STRIPE_INIT: StripeLock = StripeLock(CachePadded::new(AtomicBool::new(false)));

static STRIPE_LOCKS: [StripeLock; STRIPES] = [STRIPE_INIT; STRIPES];

struct StripeGuard {
    lock: &'static AtomicBool,
}

impl Drop for StripeGuard {
    fn drop(&mut self) {
        self.lock.store(false, Ordering::Release); // ORDER: releases the stripe; pairs with the Acquire lock acquisition.
    }
}

/// Acquires the spin-lock stripe guarding the pair at `addr`.
fn stripe_lock(addr: usize) -> StripeGuard {
    // Pairs are 16-byte aligned, so drop the low bits before hashing to
    // spread distinct pairs over distinct stripes.
    let stripe = (addr >> 4) % STRIPES;
    let lock = &STRIPE_LOCKS[stripe].0;
    while lock
        .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed) // ORDER: success acquires the stripe (pairs with the Release unlock); failure just spins.
        .is_err()
    {
        crate::hint::spin_loop();
    }
    StripeGuard { lock }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering::SeqCst;

    #[test]
    fn native_wcas_is_available_on_x86_64() {
        if cfg!(all(
            target_arch = "x86_64",
            not(any(miri, wfe_portable_wcas))
        )) {
            assert!(wcas_is_lock_free());
        } else {
            assert!(!wcas_is_lock_free());
        }
    }

    #[test]
    fn pair_is_16_byte_aligned() {
        assert_eq!(core::mem::align_of::<AtomicPair>(), 16);
        assert_eq!(core::mem::size_of::<AtomicPair>(), 16);
    }

    #[test]
    fn load_store_roundtrip() {
        let pair = AtomicPair::new(1, 2);
        assert_eq!(pair.load(), (1, 2));
        pair.store((3, 4));
        assert_eq!(pair.load(), (3, 4));
        pair.store_first(9, SeqCst);
        assert_eq!(pair.load(), (9, 4));
        pair.store_second(11, SeqCst);
        assert_eq!(pair.load(), (9, 11));
        assert_eq!(pair.load_first(SeqCst), 9);
        assert_eq!(pair.load_second(SeqCst), 11);
    }

    #[test]
    fn compare_exchange_success_and_failure() {
        let pair = AtomicPair::new(10, 20);
        assert_eq!(pair.compare_exchange((10, 20), (30, 40)), Ok((10, 20)));
        assert_eq!(pair.load(), (30, 40));
        // Wrong first word.
        assert_eq!(pair.compare_exchange((31, 40), (0, 0)), Err((30, 40)));
        // Wrong second word.
        assert_eq!(pair.compare_exchange((30, 41), (0, 0)), Err((30, 40)));
        assert_eq!(pair.load(), (30, 40));
    }

    #[test]
    fn load_of_zero_pair_does_not_corrupt() {
        // The cmpxchg16b-based load uses (0, 0) as its guess; make sure a pair
        // that actually contains zeros stays intact and loads correctly.
        let pair = AtomicPair::new(0, 0);
        assert_eq!(pair.load(), (0, 0));
        assert_eq!(pair.compare_exchange((0, 0), (5, 6)), Ok((0, 0)));
        assert_eq!(pair.load(), (5, 6));
    }

    #[test]
    fn debug_format_shows_both_words() {
        let pair = AtomicPair::new(7, 8);
        let s = format!("{pair:?}");
        assert!(s.contains('7') && s.contains('8'));
    }

    #[test]
    fn concurrent_paired_increments_stay_consistent() {
        // Each successful WCAS advances both halves together; if WCAS were not
        // atomic across the two words the halves would drift apart.
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 20_000;
        let pair = AtomicPair::new(0, 0);
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    let mut done = 0;
                    while done < PER_THREAD {
                        let cur = pair.load();
                        assert_eq!(cur.0, cur.1, "halves must always match");
                        if pair.compare_exchange(cur, (cur.0 + 1, cur.1 + 1)).is_ok() {
                            done += 1;
                        }
                    }
                });
            }
        });
        assert_eq!(
            pair.load(),
            (THREADS as u64 * PER_THREAD, THREADS as u64 * PER_THREAD)
        );
    }

    #[test]
    fn concurrent_half_store_vs_wcas() {
        // One thread publishes eras in the first word (fast path), another
        // repeatedly WCASes the whole pair (helper). The WCAS must only
        // succeed when both words match, so the second word — only ever
        // written by WCAS — must never skip values.
        let pair = AtomicPair::new(0, 0);
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let mut era = 1u64;
                while !stop.load(SeqCst) {
                    pair.store_first(era, SeqCst);
                    era += 1;
                }
            });
            scope.spawn(|| {
                let mut expected_tag = 0u64;
                for _ in 0..50_000 {
                    let cur = pair.load();
                    assert_eq!(cur.1, expected_tag);
                    if pair.compare_exchange(cur, (cur.0, cur.1 + 1)).is_ok() {
                        expected_tag += 1;
                    }
                }
                stop.store(true, SeqCst);
            });
        });
        assert!(pair.load().1 > 0);
    }
}
