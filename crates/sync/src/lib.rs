//! Swappable synchronization layer for the WFE suite.
//!
//! Every shared-memory primitive the suite uses comes from this crate:
//!
//! * [`atomic`] — `AtomicUsize`/`AtomicU64`/`AtomicU8`/`AtomicI64`/
//!   `AtomicBool`/`AtomicPtr` + `fence` + `Ordering`,
//! * [`hint::spin_loop`] and [`thread::yield_now`] — the two scheduling
//!   hints contended loops use,
//! * [`AtomicPair`] — the project's 128-bit WCAS (`lock cmpxchg16b` with a
//!   striped-lock fallback),
//! * [`EraSource`] — the injectable era/epoch clock of the era-based
//!   schemes,
//! * [`CachePadded`] — cache-line isolation for per-thread records.
//!
//! The layer has exactly two personalities:
//!
//! * **Normal builds** re-export `core::sync::atomic` and `core::hint`
//!   directly — zero cost by construction, verified empirically by the
//!   `guard_overhead`/`smr_ops` benchmarks.
//! * **`--cfg wfe_model`** (set via `RUSTFLAGS="--cfg wfe_model"`) swaps in
//!   `#[repr(transparent)]` wrappers that announce an interleaving point to
//!   the vendored deterministic scheduler (`vendor/shuttle`) before every
//!   operation. Under a model schedule (`shuttle::check_random` etc.) the
//!   scheduler then enumerates or samples thread interleavings *per atomic
//!   step*, deterministically and replayably from a seed. Outside a schedule
//!   the points are no-ops and the wrappers behave like the real atomics.
//!
//! The result: the same source text is production code and model-checkable
//! code, and the model checks the *shipped* implementation, not a
//! transliteration of it.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod atomic;
mod era;
pub mod hint;
mod pad;
pub mod thread;
mod wcas;

pub use era::EraSource;
pub use pad::CachePadded;
#[doc(hidden)]
pub use wcas::force_lock_fallback_for_tests;
pub use wcas::{wcas_is_lock_free, AtomicPair, Pair};

/// An explicit interleaving point.
///
/// Code whose shared-memory effects do not go through [`atomic`] (e.g. the
/// `cmpxchg16b` inline assembly inside [`AtomicPair`]) calls this before the
/// effect. Normal builds compile it to nothing; under `--cfg wfe_model` it
/// hands the virtual scheduler a switch opportunity (and is a no-op when the
/// calling thread is not part of a model schedule).
#[inline]
pub fn point() {
    #[cfg(wfe_model)]
    shuttle::point();
}
