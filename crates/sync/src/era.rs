//! The injectable era clock.

use core::fmt;

use crate::atomic::{AtomicU64, Ordering};
use crate::pad::CachePadded;

/// A monotone 64-bit era/epoch clock, the global timestamp source of every
/// era-based scheme in the suite (EBR's epoch, HE/IBR's era, WFE's era).
///
/// Two properties matter enough to make this a type instead of a bare
/// `AtomicU64`:
///
/// * **swappable**: the counter is a [`crate::atomic`] atomic, so under
///   `--cfg wfe_model` every era read and bump is an interleaving point —
///   era-vs-scan races (the core race surface of HE/IBR/WFE) become
///   schedulable, and model tests can *inject* clock values via [`set`] /
///   [`advance`] from any virtual thread to pin the exact era a scenario
///   needs;
/// * **padded**: the clock is written by every thread that retires, so it
///   must own its cache line.
///
/// [`set`]: EraSource::set
/// [`advance`]: EraSource::advance
pub struct EraSource {
    clock: CachePadded<AtomicU64>,
}

impl EraSource {
    /// Creates a clock starting at `initial` (the suite starts eras at 1 so
    /// that 0 can mean "no reservation").
    pub const fn new(initial: u64) -> Self {
        Self {
            clock: CachePadded::new(AtomicU64::new(initial)),
        }
    }

    /// Reads the current era.
    #[inline]
    pub fn load(&self, order: Ordering) -> u64 {
        self.clock.load(order)
    }

    /// Bumps the era by one, returning the *previous* value.
    #[inline]
    pub fn advance(&self, order: Ordering) -> u64 {
        self.clock.fetch_add(1, order)
    }

    /// Overwrites the clock. Test/injection hook: production schemes only
    /// ever [`advance`](Self::advance) (the clock must be monotone for the
    /// schemes' snapshot arguments to hold).
    #[inline]
    pub fn set(&self, value: u64, order: Ordering) {
        self.clock.store(value, order)
    }
}

impl fmt::Debug for EraSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("EraSource")
            .field(&self.load(Ordering::Relaxed)) // ORDER: Debug formatting only.
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::Ordering::{Acquire, Relaxed, SeqCst};

    #[test]
    fn starts_where_told_and_advances() {
        let era = EraSource::new(1);
        assert_eq!(era.load(Acquire), 1);
        assert_eq!(era.advance(SeqCst), 1);
        assert_eq!(era.load(Acquire), 2);
        era.set(100, Relaxed);
        assert_eq!(era.load(Acquire), 100);
    }

    #[test]
    fn owns_its_cache_line() {
        assert!(core::mem::align_of::<EraSource>() >= 128);
    }

    #[test]
    fn debug_shows_the_value() {
        let era = EraSource::new(7);
        assert_eq!(format!("{era:?}"), "EraSource(7)");
    }
}
