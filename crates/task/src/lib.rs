//! Async-native reclamation: the task-grain layer over [`HandlePool`].
//!
//! The paper's deployment model is one long-lived handle per OS thread. An
//! async runtime breaks that twice over: a *task* is the unit of work, it
//! migrates between worker threads at every `.await`, and it can stay parked
//! at a suspension point for arbitrarily long. The ingredients below close
//! the gap:
//!
//! * [`TaskHandle`] — a **`Send`-able** handle a task owns for its whole
//!   life, checked out of a [`HandlePool`] in O(1) and parked back on drop.
//!   It moves with the task across worker threads, and its pending retired
//!   batch, registry slot and leased [`Shield`]s move with it.
//! * [`AsyncGuard`] — the operation bracket, **scoped to one poll**. It is
//!   deliberately `!Send`, so holding it across an `.await` makes the task
//!   future `!Send` and executor spawns reject it *at compile time* (see the
//!   `compile_fail` test below). Between polls the task holds no
//!   protection — which is exactly why a parked task cannot stall
//!   reclamation the way a parked EBR thread does.
//! * [`TaskHandle::with_guard`] — the poll-bracket API: runs a synchronous
//!   closure under a fresh guard. The closure shape makes the
//!   bracket-per-poll discipline the path of least resistance; state that
//!   must survive the poll travels in owned [`Shield`] leases and in values
//!   copied out of [`Protected`](wfe_reclaim::Protected) pointers.
//!
//! ```
//! use std::sync::Arc;
//! use wfe_reclaim::{Atomic, HandlePool, He, Reclaimer, ReclaimerConfig};
//! use wfe_task::TaskHandle;
//!
//! let domain = He::with_config(ReclaimerConfig::with_max_threads(4));
//! let pool = HandlePool::new(Arc::clone(&domain));
//! let rt = mini_rt::Runtime::new(2);
//!
//! let task = {
//!     let pool = Arc::clone(&pool);
//!     rt.spawn(async move {
//!         let mut task = TaskHandle::acquire(&pool).await;
//!         let node = task.with_guard(|guard| guard.alloc(7u64));
//!         let root: Atomic<u64> = Atomic::new(node);
//!         let mut shield = task.shield::<u64>().unwrap(); // survives awaits
//!         mini_rt::yield_now().await; // no protection held across this
//!         task.with_guard(|guard| {
//!             let value = shield.protect(&guard, &root, None);
//!             // SAFETY: `shield` does not re-protect while `value` is live.
//!             assert_eq!(unsafe { value.as_ref() }, Some(&7));
//!         });
//!         drop(shield);
//!     }) // dropping the TaskHandle parks the scheme handle for the next task
//! };
//! rt.block_on(task);
//! assert_eq!(pool.stats().parked, 1);
//! ```
//!
//! # Why `AsyncGuard` is `!Send` (and what that buys)
//!
//! An operation bracket pins scheme state: EBR pins its epoch for the whole
//! bracket, WFE/HE publish era reservations. If a bracket could span an
//! `.await`, a task parked indefinitely would stall reclamation — the exact
//! pathology the paper's stalled-thread analysis is about, reintroduced at
//! task grain. `AsyncGuard` wraps the suite's [`Guard`], which carries a raw
//! pointer to the handle and is therefore `!Send`; a future holding one
//! across a suspension point is `!Send` too, and a work-stealing executor's
//! `spawn` (e.g. `mini_rt::Runtime::spawn`) rejects it:
//!
//! ```compile_fail
//! use std::sync::Arc;
//! use wfe_reclaim::{HandlePool, He, Reclaimer, ReclaimerConfig};
//! use wfe_task::TaskHandle;
//!
//! let domain = He::with_config(ReclaimerConfig::with_max_threads(4));
//! let pool = HandlePool::new(Arc::clone(&domain));
//! let rt = mini_rt::Runtime::new(2);
//! rt.spawn(async move {
//!     let mut task = TaskHandle::check_out(&pool).unwrap();
//!     let guard = task.enter(); // `AsyncGuard` is `!Send`...
//!     mini_rt::yield_now().await; // ERROR: ...so this future is `!Send`
//!     drop(guard);
//! });
//! ```
//!
//! The same holds for a [`Protected`](wfe_reclaim::Protected) pointer — it
//! borrows the guard, so it cannot cross the `.await` either:
//!
//! ```compile_fail
//! use std::sync::Arc;
//! use wfe_reclaim::{Atomic, HandlePool, He, Reclaimer, ReclaimerConfig};
//! use wfe_task::TaskHandle;
//!
//! let domain = He::with_config(ReclaimerConfig::with_max_threads(4));
//! let pool = HandlePool::new(Arc::clone(&domain));
//! let rt = mini_rt::Runtime::new(2);
//! rt.spawn(async move {
//!     let mut task = TaskHandle::check_out(&pool).unwrap();
//!     let mut shield = task.shield::<u64>().unwrap();
//!     let root: Atomic<u64> = Atomic::default();
//!     let guard = task.enter();
//!     let value = shield.protect(&guard, &root, None);
//!     mini_rt::yield_now().await; // ERROR: `value` borrows the `!Send` guard
//!     let _ = value;
//! });
//! ```
//!
//! What *does* cross `.await` safely: the [`TaskHandle`] itself (`Send`
//! whenever the scheme handle is, which the [`Reclaimer`] contract
//! requires), owned [`Shield`] leases (`Send + Sync`), and plain values read
//! under a past bracket.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use core::future::Future;
use core::ops::Deref;
use core::pin::Pin;
use core::task::{Context, Poll};
use std::sync::Arc;

use wfe_reclaim::{
    Guard, Handle, HandlePool, PooledHandle, RawHandle, Reclaimer, Shield, ShieldError,
};

/// A `Send`-able per-task reclamation handle, checked out of a
/// [`HandlePool`] and parked back when dropped.
///
/// The handle is owned by the task for its entire life, so it travels with
/// the task across worker threads and across `.await` points; protection is
/// only ever taken through a poll-scoped [`AsyncGuard`] (see
/// [`with_guard`](Self::with_guard) / [`enter`](Self::enter)).
///
/// Dropping the `TaskHandle` checks the scheme handle back into the pool;
/// parking runs `end_op`, so a parked handle never pins memory. [`Shield`]s
/// leased from the handle are owned values — drop them before releasing the
/// handle, or their slots stay leased for the next task that revives it.
pub struct TaskHandle<R: Reclaimer> {
    handle: PooledHandle<R>,
}

// Compile-time facts, stated as the `static_assertions` idiom (const fns,
// no dependency): a `TaskHandle` is `Send` for every scheme — this is the
// property the whole crate exists to provide — because `Reclaimer::Handle`
// is `Send` by contract and parking/reviving moves the handle wholesale.
const fn _assert_send<T: Send>() {}
#[allow(dead_code)] // instantiated implicitly: the bound must hold for all R
const fn _task_handle_is_send_for_every_scheme<R: Reclaimer>() {
    _assert_send::<TaskHandle<R>>();
}

impl<R: Reclaimer> TaskHandle<R> {
    /// Checks a handle out of `pool` without waiting. Returns `None` when
    /// the pool is empty and the registry is exhausted — transient while a
    /// concurrent check-in is mid-park, so async callers should prefer
    /// [`acquire`](Self::acquire).
    pub fn check_out(pool: &Arc<HandlePool<R>>) -> Option<Self> {
        pool.check_out().map(|handle| Self { handle })
    }

    /// Checks a handle out of `pool`, cooperatively yielding (one
    /// self-wake per attempt, executor-agnostic) while the pool and registry
    /// are exhausted. At full registry occupancy this resolves as soon as a
    /// concurrent task parks its handle.
    pub async fn acquire(pool: &Arc<HandlePool<R>>) -> Self {
        loop {
            if let Some(task) = Self::check_out(pool) {
                return task;
            }
            YieldOnce { yielded: false }.await;
        }
    }

    /// Opens a poll-scoped operation bracket. The returned [`AsyncGuard`] is
    /// `!Send`: it must be dropped before the next `.await`, and the
    /// compiler enforces it for any future an executor requires to be
    /// `Send` (see the [module docs](self)).
    ///
    /// Prefer [`with_guard`](Self::with_guard), which scopes the bracket
    /// syntactically.
    pub fn enter(&mut self) -> AsyncGuard<'_, R> {
        AsyncGuard {
            guard: self.handle.enter(),
        }
    }

    /// The poll-bracket API: runs `f` under a fresh [`AsyncGuard`], closing
    /// the bracket when the closure returns. The closure is synchronous by
    /// construction — there is no way to `.await` inside it — so protection
    /// taken here is provably poll-scoped.
    ///
    /// State that must survive the poll leaves the closure as the return
    /// value (copied out of protected blocks) or lives in owned [`Shield`]
    /// leases taken with [`shield`](Self::shield) before the bracket.
    pub fn with_guard<T>(&mut self, f: impl for<'g> FnOnce(AsyncGuard<'g, R>) -> T) -> T {
        f(self.enter())
    }

    /// Leases an owned reservation slot from the underlying handle.
    ///
    /// The [`Shield`] is `Send + Sync` and independent of any guard, so it
    /// carries reservation *capacity* (not protection — that is always
    /// poll-scoped) across `.await` points.
    pub fn shield<T>(&self) -> Result<Shield<T, R::Handle>, ShieldError> {
        Handle::shield(&*self.handle)
    }

    /// Dense thread-slot id of the underlying scheme handle.
    pub fn thread_id(&self) -> usize {
        self.handle.thread_id()
    }

    /// The pool this handle parks into on drop.
    pub fn pool(&self) -> &Arc<HandlePool<R>> {
        self.handle.pool()
    }

    /// Escape hatch to the underlying scheme handle, for driving the suite's
    /// synchronous data-structure operations (`map.insert(task.raw(), ..)`):
    /// each such operation opens and closes its own bracket internally.
    ///
    /// The borrow is synchronous; any [`Guard`] entered through it is `!Send`
    /// exactly like an [`AsyncGuard`]. Only the bracket-less raw SPI calls
    /// (`begin_op` without `end_op`) can leak protection across an `.await`
    /// from here — the `kv-async` figure injects precisely that misuse to
    /// show what a stalled bracket costs each scheme.
    pub fn raw(&mut self) -> &mut R::Handle {
        &mut self.handle
    }

    /// Checks the handle back into its pool now (identical to dropping it).
    pub fn release(self) {
        drop(self);
    }
}

impl<R: Reclaimer> core::fmt::Debug for TaskHandle<R> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("TaskHandle")
            .field("thread_id", &self.thread_id())
            .finish()
    }
}

/// A poll-scoped operation bracket: [`Guard`] semantics (begin_op on entry,
/// end_op on drop) with the additional guarantee that it cannot be held
/// across an `.await` in any `Send`-spawned task, because it is `!Send`.
///
/// Dereferences to the underlying [`Guard`], so
/// [`Shield::protect`] and the rest of the guard API apply unchanged:
/// `shield.protect(&guard, &src, None)`.
pub struct AsyncGuard<'h, R: Reclaimer> {
    /// The wrapped bracket. `Guard` holds a raw pointer to the handle, which
    /// is what makes it — and therefore this wrapper — `!Send`/`!Sync`.
    guard: Guard<'h, R::Handle>,
}

impl<'h, R: Reclaimer> Deref for AsyncGuard<'h, R> {
    type Target = Guard<'h, R::Handle>;

    fn deref(&self) -> &Guard<'h, R::Handle> {
        &self.guard
    }
}

impl<R: Reclaimer> core::fmt::Debug for AsyncGuard<'_, R> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("AsyncGuard")
            .field("thread_id", &self.guard.thread_id())
            .finish()
    }
}

/// Executor-agnostic single yield: wakes itself and returns `Pending` once,
/// so the task re-queues behind its siblings. Used by [`TaskHandle::acquire`]
/// to wait for pool capacity without blocking a worker thread.
struct YieldOnce {
    yielded: bool,
}

impl Future for YieldOnce {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfe_core::Wfe;
    use wfe_reclaim::{Atomic, He, ReclaimerConfig};

    #[test]
    fn check_out_park_revive_round_trip() {
        let domain = He::with_config(ReclaimerConfig::with_max_threads(4));
        let pool = HandlePool::new(Arc::clone(&domain));
        let task = TaskHandle::check_out(&pool).unwrap();
        let tid = task.thread_id();
        task.release();
        assert_eq!(pool.stats().parked, 1);
        let revived = TaskHandle::check_out(&pool).unwrap();
        assert_eq!(revived.thread_id(), tid, "parked handle revived in O(1)");
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn with_guard_brackets_protect_and_retire() {
        let domain = Wfe::with_config(ReclaimerConfig::with_max_threads(2));
        let pool = HandlePool::new(Arc::clone(&domain));
        let mut task = TaskHandle::check_out(&pool).unwrap();
        let mut shield = task.shield::<u64>().unwrap();

        let node = task.with_guard(|guard| guard.alloc(11u64));
        let root: Atomic<u64> = Atomic::new(node);
        let copied = task.with_guard(|guard| {
            let value = shield.protect(&guard, &root, None);
            // SAFETY: `shield` does not re-protect while `value` is live.
            unsafe { value.as_ref() }.copied()
        });
        assert_eq!(copied, Some(11));

        root.store(core::ptr::null_mut(), wfe_sync_ordering());
        task.with_guard(|guard| {
            // SAFETY: `node` was just unlinked from `root`; retired once.
            unsafe { wfe_reclaim::Protected::from_unlinked(node).retire_in(&guard) };
        });
        drop(shield);
        task.raw().force_cleanup();
        assert_eq!(domain.stats().unreclaimed, 0);
    }

    // The shipped crate stays ordering-agnostic (orderings come from the
    // caller), so only the tests pull in wfe-sync — as a dev-dependency —
    // to source their orderings from the interposition layer like every
    // other atomic in the workspace.
    fn wfe_sync_ordering() -> wfe_sync::atomic::Ordering {
        wfe_sync::atomic::Ordering::SeqCst
    }

    #[test]
    fn shields_and_values_survive_parking_but_protection_does_not() {
        let domain = He::with_config(ReclaimerConfig::with_max_threads(4));
        let pool = HandlePool::new(Arc::clone(&domain));
        let mut owner = domain.register();
        let node = owner.alloc(3u64);
        let root: Atomic<u64> = Atomic::new(node);

        let mut task = TaskHandle::check_out(&pool).unwrap();
        let mut shield = task.shield::<u64>().unwrap();
        let seen = task.with_guard(|guard| {
            let value = shield.protect(&guard, &root, None);
            // SAFETY: `shield` does not re-protect while `value` is live.
            unsafe { value.as_ref() }.copied()
        });
        assert_eq!(seen, Some(3));
        task.release(); // parks: end_op, reservation withdrawn

        root.store(core::ptr::null_mut(), wfe_sync_ordering());
        // SAFETY: just unlinked; retired exactly once.
        unsafe { owner.retire(node) };
        owner.force_cleanup();
        assert_eq!(
            domain.stats().unreclaimed,
            0,
            "a parked task handle pins nothing"
        );
        drop(shield); // the owned lease outlived the park — by design
    }

    #[test]
    fn acquire_yields_until_a_handle_parks() {
        let domain = He::with_config(ReclaimerConfig::with_max_threads(1));
        let pool = HandlePool::new(Arc::clone(&domain));
        let rt = mini_rt::Runtime::new(2);
        let only = TaskHandle::check_out(&pool).unwrap();
        assert!(TaskHandle::check_out(&pool).is_none(), "registry exhausted");

        let waiter = {
            let pool = Arc::clone(&pool);
            rt.spawn(async move {
                let task = TaskHandle::acquire(&pool).await;
                task.thread_id()
            })
        };
        // Park the only handle from this thread; the waiter's yield loop
        // picks it up.
        let tid = only.thread_id();
        drop(only);
        assert_eq!(rt.block_on(waiter), tid);
    }

    #[test]
    fn task_handles_migrate_across_workers_with_the_task() {
        const TASKS: usize = 2_000;
        let domain = Wfe::with_config(ReclaimerConfig::with_max_threads(8));
        let pool = HandlePool::new(Arc::clone(&domain));
        let rt = mini_rt::Runtime::new(4);
        let handles: Vec<_> = (0..TASKS)
            .map(|i| {
                let pool = Arc::clone(&pool);
                rt.spawn(async move {
                    let mut task = TaskHandle::acquire(&pool).await;
                    // Raw pointers are `!Send`; a block owned exclusively by
                    // this task crosses the suspension point as an address.
                    let node = task.with_guard(|guard| guard.alloc(i as u64)) as usize;
                    mini_rt::yield_now().await; // may hop workers here
                    task.with_guard(|guard| {
                        let node = node as *mut wfe_reclaim::Linked<u64>;
                        // SAFETY: never published; retired exactly once.
                        unsafe { wfe_reclaim::Protected::from_unlinked(node).retire_in(&guard) };
                    });
                })
            })
            .collect();
        rt.block_on(async {
            for handle in handles {
                handle.await;
            }
        });
        let stats = pool.stats();
        assert_eq!(stats.checkouts, TASKS as u64);
        assert!(
            stats.hits > stats.checkouts / 2,
            "steady-state churn is served from the pool (hits = {}/{})",
            stats.hits,
            stats.checkouts
        );
        drop(pool);
        assert_eq!(domain.registry().registered(), 0);
    }
}
