//! Baseline snapshots: machine-readable benchmark results for tracking the
//! performance trajectory across commits.
//!
//! `figures --baseline-json PATH` writes the sweep it just ran as a single
//! JSON document (schema below). Committing the file from a smoke sweep
//! (`--smoke`) gives every future change a fixed reference point: rerun the
//! same command and diff the `mops` fields.
//!
//! The document is hand-rendered — the workspace builds offline and carries
//! no serde — so the schema is deliberately flat:
//!
//! ```json
//! {
//!   "bench": "smr_ops",
//!   "params": { "threads": [1, 2], "duration_ms": 50, ... },
//!   "series": [
//!     { "figure": "fig5ab", "structure": "kp-queue", "workload": "queue50",
//!       "scheme": "WFE", "threads": 1, "mops": 1.2345,
//!       "avg_unreclaimed": 10.0 },
//!     ...
//!   ]
//! }
//! ```

use crate::params::BenchParams;
use crate::runner::DataPoint;

/// One measured point tagged with the figure it belongs to.
pub type FigurePoint = (&'static str, DataPoint);

/// Renders a full baseline document for the given sweep.
///
/// `bench` names the tracked quantity (the committed baseline uses
/// `"smr_ops"`: completed SMR-protected operations per second).
pub fn render(bench: &str, params: &BenchParams, series: &[FigurePoint]) -> String {
    let mut out = String::with_capacity(256 + series.len() * 160);
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": {},\n", json_string(bench)));
    out.push_str("  \"params\": {\n");
    out.push_str(&format!(
        "    \"threads\": [{}],\n",
        params
            .threads
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!(
        "    \"duration_ms\": {},\n",
        params.duration.as_millis()
    ));
    out.push_str(&format!("    \"repeats\": {},\n", params.repeats));
    out.push_str(&format!("    \"prefill\": {},\n", params.prefill));
    out.push_str(&format!("    \"key_range\": {},\n", params.key_range));
    out.push_str(&format!("    \"era_freq\": {},\n", params.era_freq));
    out.push_str(&format!("    \"cleanup_freq\": {}\n", params.cleanup_freq));
    out.push_str("  },\n");
    out.push_str("  \"series\": [\n");
    for (index, (figure, point)) in series.iter().enumerate() {
        let comma = if index + 1 < series.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{ \"figure\": {}, \"structure\": {}, \"workload\": {}, \
             \"scheme\": {}, \"threads\": {}, \"mops\": {}, \
             \"avg_unreclaimed\": {} }}{}\n",
            json_string(figure),
            json_string(point.structure),
            json_string(point.workload),
            json_string(point.scheme),
            point.threads,
            json_f64(point.mops),
            json_f64(point.avg_unreclaimed),
            comma,
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

/// Quotes and escapes a string for JSON. The inputs are scheme/figure
/// identifiers, but escaping keeps the output valid for any future label.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a measurement as a JSON number. JSON has no NaN/Infinity, so
/// non-finite values (a zero-duration run, say) degrade to `0`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_point() -> DataPoint {
        DataPoint {
            scheme: "WFE",
            structure: "hashmap",
            workload: "write50",
            threads: 2,
            mops: 1.5,
            avg_unreclaimed: 12.0,
            adopted_batches: 0.0,
            freed_via_adoption: 0.0,
            shards: 1,
            avg_occupied_shards: 1.0,
            pool_hit_rate: 0.0,
            tasks: 0,
            unreclaimed_bytes: 0.0,
            cache_hits: 0.0,
            cache_misses: 0.0,
            cached_bytes: 0.0,
            load_factor: 0.0,
            resizes: 0.0,
            migrated_buckets: 0.0,
        }
    }

    #[test]
    fn renders_every_series_row_and_the_params() {
        let params = BenchParams::smoke();
        let series = vec![("fig7", sample_point()), ("fig7", sample_point())];
        let doc = render("smr_ops", &params, &series);
        assert_eq!(doc.matches("\"figure\": \"fig7\"").count(), 2);
        assert!(doc.contains("\"bench\": \"smr_ops\""));
        assert!(doc.contains("\"threads\": [1, 2]"));
        assert!(doc.contains("\"mops\": 1.5000"));
    }

    #[test]
    fn trailing_commas_are_absent() {
        let params = BenchParams::smoke();
        let series = vec![("fig7", sample_point())];
        let doc = render("smr_ops", &params, &series);
        assert!(!doc.contains(",\n  ]"), "trailing comma in series:\n{doc}");
        assert!(!doc.contains(",\n  }"), "trailing comma in object:\n{doc}");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\ny\"");
    }

    #[test]
    fn non_finite_measurements_degrade_to_zero() {
        assert_eq!(json_f64(f64::NAN), "0");
        assert_eq!(json_f64(f64::INFINITY), "0");
        assert_eq!(json_f64(2.25), "2.2500");
    }

    #[test]
    fn empty_series_is_still_valid() {
        let params = BenchParams::smoke();
        let doc = render("smr_ops", &params, &[]);
        assert!(doc.contains("\"series\": [\n  ]"));
    }
}
