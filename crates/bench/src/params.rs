//! Benchmark methodology parameters (paper §5).

use std::time::Duration;

/// Parameters shared by every experiment.
#[derive(Debug, Clone)]
pub struct BenchParams {
    /// Thread counts to sweep (the x-axis of every figure).
    pub threads: Vec<usize>,
    /// Duration of one measured run.
    pub duration: Duration,
    /// How many times each point is measured (the paper uses 5; results are
    /// averaged).
    pub repeats: usize,
    /// Number of elements pre-inserted before the measurement starts.
    pub prefill: usize,
    /// Keys are drawn uniformly from `0..key_range`.
    pub key_range: u64,
    /// Era/epoch increment frequency ν (per-thread allocations between
    /// increments).
    pub era_freq: usize,
    /// Retired-list scan frequency.
    pub cleanup_freq: usize,
    /// WFE fast-path attempts before requesting help.
    pub fast_path_attempts: usize,
    /// Registry shard count (`0` = auto-size from the host's parallelism).
    pub shards: usize,
    /// Task counts to sweep in the async figure (`kv-async`), whose x-axis is
    /// the number of spawned tasks rather than the number of threads.
    pub task_counts: Vec<usize>,
    /// Executor worker threads the async figure runs every point on.
    pub async_workers: usize,
    /// Per-shard block cache override: `Some(true)`/`Some(false)` pin the
    /// cache on/off for every domain the sweep builds; `None` (the default)
    /// keeps the library default (on unless `WFE_BLOCK_CACHE` disables it) —
    /// except in the `cross-shard-churn` figure, where `None` means "sweep
    /// both modes".
    pub block_cache: Option<bool>,
}

impl Default for BenchParams {
    /// Scaled-down defaults so the whole suite finishes on a laptop-class
    /// machine: same workload shape as the paper, shorter runs, smaller
    /// prefill and a thread sweep bounded by the host's core count.
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let mut threads = vec![1, 2, 4, 8, 16, 24, 32, 48, 64, 96, 120];
        threads.retain(|&t| t <= cores);
        if threads.is_empty() {
            threads.push(1);
        }
        Self {
            threads,
            duration: Duration::from_millis(500),
            repeats: 1,
            prefill: 10_000,
            key_range: 100_000,
            era_freq: 150,
            cleanup_freq: 30,
            fast_path_attempts: 16,
            shards: 0,
            task_counts: vec![2_000, 10_000, 50_000],
            async_workers: 4,
            block_cache: None,
        }
    }
}

impl BenchParams {
    /// The exact methodology of the paper: 10-second runs repeated 5 times,
    /// 50 000-element prefill, keys in `(0, 100 000)`, thread counts
    /// 1–120 (oversubscription allowed), ν = 150, fast path = 16 attempts.
    pub fn paper() -> Self {
        Self {
            threads: vec![
                1, 8, 16, 24, 32, 40, 48, 56, 64, 72, 80, 88, 96, 104, 112, 120,
            ],
            duration: Duration::from_secs(10),
            repeats: 5,
            prefill: 50_000,
            key_range: 100_000,
            task_counts: vec![10_000, 50_000, 200_000],
            ..Self::default()
        }
    }

    /// A tiny configuration for smoke tests and CI.
    pub fn smoke() -> Self {
        Self {
            threads: vec![1, 2],
            duration: Duration::from_millis(50),
            repeats: 1,
            prefill: 500,
            key_range: 2_000,
            task_counts: vec![500, 2_000],
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_respect_core_count() {
        let params = BenchParams::default();
        let cores = std::thread::available_parallelism().unwrap().get();
        assert!(params.threads.iter().all(|&t| t <= cores));
        assert!(!params.threads.is_empty());
    }

    #[test]
    fn paper_parameters_match_section_5() {
        let params = BenchParams::paper();
        assert_eq!(params.duration, Duration::from_secs(10));
        assert_eq!(params.repeats, 5);
        assert_eq!(params.prefill, 50_000);
        assert_eq!(params.key_range, 100_000);
        assert_eq!(params.era_freq, 150);
        assert_eq!(params.fast_path_attempts, 16);
        assert_eq!(*params.threads.last().unwrap(), 120);
    }
}
