//! Workload definitions (paper §5).
//!
//! Two map workloads are used throughout the evaluation:
//!
//! * **write-dominated** — 50% `insert`, 50% `delete` (Figures 5-8);
//! * **read-mostly** — 90% `get`, 10% `put` (Figures 9-11).
//!
//! Queues only support `enqueue`/`dequeue`, so they always run the
//! write-dominated mix (Figure 5). Keys are drawn uniformly from
//! `0..key_range` using a per-thread PRNG.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The operation mix applied to key-value structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapWorkload {
    /// 50% `insert`, 50% `delete`.
    WriteDominated,
    /// 90% `get`, 10% `put` (insert).
    ReadMostly,
}

impl MapWorkload {
    /// Human-readable label used in CSV output.
    pub fn label(self) -> &'static str {
        match self {
            MapWorkload::WriteDominated => "write50",
            MapWorkload::ReadMostly => "read90",
        }
    }
}

/// A single key-value operation to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapOp {
    /// Insert `key`.
    Insert(u64),
    /// Remove `key`.
    Remove(u64),
    /// Look up `key`.
    Get(u64),
}

/// Per-thread deterministic operation generator.
#[derive(Debug)]
pub struct OpGenerator {
    rng: StdRng,
    workload: MapWorkload,
    key_range: u64,
}

impl OpGenerator {
    /// Creates a generator seeded from `(seed, thread)` so runs are
    /// reproducible yet threads do not correlate.
    pub fn new(workload: MapWorkload, key_range: u64, seed: u64, thread: usize) -> Self {
        Self {
            rng: StdRng::seed_from_u64(
                seed ^ (thread as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
            workload,
            key_range,
        }
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> MapOp {
        let key = self.rng.gen_range(0..self.key_range);
        match self.workload {
            MapWorkload::WriteDominated => {
                if self.rng.gen_bool(0.5) {
                    MapOp::Insert(key)
                } else {
                    MapOp::Remove(key)
                }
            }
            MapWorkload::ReadMostly => {
                if self.rng.gen_bool(0.9) {
                    MapOp::Get(key)
                } else {
                    MapOp::Insert(key)
                }
            }
        }
    }

    /// Draws a uniformly random key (used by queue workloads for values and by
    /// the prefill phase).
    pub fn next_key(&mut self) -> u64 {
        self.rng.gen_range(0..self.key_range)
    }

    /// Draws a fair coin (used by queue workloads to pick enqueue/dequeue).
    pub fn next_bool(&mut self) -> bool {
        self.rng.gen_bool(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_per_seed_and_thread() {
        let mut a = OpGenerator::new(MapWorkload::WriteDominated, 100, 7, 0);
        let mut b = OpGenerator::new(MapWorkload::WriteDominated, 100, 7, 0);
        let mut c = OpGenerator::new(MapWorkload::WriteDominated, 100, 7, 1);
        let seq_a: Vec<MapOp> = (0..100).map(|_| a.next_op()).collect();
        let seq_b: Vec<MapOp> = (0..100).map(|_| b.next_op()).collect();
        let seq_c: Vec<MapOp> = (0..100).map(|_| c.next_op()).collect();
        assert_eq!(seq_a, seq_b);
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn write_dominated_mix_is_roughly_balanced() {
        let mut gen = OpGenerator::new(MapWorkload::WriteDominated, 1000, 1, 0);
        let mut inserts = 0;
        for _ in 0..10_000 {
            match gen.next_op() {
                MapOp::Insert(_) => inserts += 1,
                MapOp::Remove(_) => {}
                MapOp::Get(_) => panic!("no gets in the write-dominated mix"),
            }
        }
        assert!((4_000..=6_000).contains(&inserts));
    }

    #[test]
    fn read_mostly_mix_is_ninety_percent_reads() {
        let mut gen = OpGenerator::new(MapWorkload::ReadMostly, 1000, 2, 0);
        let mut gets = 0;
        let mut removes = 0;
        for _ in 0..10_000 {
            match gen.next_op() {
                MapOp::Get(_) => gets += 1,
                MapOp::Insert(_) => {}
                MapOp::Remove(_) => removes += 1,
            }
        }
        assert!((8_500..=9_500).contains(&gets));
        assert_eq!(removes, 0);
    }

    #[test]
    fn keys_stay_in_range() {
        let mut gen = OpGenerator::new(MapWorkload::ReadMostly, 64, 3, 0);
        for _ in 0..1_000 {
            assert!(gen.next_key() < 64);
            let key = match gen.next_op() {
                MapOp::Insert(k) | MapOp::Remove(k) | MapOp::Get(k) => k,
            };
            assert!(key < 64);
        }
    }
}
