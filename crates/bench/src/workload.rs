//! Workload definitions (paper §5) plus the kv-service mixes.
//!
//! Two map workloads are used throughout the paper's evaluation:
//!
//! * **write-dominated** — 50% `insert`, 50% `delete` (Figures 5-8);
//! * **read-mostly** — 90% `get`, 10% `put` (Figures 9-11).
//!
//! Queues only support `enqueue`/`dequeue`, so they always run the
//! write-dominated mix (Figure 5). Keys are drawn uniformly from
//! `0..key_range` using a per-thread PRNG.
//!
//! The **kv-service** figure goes beyond the paper's uniform draws: a
//! service-shaped key popularity (Zipfian, via a self-contained SplitMix64
//! PRNG so the streams are seed-replayable byte for byte), read-mostly and
//! write-heavy mixes over it, a TTL sweep (every entry is removed a fixed
//! number of ticks after insertion, the classic cache-expiry churn), and a
//! resize-storm leg of monotonically fresh keys that forces the resizable
//! map through directory doubling after doubling.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The operation mix applied to key-value structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapWorkload {
    /// 50% `insert`, 50% `delete`.
    WriteDominated,
    /// 90% `get`, 10% `put` (insert).
    ReadMostly,
}

impl MapWorkload {
    /// Human-readable label used in CSV output.
    pub fn label(self) -> &'static str {
        match self {
            MapWorkload::WriteDominated => "write50",
            MapWorkload::ReadMostly => "read90",
        }
    }
}

/// A single key-value operation to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapOp {
    /// Insert `key`.
    Insert(u64),
    /// Remove `key`.
    Remove(u64),
    /// Look up `key`.
    Get(u64),
}

/// Per-thread deterministic operation generator.
#[derive(Debug)]
pub struct OpGenerator {
    rng: StdRng,
    workload: MapWorkload,
    key_range: u64,
}

impl OpGenerator {
    /// Creates a generator seeded from `(seed, thread)` so runs are
    /// reproducible yet threads do not correlate.
    pub fn new(workload: MapWorkload, key_range: u64, seed: u64, thread: usize) -> Self {
        Self {
            rng: StdRng::seed_from_u64(
                seed ^ (thread as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
            workload,
            key_range,
        }
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> MapOp {
        let key = self.rng.gen_range(0..self.key_range);
        match self.workload {
            MapWorkload::WriteDominated => {
                if self.rng.gen_bool(0.5) {
                    MapOp::Insert(key)
                } else {
                    MapOp::Remove(key)
                }
            }
            MapWorkload::ReadMostly => {
                if self.rng.gen_bool(0.9) {
                    MapOp::Get(key)
                } else {
                    MapOp::Insert(key)
                }
            }
        }
    }

    /// Draws a uniformly random key (used by queue workloads for values and by
    /// the prefill phase).
    pub fn next_key(&mut self) -> u64 {
        self.rng.gen_range(0..self.key_range)
    }

    /// Draws a fair coin (used by queue workloads to pick enqueue/dequeue).
    pub fn next_bool(&mut self) -> bool {
        self.rng.gen_bool(0.5)
    }
}

/// Minimal SplitMix64 PRNG (Steele, Lea & Flood): one `u64` of state, a
/// golden-gamma increment and the shared avalanche finalizer. Used by the
/// kv-service generators so their streams are replayable from a single seed
/// with no dependence on an external RNG crate's stream layout.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Creates a stream from `seed` (equal seeds ⇒ identical streams).
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Zipfian rank sampler (YCSB's rejection-free inverse-CDF construction)
/// with the standard skew θ = 0.99: rank 0 is the hottest, popularity decays
/// as `1 / rank^θ`. Ranks are scrambled through the avalanche mixer before
/// use so the hot set is spread across the key space (and across the
/// resizable map's buckets) instead of clustering at 0.
#[derive(Debug, Clone)]
pub struct ZipfKeys {
    key_range: u64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl ZipfKeys {
    /// The YCSB-standard skew.
    pub const THETA: f64 = 0.99;

    /// Builds the sampler for keys `0..key_range` (θ fixed at
    /// [`THETA`](Self::THETA)). The ζ(n, θ) sum is computed once here.
    pub fn new(key_range: u64) -> Self {
        let key_range = key_range.max(2);
        let theta = Self::THETA;
        let zetan: f64 = (1..=key_range).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let zeta2 = 1.0 + 0.5f64.powf(theta);
        let eta = (1.0 - (2.0 / key_range as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Self {
            key_range,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta,
            zeta2,
        }
    }

    /// Draws a Zipf-distributed *rank* in `0..key_range` from `rng`.
    pub fn next_rank(&self, rng: &mut SplitMix64) -> u64 {
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < self.zeta2 {
            return 1;
        }
        let rank =
            (self.key_range as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.key_range - 1)
    }

    /// Draws a Zipf-popular *key*: the rank scrambled over the key space so
    /// hot keys do not cluster in one bucket run.
    pub fn next_key(&self, rng: &mut SplitMix64) -> u64 {
        scramble(self.next_rank(rng)) % self.key_range
    }
}

/// The avalanche scramble used to map Zipf ranks onto keys (the same
/// SplitMix64 finalizer the data-structure layer hashes with).
#[inline]
fn scramble(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The kv-service figure legs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceWorkload {
    /// Zipf-popular keys, 90% `get` / 5% `insert` / 5% `remove`.
    ZipfReadMostly,
    /// Zipf-popular keys, 50% `insert` / 50% `remove`.
    ZipfWriteHeavy,
    /// TTL expiry sweep: every tick inserts a fresh key and removes the key
    /// whose TTL just elapsed, so the live set is a sliding window of
    /// [`TTL_WINDOW`](Self::TTL_WINDOW) entries per thread.
    TtlExpiry,
    /// Resize storm: monotonically fresh keys, insert-only — the live set
    /// grows without bound and drives the resizable map through doubling
    /// after doubling.
    ResizeStorm,
}

impl ServiceWorkload {
    /// Ticks an entry lives in the TTL sweep before it is expired.
    pub const TTL_WINDOW: u64 = 512;

    /// All legs, in CSV emission order.
    pub const ALL: [ServiceWorkload; 4] = [
        ServiceWorkload::ZipfReadMostly,
        ServiceWorkload::ZipfWriteHeavy,
        ServiceWorkload::TtlExpiry,
        ServiceWorkload::ResizeStorm,
    ];

    /// Human-readable label used in CSV output.
    pub fn label(self) -> &'static str {
        match self {
            ServiceWorkload::ZipfReadMostly => "kv-zipf-read90",
            ServiceWorkload::ZipfWriteHeavy => "kv-zipf-write50",
            ServiceWorkload::TtlExpiry => "kv-ttl",
            ServiceWorkload::ResizeStorm => "kv-resize-storm",
        }
    }

    /// Whether the leg starts from a prefilled table (the Zipf mixes) or an
    /// empty one (TTL and the storm build their own live set).
    pub fn prefills(self) -> bool {
        matches!(
            self,
            ServiceWorkload::ZipfReadMostly | ServiceWorkload::ZipfWriteHeavy
        )
    }
}

/// Per-thread deterministic kv-service operation generator, seeded exactly
/// like [`OpGenerator`] (`seed ^ (thread + 1) · golden-gamma`) but on the
/// self-contained SplitMix64 stream.
#[derive(Debug)]
pub struct ServiceOpGenerator {
    rng: SplitMix64,
    workload: ServiceWorkload,
    zipf: Option<ZipfKeys>,
    /// Thread-disjoint namespace for the fresh keys of the TTL and storm
    /// legs (top bits carry the thread id, so threads never collide).
    fresh_base: u64,
    /// Fresh keys handed out so far (the TTL leg's clock).
    tick: u64,
    /// TTL leg bookkeeping: the next call expires instead of inserting.
    expire_next: bool,
}

impl ServiceOpGenerator {
    /// Creates a generator for `thread` under `workload`.
    pub fn new(workload: ServiceWorkload, key_range: u64, seed: u64, thread: usize) -> Self {
        let zipf = match workload {
            ServiceWorkload::ZipfReadMostly | ServiceWorkload::ZipfWriteHeavy => {
                Some(ZipfKeys::new(key_range))
            }
            _ => None,
        };
        Self {
            rng: SplitMix64::new(seed ^ (thread as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            workload,
            zipf,
            fresh_base: (thread as u64 + 1) << 48,
            tick: 0,
            expire_next: false,
        }
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> MapOp {
        match self.workload {
            ServiceWorkload::ZipfReadMostly => {
                let key = self
                    .zipf
                    .as_ref()
                    .expect("zipf leg")
                    .next_key(&mut self.rng);
                let p = self.rng.next_f64();
                if p < 0.90 {
                    MapOp::Get(key)
                } else if p < 0.95 {
                    MapOp::Insert(key)
                } else {
                    MapOp::Remove(key)
                }
            }
            ServiceWorkload::ZipfWriteHeavy => {
                let key = self
                    .zipf
                    .as_ref()
                    .expect("zipf leg")
                    .next_key(&mut self.rng);
                if self.rng.next_u64() & 1 == 0 {
                    MapOp::Insert(key)
                } else {
                    MapOp::Remove(key)
                }
            }
            ServiceWorkload::TtlExpiry => {
                if self.expire_next && self.tick >= ServiceWorkload::TTL_WINDOW {
                    self.expire_next = false;
                    MapOp::Remove(self.fresh_base + (self.tick - ServiceWorkload::TTL_WINDOW))
                } else {
                    self.expire_next = true;
                    let key = self.fresh_base + self.tick;
                    self.tick += 1;
                    MapOp::Insert(key)
                }
            }
            ServiceWorkload::ResizeStorm => {
                let key = self.fresh_base + self.tick;
                self.tick += 1;
                MapOp::Insert(key)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_per_seed_and_thread() {
        let mut a = OpGenerator::new(MapWorkload::WriteDominated, 100, 7, 0);
        let mut b = OpGenerator::new(MapWorkload::WriteDominated, 100, 7, 0);
        let mut c = OpGenerator::new(MapWorkload::WriteDominated, 100, 7, 1);
        let seq_a: Vec<MapOp> = (0..100).map(|_| a.next_op()).collect();
        let seq_b: Vec<MapOp> = (0..100).map(|_| b.next_op()).collect();
        let seq_c: Vec<MapOp> = (0..100).map(|_| c.next_op()).collect();
        assert_eq!(seq_a, seq_b);
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn write_dominated_mix_is_roughly_balanced() {
        let mut gen = OpGenerator::new(MapWorkload::WriteDominated, 1000, 1, 0);
        let mut inserts = 0;
        for _ in 0..10_000 {
            match gen.next_op() {
                MapOp::Insert(_) => inserts += 1,
                MapOp::Remove(_) => {}
                MapOp::Get(_) => panic!("no gets in the write-dominated mix"),
            }
        }
        assert!((4_000..=6_000).contains(&inserts));
    }

    #[test]
    fn read_mostly_mix_is_ninety_percent_reads() {
        let mut gen = OpGenerator::new(MapWorkload::ReadMostly, 1000, 2, 0);
        let mut gets = 0;
        let mut removes = 0;
        for _ in 0..10_000 {
            match gen.next_op() {
                MapOp::Get(_) => gets += 1,
                MapOp::Insert(_) => {}
                MapOp::Remove(_) => removes += 1,
            }
        }
        assert!((8_500..=9_500).contains(&gets));
        assert_eq!(removes, 0);
    }

    #[test]
    fn keys_stay_in_range() {
        let mut gen = OpGenerator::new(MapWorkload::ReadMostly, 64, 3, 0);
        for _ in 0..1_000 {
            assert!(gen.next_key() < 64);
            let key = match gen.next_op() {
                MapOp::Insert(k) | MapOp::Remove(k) | MapOp::Get(k) => k,
            };
            assert!(key < 64);
        }
    }

    #[test]
    fn splitmix_streams_replay_from_the_seed() {
        let mut a = SplitMix64::new(0xFEED);
        let mut b = SplitMix64::new(0xFEED);
        let mut c = SplitMix64::new(0xFEED + 1);
        let sa: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb, "equal seeds must replay byte-identically");
        assert_ne!(sa, sc);
    }

    #[test]
    fn zipf_ranks_are_skewed_and_in_range() {
        const RANGE: u64 = 10_000;
        let zipf = ZipfKeys::new(RANGE);
        let mut rng = SplitMix64::new(42);
        let mut head = 0usize;
        for _ in 0..20_000 {
            let rank = zipf.next_rank(&mut rng);
            assert!(rank < RANGE);
            if rank < 10 {
                head += 1;
            }
        }
        // θ = 0.99 puts far more than a uniform 0.1% of draws on the top-10
        // ranks; empirically ≈ 25%. Assert the order of magnitude.
        assert!(head > 2_000, "zipf head too cold: {head} of 20000");
    }

    #[test]
    fn service_generators_replay_and_ttl_slides_a_window() {
        let ops = |seed| {
            let mut g = ServiceOpGenerator::new(ServiceWorkload::TtlExpiry, 1000, seed, 2);
            (0..4_000).map(|_| g.next_op()).collect::<Vec<_>>()
        };
        assert_eq!(ops(9), ops(9), "service streams must be seed-replayable");
        // Replaying the stream against a set model: the live set stays
        // pinned at the TTL window (every expired key was really present).
        let mut live = std::collections::BTreeSet::new();
        for op in ops(9) {
            match op {
                MapOp::Insert(k) => assert!(live.insert(k), "fresh keys never repeat"),
                MapOp::Remove(k) => assert!(live.remove(&k), "expiry targets a live key"),
                MapOp::Get(_) => {}
            }
            assert!(live.len() as u64 <= ServiceWorkload::TTL_WINDOW + 1);
        }
        let settled = live.len() as u64;
        assert!(
            (ServiceWorkload::TTL_WINDOW - 1..=ServiceWorkload::TTL_WINDOW + 1).contains(&settled),
            "TTL live set must settle at the window, got {settled}"
        );
    }

    #[test]
    fn storm_keys_are_fresh_and_thread_disjoint() {
        let mut a = ServiceOpGenerator::new(ServiceWorkload::ResizeStorm, 1000, 5, 0);
        let mut b = ServiceOpGenerator::new(ServiceWorkload::ResizeStorm, 1000, 5, 1);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..1_000 {
            for g in [&mut a, &mut b] {
                match g.next_op() {
                    MapOp::Insert(k) => assert!(seen.insert(k), "storm keys never repeat"),
                    other => panic!("storm is insert-only, got {other:?}"),
                }
            }
        }
    }
}
