//! Figure runner: regenerates the series of every figure in the paper.
//!
//! ```text
//! figures [FIGURE ...] [--paper | --smoke] [--threads 1,2,4] [--duration-ms 500]
//!         [--repeats N] [--prefill N] [--schemes WFE,HE,...] [--shards N]
//!         [--tasks 500,2000] [--block-cache on|off] [--baseline-json PATH]
//! ```
//!
//! With no figure argument every figure (and both ablations) is run. Output
//! is CSV on stdout, one row per measured point:
//! `figure,structure,workload,scheme,threads,mops,avg_unreclaimed,`
//! `adopted_batches,freed_via_adoption,shards,avg_occupied_shards,`
//! `pool_hit_rate,tasks,unreclaimed_bytes,cache_hits,cache_misses,`
//! `cached_bytes,load_factor,resizes,migrated_buckets`
//! (`tasks`/`unreclaimed_bytes` are filled by the `kv-async` figure, whose
//! swept axis is the task count; the cache counters are live wherever the
//! per-shard block cache is enabled; the last three columns are filled by
//! the `kv-service` figure's resizable map and are 0 for fixed-capacity
//! structures).
//!
//! `--block-cache on|off` pins the per-shard block cache for every domain the
//! sweep builds; without it, domains use the library default and the
//! `cross-shard-churn` figure sweeps both modes.
//!
//! `--baseline-json PATH` additionally writes the sweep as a JSON baseline
//! document (see [`wfe_bench::baseline`]); the committed `BENCH_smr_ops.json`
//! at the repo root is the smoke-sweep snapshot for trajectory tracking.

use std::process::ExitCode;
use std::time::Duration;

use wfe_bench::baseline;
use wfe_bench::figures::{Figure, Scheme};
use wfe_bench::params::BenchParams;
use wfe_bench::runner::DataPoint;

fn print_usage() {
    eprintln!(
        "usage: figures [FIGURE ...] [options]\n\
         \n\
         figures: {}  (default: all)\n\
         options:\n\
           --paper           full paper methodology (10 s x 5 runs, 50k prefill, up to 120 threads)\n\
           --smoke           tiny smoke-test parameters\n\
           --threads LIST    comma-separated thread counts (default: powers of two up to the core count)\n\
           --duration-ms N   run duration per point in milliseconds\n\
           --repeats N       repetitions per point\n\
           --prefill N       elements pre-inserted before measuring\n\
           --schemes LIST    comma-separated subset of WFE,EBR,HE,HP,2GEIBR,Leak\n\
           --shards N        registry shard count (default: auto from the host)\n\
           --tasks LIST      comma-separated task counts for the kv-async figure\n\
           --block-cache on|off  pin the per-shard block cache (default: library default;\n\
                             cross-shard-churn sweeps both modes when unset)\n\
           --baseline-json PATH  also write the sweep as a JSON baseline snapshot\n",
        Figure::ALL
            .iter()
            .map(|f| f.name())
            .collect::<Vec<_>>()
            .join(" ")
    );
}

struct Cli {
    figures: Vec<Figure>,
    params: BenchParams,
    schemes: Vec<Scheme>,
    baseline_json: Option<String>,
}

fn parse_args() -> Result<Cli, String> {
    let mut figures = Vec::new();
    let mut params = BenchParams::default();
    let mut schemes: Vec<Scheme> = Scheme::ALL.to_vec();
    let mut baseline_json = None;
    let mut args = std::env::args().skip(1).peekable();

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--paper" => {
                let threads = params.threads.clone();
                params = BenchParams::paper();
                // Keep an explicitly passed thread list if it came first.
                if threads != BenchParams::default().threads {
                    params.threads = threads;
                }
            }
            "--smoke" => params = BenchParams::smoke(),
            "--threads" => {
                let value = args.next().ok_or("--threads needs a value")?;
                params.threads = value
                    .split(',')
                    .map(|t| t.trim().parse::<usize>().map_err(|e| e.to_string()))
                    .collect::<Result<Vec<_>, _>>()?;
                if params.threads.is_empty() || params.threads.contains(&0) {
                    return Err("--threads needs positive values".into());
                }
            }
            "--duration-ms" => {
                let value = args.next().ok_or("--duration-ms needs a value")?;
                params.duration =
                    Duration::from_millis(value.parse::<u64>().map_err(|e| e.to_string())?);
            }
            "--repeats" => {
                let value = args.next().ok_or("--repeats needs a value")?;
                params.repeats = value.parse::<usize>().map_err(|e| e.to_string())?;
            }
            "--prefill" => {
                let value = args.next().ok_or("--prefill needs a value")?;
                params.prefill = value.parse::<usize>().map_err(|e| e.to_string())?;
            }
            "--shards" => {
                let value = args.next().ok_or("--shards needs a value")?;
                params.shards = value.parse::<usize>().map_err(|e| e.to_string())?;
            }
            "--tasks" => {
                let value = args.next().ok_or("--tasks needs a value")?;
                params.task_counts = value
                    .split(',')
                    .map(|t| t.trim().parse::<usize>().map_err(|e| e.to_string()))
                    .collect::<Result<Vec<_>, _>>()?;
                if params.task_counts.is_empty() || params.task_counts.contains(&0) {
                    return Err("--tasks needs positive values".into());
                }
            }
            "--block-cache" => {
                let value = args.next().ok_or("--block-cache needs on|off")?;
                params.block_cache = match value.to_ascii_lowercase().as_str() {
                    "on" | "true" | "1" => Some(true),
                    "off" | "false" | "0" => Some(false),
                    other => return Err(format!("--block-cache needs on|off, got {other}")),
                };
            }
            "--baseline-json" => {
                baseline_json = Some(args.next().ok_or("--baseline-json needs a path")?);
            }
            "--schemes" => {
                let value = args.next().ok_or("--schemes needs a value")?;
                schemes = value
                    .split(',')
                    .map(|s| Scheme::parse(s.trim()).ok_or_else(|| format!("unknown scheme {s}")))
                    .collect::<Result<Vec<_>, _>>()?;
            }
            other => {
                let figure = Figure::parse(other)
                    .ok_or_else(|| format!("unknown figure or option {other}"))?;
                figures.push(figure);
            }
        }
    }
    if figures.is_empty() {
        figures = Figure::ALL.to_vec();
    }
    Ok(Cli {
        figures,
        params,
        schemes,
        baseline_json,
    })
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(parsed) => parsed,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("error: {message}\n");
            }
            print_usage();
            return ExitCode::from(2);
        }
    };
    let (figures, params, schemes) = (cli.figures, cli.params, cli.schemes);

    eprintln!(
        "# threads={:?} duration={:?} repeats={} prefill={} key_range={}",
        params.threads, params.duration, params.repeats, params.prefill, params.key_range
    );
    println!("figure,{}", DataPoint::CSV_HEADER);
    let mut series: Vec<baseline::FigurePoint> = Vec::new();
    for figure in figures {
        eprintln!("# {}: {}", figure.name(), figure.description());
        for point in figure.run(&params, &schemes) {
            println!("{},{}", figure.name(), point.to_csv_row());
            if cli.baseline_json.is_some() {
                series.push((figure.name(), point));
            }
        }
    }
    if let Some(path) = &cli.baseline_json {
        let doc = baseline::render("smr_ops", &params, &series);
        if let Err(error) = std::fs::write(path, doc) {
            eprintln!("error: writing {path}: {error}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "# baseline written to {path} ({} series rows)",
            series.len()
        );
    }
    ExitCode::SUCCESS
}
