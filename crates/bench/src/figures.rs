//! One entry per figure of the paper's evaluation.
//!
//! | Figure | Structure | Workload | Metric(s) |
//! |--------|-----------|----------|-----------|
//! | 5a/5b  | Kogan-Petrank queue | 50% enq / 50% deq | Mops/s, unreclaimed |
//! | 5c/5d  | CRTurn queue | 50/50 | Mops/s, unreclaimed |
//! | 6      | Harris-Michael list | 50% insert / 50% delete | both |
//! | 7      | Michael hash map | 50/50 | both |
//! | 8      | Natarajan-Mittal BST | 50/50 | both |
//! | 9      | Harris-Michael list | 90% get / 10% put | both |
//! | 10     | Michael hash map | 90/10 | both |
//! | 11     | Natarajan-Mittal BST | 90/10 | both |
//!
//! Every runner reports *both* metrics for each point, so the throughput
//! figure and its companion unreclaimed-objects figure come from the same
//! rows (exactly as in the paper, where each experiment produces both plots).
//!
//! Six additions beyond the paper are included: forcing the WFE slow path
//! (`AblationSlowPath`), sweeping the number of fast-path attempts
//! (`AblationAttempts`), a Michael-Scott queue baseline
//! (`QueueBaseline`) so the wait-free CRTurn queue can be compared against
//! the classic lock-free queue in the same sweep
//! (`figures fig5cd queue-baseline`), an executor-style pooled-handle
//! run (`KvPool`): the Michael hash map driven through a `HandlePool` at
//! high task churn, whose rows carry per-shard occupancy and the pool hit
//! rate (`figures kv-pool`), and an *async-task* run (`KvAsync`): the same
//! map driven by tens of thousands of short-lived futures on a `mini-rt`
//! executor through `Send`-able `wfe-task` handles, with one stalled raw-SPI
//! reader injected for the whole run — its rows sweep the task count and
//! carry the pool hit rate and the unreclaimed gauge in bytes, showing EBR's
//! unreclaimed memory growing with the task count while WFE/HE stay bounded
//! (`figures kv-async`), and a block-cache A/B run (`CrossShardChurn`): the
//! write-dominated hash map on a sharded registry, measured once with the
//! per-shard block cache on and once with it off — its rows carry the cache
//! hit/miss counters, so the retire→free→alloc recycling win is visible
//! directly (`figures cross-shard-churn`; pin one mode with
//! `--block-cache on|off`).

use wfe_core::Wfe;
use wfe_ds::{
    CrTurnQueue, KoganPetrankQueue, MichaelHashMap, MichaelList, MichaelScottQueue, NatarajanBst,
    ResizableHashMap,
};
use wfe_reclaim::{Ebr, He, Hp, Ibr2Ge, Leak, Reclaimer};

use crate::params::BenchParams;
use crate::runner::{
    run_async_kv, run_churn_map, run_kv_service, run_map, run_pooled_map, run_queue, DataPoint,
};
use crate::workload::{MapWorkload, ServiceWorkload};

/// The reclamation schemes compared in every figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Wait-Free Eras (this paper).
    Wfe,
    /// Epoch-based reclamation.
    Ebr,
    /// Hazard Eras.
    He,
    /// Hazard Pointers.
    Hp,
    /// Interval-based reclamation (2GEIBR).
    Ibr,
    /// No reclamation.
    Leak,
}

impl Scheme {
    /// Every scheme, in the order the paper lists them.
    pub const ALL: [Scheme; 6] = [
        Scheme::Wfe,
        Scheme::Ebr,
        Scheme::He,
        Scheme::Hp,
        Scheme::Ibr,
        Scheme::Leak,
    ];

    /// Legend name used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Wfe => "WFE",
            Scheme::Ebr => "EBR",
            Scheme::He => "HE",
            Scheme::Hp => "HP",
            Scheme::Ibr => "2GEIBR",
            Scheme::Leak => "Leak",
        }
    }

    /// Parses a legend name.
    pub fn parse(name: &str) -> Option<Scheme> {
        Self::ALL
            .into_iter()
            .find(|s| s.name().eq_ignore_ascii_case(name))
    }
}

/// The key-value structures of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapKind {
    /// Harris-Michael sorted linked list.
    List,
    /// Michael hash map.
    HashMap,
    /// Natarajan-Mittal BST.
    Bst,
}

impl MapKind {
    fn name(self) -> &'static str {
        match self {
            MapKind::List => "list",
            MapKind::HashMap => "hashmap",
            MapKind::Bst => "bst",
        }
    }
}

/// The queue structures of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// Kogan-Petrank wait-free queue (Figure 5a/5b).
    KoganPetrank,
    /// Ramalhete-Correia CRTurn wait-free queue (Figure 5c/5d).
    CrTurn,
    /// Michael-Scott lock-free queue (baseline beyond the paper).
    MsQueue,
}

impl QueueKind {
    fn name(self) -> &'static str {
        match self {
            QueueKind::KoganPetrank => "kp-queue",
            QueueKind::CrTurn => "crturn",
            QueueKind::MsQueue => "msqueue",
        }
    }
}

fn map_point_for<R: Reclaimer>(
    scheme: &'static str,
    map: MapKind,
    workload: MapWorkload,
    threads: usize,
    params: &BenchParams,
) -> DataPoint {
    match map {
        MapKind::List => {
            run_map::<R, MichaelList<u64, R>>(scheme, map.name(), workload, threads, params)
        }
        MapKind::HashMap => {
            run_map::<R, MichaelHashMap<u64, R>>(scheme, map.name(), workload, threads, params)
        }
        MapKind::Bst => {
            run_map::<R, NatarajanBst<u64, R>>(scheme, map.name(), workload, threads, params)
        }
    }
}

/// Measures one map data point for one scheme.
pub fn run_map_point(
    scheme: Scheme,
    map: MapKind,
    workload: MapWorkload,
    threads: usize,
    params: &BenchParams,
) -> DataPoint {
    let name = scheme.name();
    match scheme {
        Scheme::Wfe => map_point_for::<Wfe>(name, map, workload, threads, params),
        Scheme::Ebr => map_point_for::<Ebr>(name, map, workload, threads, params),
        Scheme::He => map_point_for::<He>(name, map, workload, threads, params),
        Scheme::Hp => map_point_for::<Hp>(name, map, workload, threads, params),
        Scheme::Ibr => map_point_for::<Ibr2Ge>(name, map, workload, threads, params),
        Scheme::Leak => map_point_for::<Leak>(name, map, workload, threads, params),
    }
}

fn queue_point_for<R: Reclaimer>(
    scheme: &'static str,
    queue: QueueKind,
    threads: usize,
    params: &BenchParams,
) -> DataPoint {
    match queue {
        QueueKind::KoganPetrank => {
            run_queue::<R, KoganPetrankQueue<u64, R>>(scheme, queue.name(), threads, params)
        }
        QueueKind::CrTurn => {
            run_queue::<R, CrTurnQueue<u64, R>>(scheme, queue.name(), threads, params)
        }
        QueueKind::MsQueue => {
            run_queue::<R, MichaelScottQueue<u64, R>>(scheme, queue.name(), threads, params)
        }
    }
}

fn pooled_point_for<R: Reclaimer>(
    scheme: &'static str,
    workload: MapWorkload,
    threads: usize,
    params: &BenchParams,
) -> DataPoint {
    run_pooled_map::<R, MichaelHashMap<u64, R>>(scheme, "hashmap", workload, threads, params)
}

/// Measures one pooled-handle hash-map data point for one scheme
/// (the `kv-pool` figure).
pub fn run_pooled_point(
    scheme: Scheme,
    workload: MapWorkload,
    threads: usize,
    params: &BenchParams,
) -> DataPoint {
    let name = scheme.name();
    match scheme {
        Scheme::Wfe => pooled_point_for::<Wfe>(name, workload, threads, params),
        Scheme::Ebr => pooled_point_for::<Ebr>(name, workload, threads, params),
        Scheme::He => pooled_point_for::<He>(name, workload, threads, params),
        Scheme::Hp => pooled_point_for::<Hp>(name, workload, threads, params),
        Scheme::Ibr => pooled_point_for::<Ibr2Ge>(name, workload, threads, params),
        Scheme::Leak => pooled_point_for::<Leak>(name, workload, threads, params),
    }
}

fn async_point_for<R: Reclaimer>(
    scheme: &'static str,
    tasks: usize,
    params: &BenchParams,
) -> DataPoint {
    run_async_kv::<R, MichaelHashMap<u64, R>>(scheme, "hashmap", tasks, params)
}

/// Measures one async-task hash-map data point for one scheme
/// (the `kv-async` figure; the swept axis is the task count).
pub fn run_async_point(scheme: Scheme, tasks: usize, params: &BenchParams) -> DataPoint {
    let name = scheme.name();
    match scheme {
        Scheme::Wfe => async_point_for::<Wfe>(name, tasks, params),
        Scheme::Ebr => async_point_for::<Ebr>(name, tasks, params),
        Scheme::He => async_point_for::<He>(name, tasks, params),
        Scheme::Hp => async_point_for::<Hp>(name, tasks, params),
        Scheme::Ibr => async_point_for::<Ibr2Ge>(name, tasks, params),
        Scheme::Leak => async_point_for::<Leak>(name, tasks, params),
    }
}

fn service_point_for<R: Reclaimer>(
    scheme: &'static str,
    workload: ServiceWorkload,
    threads: usize,
    params: &BenchParams,
) -> DataPoint {
    run_kv_service::<R, ResizableHashMap<u64, R>>(scheme, "resizable", workload, threads, params)
}

/// Measures one kv-service data point for one scheme: the split-ordered
/// resizable hash map under a service-shaped leg (Zipfian read-mostly or
/// write-heavy, TTL expiry, or resize storm).
pub fn run_service_point(
    scheme: Scheme,
    workload: ServiceWorkload,
    threads: usize,
    params: &BenchParams,
) -> DataPoint {
    let name = scheme.name();
    match scheme {
        Scheme::Wfe => service_point_for::<Wfe>(name, workload, threads, params),
        Scheme::Ebr => service_point_for::<Ebr>(name, workload, threads, params),
        Scheme::He => service_point_for::<He>(name, workload, threads, params),
        Scheme::Hp => service_point_for::<Hp>(name, workload, threads, params),
        Scheme::Ibr => service_point_for::<Ibr2Ge>(name, workload, threads, params),
        Scheme::Leak => service_point_for::<Leak>(name, workload, threads, params),
    }
}

fn churn_point_for<R: Reclaimer>(
    scheme: &'static str,
    label: &'static str,
    threads: usize,
    params: &BenchParams,
) -> DataPoint {
    run_churn_map::<R, MichaelHashMap<u64, R>>(scheme, "hashmap", label, threads, params)
}

/// Measures one cross-shard-churn hash-map data point for one scheme; the
/// caller pins the block-cache mode via `params.block_cache` and passes the
/// matching workload `label`.
pub fn run_churn_point(
    scheme: Scheme,
    label: &'static str,
    threads: usize,
    params: &BenchParams,
) -> DataPoint {
    let name = scheme.name();
    match scheme {
        Scheme::Wfe => churn_point_for::<Wfe>(name, label, threads, params),
        Scheme::Ebr => churn_point_for::<Ebr>(name, label, threads, params),
        Scheme::He => churn_point_for::<He>(name, label, threads, params),
        Scheme::Hp => churn_point_for::<Hp>(name, label, threads, params),
        Scheme::Ibr => churn_point_for::<Ibr2Ge>(name, label, threads, params),
        Scheme::Leak => churn_point_for::<Leak>(name, label, threads, params),
    }
}

/// Measures one queue data point for one scheme.
pub fn run_queue_point(
    scheme: Scheme,
    queue: QueueKind,
    threads: usize,
    params: &BenchParams,
) -> DataPoint {
    let name = scheme.name();
    match scheme {
        Scheme::Wfe => queue_point_for::<Wfe>(name, queue, threads, params),
        Scheme::Ebr => queue_point_for::<Ebr>(name, queue, threads, params),
        Scheme::He => queue_point_for::<He>(name, queue, threads, params),
        Scheme::Hp => queue_point_for::<Hp>(name, queue, threads, params),
        Scheme::Ibr => queue_point_for::<Ibr2Ge>(name, queue, threads, params),
        Scheme::Leak => queue_point_for::<Leak>(name, queue, threads, params),
    }
}

/// A figure (or ablation) of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Figure {
    /// KP queue, 50/50 (Figure 5a throughput, 5b unreclaimed).
    Fig5ab,
    /// CRTurn queue, 50/50 (Figure 5c throughput, 5d unreclaimed).
    Fig5cd,
    /// Linked list, 50/50 (Figure 6).
    Fig6,
    /// Hash map, 50/50 (Figure 7).
    Fig7,
    /// BST, 50/50 (Figure 8).
    Fig8,
    /// Linked list, 90/10 (Figure 9).
    Fig9,
    /// Hash map, 90/10 (Figure 10).
    Fig10,
    /// BST, 90/10 (Figure 11).
    Fig11,
    /// Ablation: WFE with the slow path forced (1 fast-path attempt) vs the
    /// default 16 attempts, on the hash map.
    AblationSlowPath,
    /// Ablation: sweep of WFE fast-path attempts {1, 4, 16, 64} on the hash map.
    AblationAttempts,
    /// Beyond the paper: Michael-Scott lock-free queue, 50/50, as a baseline
    /// for the wait-free queues in the same sweep.
    QueueBaseline,
    /// Beyond the paper: Michael hash map 50/50 driven through a
    /// [`wfe_reclaim::HandlePool`] at task-churn grain (executor pattern);
    /// rows carry per-shard occupancy and the pool hit rate.
    KvPool,
    /// Beyond the paper: Michael hash map 50/50 driven by async tasks on a
    /// `mini-rt` executor through `Send`-able `wfe-task` handles, with one
    /// stalled raw-SPI reader injected for the whole run. Sweeps
    /// `BenchParams::task_counts` (not threads); rows carry the pool hit
    /// rate and the unreclaimed gauge in bytes.
    KvAsync,
    /// Beyond the paper: Michael hash map 50/50 on a sharded registry, run
    /// once with the per-shard block cache enabled and once disabled (or a
    /// single pinned mode when `BenchParams::block_cache` is `Some`) — the
    /// retire→free→alloc recycling A/B. Rows carry the cache hit/miss
    /// counters and the bytes left parked in the caches.
    CrossShardChurn,
    /// Beyond the paper: the split-ordered *resizable* hash map as a kv
    /// service — Zipfian read-mostly and write-heavy mixes, a TTL expiry
    /// sweep and a resize storm, all seed-replayable. Rows carry the map's
    /// `load_factor`, `resizes` and `migrated_buckets` columns, showing
    /// superseded bucket arrays flowing through the reclamation scheme
    /// while readers stay pinned.
    KvService,
}

impl Figure {
    /// Every figure, in paper order, followed by the ablations and the
    /// extra baselines.
    pub const ALL: [Figure; 15] = [
        Figure::Fig5ab,
        Figure::Fig5cd,
        Figure::Fig6,
        Figure::Fig7,
        Figure::Fig8,
        Figure::Fig9,
        Figure::Fig10,
        Figure::Fig11,
        Figure::AblationSlowPath,
        Figure::AblationAttempts,
        Figure::QueueBaseline,
        Figure::KvPool,
        Figure::KvAsync,
        Figure::CrossShardChurn,
        Figure::KvService,
    ];

    /// CLI name of the figure.
    pub fn name(self) -> &'static str {
        match self {
            Figure::Fig5ab => "fig5ab",
            Figure::Fig5cd => "fig5cd",
            Figure::Fig6 => "fig6",
            Figure::Fig7 => "fig7",
            Figure::Fig8 => "fig8",
            Figure::Fig9 => "fig9",
            Figure::Fig10 => "fig10",
            Figure::Fig11 => "fig11",
            Figure::AblationSlowPath => "ablation-slowpath",
            Figure::AblationAttempts => "ablation-attempts",
            Figure::QueueBaseline => "queue-baseline",
            Figure::KvPool => "kv-pool",
            Figure::KvAsync => "kv-async",
            Figure::CrossShardChurn => "cross-shard-churn",
            Figure::KvService => "kv-service",
        }
    }

    /// Parses a CLI name (accepts `fig5a`..`fig5d` as aliases of the combined
    /// runs).
    pub fn parse(name: &str) -> Option<Figure> {
        let name = name.to_ascii_lowercase();
        match name.as_str() {
            "fig5a" | "fig5b" => return Some(Figure::Fig5ab),
            "fig5c" | "fig5d" => return Some(Figure::Fig5cd),
            _ => {}
        }
        Self::ALL.into_iter().find(|f| f.name() == name)
    }

    /// Human-readable description shown in the CSV preamble.
    pub fn description(self) -> &'static str {
        match self {
            Figure::Fig5ab => "Kogan-Petrank wait-free queue, 50% enqueue / 50% dequeue",
            Figure::Fig5cd => "Ramalhete-Correia CRTurn wait-free queue, 50% enqueue / 50% dequeue",
            Figure::Fig6 => "Harris-Michael linked list, 50% insert / 50% delete",
            Figure::Fig7 => "Michael hash map, 50% insert / 50% delete",
            Figure::Fig8 => "Natarajan-Mittal BST, 50% insert / 50% delete",
            Figure::Fig9 => "Harris-Michael linked list, 90% get / 10% put",
            Figure::Fig10 => "Michael hash map, 90% get / 10% put",
            Figure::Fig11 => "Natarajan-Mittal BST, 90% get / 10% put",
            Figure::AblationSlowPath => "WFE slow path forced vs default, Michael hash map 50/50",
            Figure::AblationAttempts => "WFE fast-path attempt sweep, Michael hash map 50/50",
            Figure::QueueBaseline => {
                "Michael-Scott lock-free queue baseline (beyond the paper), 50/50"
            }
            Figure::KvPool => {
                "Michael hash map 50/50 through a HandlePool at task churn (beyond the paper)"
            }
            Figure::KvAsync => {
                "Michael hash map 50/50 via async tasks and Send-able task handles, \
                 one stalled raw-SPI reader injected (beyond the paper)"
            }
            Figure::CrossShardChurn => {
                "Michael hash map 50/50 on a sharded registry, per-shard block \
                 cache on vs off (beyond the paper)"
            }
            Figure::KvService => {
                "Split-ordered resizable hash map as a kv service: Zipfian \
                 read-mostly/write-heavy, TTL expiry and resize storm \
                 (beyond the paper)"
            }
        }
    }

    /// Runs the figure for every scheme and thread count in `params`.
    pub fn run(self, params: &BenchParams, schemes: &[Scheme]) -> Vec<DataPoint> {
        let mut points = Vec::new();
        match self {
            Figure::Fig5ab | Figure::Fig5cd | Figure::QueueBaseline => {
                let queue = match self {
                    Figure::Fig5ab => QueueKind::KoganPetrank,
                    Figure::Fig5cd => QueueKind::CrTurn,
                    _ => QueueKind::MsQueue,
                };
                for &threads in &params.threads {
                    for &scheme in schemes {
                        points.push(run_queue_point(scheme, queue, threads, params));
                    }
                }
            }
            Figure::Fig6
            | Figure::Fig7
            | Figure::Fig8
            | Figure::Fig9
            | Figure::Fig10
            | Figure::Fig11 => {
                let (map, workload) = match self {
                    Figure::Fig6 => (MapKind::List, MapWorkload::WriteDominated),
                    Figure::Fig7 => (MapKind::HashMap, MapWorkload::WriteDominated),
                    Figure::Fig8 => (MapKind::Bst, MapWorkload::WriteDominated),
                    Figure::Fig9 => (MapKind::List, MapWorkload::ReadMostly),
                    Figure::Fig10 => (MapKind::HashMap, MapWorkload::ReadMostly),
                    _ => (MapKind::Bst, MapWorkload::ReadMostly),
                };
                for &threads in &params.threads {
                    for &scheme in schemes {
                        points.push(run_map_point(scheme, map, workload, threads, params));
                    }
                }
            }
            Figure::KvPool => {
                for &threads in &params.threads {
                    for &scheme in schemes {
                        points.push(run_pooled_point(
                            scheme,
                            MapWorkload::WriteDominated,
                            threads,
                            params,
                        ));
                    }
                }
            }
            Figure::KvAsync => {
                for &tasks in &params.task_counts {
                    for &scheme in schemes {
                        points.push(run_async_point(scheme, tasks, params));
                    }
                }
            }
            Figure::CrossShardChurn => {
                let modes: &[(bool, &'static str)] = match params.block_cache {
                    Some(true) => &[(true, "churn-cache-on")],
                    Some(false) => &[(false, "churn-cache-off")],
                    None => &[(true, "churn-cache-on"), (false, "churn-cache-off")],
                };
                for &threads in &params.threads {
                    for &scheme in schemes {
                        for &(enabled, label) in modes {
                            let mut tweaked = params.clone();
                            tweaked.block_cache = Some(enabled);
                            points.push(run_churn_point(scheme, label, threads, &tweaked));
                        }
                    }
                }
            }
            Figure::KvService => {
                for workload in ServiceWorkload::ALL {
                    for &threads in &params.threads {
                        for &scheme in schemes {
                            points.push(run_service_point(scheme, workload, threads, params));
                        }
                    }
                }
            }
            Figure::AblationSlowPath => {
                for &threads in &params.threads {
                    for (label, attempts) in [("WFE", 16usize), ("WFE-forced-slow", 1)] {
                        let mut tweaked = params.clone();
                        tweaked.fast_path_attempts = attempts;
                        let mut point = map_point_for::<Wfe>(
                            label,
                            MapKind::HashMap,
                            MapWorkload::WriteDominated,
                            threads,
                            &tweaked,
                        );
                        point.scheme = label;
                        points.push(point);
                    }
                }
            }
            Figure::AblationAttempts => {
                for &threads in &params.threads {
                    for (label, attempts) in [
                        ("WFE-attempts-1", 1usize),
                        ("WFE-attempts-4", 4),
                        ("WFE-attempts-16", 16),
                        ("WFE-attempts-64", 64),
                    ] {
                        let mut tweaked = params.clone();
                        tweaked.fast_path_attempts = attempts;
                        let mut point = map_point_for::<Wfe>(
                            label,
                            MapKind::HashMap,
                            MapWorkload::WriteDominated,
                            threads,
                            &tweaked,
                        );
                        point.scheme = label;
                        points.push(point);
                    }
                }
            }
        }
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_names_roundtrip() {
        for figure in Figure::ALL {
            assert_eq!(Figure::parse(figure.name()), Some(figure));
        }
        assert_eq!(Figure::parse("fig5a"), Some(Figure::Fig5ab));
        assert_eq!(Figure::parse("fig5d"), Some(Figure::Fig5cd));
        assert_eq!(Figure::parse("nonsense"), None);
    }

    #[test]
    fn scheme_names_roundtrip() {
        for scheme in Scheme::ALL {
            assert_eq!(Scheme::parse(scheme.name()), Some(scheme));
        }
        assert_eq!(Scheme::parse("wfe"), Some(Scheme::Wfe));
        assert_eq!(Scheme::parse("unknown"), None);
    }

    #[test]
    fn smoke_run_of_a_map_figure_produces_all_series() {
        let params = BenchParams::smoke();
        let schemes = [Scheme::Wfe, Scheme::He];
        let points = Figure::Fig7.run(&params, &schemes);
        assert_eq!(points.len(), params.threads.len() * schemes.len());
        assert!(points.iter().all(|p| p.mops > 0.0));
    }

    #[test]
    fn smoke_run_of_the_queue_figure_produces_all_series() {
        let params = BenchParams::smoke();
        let schemes = [Scheme::Wfe];
        let points = Figure::Fig5ab.run(&params, &schemes);
        assert_eq!(points.len(), params.threads.len());
        assert!(points.iter().all(|p| p.structure == "kp-queue"));
    }

    #[test]
    fn fig5cd_runs_the_real_crturn_queue() {
        let params = BenchParams::smoke();
        let schemes = [Scheme::Wfe];
        let points = Figure::Fig5cd.run(&params, &schemes);
        assert_eq!(points.len(), params.threads.len());
        assert!(points.iter().all(|p| p.structure == "crturn"));
        assert!(points.iter().all(|p| p.mops > 0.0));
    }

    #[test]
    fn queue_baseline_keeps_msqueue_in_the_sweep() {
        let params = BenchParams::smoke();
        let schemes = [Scheme::He];
        let points = Figure::QueueBaseline.run(&params, &schemes);
        assert!(points.iter().all(|p| p.structure == "msqueue"));
    }

    #[test]
    fn kv_async_sweeps_tasks_and_stalled_reader_pins_ebr_but_not_wfe() {
        let params = BenchParams::smoke();
        let schemes = [Scheme::Wfe, Scheme::Ebr];
        let points = Figure::KvAsync.run(&params, &schemes);
        assert_eq!(points.len(), params.task_counts.len() * schemes.len());
        assert!(points.iter().all(|p| p.workload == "async-tasks"));
        assert!(points.iter().all(|p| p.threads == params.async_workers));
        assert!(
            points.iter().all(|p| p.pool_hit_rate > 0.999),
            "prewarmed pool serves every check-out"
        );
        for (index, &tasks) in params.task_counts.iter().enumerate() {
            let wfe = &points[index * schemes.len()];
            let ebr = &points[index * schemes.len() + 1];
            assert_eq!(wfe.tasks, tasks as u64);
            assert_eq!(ebr.tasks, tasks as u64);
            // The stalled bracket pins EBR's epoch, so everything retired
            // during the run stays unreclaimed; WFE's era reservation pins
            // only lifetime-overlapping blocks.
            assert!(
                ebr.avg_unreclaimed > wfe.avg_unreclaimed,
                "stalled reader must pin EBR harder than WFE at {tasks} tasks \
                 (EBR {:.1} vs WFE {:.1})",
                ebr.avg_unreclaimed,
                wfe.avg_unreclaimed
            );
            assert!(ebr.unreclaimed_bytes > wfe.unreclaimed_bytes);
        }
    }

    #[test]
    fn cross_shard_churn_sweeps_both_cache_modes_and_counts_cache_traffic() {
        let params = BenchParams::smoke();
        let schemes = [Scheme::Wfe];
        let points = Figure::CrossShardChurn.run(&params, &schemes);
        assert_eq!(points.len(), params.threads.len() * 2, "on + off per point");
        assert!(points.iter().all(|p| p.mops > 0.0));
        let on: Vec<_> = points
            .iter()
            .filter(|p| p.workload == "churn-cache-on")
            .collect();
        let off: Vec<_> = points
            .iter()
            .filter(|p| p.workload == "churn-cache-off")
            .collect();
        assert_eq!(on.len(), params.threads.len());
        assert_eq!(off.len(), params.threads.len());
        assert!(
            on.iter().any(|p| p.cache_hits > 0.0),
            "cache-on churn recycles blocks through the shard cache"
        );
        assert!(
            off.iter()
                .all(|p| p.cache_hits == 0.0 && p.cached_bytes == 0.0),
            "cache-off rows must not report cache traffic"
        );
    }

    #[test]
    fn cross_shard_churn_honors_a_pinned_cache_mode() {
        let mut params = BenchParams::smoke();
        params.threads = vec![1];
        params.block_cache = Some(false);
        let points = Figure::CrossShardChurn.run(&params, &[Scheme::He]);
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].workload, "churn-cache-off");
    }

    #[test]
    fn kv_service_sweeps_all_legs_and_the_storm_resizes() {
        let mut params = BenchParams::smoke();
        params.threads = vec![2];
        let schemes = [Scheme::Wfe];
        let points = Figure::KvService.run(&params, &schemes);
        assert_eq!(points.len(), ServiceWorkload::ALL.len());
        assert!(points.iter().all(|p| p.structure == "resizable"));
        assert!(points.iter().all(|p| p.mops > 0.0));
        let labels: Vec<_> = points.iter().map(|p| p.workload).collect();
        assert_eq!(
            labels,
            vec![
                "kv-zipf-read90",
                "kv-zipf-write50",
                "kv-ttl",
                "kv-resize-storm"
            ]
        );
        let storm = points
            .iter()
            .find(|p| p.workload == "kv-resize-storm")
            .unwrap();
        assert!(
            storm.resizes > 0.0 && storm.migrated_buckets > 0.0,
            "the storm leg must force directory doublings (resizes {})",
            storm.resizes
        );
    }

    #[test]
    fn kv_pool_reports_pool_and_shard_stats() {
        let params = BenchParams::smoke();
        let schemes = [Scheme::Wfe];
        let points = Figure::KvPool.run(&params, &schemes);
        assert_eq!(points.len(), params.threads.len());
        assert!(points.iter().all(|p| p.workload == "pool-churn"));
        assert!(points.iter().all(|p| p.shards >= 1));
        assert!(
            points.iter().all(|p| p.pool_hit_rate > 0.0),
            "task churn is served from the pool"
        );
    }
}
