//! Benchmark harness reproducing the evaluation of the WFE paper (§5).
//!
//! The paper's evaluation drives six reclamation schemes (WFE, EBR, HE, HP,
//! 2GEIBR, Leak) through five data structures (Kogan-Petrank queue, CRTurn
//! queue, Harris-Michael linked list, Michael hash map, Natarajan-Mittal BST)
//! under two workloads (50% insert / 50% delete and 90% get / 10% put) and
//! reports two metrics per configuration: throughput in Mops/s and the
//! average number of unreclaimed objects.
//!
//! This crate provides:
//!
//! * [`params::BenchParams`] — the methodology knobs (prefill, key range, run
//!   duration, repeats, thread counts), defaulting to a scaled-down version of
//!   the paper's settings and restoring them exactly with
//!   [`params::BenchParams::paper`];
//! * [`runner`] — generic measurement loops for maps and queues, producing
//!   [`runner::DataPoint`]s (scheme, threads, Mops/s, average unreclaimed);
//! * [`figures`] — one entry per figure of the paper (5a-5d, 6-11) plus the
//!   two ablation studies, each of which regenerates the corresponding series
//!   as CSV rows;
//! * [`baseline`] — JSON baseline snapshots (`figures --baseline-json`) for
//!   tracking the performance trajectory across commits;
//! * the `figures` binary (`cargo run -p wfe-bench --release --bin figures`)
//!   and the `figures_smoke` bench target (`cargo bench`) that drive it.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baseline;
pub mod figures;
pub mod params;
pub mod runner;
pub mod workload;
