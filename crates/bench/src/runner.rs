//! Generic measurement loops.
//!
//! One data point = one (scheme, structure, workload, thread-count)
//! combination, measured for `BenchParams::duration` and repeated
//! `BenchParams::repeats` times. Throughput is the total number of completed
//! operations divided by the run duration (reported in Mops/s, as in the
//! paper); the reclamation metric is the time-average of the number of
//! retired-but-not-yet-freed blocks, sampled every few milliseconds while the
//! run is in flight.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use wfe_reclaim::{Reclaimer, ReclaimerConfig, SmrStats};

use crate::params::BenchParams;
use crate::workload::{MapOp, MapWorkload, OpGenerator};
use wfe_ds::{ConcurrentMap, ConcurrentQueue};

/// How often the sampler thread reads the unreclaimed-object counter.
const SAMPLE_INTERVAL: Duration = Duration::from_millis(5);

/// Warm-up time before the measured window: a fraction of the run duration,
/// capped so short smoke runs stay short.
fn warmup_duration(params: &BenchParams) -> Duration {
    (params.duration / 5)
        .min(Duration::from_millis(200))
        .max(Duration::from_millis(20))
}

/// One-time process warm-up: spin every core and churn the allocator for a
/// moment so the first measured configuration is not penalised by CPU
/// frequency ramp-up and cold allocator arenas (with short run durations that
/// penalty is large enough to distort the first series of a sweep).
fn process_warm_up() {
    static WARM: std::sync::Once = std::sync::Once::new();
    WARM.call_once(|| {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let deadline = Instant::now() + Duration::from_millis(700);
        // Run a real (throwaway) map workload so the allocator arenas used by
        // worker threads are grown and faulted in before anything is measured.
        let domain = wfe_reclaim::He::with_config(ReclaimerConfig::with_max_threads(cores.min(8)));
        let map = wfe_ds::MichaelHashMap::<u64, wfe_reclaim::He>::with_domain(Arc::clone(&domain));
        std::thread::scope(|scope| {
            for thread in 0..cores.min(8) {
                let domain = Arc::clone(&domain);
                let map = &map;
                scope.spawn(move || {
                    let mut handle = domain.register();
                    let mut key = thread as u64;
                    let mut sink = 0u64;
                    while Instant::now() < deadline {
                        key = key.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let k = key % 100_000;
                        if key & 1 == 0 {
                            map.insert(&mut handle, k, k);
                        } else {
                            map.remove(&mut handle, k);
                        }
                        sink = sink.wrapping_add(k);
                        std::hint::black_box(&sink);
                    }
                });
            }
        });
    });
}

/// One measured point of a figure.
#[derive(Debug, Clone)]
pub struct DataPoint {
    /// Scheme name as used in the paper's legends.
    pub scheme: &'static str,
    /// Data-structure name.
    pub structure: &'static str,
    /// Workload label (`write50`, `read90`, `queue50`).
    pub workload: &'static str,
    /// Number of worker threads.
    pub threads: usize,
    /// Millions of completed operations per second.
    pub mops: f64,
    /// Time-averaged number of retired-but-unreclaimed blocks.
    pub avg_unreclaimed: f64,
    /// Orphaned batches adopted from exited threads (end-of-run total,
    /// averaged over repeats).
    pub adopted_batches: f64,
    /// Blocks freed by scanning adopted batches (end-of-run total, averaged
    /// over repeats) — the observable for the bounded-unreclaimed claim when
    /// threads come and go.
    pub freed_via_adoption: f64,
}

impl DataPoint {
    /// CSV header matching [`DataPoint::to_csv_row`].
    pub const CSV_HEADER: &'static str =
        "structure,workload,scheme,threads,mops,avg_unreclaimed,adopted_batches,freed_via_adoption";

    /// Renders the point as one CSV row.
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{:.4},{:.1},{:.1},{:.1}",
            self.structure,
            self.workload,
            self.scheme,
            self.threads,
            self.mops,
            self.avg_unreclaimed,
            self.adopted_batches,
            self.freed_via_adoption
        )
    }
}

fn domain_config<R: Reclaimer>(
    threads: usize,
    required_slots: usize,
    params: &BenchParams,
) -> ReclaimerConfig {
    let _ = std::marker::PhantomData::<R>;
    ReclaimerConfig {
        max_threads: threads,
        slots_per_thread: required_slots.max(2),
        era_freq: params.era_freq,
        cleanup_freq: params.cleanup_freq,
        fast_path_attempts: params.fast_path_attempts,
    }
}

/// Samples `unreclaimed` while the workers run; returns the time average.
struct Sampler {
    sum: f64,
    samples: u64,
}

impl Sampler {
    fn new() -> Self {
        Self {
            sum: 0.0,
            samples: 0,
        }
    }

    fn record(&mut self, unreclaimed: u64) {
        self.sum += unreclaimed as f64;
        self.samples += 1;
    }

    fn average(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum / self.samples as f64
        }
    }
}

/// Runs the map workload once and returns (completed ops, average unreclaimed).
fn run_map_once<R, M>(
    threads: usize,
    workload: MapWorkload,
    params: &BenchParams,
    seed: u64,
) -> (u64, f64, Duration, SmrStats)
where
    R: Reclaimer,
    M: ConcurrentMap<R>,
{
    let domain = R::with_config(domain_config::<R>(threads, M::required_slots(), params));
    let map = M::with_domain(Arc::clone(&domain));

    // Prefill with `prefill` distinct keys drawn from the key range.
    {
        let mut handle = domain.register();
        let mut generator = OpGenerator::new(workload, params.key_range, seed, usize::MAX >> 1);
        let mut inserted = 0usize;
        while inserted < params.prefill.min(params.key_range as usize) {
            if map.insert(&mut handle, generator.next_key(), 0) {
                inserted += 1;
            }
        }
    }

    let stop = AtomicBool::new(false);
    let measuring = AtomicBool::new(false);
    let total_ops = AtomicU64::new(0);
    let barrier = Barrier::new(threads + 1);
    let mut sampler = Sampler::new();
    let mut elapsed = Duration::ZERO;

    std::thread::scope(|scope| {
        for thread in 0..threads {
            let domain = Arc::clone(&domain);
            let map = &map;
            let stop = &stop;
            let measuring = &measuring;
            let total_ops = &total_ops;
            let barrier = &barrier;
            scope.spawn(move || {
                let mut handle = domain.register();
                let mut generator = OpGenerator::new(workload, params.key_range, seed, thread);
                barrier.wait();
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if !measuring.load(Ordering::Relaxed) {
                        ops = 0;
                    }
                    match generator.next_op() {
                        MapOp::Insert(key) => {
                            map.insert(&mut handle, key, key);
                        }
                        MapOp::Remove(key) => {
                            map.remove(&mut handle, key);
                        }
                        MapOp::Get(key) => {
                            map.get(&mut handle, key);
                        }
                    }
                    ops += 1;
                }
                total_ops.fetch_add(ops, Ordering::Relaxed);
            });
        }
        barrier.wait();
        // Warm-up: let the workers fault in the working set and ramp the CPU
        // before the measured window opens (the first scheme measured in a
        // process would otherwise be penalised).
        std::thread::sleep(warmup_duration(params));
        measuring.store(true, Ordering::SeqCst);
        let start = Instant::now();
        while start.elapsed() < params.duration {
            std::thread::sleep(SAMPLE_INTERVAL);
            sampler.record(domain.stats().unreclaimed);
        }
        stop.store(true, Ordering::Relaxed);
        elapsed = start.elapsed();
    });

    let stats = domain.stats();
    (total_ops.into_inner(), sampler.average(), elapsed, stats)
}

/// Runs the queue workload once (50% enqueue / 50% dequeue).
fn run_queue_once<R, Q>(
    threads: usize,
    params: &BenchParams,
    seed: u64,
) -> (u64, f64, Duration, SmrStats)
where
    R: Reclaimer,
    Q: ConcurrentQueue<R>,
{
    let domain = R::with_config(domain_config::<R>(threads, Q::required_slots(), params));
    let queue = Q::with_domain(Arc::clone(&domain));

    {
        let mut handle = domain.register();
        let mut generator = OpGenerator::new(
            MapWorkload::WriteDominated,
            params.key_range,
            seed,
            usize::MAX >> 1,
        );
        for _ in 0..params.prefill {
            queue.enqueue(&mut handle, generator.next_key());
        }
    }

    let stop = AtomicBool::new(false);
    let measuring = AtomicBool::new(false);
    let total_ops = AtomicU64::new(0);
    let barrier = Barrier::new(threads + 1);
    let mut sampler = Sampler::new();
    let mut elapsed = Duration::ZERO;

    std::thread::scope(|scope| {
        for thread in 0..threads {
            let domain = Arc::clone(&domain);
            let queue = &queue;
            let stop = &stop;
            let measuring = &measuring;
            let total_ops = &total_ops;
            let barrier = &barrier;
            scope.spawn(move || {
                let mut handle = domain.register();
                let mut generator =
                    OpGenerator::new(MapWorkload::WriteDominated, params.key_range, seed, thread);
                barrier.wait();
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if !measuring.load(Ordering::Relaxed) {
                        ops = 0;
                    }
                    if generator.next_bool() {
                        queue.enqueue(&mut handle, generator.next_key());
                    } else {
                        queue.dequeue(&mut handle);
                    }
                    ops += 1;
                }
                total_ops.fetch_add(ops, Ordering::Relaxed);
            });
        }
        barrier.wait();
        // Warm-up: let the workers fault in the working set and ramp the CPU
        // before the measured window opens (the first scheme measured in a
        // process would otherwise be penalised).
        std::thread::sleep(warmup_duration(params));
        measuring.store(true, Ordering::SeqCst);
        let start = Instant::now();
        while start.elapsed() < params.duration {
            std::thread::sleep(SAMPLE_INTERVAL);
            sampler.record(domain.stats().unreclaimed);
        }
        stop.store(true, Ordering::Relaxed);
        elapsed = start.elapsed();
    });

    let stats = domain.stats();
    (total_ops.into_inner(), sampler.average(), elapsed, stats)
}

/// Measures one map data point (averaged over `params.repeats` runs).
pub fn run_map<R, M>(
    scheme: &'static str,
    structure: &'static str,
    workload: MapWorkload,
    threads: usize,
    params: &BenchParams,
) -> DataPoint
where
    R: Reclaimer,
    M: ConcurrentMap<R>,
{
    process_warm_up();
    let mut mops = 0.0;
    let mut unreclaimed = 0.0;
    let mut adopted_batches = 0.0;
    let mut freed_via_adoption = 0.0;
    for repeat in 0..params.repeats.max(1) {
        let (ops, avg_unreclaimed, elapsed, stats) =
            run_map_once::<R, M>(threads, workload, params, 0xC0FFEE + repeat as u64);
        mops += ops as f64 / elapsed.as_secs_f64() / 1e6;
        unreclaimed += avg_unreclaimed;
        adopted_batches += stats.adopted_batches as f64;
        freed_via_adoption += stats.freed_via_adoption as f64;
    }
    let repeats = params.repeats.max(1) as f64;
    DataPoint {
        scheme,
        structure,
        workload: workload.label(),
        threads,
        mops: mops / repeats,
        avg_unreclaimed: unreclaimed / repeats,
        adopted_batches: adopted_batches / repeats,
        freed_via_adoption: freed_via_adoption / repeats,
    }
}

/// Measures one queue data point (averaged over `params.repeats` runs).
pub fn run_queue<R, Q>(
    scheme: &'static str,
    structure: &'static str,
    threads: usize,
    params: &BenchParams,
) -> DataPoint
where
    R: Reclaimer,
    Q: ConcurrentQueue<R>,
{
    process_warm_up();
    let mut mops = 0.0;
    let mut unreclaimed = 0.0;
    let mut adopted_batches = 0.0;
    let mut freed_via_adoption = 0.0;
    for repeat in 0..params.repeats.max(1) {
        let (ops, avg_unreclaimed, elapsed, stats) =
            run_queue_once::<R, Q>(threads, params, 0xBADC0DE + repeat as u64);
        mops += ops as f64 / elapsed.as_secs_f64() / 1e6;
        unreclaimed += avg_unreclaimed;
        adopted_batches += stats.adopted_batches as f64;
        freed_via_adoption += stats.freed_via_adoption as f64;
    }
    let repeats = params.repeats.max(1) as f64;
    DataPoint {
        scheme,
        structure,
        workload: "queue50",
        threads,
        mops: mops / repeats,
        avg_unreclaimed: unreclaimed / repeats,
        adopted_batches: adopted_batches / repeats,
        freed_via_adoption: freed_via_adoption / repeats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfe_core::Wfe;
    use wfe_ds::{MichaelHashMap, MichaelScottQueue};
    use wfe_reclaim::He;

    #[test]
    fn map_runner_produces_sane_numbers() {
        let params = BenchParams::smoke();
        let point = run_map::<Wfe, MichaelHashMap<u64, Wfe>>(
            "WFE",
            "hashmap",
            MapWorkload::WriteDominated,
            2,
            &params,
        );
        assert_eq!(point.threads, 2);
        assert!(point.mops > 0.0, "some operations completed");
        assert!(point.avg_unreclaimed >= 0.0);
        assert!(point.to_csv_row().starts_with("hashmap,write50,WFE,2,"));
    }

    #[test]
    fn queue_runner_produces_sane_numbers() {
        let params = BenchParams::smoke();
        let point = run_queue::<He, MichaelScottQueue<u64, He>>("HE", "msqueue", 2, &params);
        assert!(point.mops > 0.0);
        assert_eq!(point.workload, "queue50");
    }
}
