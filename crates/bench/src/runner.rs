//! Generic measurement loops.
//!
//! One data point = one (scheme, structure, workload, thread-count)
//! combination, measured for `BenchParams::duration` and repeated
//! `BenchParams::repeats` times. Throughput is the total number of completed
//! operations divided by the run duration (reported in Mops/s, as in the
//! paper); the reclamation metric is the time-average of the number of
//! retired-but-not-yet-freed blocks, sampled every few milliseconds while the
//! run is in flight. The sampler also records how many registry shards are
//! occupied at each tick — the scan width after shard-skip.
//!
//! Beyond the per-thread runners of the paper, [`run_pooled_map`] measures
//! the executor pattern: workers check a handle out of a [`HandlePool`] for a
//! short task (a handful of operations), check it back in, and repeat — the
//! `kv-pool` figure. Its data points carry the pool hit rate.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};
use wfe_sync::atomic::{AtomicBool, AtomicU64, Ordering};

use wfe_reclaim::{
    Atomic, BlockCacheConfig, Handle, HandlePool, RawHandle, Reclaimer, ReclaimerConfig, SmrStats,
};
use wfe_task::TaskHandle;

use crate::params::BenchParams;
use crate::workload::{MapOp, MapWorkload, OpGenerator, ServiceOpGenerator, ServiceWorkload};
use wfe_ds::{ConcurrentMap, ConcurrentQueue, MapServiceStats};

/// How often the sampler thread reads the unreclaimed-object counter.
const SAMPLE_INTERVAL: Duration = Duration::from_millis(5);

/// Operations one pooled "task" performs between check-out and check-in of
/// its handle (the task-churn grain of the `kv-pool` and `kv-async` figures).
pub const POOL_TASK_OPS: usize = 64;

/// How often an async task yields back to the executor (ops between
/// `yield_now().await` suspension points in the `kv-async` figure).
const ASYNC_YIELD_EVERY: usize = 16;

/// Join-wave size of the `kv-async` runner: at most this many tasks are live
/// at once, which bounds handle concurrency (and registry size) while the
/// task-count axis sweeps into the hundreds of thousands.
const ASYNC_WAVE: usize = 256;

/// Warm-up time before the measured window: a fraction of the run duration,
/// capped so short smoke runs stay short.
fn warmup_duration(params: &BenchParams) -> Duration {
    (params.duration / 5)
        .min(Duration::from_millis(200))
        .max(Duration::from_millis(20))
}

/// One-time process warm-up: spin every core and churn the allocator for a
/// moment so the first measured configuration is not penalised by CPU
/// frequency ramp-up and cold allocator arenas (with short run durations that
/// penalty is large enough to distort the first series of a sweep).
fn process_warm_up() {
    static WARM: std::sync::Once = std::sync::Once::new();
    WARM.call_once(|| {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let deadline = Instant::now() + Duration::from_millis(700);
        // Run a real (throwaway) map workload so the allocator arenas used by
        // worker threads are grown and faulted in before anything is measured.
        let domain = wfe_reclaim::He::with_config(ReclaimerConfig::with_max_threads(cores.min(8)));
        let map = wfe_ds::MichaelHashMap::<u64, wfe_reclaim::He>::with_domain(Arc::clone(&domain));
        std::thread::scope(|scope| {
            for thread in 0..cores.min(8) {
                let domain = Arc::clone(&domain);
                let map = &map;
                scope.spawn(move || {
                    let mut handle = domain.register();
                    let mut key = thread as u64;
                    let mut sink = 0u64;
                    while Instant::now() < deadline {
                        key = key.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let k = key % 100_000;
                        // High bit, not `key & 1`: the LCG's low bit simply
                        // alternates and equals `k & 1`, which would starve
                        // the remove path of present keys.
                        if (key >> 32) & 1 == 0 {
                            map.insert(&mut handle, k, k);
                        } else {
                            map.remove(&mut handle, k);
                        }
                        sink = sink.wrapping_add(k);
                        std::hint::black_box(&sink);
                    }
                });
            }
        });
    });
}

/// One measured point of a figure.
#[derive(Debug, Clone)]
pub struct DataPoint {
    /// Scheme name as used in the paper's legends.
    pub scheme: &'static str,
    /// Data-structure name.
    pub structure: &'static str,
    /// Workload label (`write50`, `read90`, `queue50`, `pool-churn`).
    pub workload: &'static str,
    /// Number of worker threads.
    pub threads: usize,
    /// Millions of completed operations per second.
    pub mops: f64,
    /// Time-averaged number of retired-but-unreclaimed blocks.
    pub avg_unreclaimed: f64,
    /// Orphaned batches adopted from exited threads (end-of-run total,
    /// averaged over repeats).
    pub adopted_batches: f64,
    /// Blocks freed by scanning adopted batches (end-of-run total, averaged
    /// over repeats) — the observable for the bounded-unreclaimed claim when
    /// threads come and go.
    pub freed_via_adoption: f64,
    /// Number of shards the domain's slot registry was split into.
    pub shards: usize,
    /// Time-averaged number of *occupied* shards (the scan width after
    /// shard-skip; `shards - avg_occupied_shards` shards were skipped by an
    /// average cleanup pass).
    pub avg_occupied_shards: f64,
    /// Fraction of handle check-outs served from the pool (`kv-pool` figure
    /// only; 0 for per-thread runners, which never touch a pool).
    pub pool_hit_rate: f64,
    /// Number of async tasks executed (`kv-async` figure only — its x-axis;
    /// 0 for duration-based runners).
    pub tasks: u64,
    /// Time-averaged unreclaimed memory in bytes
    /// (`avg_unreclaimed × node size`; `kv-async` figure only, 0 elsewhere).
    pub unreclaimed_bytes: f64,
    /// Allocations served from the per-shard block cache (end-of-run total,
    /// averaged over repeats; 0 when the cache is disabled).
    pub cache_hits: f64,
    /// Cacheable allocations that fell through to the global allocator
    /// (end-of-run total, averaged over repeats).
    pub cache_misses: f64,
    /// Bytes parked in the per-shard block caches when the run ended
    /// (averaged over repeats).
    pub cached_bytes: f64,
    /// End-of-run elements-per-bucket ratio of a resizable map
    /// (`kv-service` figure; 0 for fixed-capacity structures).
    pub load_factor: f64,
    /// Bucket-array doublings the resizable map performed during the run
    /// (end-of-run total, averaged over repeats; 0 elsewhere).
    pub resizes: f64,
    /// Buckets whose cached dummy pointers were carried into a new directory
    /// by those resizes (end-of-run total, averaged over repeats).
    pub migrated_buckets: f64,
}

impl DataPoint {
    /// CSV header matching [`DataPoint::to_csv_row`].
    pub const CSV_HEADER: &'static str =
        "structure,workload,scheme,threads,mops,avg_unreclaimed,adopted_batches,\
         freed_via_adoption,shards,avg_occupied_shards,pool_hit_rate,tasks,\
         unreclaimed_bytes,cache_hits,cache_misses,cached_bytes,load_factor,\
         resizes,migrated_buckets";

    /// Renders the point as one CSV row.
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{:.4},{:.1},{:.1},{:.1},{},{:.2},{:.3},{},{:.0},{:.1},{:.1},{:.0},\
             {:.3},{:.1},{:.1}",
            self.structure,
            self.workload,
            self.scheme,
            self.threads,
            self.mops,
            self.avg_unreclaimed,
            self.adopted_batches,
            self.freed_via_adoption,
            self.shards,
            self.avg_occupied_shards,
            self.pool_hit_rate,
            self.tasks,
            self.unreclaimed_bytes,
            self.cache_hits,
            self.cache_misses,
            self.cached_bytes,
            self.load_factor,
            self.resizes,
            self.migrated_buckets
        )
    }
}

fn domain_config<R: Reclaimer>(
    threads: usize,
    required_slots: usize,
    params: &BenchParams,
) -> ReclaimerConfig {
    let _ = std::marker::PhantomData::<R>;
    let block_cache = match params.block_cache {
        Some(enabled) => BlockCacheConfig {
            enabled,
            ..BlockCacheConfig::default()
        },
        None => BlockCacheConfig::default(),
    };
    ReclaimerConfig {
        max_threads: threads,
        slots_per_thread: required_slots.max(2),
        era_freq: params.era_freq,
        cleanup_freq: params.cleanup_freq,
        fast_path_attempts: params.fast_path_attempts,
        shards: params.shards,
        block_cache,
    }
}

/// Accumulates a time-averaged gauge sampled while the workers run.
struct Sampler {
    sum: f64,
    samples: u64,
}

impl Sampler {
    fn new() -> Self {
        Self {
            sum: 0.0,
            samples: 0,
        }
    }

    fn record(&mut self, value: u64) {
        self.sum += value as f64;
        self.samples += 1;
    }

    fn average(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum / self.samples as f64
        }
    }
}

/// The raw outcome of one measured run.
struct RunOutcome {
    ops: u64,
    avg_unreclaimed: f64,
    avg_occupied_shards: f64,
    shards: usize,
    elapsed: Duration,
    stats: SmrStats,
    /// `kv-pool`/`kv-async` runs only; 0 elsewhere.
    pool_hit_rate: f64,
    /// `kv-async` runs only; 0 elsewhere.
    tasks: u64,
    /// `kv-async` runs only; 0 elsewhere.
    unreclaimed_bytes: f64,
    /// End-of-run resizable-map stats (`kv-service` figure; zeros for
    /// fixed-capacity structures, which keep the trait's default impl).
    service: MapServiceStats,
}

/// The sampling loop every runner's main thread executes while its workers
/// run: warm up, open the measured window, sample the gauges, stop.
fn drive_sampling<R: Reclaimer>(
    domain: &Arc<R>,
    params: &BenchParams,
    barrier: &Barrier,
    measuring: &AtomicBool,
    stop: &AtomicBool,
    unreclaimed_sampler: &mut Sampler,
    occupancy_sampler: &mut Sampler,
) -> Duration {
    barrier.wait();
    // Warm-up: let the workers fault in the working set and ramp the CPU
    // before the measured window opens (the first scheme measured in a
    // process would otherwise be penalised).
    std::thread::sleep(warmup_duration(params));
    measuring.store(true, Ordering::SeqCst);
    let start = Instant::now();
    while start.elapsed() < params.duration {
        std::thread::sleep(SAMPLE_INTERVAL);
        unreclaimed_sampler.record(domain.stats().unreclaimed);
        occupancy_sampler.record(domain.registry().occupied_shards() as u64);
    }
    stop.store(true, Ordering::Relaxed); // ORDER: benchmark control flag; no data is ordered by it.
    start.elapsed()
}

/// Pre-inserts `prefill` distinct keys before the measured window opens.
fn prefill_map<R, M>(
    domain: &Arc<R>,
    map: &M,
    workload: MapWorkload,
    params: &BenchParams,
    seed: u64,
) where
    R: Reclaimer,
    M: ConcurrentMap<R>,
{
    let mut handle = domain.register();
    let mut generator = OpGenerator::new(workload, params.key_range, seed, usize::MAX >> 1);
    let mut inserted = 0usize;
    while inserted < params.prefill.min(params.key_range as usize) {
        if map.insert(&mut handle, generator.next_key(), 0) {
            inserted += 1;
        }
    }
}

/// Applies the generator's next operation to `map`.
#[inline]
fn apply_map_op<R, M>(map: &M, handle: &mut R::Handle, generator: &mut OpGenerator)
where
    R: Reclaimer,
    M: ConcurrentMap<R>,
{
    match generator.next_op() {
        MapOp::Insert(key) => {
            map.insert(handle, key, key);
        }
        MapOp::Remove(key) => {
            map.remove(handle, key);
        }
        MapOp::Get(key) => {
            map.get(handle, key);
        }
    }
}

/// Runs the map workload once.
fn run_map_once<R, M>(
    threads: usize,
    workload: MapWorkload,
    params: &BenchParams,
    seed: u64,
) -> RunOutcome
where
    R: Reclaimer,
    M: ConcurrentMap<R>,
{
    let domain = R::with_config(domain_config::<R>(threads, M::required_slots(), params));
    let map = M::with_domain(Arc::clone(&domain));
    prefill_map(&domain, &map, workload, params, seed);

    let stop = AtomicBool::new(false);
    let measuring = AtomicBool::new(false);
    let total_ops = AtomicU64::new(0);
    let barrier = Barrier::new(threads + 1);
    let mut unreclaimed_sampler = Sampler::new();
    let mut occupancy_sampler = Sampler::new();
    let mut elapsed = Duration::ZERO;

    std::thread::scope(|scope| {
        for thread in 0..threads {
            let domain = Arc::clone(&domain);
            let map = &map;
            let stop = &stop;
            let measuring = &measuring;
            let total_ops = &total_ops;
            let barrier = &barrier;
            scope.spawn(move || {
                let mut handle = domain.register();
                let mut generator = OpGenerator::new(workload, params.key_range, seed, thread);
                barrier.wait();
                let mut ops = 0u64;
                // ORDER: benchmark control flag; no data is ordered by it.
                while !stop.load(Ordering::Relaxed) {
                    // ORDER: benchmark control flag; no data is ordered by it.
                    if !measuring.load(Ordering::Relaxed) {
                        ops = 0;
                    }
                    apply_map_op(map, &mut handle, &mut generator);
                    ops += 1;
                }
                total_ops.fetch_add(ops, Ordering::Relaxed); // ORDER: throughput counter, aggregated after the threads join.
            });
        }
        elapsed = drive_sampling(
            &domain,
            params,
            &barrier,
            &measuring,
            &stop,
            &mut unreclaimed_sampler,
            &mut occupancy_sampler,
        );
    });

    RunOutcome {
        ops: total_ops.into_inner(),
        avg_unreclaimed: unreclaimed_sampler.average(),
        avg_occupied_shards: occupancy_sampler.average(),
        shards: domain.registry().shard_count(),
        elapsed,
        stats: domain.stats(),
        pool_hit_rate: 0.0,
        tasks: 0,
        unreclaimed_bytes: 0.0,
        service: map.service_stats(),
    }
}

/// Runs the service-shaped map workload once (the `kv-service` figure):
/// Zipfian key popularity, TTL expiry or resize-storm churn depending on the
/// leg, with the map's end-of-run resize statistics captured into the
/// outcome. Only the zipf legs prefill — the TTL and storm legs measure the
/// map growing from its initial directory.
fn run_kv_service_once<R, M>(
    threads: usize,
    workload: ServiceWorkload,
    params: &BenchParams,
    seed: u64,
) -> RunOutcome
where
    R: Reclaimer,
    M: ConcurrentMap<R>,
{
    let domain = R::with_config(domain_config::<R>(threads, M::required_slots(), params));
    let map = M::with_domain(Arc::clone(&domain));
    if workload.prefills() {
        prefill_map(&domain, &map, MapWorkload::WriteDominated, params, seed);
    }

    let stop = AtomicBool::new(false);
    let measuring = AtomicBool::new(false);
    let total_ops = AtomicU64::new(0);
    let barrier = Barrier::new(threads + 1);
    let mut unreclaimed_sampler = Sampler::new();
    let mut occupancy_sampler = Sampler::new();
    let mut elapsed = Duration::ZERO;

    std::thread::scope(|scope| {
        for thread in 0..threads {
            let domain = Arc::clone(&domain);
            let map = &map;
            let stop = &stop;
            let measuring = &measuring;
            let total_ops = &total_ops;
            let barrier = &barrier;
            scope.spawn(move || {
                let mut handle = domain.register();
                let mut generator =
                    ServiceOpGenerator::new(workload, params.key_range, seed, thread);
                barrier.wait();
                let mut ops = 0u64;
                // ORDER: benchmark control flag; no data is ordered by it.
                while !stop.load(Ordering::Relaxed) {
                    // ORDER: benchmark control flag; no data is ordered by it.
                    if !measuring.load(Ordering::Relaxed) {
                        ops = 0;
                    }
                    match generator.next_op() {
                        MapOp::Insert(key) => {
                            map.insert(&mut handle, key, key);
                        }
                        MapOp::Remove(key) => {
                            map.remove(&mut handle, key);
                        }
                        MapOp::Get(key) => {
                            map.get(&mut handle, key);
                        }
                    }
                    ops += 1;
                }
                total_ops.fetch_add(ops, Ordering::Relaxed); // ORDER: throughput counter, aggregated after the threads join.
            });
        }
        elapsed = drive_sampling(
            &domain,
            params,
            &barrier,
            &measuring,
            &stop,
            &mut unreclaimed_sampler,
            &mut occupancy_sampler,
        );
    });

    RunOutcome {
        ops: total_ops.into_inner(),
        avg_unreclaimed: unreclaimed_sampler.average(),
        avg_occupied_shards: occupancy_sampler.average(),
        shards: domain.registry().shard_count(),
        elapsed,
        stats: domain.stats(),
        pool_hit_rate: 0.0,
        tasks: 0,
        unreclaimed_bytes: 0.0,
        service: map.service_stats(),
    }
}

/// Measures one kv-service data point (averaged over `params.repeats` runs).
/// The seed is derived from the leg so every leg's key stream is distinct but
/// replayable.
pub fn run_kv_service<R, M>(
    scheme: &'static str,
    structure: &'static str,
    workload: ServiceWorkload,
    threads: usize,
    params: &BenchParams,
) -> DataPoint
where
    R: Reclaimer,
    M: ConcurrentMap<R>,
{
    let leg = workload as u64;
    average_point(
        scheme,
        structure,
        workload.label(),
        threads,
        params,
        |repeat| {
            run_kv_service_once::<R, M>(threads, workload, params, 0x5E41_1CE0 + leg * 97 + repeat)
        },
    )
}

/// Runs the map workload once with pooled handles at task-churn grain: each
/// worker checks a handle out of the shared [`HandlePool`], performs
/// [`POOL_TASK_OPS`] operations, checks it back in, and repeats.
fn run_pooled_map_once<R, M>(
    threads: usize,
    workload: MapWorkload,
    params: &BenchParams,
    seed: u64,
) -> RunOutcome
where
    R: Reclaimer,
    M: ConcurrentMap<R>,
{
    let domain = R::with_config(domain_config::<R>(threads, M::required_slots(), params));
    let map = M::with_domain(Arc::clone(&domain));
    prefill_map(&domain, &map, workload, params, seed);
    let pool = HandlePool::new(Arc::clone(&domain));

    let stop = AtomicBool::new(false);
    let measuring = AtomicBool::new(false);
    let total_ops = AtomicU64::new(0);
    let barrier = Barrier::new(threads + 1);
    let mut unreclaimed_sampler = Sampler::new();
    let mut occupancy_sampler = Sampler::new();
    let mut elapsed = Duration::ZERO;

    std::thread::scope(|scope| {
        for thread in 0..threads {
            let pool = Arc::clone(&pool);
            let map = &map;
            let stop = &stop;
            let measuring = &measuring;
            let total_ops = &total_ops;
            let barrier = &barrier;
            scope.spawn(move || {
                let mut generator = OpGenerator::new(workload, params.key_range, seed, thread);
                barrier.wait();
                let mut ops = 0u64;
                // ORDER: benchmark control flag; no data is ordered by it.
                while !stop.load(Ordering::Relaxed) {
                    // ORDER: benchmark control flag; no data is ordered by it.
                    if !measuring.load(Ordering::Relaxed) {
                        ops = 0;
                    }
                    // One "task": check out, work, check in.
                    let mut handle = loop {
                        match pool.check_out() {
                            Some(handle) => break handle,
                            None => std::thread::yield_now(),
                        }
                    };
                    for _ in 0..POOL_TASK_OPS {
                        apply_map_op(map, &mut handle, &mut generator);
                        ops += 1;
                    }
                    drop(handle);
                }
                total_ops.fetch_add(ops, Ordering::Relaxed); // ORDER: throughput counter, aggregated after the threads join.
            });
        }
        elapsed = drive_sampling(
            &domain,
            params,
            &barrier,
            &measuring,
            &stop,
            &mut unreclaimed_sampler,
            &mut occupancy_sampler,
        );
    });

    RunOutcome {
        ops: total_ops.into_inner(),
        avg_unreclaimed: unreclaimed_sampler.average(),
        avg_occupied_shards: occupancy_sampler.average(),
        shards: domain.registry().shard_count(),
        elapsed,
        stats: domain.stats(),
        pool_hit_rate: pool.stats().hit_rate(),
        tasks: 0,
        unreclaimed_bytes: 0.0,
        service: map.service_stats(),
    }
}

/// Runs the map workload once at *async task* grain (the `kv-async` figure):
/// `tasks` short-lived futures on a `params.async_workers`-thread `mini-rt`
/// executor, each checking a `Send`-able [`TaskHandle`] out of a prewarmed
/// [`HandlePool`], performing [`POOL_TASK_OPS`] operations with a
/// `yield_now().await` every [`ASYNC_YIELD_EVERY`] ops, and parking the
/// handle on completion. The run is completion-driven — it ends when every
/// task has finished — so `elapsed` is the makespan, not a fixed duration.
///
/// One *stalled reader* is injected for the whole run through the raw SPI: a
/// registered handle that calls `begin_op` + `protect` and never `end_op`
/// until the run ends. This models exactly the misuse the `AsyncGuard`
/// poll-bracket discipline forbids at compile time — a task holding its
/// operation bracket across suspension points indefinitely. Under EBR the
/// stalled bracket pins the epoch, so *everything* retired during the run
/// stays unreclaimed (growing with the task count); under WFE/HE only blocks
/// whose lifetime overlaps the stalled era reservation stay pinned, so the
/// unreclaimed gauge remains bounded.
fn run_async_kv_once<R, M>(tasks: usize, params: &BenchParams, seed: u64) -> RunOutcome
where
    R: Reclaimer,
    M: ConcurrentMap<R>,
{
    let workload = MapWorkload::WriteDominated;
    let wave = ASYNC_WAVE.min(tasks.max(1));
    // Registry sizing: at most `wave` live tasks plus the prefill handle and
    // the stalled reader.
    let domain = R::with_config(domain_config::<R>(wave + 2, M::required_slots(), params));
    let map = Arc::new(M::with_domain(Arc::clone(&domain)));
    prefill_map(&domain, &*map, workload, params, seed);
    let pool = HandlePool::new(Arc::clone(&domain));
    pool.prewarm(wave);
    pool.reset_stats();

    // The injected stalled reader (see the function docs). The protected
    // block is the handle's own — the pinning comes from the open bracket
    // and the published reservation, not from which block is protected.
    let mut stall = domain.register();
    let stall_node = stall.alloc(seed);
    let stall_root: Atomic<u64> = Atomic::new(stall_node);
    stall.begin_op();
    stall.protect(&stall_root, 0, core::ptr::null_mut());

    let rt = mini_rt::Runtime::new(params.async_workers.max(1));
    let stop = AtomicBool::new(false);
    let mut unreclaimed_sampler = Sampler::new();
    let mut occupancy_sampler = Sampler::new();
    let mut elapsed = Duration::ZERO;
    let mut completed = 0usize;

    std::thread::scope(|scope| {
        let sampler_thread = scope.spawn(|| {
            let mut unreclaimed = Sampler::new();
            let mut occupancy = Sampler::new();
            // ORDER: benchmark control flag; no data is ordered by it.
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(SAMPLE_INTERVAL);
                unreclaimed.record(domain.stats().unreclaimed);
                occupancy.record(domain.registry().occupied_shards() as u64);
            }
            (unreclaimed, occupancy)
        });

        let start = Instant::now();
        completed = rt.block_on(async {
            let mut completed = 0usize;
            let mut pending = Vec::with_capacity(wave);
            let key_range = params.key_range;
            for task_index in 0..tasks {
                let map = Arc::clone(&map);
                let pool = Arc::clone(&pool);
                pending.push(rt.spawn(async move {
                    let mut task = TaskHandle::acquire(&pool).await;
                    let mut generator = OpGenerator::new(workload, key_range, seed, task_index);
                    for op in 0..POOL_TASK_OPS {
                        apply_map_op(&*map, task.raw(), &mut generator);
                        if op % ASYNC_YIELD_EVERY == ASYNC_YIELD_EVERY - 1 {
                            // Nothing is protected here: every map operation
                            // opened and closed its own bracket.
                            mini_rt::yield_now().await;
                        }
                    }
                })); // drop parks the handle for the next task
                if pending.len() == wave {
                    for handle in pending.drain(..) {
                        handle.await;
                        completed += 1;
                    }
                }
            }
            for handle in pending {
                handle.await;
                completed += 1;
            }
            completed
        });
        elapsed = start.elapsed();
        stop.store(true, Ordering::Relaxed); // ORDER: benchmark control flag; no data is ordered by it.
        let (unreclaimed, occupancy) = sampler_thread.join().expect("sampler thread");
        unreclaimed_sampler = unreclaimed;
        occupancy_sampler = occupancy;
    });
    assert_eq!(completed, tasks, "every spawned task must complete");

    // Withdraw the stalled reservation only after the measured window.
    stall.end_op();
    // SAFETY: the stall block was never shared with another handle and is
    // unreachable now that the local `stall_root` is abandoned; retired once.
    unsafe { stall.retire(stall_node) };
    stall.force_cleanup();

    RunOutcome {
        ops: (tasks * POOL_TASK_OPS) as u64,
        avg_unreclaimed: unreclaimed_sampler.average(),
        avg_occupied_shards: occupancy_sampler.average(),
        shards: domain.registry().shard_count(),
        elapsed,
        stats: domain.stats(),
        pool_hit_rate: pool.stats().hit_rate(),
        tasks: tasks as u64,
        unreclaimed_bytes: unreclaimed_sampler.average() * M::node_bytes() as f64,
        service: map.service_stats(),
    }
}

/// Measures one async-task data point (the `kv-async` figure; averaged over
/// `params.repeats` runs). `threads` in the resulting row is the executor
/// worker count; the swept axis is `tasks`.
pub fn run_async_kv<R, M>(
    scheme: &'static str,
    structure: &'static str,
    tasks: usize,
    params: &BenchParams,
) -> DataPoint
where
    R: Reclaimer,
    M: ConcurrentMap<R>,
{
    average_point(
        scheme,
        structure,
        "async-tasks",
        params.async_workers.max(1),
        params,
        |repeat| run_async_kv_once::<R, M>(tasks, params, 0xA57C + repeat),
    )
}

/// Runs the queue workload once (50% enqueue / 50% dequeue).
fn run_queue_once<R, Q>(threads: usize, params: &BenchParams, seed: u64) -> RunOutcome
where
    R: Reclaimer,
    Q: ConcurrentQueue<R>,
{
    let domain = R::with_config(domain_config::<R>(threads, Q::required_slots(), params));
    let queue = Q::with_domain(Arc::clone(&domain));

    {
        let mut handle = domain.register();
        let mut generator = OpGenerator::new(
            MapWorkload::WriteDominated,
            params.key_range,
            seed,
            usize::MAX >> 1,
        );
        for _ in 0..params.prefill {
            queue.enqueue(&mut handle, generator.next_key());
        }
    }

    let stop = AtomicBool::new(false);
    let measuring = AtomicBool::new(false);
    let total_ops = AtomicU64::new(0);
    let barrier = Barrier::new(threads + 1);
    let mut unreclaimed_sampler = Sampler::new();
    let mut occupancy_sampler = Sampler::new();
    let mut elapsed = Duration::ZERO;

    std::thread::scope(|scope| {
        for thread in 0..threads {
            let domain = Arc::clone(&domain);
            let queue = &queue;
            let stop = &stop;
            let measuring = &measuring;
            let total_ops = &total_ops;
            let barrier = &barrier;
            scope.spawn(move || {
                let mut handle = domain.register();
                let mut generator =
                    OpGenerator::new(MapWorkload::WriteDominated, params.key_range, seed, thread);
                barrier.wait();
                let mut ops = 0u64;
                // ORDER: benchmark control flag; no data is ordered by it.
                while !stop.load(Ordering::Relaxed) {
                    // ORDER: benchmark control flag; no data is ordered by it.
                    if !measuring.load(Ordering::Relaxed) {
                        ops = 0;
                    }
                    if generator.next_bool() {
                        queue.enqueue(&mut handle, generator.next_key());
                    } else {
                        queue.dequeue(&mut handle);
                    }
                    ops += 1;
                }
                total_ops.fetch_add(ops, Ordering::Relaxed); // ORDER: throughput counter, aggregated after the threads join.
            });
        }
        elapsed = drive_sampling(
            &domain,
            params,
            &barrier,
            &measuring,
            &stop,
            &mut unreclaimed_sampler,
            &mut occupancy_sampler,
        );
    });

    RunOutcome {
        ops: total_ops.into_inner(),
        avg_unreclaimed: unreclaimed_sampler.average(),
        avg_occupied_shards: occupancy_sampler.average(),
        shards: domain.registry().shard_count(),
        elapsed,
        stats: domain.stats(),
        pool_hit_rate: 0.0,
        tasks: 0,
        unreclaimed_bytes: 0.0,
        service: MapServiceStats::default(),
    }
}

/// Averages `repeats` outcomes of `run` into one data point.
fn average_point(
    scheme: &'static str,
    structure: &'static str,
    workload: &'static str,
    threads: usize,
    params: &BenchParams,
    mut run: impl FnMut(u64) -> RunOutcome,
) -> DataPoint {
    process_warm_up();
    let repeats = params.repeats.max(1);
    let mut mops = 0.0;
    let mut unreclaimed = 0.0;
    let mut adopted_batches = 0.0;
    let mut freed_via_adoption = 0.0;
    let mut occupied = 0.0;
    let mut hit_rate = 0.0;
    let mut shards = 0;
    let mut tasks = 0;
    let mut unreclaimed_bytes = 0.0;
    let mut cache_hits = 0.0;
    let mut cache_misses = 0.0;
    let mut cached_bytes = 0.0;
    let mut load_factor = 0.0;
    let mut resizes = 0.0;
    let mut migrated_buckets = 0.0;
    for repeat in 0..repeats {
        let outcome = run(repeat as u64);
        mops += outcome.ops as f64 / outcome.elapsed.as_secs_f64() / 1e6;
        unreclaimed += outcome.avg_unreclaimed;
        adopted_batches += outcome.stats.adopted_batches as f64;
        freed_via_adoption += outcome.stats.freed_via_adoption as f64;
        occupied += outcome.avg_occupied_shards;
        hit_rate += outcome.pool_hit_rate;
        shards = outcome.shards;
        tasks = outcome.tasks;
        unreclaimed_bytes += outcome.unreclaimed_bytes;
        cache_hits += outcome.stats.cache_hits as f64;
        cache_misses += outcome.stats.cache_misses as f64;
        cached_bytes += outcome.stats.cached_bytes as f64;
        load_factor += outcome.service.load_factor;
        resizes += outcome.service.resizes as f64;
        migrated_buckets += outcome.service.migrated_buckets as f64;
    }
    let repeats = repeats as f64;
    DataPoint {
        scheme,
        structure,
        workload,
        threads,
        mops: mops / repeats,
        avg_unreclaimed: unreclaimed / repeats,
        adopted_batches: adopted_batches / repeats,
        freed_via_adoption: freed_via_adoption / repeats,
        shards,
        avg_occupied_shards: occupied / repeats,
        pool_hit_rate: hit_rate / repeats,
        tasks,
        unreclaimed_bytes: unreclaimed_bytes / repeats,
        cache_hits: cache_hits / repeats,
        cache_misses: cache_misses / repeats,
        cached_bytes: cached_bytes / repeats,
        load_factor: load_factor / repeats,
        resizes: resizes / repeats,
        migrated_buckets: migrated_buckets / repeats,
    }
}

/// Measures one map data point (averaged over `params.repeats` runs).
pub fn run_map<R, M>(
    scheme: &'static str,
    structure: &'static str,
    workload: MapWorkload,
    threads: usize,
    params: &BenchParams,
) -> DataPoint
where
    R: Reclaimer,
    M: ConcurrentMap<R>,
{
    average_point(
        scheme,
        structure,
        workload.label(),
        threads,
        params,
        |repeat| run_map_once::<R, M>(threads, workload, params, 0xC0FFEE + repeat),
    )
}

/// Measures one pooled-handle map data point (the `kv-pool` figure; averaged
/// over `params.repeats` runs).
pub fn run_pooled_map<R, M>(
    scheme: &'static str,
    structure: &'static str,
    workload: MapWorkload,
    threads: usize,
    params: &BenchParams,
) -> DataPoint
where
    R: Reclaimer,
    M: ConcurrentMap<R>,
{
    average_point(scheme, structure, "pool-churn", threads, params, |repeat| {
        run_pooled_map_once::<R, M>(threads, workload, params, 0x9001 + repeat)
    })
}

/// Measures one cross-shard-churn data point: the write-dominated map
/// workload on a registry with at least two shards, with the block cache
/// pinned on or off by `label`'s caller via `params.block_cache` — the
/// retire→free→alloc recycling loop the per-shard block cache is built for.
/// Averaged over `params.repeats` runs.
pub fn run_churn_map<R, M>(
    scheme: &'static str,
    structure: &'static str,
    label: &'static str,
    threads: usize,
    params: &BenchParams,
) -> DataPoint
where
    R: Reclaimer,
    M: ConcurrentMap<R>,
{
    let mut churn_params = params.clone();
    // Churn is only "cross-shard" when the registry actually splits: resolve
    // auto-sizing (0) to the host's parallelism and force at least two shards
    // either way (auto on a single-CPU host would collapse to one). The
    // registry still clamps to `max_threads`, so single-thread points stay
    // single-shard baselines.
    let auto = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    churn_params.shards = match churn_params.shards {
        0 => auto.max(2),
        pinned => pinned.max(2),
    };
    average_point(scheme, structure, label, threads, params, move |repeat| {
        run_map_once::<R, M>(
            threads,
            MapWorkload::WriteDominated,
            &churn_params,
            0x5EED + repeat,
        )
    })
}

/// Measures one queue data point (averaged over `params.repeats` runs).
pub fn run_queue<R, Q>(
    scheme: &'static str,
    structure: &'static str,
    threads: usize,
    params: &BenchParams,
) -> DataPoint
where
    R: Reclaimer,
    Q: ConcurrentQueue<R>,
{
    average_point(scheme, structure, "queue50", threads, params, |repeat| {
        run_queue_once::<R, Q>(threads, params, 0xBADC0DE + repeat)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfe_core::Wfe;
    use wfe_ds::{MichaelHashMap, MichaelScottQueue, ResizableHashMap};
    use wfe_reclaim::He;

    #[test]
    fn map_runner_produces_sane_numbers() {
        let params = BenchParams::smoke();
        let point = run_map::<Wfe, MichaelHashMap<u64, Wfe>>(
            "WFE",
            "hashmap",
            MapWorkload::WriteDominated,
            2,
            &params,
        );
        assert_eq!(point.threads, 2);
        assert!(point.mops > 0.0, "some operations completed");
        assert!(point.avg_unreclaimed >= 0.0);
        assert!(point.shards >= 1);
        assert!(point.avg_occupied_shards <= point.shards as f64);
        assert_eq!(point.pool_hit_rate, 0.0, "no pool in the per-thread runner");
        assert!(point.to_csv_row().starts_with("hashmap,write50,WFE,2,"));
    }

    #[test]
    fn kv_service_runner_reports_resize_stats() {
        let params = BenchParams::smoke();
        let point = run_kv_service::<Wfe, ResizableHashMap<u64, Wfe>>(
            "WFE",
            "resizable",
            ServiceWorkload::ResizeStorm,
            2,
            &params,
        );
        assert_eq!(point.workload, "kv-resize-storm");
        assert!(point.mops > 0.0, "some operations completed");
        assert!(
            point.resizes > 0.0,
            "a storm of fresh keys must double the directory (resizes {})",
            point.resizes
        );
        assert!(point.migrated_buckets > 0.0);
        assert!(point.load_factor > 0.0);
        let row = point.to_csv_row();
        assert_eq!(
            row.matches(',').count(),
            DataPoint::CSV_HEADER.matches(',').count(),
            "row column count matches the header: {row}"
        );
    }

    #[test]
    fn fixed_capacity_runner_reports_zero_service_stats() {
        let params = BenchParams::smoke();
        let point = run_map::<He, MichaelHashMap<u64, He>>(
            "HE",
            "hashmap",
            MapWorkload::WriteDominated,
            1,
            &params,
        );
        assert_eq!(point.load_factor, 0.0);
        assert_eq!(point.resizes, 0.0);
        assert_eq!(point.migrated_buckets, 0.0);
    }

    #[test]
    fn queue_runner_produces_sane_numbers() {
        let params = BenchParams::smoke();
        let point = run_queue::<He, MichaelScottQueue<u64, He>>("HE", "msqueue", 2, &params);
        assert!(point.mops > 0.0);
        assert_eq!(point.workload, "queue50");
    }

    #[test]
    fn churn_runner_reports_cache_counters() {
        let mut params = BenchParams::smoke();
        params.block_cache = Some(true);
        let point = run_churn_map::<Wfe, MichaelHashMap<u64, Wfe>>(
            "WFE",
            "hashmap",
            "churn-cache-on",
            2,
            &params,
        );
        assert_eq!(point.workload, "churn-cache-on");
        assert!(point.mops > 0.0);
        assert!(
            point.cache_hits + point.cache_misses > 0.0,
            "churn produces cacheable allocation traffic"
        );
        let row = point.to_csv_row();
        assert_eq!(
            row.matches(',').count(),
            DataPoint::CSV_HEADER.matches(',').count(),
            "row column count matches the header: {row}"
        );
    }

    #[test]
    fn pooled_runner_reports_hit_rate_and_occupancy() {
        let params = BenchParams::smoke();
        let point = run_pooled_map::<He, MichaelHashMap<u64, He>>(
            "HE",
            "hashmap",
            MapWorkload::WriteDominated,
            2,
            &params,
        );
        assert_eq!(point.workload, "pool-churn");
        assert!(point.mops > 0.0, "tasks completed through the pool");
        assert!(
            point.pool_hit_rate > 0.5,
            "steady-state churn is served from the pool (hit rate {})",
            point.pool_hit_rate
        );
        assert!(point.avg_occupied_shards >= 0.0);
        let row = point.to_csv_row();
        assert!(row.starts_with("hashmap,pool-churn,HE,2,"), "row: {row}");
    }
}
