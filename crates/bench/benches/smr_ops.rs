//! Criterion micro-benchmarks of the raw reclamation operations.
//!
//! These complement the figure runs: they measure the per-call cost of the
//! three hot operations every data structure pays for — `get_protected`
//! (traversal, through the safe `Shield::protect` the structures use),
//! `alloc_block` + `retire` (update) — for each scheme, which is the
//! constant-factor difference the paper attributes the HP slowdown and the
//! small WFE-vs-HE gap to (§5, linked-list discussion). The `guard_overhead`
//! group measures the safe layer itself against the raw SPI sequence, so the
//! zero-cost claim of the guard API is checked, not assumed.

use std::ptr;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wfe_core::Wfe;
use wfe_reclaim::{
    Atomic, BlockCacheConfig, Ebr, Handle, HandlePool, He, Hp, Ibr2Ge, Leak, RawHandle, Reclaimer,
    ReclaimerConfig,
};

/// A config with the per-shard block cache pinned to `enabled`, so the
/// `alloc_retire` rows stay comparable to pre-cache baselines regardless of
/// the `WFE_BLOCK_CACHE` environment.
fn config_with_cache(enabled: bool) -> ReclaimerConfig {
    ReclaimerConfig {
        block_cache: BlockCacheConfig {
            enabled,
            ..BlockCacheConfig::default()
        },
        ..ReclaimerConfig::with_max_threads(4)
    }
}

fn bench_protect<R: Reclaimer>(c: &mut Criterion, name: &str) {
    let domain = R::with_config(ReclaimerConfig::with_max_threads(4));
    let mut handle = domain.register();
    let mut shield = handle.shield::<u64>().expect("slots available");
    let node = handle.alloc(42u64);
    let root: Atomic<u64> = Atomic::new(node);
    c.bench_with_input(
        BenchmarkId::new("get_protected", name),
        &(),
        |bencher, _| {
            bencher.iter(|| {
                let guard = handle.enter();
                let ptr = shield.protect(&guard, &root, None);
                std::hint::black_box(ptr.as_raw())
            })
        },
    );
    drop(shield);
    // SAFETY: bench-owned block, never published for retirement; freed once.
    unsafe { wfe_reclaim::Linked::dealloc(node) };
}

fn bench_alloc_retire<R: Reclaimer>(c: &mut Criterion, name: &str) {
    // Cache off: every free goes back to the global allocator and every
    // alloc comes from it — the pre-cache baseline of the update path.
    let domain = R::with_config(config_with_cache(false));
    let mut handle = domain.register();
    c.bench_with_input(BenchmarkId::new("alloc_retire", name), &(), |bencher, _| {
        bencher.iter(|| {
            let node = handle.alloc(7u64);
            // SAFETY: block just allocated by this handle, never published —
            // this is its only retire.
            unsafe { handle.retire(std::hint::black_box(node)) };
        })
    });
}

fn bench_alloc_retire_cached<R: Reclaimer>(c: &mut Criterion, name: &str) {
    // Same loop with the per-shard block cache on: cleanup passes free
    // retired blocks into the home shard's size-class freelist and the next
    // alloc pops them back out, so the steady state recycles memory without
    // touching the global allocator.
    let domain = R::with_config(config_with_cache(true));
    let mut handle = domain.register();
    c.bench_with_input(
        BenchmarkId::new("alloc_retire_cached", name),
        &(),
        |bencher, _| {
            bencher.iter(|| {
                let node = handle.alloc(7u64);
                // SAFETY: block just allocated by this handle, never published —
                // this is its only retire.
                unsafe { handle.retire(std::hint::black_box(node)) };
            })
        },
    );
}

fn bench_register_churn<R: Reclaimer>(c: &mut Criterion, name: &str) {
    // The registry acquire/release path at task-churn grain: one full
    // register + handle-teardown cycle per iteration (home-shard probe, slot
    // CAS, occupancy updates, final empty scan, release).
    let domain = R::with_config(ReclaimerConfig::with_max_threads(8));
    c.bench_with_input(
        BenchmarkId::new("register_churn", name),
        &(),
        |bencher, _| {
            bencher.iter(|| {
                let handle = domain.register();
                std::hint::black_box(&handle);
            })
        },
    );
}

fn bench_pool_checkout(c: &mut Criterion) {
    // The same churn served by a HandlePool: check-out + check-in of a
    // parked handle, no registry traffic after the first iteration.
    let domain = He::with_config(ReclaimerConfig::with_max_threads(8));
    let pool = HandlePool::new(Arc::clone(&domain));
    c.bench_function("register_churn/HE-handle-pool", |bencher| {
        bencher.iter(|| {
            let guard = pool.check_out().expect("registry has room");
            std::hint::black_box(&guard);
        })
    });
}

fn bench_guard_overhead<R: Reclaimer>(c: &mut Criterion, name: &str) {
    // Measures the zero-cost claim of the safe API: one guarded read through
    // `Shield::protect` (enter bracket, protect, drop bracket) against the
    // identical raw sequence (`begin_op`, `protect`, `end_op`). The shield is
    // leased once outside the loop so the comparison isolates the per-read
    // overhead; the lease/release cost the data structures pay per operation
    // (two uncontended atomic RMWs per shield) is measured separately by the
    // `lease_shield_protect` variant below.
    let domain = R::with_config(ReclaimerConfig::with_max_threads(4));
    let mut handle = domain.register();
    let node = handle.alloc(42u64);
    let root: Atomic<u64> = Atomic::new(node);

    c.bench_with_input(
        BenchmarkId::new("guard_overhead/raw_protect", name),
        &(),
        |bencher, _| {
            bencher.iter(|| {
                handle.begin_op();
                let ptr = handle.protect(&root, 0, ptr::null_mut());
                handle.end_op();
                std::hint::black_box(ptr)
            })
        },
    );

    let mut shield = handle.shield::<u64>().expect("slots available");
    c.bench_with_input(
        BenchmarkId::new("guard_overhead/shield_protect", name),
        &(),
        |bencher, _| {
            bencher.iter(|| {
                let guard = handle.enter();
                let ptr = shield.protect(&guard, &root, None);
                std::hint::black_box(ptr.as_raw())
            })
        },
    );
    drop(shield);

    // The path the data structures actually pay per operation: lease the
    // shield, enter, protect, and release everything again.
    c.bench_with_input(
        BenchmarkId::new("guard_overhead/lease_shield_protect", name),
        &(),
        |bencher, _| {
            bencher.iter(|| {
                let mut shield = handle.shield::<u64>().expect("slots available");
                let guard = handle.enter();
                let ptr = shield.protect(&guard, &root, None);
                std::hint::black_box(ptr.as_raw())
            })
        },
    );

    // SAFETY: bench-owned block, never published for retirement; freed once.
    unsafe { wfe_reclaim::Linked::dealloc(node) };
}

fn bench_protect_under_era_pressure(c: &mut Criterion) {
    // The WFE-specific cost: get_protected while another thread keeps
    // advancing the era clock (allocating with era_freq = 1), which is what
    // pushes Hazard Eras into its unbounded loop and WFE onto its slow path.
    let domain = Wfe::with_config(ReclaimerConfig {
        era_freq: 1,
        fast_path_attempts: 16,
        ..ReclaimerConfig::with_max_threads(4)
    });
    let mut handle = domain.register();
    let node = handle.alloc(42u64);
    let root: Atomic<u64> = Atomic::new(node);
    let stop = Arc::new(wfe_sync::atomic::AtomicBool::new(false));
    let bumper = {
        let domain = Arc::clone(&domain);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut handle = domain.register();
            // ORDER: benchmark control flag; no data is ordered by it.
            while !stop.load(wfe_sync::atomic::Ordering::Relaxed) {
                let ptr = handle.alloc(0u64);
                // SAFETY: block just allocated by this handle, never published —
                // this is its only retire.
                unsafe { handle.retire(ptr) };
            }
        })
    };
    let mut shield = handle.shield::<u64>().expect("slots available");
    c.bench_function("get_protected/WFE-under-era-pressure", |bencher| {
        bencher.iter(|| {
            let guard = handle.enter();
            let ptr = shield.protect(&guard, &root, None);
            std::hint::black_box(ptr.as_raw())
        })
    });
    drop(shield);
    stop.store(true, wfe_sync::atomic::Ordering::Relaxed); // ORDER: benchmark control flag; no data is ordered by it.
    bumper.join().unwrap();
    // SAFETY: bench-owned block, never published for retirement; freed once.
    unsafe { wfe_reclaim::Linked::dealloc(node) };
}

fn smr_ops(c: &mut Criterion) {
    bench_protect::<Wfe>(c, "WFE");
    bench_protect::<He>(c, "HE");
    bench_protect::<Hp>(c, "HP");
    bench_protect::<Ebr>(c, "EBR");
    bench_protect::<Ibr2Ge>(c, "2GEIBR");
    bench_protect::<Leak>(c, "Leak");

    bench_alloc_retire::<Wfe>(c, "WFE");
    bench_alloc_retire::<He>(c, "HE");
    bench_alloc_retire::<Hp>(c, "HP");
    bench_alloc_retire::<Ebr>(c, "EBR");
    bench_alloc_retire::<Ibr2Ge>(c, "2GEIBR");
    bench_alloc_retire::<Leak>(c, "Leak");

    bench_alloc_retire_cached::<Wfe>(c, "WFE");
    bench_alloc_retire_cached::<He>(c, "HE");
    bench_alloc_retire_cached::<Hp>(c, "HP");
    bench_alloc_retire_cached::<Ebr>(c, "EBR");
    bench_alloc_retire_cached::<Ibr2Ge>(c, "2GEIBR");

    bench_guard_overhead::<Wfe>(c, "WFE");
    bench_guard_overhead::<He>(c, "HE");

    bench_register_churn::<Wfe>(c, "WFE");
    bench_register_churn::<He>(c, "HE");
    bench_pool_checkout(c);

    bench_protect_under_era_pressure(c);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_millis(500)).warm_up_time(std::time::Duration::from_millis(200));
    targets = smr_ops
}
criterion_main!(benches);
