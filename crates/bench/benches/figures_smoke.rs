//! `cargo bench` entry point that regenerates every figure of the paper with
//! scaled-down parameters.
//!
//! This is a plain harness (not Criterion): each figure is a multi-second
//! multi-threaded sweep, so statistical resampling is neither feasible nor
//! meaningful. The output is the same CSV the `figures` binary produces; run
//! `cargo run -p wfe-bench --release --bin figures -- --paper` for the full
//! paper methodology.

use std::time::Duration;

use wfe_bench::figures::{Figure, Scheme};
use wfe_bench::params::BenchParams;
use wfe_bench::runner::DataPoint;

fn main() {
    // `cargo bench` passes `--bench`; a filter argument selects figures.
    let filters: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with("--"))
        .collect();

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut threads = vec![1, 2, 4, 8, 16];
    threads.retain(|&t| t <= cores);
    let params = BenchParams {
        threads,
        duration: Duration::from_millis(200),
        repeats: 1,
        prefill: 2_000,
        key_range: 20_000,
        ..BenchParams::default()
    };

    eprintln!(
        "# figures_smoke: threads={:?} duration={:?} prefill={} (use the `figures` binary with --paper for the full methodology)",
        params.threads, params.duration, params.prefill
    );
    println!("figure,{}", DataPoint::CSV_HEADER);
    for figure in Figure::ALL {
        if !filters.is_empty() && !filters.iter().any(|f| figure.name().contains(f.as_str())) {
            continue;
        }
        eprintln!("# {}: {}", figure.name(), figure.description());
        for point in figure.run(&params, &Scheme::ALL) {
            println!("{},{}", figure.name(), point.to_csv_row());
        }
    }
}
