//! The per-thread WFE handle: `get_protected` (fast + slow path), `retire`,
//! `alloc_block` bookkeeping and `clear` (Figure 4, left-hand column).

use std::sync::Arc;
use wfe_sync::atomic::{AtomicUsize, Ordering};

use wfe_reclaim::api::{debug_assert_slot_index, RawHandle};
use wfe_reclaim::block::BlockHeader;
use wfe_reclaim::cache::{LocalBlockCache, ShardCache};
use wfe_reclaim::guard::ShieldSlots;
use wfe_reclaim::retired::RetiredBatch;
use wfe_reclaim::{ERA_INF, INVPTR};

use crate::domain::{Wfe, WfeSnapshot};

/// Per-thread Wait-Free Eras handle.
pub struct WfeHandle {
    /// Lease table for this handle's [`Shield`](wfe_reclaim::Shield)s
    /// (application slots only; the two internal helper slots are never
    /// leasable).
    shield_slots: Arc<ShieldSlots>,
    /// Home registry shard, fixed at registration (indexes the block caches).
    cache_shard: usize,
    /// Private block-cache magazine fronting the home shard's freelists.
    local_cache: LocalBlockCache,
    domain: Arc<Wfe>,
    tid: usize,
    retired: RetiredBatch,
    /// Reusable reservation snapshot (the batch scan scratch).
    snapshot: WfeSnapshot,
    /// Retirements since the last cleanup pass.
    since_cleanup: usize,
    alloc_counter: usize,
}

impl WfeHandle {
    pub(crate) fn new(domain: Arc<Wfe>, tid: usize) -> Self {
        Self {
            shield_slots: ShieldSlots::new(domain.app_slots()),
            cache_shard: domain.registry.shard_of(tid),
            local_cache: LocalBlockCache::new(),
            domain,
            tid,
            retired: RetiredBatch::new(),
            snapshot: WfeSnapshot::default(),
            since_cleanup: 0,
            alloc_counter: 0,
        }
    }

    /// The domain this handle belongs to.
    pub fn domain(&self) -> &Arc<Wfe> {
        &self.domain
    }

    /// One cleanup pass of the batch scan protocol (the shared
    /// `wfe_reclaim::retired::cleanup_pass` with the Figure-4 snapshot).
    fn cleanup(&mut self) {
        self.since_cleanup = 0;
        let domain = &self.domain;
        let shard = domain.caches.shard(self.cache_shard);
        // SAFETY: every block in `self.retired` was retired by this handle
        // after being unlinked, and the snapshot closure reads the domain's
        // own reservation array — the batch-scan safety argument in
        // `wfe_reclaim::retired::cleanup_pass` applies verbatim.
        unsafe {
            wfe_reclaim::retired::cleanup_pass(
                &mut self.retired,
                &domain.orphans,
                &domain.counters,
                &mut self.snapshot,
                shard.is_some().then_some(&mut self.local_cache),
                shard,
                |snapshot| domain.fill_snapshot(snapshot),
            );
        }
    }

    /// The slow path of `get_protected` (Figure 4, lines 26-53): publish a
    /// help request and keep retrying until either this thread manages to
    /// cancel the request after observing a stable era, or a helper delivers
    /// the result. Bounded by the number of in-flight era increments
    /// (Lemma 1).
    #[cold]
    fn protect_slow(
        &mut self,
        src: &AtomicUsize,
        index: usize,
        parent: *mut BlockHeader,
        mut prev_era: u64,
    ) -> usize {
        let domain = &self.domain;
        domain.counters.on_slow_path();

        // Fetch the parent's era so helpers can pin the block that contains
        // the hazardous location (lines 26-27).
        let parent_alloc_era = if parent.is_null() {
            ERA_INF
        } else {
            // SAFETY: non-null `parent` is the caller-protected block
            // that contains the hazardous location, so it is live for the
            // whole slow-path call.
            unsafe { (*parent).alloc_era() }
        };

        // Announce the request (lines 29-33). The order matters: the request
        // only becomes visible to helpers when `result` flips to
        // `(INVPTR, tag)`, so every other field must already be in place.
        domain.counter_start.fetch_add(1, Ordering::SeqCst);
        let state = domain.state.get(self.tid, index);
        state
            .pointer
            .store(src as *const AtomicUsize as usize, Ordering::SeqCst);
        state.era.store(parent_alloc_era, Ordering::SeqCst);
        let reservation = domain.reservations.get(self.tid, index);
        let tag = reservation.load_second(Ordering::SeqCst);
        state.result.store((INVPTR, tag));

        // Lines 34-49. Bounded by the number of threads already inside
        // `increment_era` (each may bump the era once before noticing us).
        let result_value;
        let result_era;
        loop {
            let value = src.load(Ordering::Acquire); // ORDER: pairs with the Release publish of the pointer being protected.
            let new_era = domain.era();
            if prev_era == new_era
                && state
                    .result
                    .compare_exchange((INVPTR, tag), (0, ERA_INF))
                    .is_ok()
            {
                // Nobody helped yet and the era is stable: cancel the request
                // and finish on our own (lines 38-41).
                reservation.store_second(tag + 1, Ordering::SeqCst);
                domain.counter_end.fetch_add(1, Ordering::SeqCst);
                return value;
            }
            // Keep our reservation up to date while waiting. The WCAS only
            // fails if a helper already published the final era for this
            // cycle, in which case the loop is about to exit (lines 44-45).
            let _ = reservation.compare_exchange((prev_era, tag), (new_era, tag));
            prev_era = new_era;
            let produced = state.result.load();
            if produced.0 != INVPTR {
                result_value = produced.0;
                result_era = produced.1;
                break;
            }
        }

        // A helper produced the result: adopt the era it protected the value
        // under and close the slow-path cycle (lines 50-53). The helper may
        // have already written the same reservation values on our behalf.
        reservation.store_first(result_era, Ordering::SeqCst);
        reservation.store_second(tag + 1, Ordering::SeqCst);
        domain.counter_end.fetch_add(1, Ordering::SeqCst);
        result_value as usize
    }
}

// SAFETY: `thread_id` is unique per live handle (allocated by the domain's
// slot bitmap and released on drop), and `protect`/`protect_fast` only return
// a pointer after validating it against a published reservation.
unsafe impl RawHandle for WfeHandle {
    fn thread_id(&self) -> usize {
        self.tid
    }

    fn slots(&self) -> usize {
        self.domain.app_slots()
    }

    fn shield_slots(&self) -> &Arc<ShieldSlots> {
        &self.shield_slots
    }

    fn begin_op(&mut self) {}

    fn end_op(&mut self) {
        self.clear();
    }

    fn protect_raw(
        &mut self,
        src: &AtomicUsize,
        index: usize,
        parent: *mut BlockHeader,
        _mask: usize,
    ) -> usize {
        debug_assert_slot_index(index, self.slots());
        let domain = &self.domain;
        let reservation = domain.reservations.get(self.tid, index);
        let mut prev_era = reservation.load_first(Ordering::Relaxed); // ORDER: own slot re-read; the publish that matters is the SeqCst store in the loop.

        // Fast path (lines 15-24): identical to Hazard Eras, but bounded.
        let mut attempts = domain.config.fast_path_attempts;
        while attempts > 0 {
            attempts -= 1;
            let value = src.load(Ordering::Acquire); // ORDER: pairs with the Release publish of the pointer being protected.
            let new_era = domain.era();
            if prev_era == new_era {
                return value;
            }
            reservation.store_first(new_era, Ordering::SeqCst);
            prev_era = new_era;
        }

        // The era kept moving: ask for help.
        self.protect_slow(src, index, parent, prev_era)
    }

    // SAFETY: contract inherited from the trait declaration (`# Safety`
    // on `RawHandle::retire_raw`); the obligations are the caller's.
    unsafe fn retire_raw(&mut self, block: *mut BlockHeader) {
        let domain = &self.domain;
        let era = domain.era();
        // SAFETY: the caller's `retire_raw` contract — `block` is a valid,
        // unreachable block retired exactly once — covers both the header
        // stamp and the batch push.
        unsafe {
            (*block).retire_era.store(era, Ordering::Release); // ORDER: stamps the header before the push that makes it scannable.
            self.retired.push(block);
        }
        domain.counters.on_retire();
        self.since_cleanup += 1;
        if self.since_cleanup >= domain.config.cleanup_freq {
            // Figure 4, lines 80-82: advance the clock (helping first) only if
            // it has not moved since this block was stamped, then scan.
            // SAFETY: same contract — the header is valid for the whole call.
            if unsafe { (*block).retire_era() } == domain.era() {
                domain.increment_era(self.tid);
            }
            self.cleanup();
        }
    }

    fn clear(&mut self) {
        // Only the application-visible slots are cleared; the two internal
        // slots belong to the helping machinery. The slow-path tag (second
        // word) must survive, so only the era word is reset.
        for slot in 0..self.domain.app_slots() {
            self.domain
                .reservations
                .get(self.tid, slot)
                .store_first(ERA_INF, Ordering::Release); // ORDER: withdraws the era reservations; pairs with the snapshot's Acquire loads.
        }
    }

    fn pre_alloc(&mut self) -> u64 {
        let domain = &self.domain;
        domain.counters.on_alloc();
        self.alloc_counter += 1;
        if self.alloc_counter % domain.config.era_freq == 0 {
            // Figure 4, lines 69-71: help pending readers before advancing.
            domain.increment_era(self.tid);
        }
        domain.era()
    }

    fn force_cleanup(&mut self) {
        self.domain.increment_era(self.tid);
        self.cleanup();
    }

    fn block_caches(&mut self) -> (Option<&mut LocalBlockCache>, Option<&ShardCache>) {
        let shard = self.domain.caches.shard(self.cache_shard);
        (shard.is_some().then_some(&mut self.local_cache), shard)
    }
}

impl Drop for WfeHandle {
    fn drop(&mut self) {
        self.clear();
        self.cleanup();
        // Park the magazine's blocks on the home shard (freeing them when the
        // cache is off) so surviving threads can recycle them.
        self.local_cache
            .drain(self.domain.caches.shard(self.cache_shard));
        // Whatever the final pass could not free is parked on the orphan
        // stack; the next live thread's cleanup pass adopts it.
        self.domain.orphans.push(self.retired.take());
        self.domain.registry.release(self.tid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::ptr;
    use std::sync::Arc as StdArc;
    use wfe_reclaim::api::{Progress, Reclaimer, ReclaimerConfig};
    use wfe_reclaim::conformance;
    use wfe_reclaim::{Atomic, Handle, Linked};
    use wfe_sync::atomic::AtomicBool;

    #[test]
    fn naming_and_progress() {
        assert_eq!(Wfe::name(), "WFE");
        assert_eq!(Wfe::progress(), Progress::WaitFree);
    }

    #[test]
    fn basic_lifecycle() {
        conformance::basic_lifecycle::<Wfe>();
    }

    #[test]
    fn protection_blocks_reclamation() {
        conformance::protection_blocks_reclamation::<Wfe>();
    }

    #[test]
    fn all_blocks_freed_on_drop() {
        conformance::all_blocks_freed_on_drop::<Wfe>();
    }

    #[test]
    fn concurrent_stack_stress() {
        conformance::concurrent_stack_stress::<Wfe>(4, 2_000);
    }

    #[test]
    fn unreclaimed_is_bounded() {
        conformance::unreclaimed_is_bounded::<Wfe>(4_000);
    }

    #[test]
    fn orphan_adoption() {
        conformance::orphan_adoption_reclaims_exited_threads_blocks::<Wfe>(true);
    }

    #[test]
    fn fast_path_returns_without_touching_counters() {
        let domain = Wfe::with_config(ReclaimerConfig::with_max_threads(1));
        let mut handle = domain.register();
        let node = handle.alloc(5u64);
        let root: Atomic<u64> = Atomic::new(node);
        let seen = handle.protect(&root, 0, ptr::null_mut());
        assert_eq!(seen, node);
        assert_eq!(domain.stats().slow_path, 0);
        // SAFETY: test-owned block, unlinked and freed exactly once.
        unsafe { Linked::dealloc(node) };
    }

    #[test]
    fn slow_path_self_cancel_completes() {
        // With a single fast-path attempt, making the era move right before
        // the call forces the slow path; with no other thread running the
        // requester must cancel its own request and still return the right
        // pointer, leaving the counters balanced and the tag advanced.
        let domain = Wfe::with_config(ReclaimerConfig {
            fast_path_attempts: 1,
            ..ReclaimerConfig::with_max_threads(2)
        });
        let mut handle = domain.register();
        let node = handle.alloc(7u64);
        let root: Atomic<u64> = Atomic::new(node);

        // First protect publishes the current era; then the era moves so the
        // single fast-path attempt cannot observe a stable clock.
        let _ = handle.protect(&root, 0, ptr::null_mut());
        domain.increment_era(handle.thread_id());

        let tag_before = domain
            .reservations
            .get(handle.thread_id(), 0)
            .load_second(Ordering::SeqCst);
        let seen = handle.protect(&root, 0, ptr::null_mut());
        assert_eq!(seen, node);
        let stats = domain.stats();
        assert!(stats.slow_path >= 1, "slow path was taken");
        assert_eq!(
            domain.counter_start.load(Ordering::SeqCst),
            domain.counter_end.load(Ordering::SeqCst),
            "slow-path cycle was closed"
        );
        let tag_after = domain
            .reservations
            .get(handle.thread_id(), 0)
            .load_second(Ordering::SeqCst);
        assert_eq!(tag_after, tag_before + 1, "tag advanced after the cycle");
        // SAFETY: test-owned block, unlinked and freed exactly once.
        unsafe { Linked::dealloc(node) };
    }

    #[test]
    fn forced_slow_path_stress_with_hostile_era_bumper() {
        // The paper validates WFE by forcing the slow path to be taken all the
        // time; here the reader gets a single fast-path attempt while another
        // thread bumps the era as fast as it can (every allocation), so a
        // large fraction of reads must go through the help machinery.
        let domain = Wfe::with_config(ReclaimerConfig {
            fast_path_attempts: 1,
            era_freq: 1,
            cleanup_freq: 4,
            ..ReclaimerConfig::with_max_threads(3)
        });
        let stop = StdArc::new(AtomicBool::new(false));
        let stack = conformance::MiniStack::new();

        std::thread::scope(|scope| {
            // Hostile era bumper: allocates (and immediately retires) blocks,
            // advancing the era on every allocation.
            {
                let domain = StdArc::clone(&domain);
                let stop = StdArc::clone(&stop);
                scope.spawn(move || {
                    let mut handle = domain.register();
                    while !stop.load(Ordering::Relaxed) {
                        let ptr = handle.alloc(0u64);
                        // SAFETY: `ptr` was just allocated by this handle and never
                        // published, so retiring it here is its only retire.
                        unsafe { handle.retire(ptr) };
                    }
                });
            }
            // Two readers/writers hammering the stack through get_protected.
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let domain = StdArc::clone(&domain);
                    let stack = &stack;
                    scope.spawn(move || {
                        let mut handle = domain.register();
                        for i in 0..20_000 {
                            if i % 2 == 0 {
                                stack.push(&mut handle, i, None);
                            } else {
                                stack.pop(&mut handle);
                            }
                        }
                    })
                })
                .collect();
            // Let the workers finish under hostile era movement, then stop the
            // bumper.
            for worker in workers {
                worker.join().unwrap();
            }
            stop.store(true, Ordering::Relaxed);
        });

        let stats = domain.stats();
        assert!(
            stats.slow_path > 0,
            "slow path exercised under forced conditions"
        );
        assert_eq!(
            domain.counter_start.load(Ordering::SeqCst),
            domain.counter_end.load(Ordering::SeqCst),
            "every slow-path cycle was closed"
        );
    }
}
