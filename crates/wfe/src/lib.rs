//! Wait-Free Eras (WFE) — universal wait-free memory reclamation.
//!
//! This crate implements the contribution of *"Universal Wait-Free Memory
//! Reclamation"* (Nikolaev & Ravindran, PPoPP 2020): a safe-memory-reclamation
//! scheme whose **every** operation — including `get_protected()` — completes
//! in a bounded number of steps, so wait-free data structures built on top of
//! it keep their progress guarantee.
//!
//! # How it works
//!
//! WFE starts from Hazard Eras ([`wfe_reclaim::He`]). In Hazard Eras the only
//! non-wait-free operation is `get_protected()`: it retries while the global
//! era clock keeps moving underneath it, and the clock is moved by concurrent
//! `alloc_block()` / `retire()` calls. WFE closes the loop with the
//! fast-path-slow-path idea:
//!
//! * the **fast path** is plain Hazard Eras, bounded to
//!   [`ReclaimerConfig::fast_path_attempts`](wfe_reclaim::ReclaimerConfig)
//!   iterations (the paper uses 16);
//! * on the **slow path** the thread publishes a help request — the address of
//!   the pointer it is trying to read, the `alloc_era` of the *parent* block
//!   containing that address, and a `(invptr, tag)` marker WCASed into its
//!   per-slot `result` record — and bumps a global `counter_start`;
//! * threads about to increment the global era (from `alloc_block()` or
//!   `retire()`) first scan for pending requests and **help** them: they pin
//!   the parent block and the read target with two internal reservations,
//!   read the pointer under a stable era, and WCAS the result (and the
//!   requester's reservation) on the requester's behalf;
//! * a per-reservation **tag**, carried in the second word of the reservation
//!   pair and advanced after every slow-path cycle, stops delayed helpers
//!   from clobbering a later cycle;
//! * the modified [`cleanup` scan order](crate::Wfe) (normal reservations,
//!   parent pin, then — only if a slow path might be in flight — the hand-over
//!   pin followed by a re-scan) preserves reclamation safety (Lemmas 4 and 5
//!   of the paper).
//!
//! The result: `get_protected` is bounded by `fast_path_attempts` plus at most
//! `n` slow-path iterations (Lemma 1), and `alloc_block`/`retire` are bounded
//! because each helping pass is bounded (Lemmas 2 and 3).
//!
//! # Example
//!
//! ```
//! use wfe_core::Wfe;
//! use wfe_reclaim::{Atomic, DomainConfig, Handle, Protected, Reclaimer};
//!
//! // One domain per data structure (or group of data structures).
//! let domain = Wfe::with_config(DomainConfig::builder().max_threads(8).build());
//! let mut handle = domain.register();
//!
//! // Lease a reservation slot once; reuse it across operations.
//! let mut shield = handle.shield::<u64>().expect("slots available");
//!
//! // Allocate a block through the domain so it gets an allocation era.
//! let node = handle.alloc(42u64);
//! let root: Atomic<u64> = Atomic::new(node);
//!
//! // Readers protect the pointer inside a guard bracket; the reservation
//! // pins the block for the bracket, so the deref carries one obligation.
//! {
//!     let guard = handle.enter();
//!     let value = shield.protect(&guard, &root, None);
//!     // SAFETY: `shield` does not re-protect while `value` is in use.
//!     assert_eq!(unsafe { value.as_ref() }, Some(&42));
//! }
//!
//! // After unlinking the block, retire it; WFE frees it once it is safe.
//! root.store(core::ptr::null_mut(), core::sync::atomic::Ordering::SeqCst);
//! let guard = handle.enter();
//! // SAFETY: `node` was just unlinked from `root` and is retired once.
//! unsafe { Protected::from_unlinked(node).retire_in(&guard) };
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod domain;
mod handle;
mod state;

pub use domain::Wfe;
pub use handle::WfeHandle;

// Executor-friendly pooled handles work with every scheme, WFE included; the
// generic machinery lives next to the common API and is re-exported here so
// `wfe_core` users get the whole surface from one crate.
pub use wfe_reclaim::pool::{HandlePool, PoolStats, PooledHandle};

// The safe guard-based protection layer is likewise scheme-generic (it sits
// on `RawHandle`), and WFE is its flagship backend — re-export it so
// `wfe_core` users never need the raw slot-index API.
pub use wfe_reclaim::guard::{Guard, Protected, Shield, ShieldError, ShieldSlots};

// Compile-time auto-trait facts (`static_assertions` idiom, matching the
// block in `wfe_reclaim`): the WFE domain is `Arc`-shared by every consumer
// and its handle migrates between executor workers through the pool, so both
// properties are part of the public contract — not accidents of today's
// field layout.
const fn _assert_send<T: Send>() {}
const fn _assert_send_sync<T: Send + Sync>() {}
#[allow(dead_code)] // checked at definition, never called
const fn _auto_trait_facts() {
    _assert_send_sync::<Wfe>();
    _assert_send::<WfeHandle>();
    _assert_send_sync::<HandlePool<Wfe>>();
    _assert_send::<PooledHandle<Wfe>>();
}
