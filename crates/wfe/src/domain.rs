//! The WFE domain: global era clock, reservations, helping and the modified
//! `cleanup()` (Figure 4, right-hand column).

use std::sync::Arc;
use wfe_sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use wfe_atomics::CachePadded;
use wfe_reclaim::api::{Progress, Reclaimer, ReclaimerConfig};
use wfe_reclaim::block::BlockHeader;
use wfe_reclaim::cache::BlockCaches;
use wfe_reclaim::registry::ThreadRegistry;
use wfe_reclaim::retired::OrphanStack;
use wfe_reclaim::scan::{EraSnapshot, ReservationSet};
use wfe_reclaim::slots::PairSlotArray;
use wfe_reclaim::stats::{Counters, SmrStats};
use wfe_reclaim::{ERA_INF, INVPTR};
use wfe_sync::EraSource;

use crate::handle::WfeHandle;
use crate::state::StateTable;

/// Index (relative to a thread's reservation row) of the first internal
/// reservation: the *parent pin* used by helpers (paper: `max_hes`).
pub(crate) const PARENT_SLOT_OFFSET: usize = 0;
/// Index offset of the second internal reservation: the *hand-over pin*
/// (paper: `max_hes + 1`).
pub(crate) const HANDOVER_SLOT_OFFSET: usize = 1;
/// Number of internal reservation slots appended to every thread's row.
pub(crate) const EXTRA_SLOTS: usize = 2;

/// The Wait-Free Eras domain.
///
/// Shared state (paper, Figure 4 top):
/// * `global_era` — the era clock,
/// * `counter_start` / `counter_end` — how many slow-path cycles have begun /
///   finished; their difference tells era-advancing threads whether anyone
///   needs help, and movement of `counter_start` tells `cleanup()` that a new
///   slow path may have started mid-scan,
/// * `reservations` — `max_threads × (max_hes + 2)` pairs `(era, tag)`;
///   the last two columns are internal to the `help_thread` slow path,
/// * `state` — `max_threads × max_hes` slow-path request records.
pub struct Wfe {
    pub(crate) config: ReclaimerConfig,
    pub(crate) registry: ThreadRegistry,
    pub(crate) counters: Counters,
    pub(crate) orphans: OrphanStack,
    pub(crate) global_era: EraSource,
    pub(crate) counter_start: CachePadded<AtomicU64>,
    pub(crate) counter_end: CachePadded<AtomicU64>,
    pub(crate) reservations: PairSlotArray,
    pub(crate) state: StateTable,
    /// Per-shard size-class block caches (empty when disabled).
    pub(crate) caches: BlockCaches,
}

impl Wfe {
    /// Current value of the global era clock.
    #[inline]
    pub fn era(&self) -> u64 {
        self.global_era.load(Ordering::Acquire) // ORDER: era clock read; pairs with the AcqRel era advances.
    }

    /// The domain's era clock. Exposed so deterministic model tests can pin
    /// or bump the clock mid-schedule; production code never writes through
    /// this (the clock only advances via the Figure-4 `increment_era`).
    pub fn era_source(&self) -> &EraSource {
        &self.global_era
    }

    /// Number of application-visible reservation slots per thread (`max_hes`).
    #[inline]
    pub(crate) fn app_slots(&self) -> usize {
        self.config.slots_per_thread
    }

    /// Row index of a thread's parent-pin internal reservation.
    #[inline]
    pub(crate) fn parent_slot(&self) -> usize {
        self.app_slots() + PARENT_SLOT_OFFSET
    }

    /// Row index of a thread's hand-over internal reservation.
    #[inline]
    pub(crate) fn handover_slot(&self) -> usize {
        self.app_slots() + HANDOVER_SLOT_OFFSET
    }

    /// Snapshots one column range of the reservation table into `snapshot`
    /// (eras only; the tag word is irrelevant to reclamation). The walk goes
    /// shard-by-shard and skips wholly-idle shards (see
    /// [`ThreadRegistry::occupied_ranges`]): helper pins live in the rows of
    /// *live, registered* helpers, so an idle shard cannot carry one.
    fn snapshot_columns(&self, snapshot: &mut EraSnapshot, js: usize, je: usize) {
        snapshot.clear();
        for range in self.registry.occupied_ranges() {
            for thread in range {
                for slot in js..je {
                    snapshot.insert(
                        self.reservations
                            .get(thread, slot)
                            .load_first(Ordering::Acquire), // ORDER: snapshot load; pairs with the Release era withdrawal (see scan.rs safety argument).
                    );
                }
            }
        }
        snapshot.seal();
    }

    /// Takes the batch-scan snapshot for one `cleanup()` pass, preserving the
    /// Figure-4 (lines 55-67) scan order at batch granularity: normal
    /// reservations and parent pins first, then — unless no slow path was in
    /// flight — the hand-over pins followed by a re-scan of the normal
    /// reservations. Lemmas 4 and 5 rely on exactly this order; taking each
    /// snapshot once per batch (instead of re-reading the table per block)
    /// preserves it, because every block in the batch was retired before the
    /// first snapshot load.
    pub(crate) fn fill_snapshot(&self, snapshot: &mut WfeSnapshot) {
        let max_hes = self.app_slots();
        // Figure 4, line 56: `counter_end` is read before any reservation.
        let counter_end = self.counter_end.load(Ordering::SeqCst);
        // Normal reservations + parent pins (columns 0..=max_hes).
        self.snapshot_columns(&mut snapshot.primary, 0, max_hes + 1);
        snapshot.quiescent = counter_end == self.counter_start.load(Ordering::SeqCst);
        if snapshot.quiescent {
            snapshot.handover.clear();
            snapshot.recheck.clear();
        } else {
            // A slow path may be in flight: a helper may be handing a
            // protected era over to a requester, so scan the hand-over pins
            // and then the normal reservations *again*.
            self.snapshot_columns(&mut snapshot.handover, max_hes + 1, max_hes + 2);
            self.snapshot_columns(&mut snapshot.recheck, 0, max_hes);
        }
    }

    /// `increment_era()` (Figure 4, lines 87-98): before advancing the global
    /// era clock, help every pending slow-path request so that the pending
    /// `get_protected()` calls cannot be starved by the very increment we are
    /// about to perform.
    pub(crate) fn increment_era(&self, helper_tid: usize) {
        let counter_end = self.counter_end.load(Ordering::SeqCst);
        let counter_start = self.counter_start.load(Ordering::SeqCst);
        if counter_start != counter_end {
            for thread in 0..self.state.threads() {
                for slot in 0..self.state.slots() {
                    if self.state.get(thread, slot).is_pending() {
                        self.help_thread(thread, slot, helper_tid);
                    }
                }
            }
        }
        self.global_era.advance(Ordering::SeqCst);
    }

    /// `help_thread(i, j, tid)` (Figure 4, lines 100-134): completes thread
    /// `i`'s pending `get_protected()` request in slot `j` on its behalf.
    ///
    /// The helper (`helper_tid`) pins the requester's *parent* block by
    /// publishing its `alloc_era` in the parent-pin internal reservation, and
    /// pins the block it reads out of the hazardous location by publishing the
    /// era it read under in the hand-over internal reservation. Both pins are
    /// withdrawn before returning; reclamation safety across the hand-over is
    /// provided by the `cleanup()` scan order (Lemmas 4 and 5).
    pub(crate) fn help_thread(&self, requester: usize, slot: usize, helper_tid: usize) {
        self.counters.on_help();
        let state = self.state.get(requester, slot);
        let request = state.result.load();
        if request.0 != INVPTR {
            return;
        }
        // Pin the parent block before touching anything else (Lemma 4).
        let parent_era = state.era.load(Ordering::Acquire); // ORDER: pairs with the requester's SeqCst publish of the slow-path state.
        let parent_pin = self.reservations.get(helper_tid, self.parent_slot());
        parent_pin.store_first(parent_era, Ordering::SeqCst);

        let location = state.pointer.load(Ordering::Acquire); // ORDER: pairs with the requester's SeqCst publish of the slow-path state.
        let tag = self
            .reservations
            .get(requester, slot)
            .load_second(Ordering::SeqCst);
        // If the tag moved on, the request we read belongs to an already
        // finished slow-path cycle: the state fields may be stale, so bail out.
        if tag == request.1 {
            let handover_pin = self.reservations.get(helper_tid, self.handover_slot());
            let mut prev_era = self.era();
            // Bounded by the number of in-flight era increments (Lemma 2).
            loop {
                handover_pin.store_first(prev_era, Ordering::SeqCst);
                // SAFETY: `location` is the address of an `AtomicUsize` inside
                // the parent block (or a data-structure root). The tag matched
                // after the parent pin was published, so by Lemma 4 the parent
                // cannot have been reclaimed and the location is still valid.
                let value = unsafe { (*(location as *const AtomicUsize)).load(Ordering::Acquire) }; // ORDER: pairs with the Release publish of the pointer being protected.
                let new_era = self.era();
                if prev_era == new_era {
                    if state
                        .result
                        .compare_exchange(request, (value as u64, new_era))
                        .is_ok()
                    {
                        // Update the requester's reservation on its behalf;
                        // at most two iterations (Lemma 3).
                        loop {
                            let old = self.reservations.get(requester, slot).load();
                            if old.1 != tag {
                                break;
                            }
                            if self
                                .reservations
                                .get(requester, slot)
                                .compare_exchange(old, (new_era, tag + 1))
                                .is_ok()
                            {
                                break;
                            }
                        }
                    }
                    break;
                }
                prev_era = new_era;
                if state.result.load() != request {
                    break;
                }
            }
            handover_pin.store_first(ERA_INF, Ordering::SeqCst);
        }
        parent_pin.store_first(ERA_INF, Ordering::SeqCst);
    }
}

/// The WFE batch-scan scratch: three reusable era snapshots mirroring the
/// three phases of the Figure-4 `cleanup()` eligibility check.
#[derive(Debug, Default)]
pub(crate) struct WfeSnapshot {
    /// Normal reservations + parent pins, first pass.
    primary: EraSnapshot,
    /// Whether no slow-path cycle was in flight
    /// (`counter_start == counter_end`) when the primary snapshot was taken.
    quiescent: bool,
    /// Hand-over pins (filled only when a slow path may be in flight).
    handover: EraSnapshot,
    /// Normal reservations, second pass (ditto).
    recheck: EraSnapshot,
}

impl ReservationSet for WfeSnapshot {
    fn covers(&self, block: &BlockHeader) -> bool {
        let (alloc_era, retire_era) = (block.alloc_era(), block.retire_era());
        if self.primary.covers_span(alloc_era, retire_era) {
            return true;
        }
        if self.quiescent {
            return false;
        }
        self.handover.covers_span(alloc_era, retire_era)
            || self.recheck.covers_span(alloc_era, retire_era)
    }
}

impl Reclaimer for Wfe {
    type Handle = WfeHandle;

    fn with_config(config: ReclaimerConfig) -> Arc<Self> {
        assert!(
            config.slots_per_thread >= 1,
            "WFE needs at least one application reservation slot"
        );
        assert!(
            config.fast_path_attempts >= 1,
            "WFE needs at least one fast-path attempt"
        );
        let registry = ThreadRegistry::with_shards(config.max_threads, config.shards);
        let caches = BlockCaches::new(&config.block_cache, registry.shard_count());
        Arc::new(Self {
            registry,
            caches,
            counters: Counters::new(),
            orphans: OrphanStack::new(),
            global_era: EraSource::new(1),
            counter_start: CachePadded::new(AtomicU64::new(0)),
            counter_end: CachePadded::new(AtomicU64::new(0)),
            reservations: PairSlotArray::new(
                config.max_threads,
                config.slots_per_thread + EXTRA_SLOTS,
                (ERA_INF, 0),
            ),
            state: StateTable::new(config.max_threads, config.slots_per_thread),
            config,
        })
    }

    fn try_register(self: &Arc<Self>) -> Option<WfeHandle> {
        let tid = self.registry.try_acquire()?;
        Some(WfeHandle::new(Arc::clone(self), tid))
    }

    fn name() -> &'static str {
        "WFE"
    }

    fn progress() -> Progress {
        Progress::WaitFree
    }

    fn stats(&self) -> SmrStats {
        let mut stats = self.counters.snapshot(self.era());
        self.caches.merge_into(&mut stats);
        stats
    }

    fn config(&self) -> &ReclaimerConfig {
        &self.config
    }

    fn registry(&self) -> &ThreadRegistry {
        &self.registry
    }
}

impl Drop for Wfe {
    fn drop(&mut self) {
        // SAFETY: no handles remain (they hold an Arc), so orphaned blocks
        // are unreachable and unprotected — freeing them cannot race a reader.
        unsafe {
            self.orphans.free_all();
        }
    }
}

impl core::fmt::Debug for Wfe {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Wfe")
            .field("era", &self.era())
            .field("counter_start", &self.counter_start.load(Ordering::Relaxed)) // ORDER: Debug formatting only.
            .field("counter_end", &self.counter_end.load(Ordering::Relaxed)) // ORDER: Debug formatting only.
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfe_reclaim::{Atomic, Handle, Linked, RawHandle};

    #[test]
    fn reservation_row_has_two_extra_internal_slots() {
        let domain = Wfe::with_config(ReclaimerConfig {
            slots_per_thread: 3,
            ..ReclaimerConfig::with_max_threads(2)
        });
        assert_eq!(domain.reservations.slots(), 5);
        assert_eq!(domain.parent_slot(), 3);
        assert_eq!(domain.handover_slot(), 4);
        assert_eq!(domain.state.slots(), 3);
    }

    #[test]
    fn help_thread_completes_a_pending_request() {
        // Deterministic exercise of `help_thread`: thread 0 stages a request
        // by hand exactly as the slow path of `get_protected` would, then
        // thread 1 runs `increment_era` and must produce the result.
        let domain = Wfe::with_config(ReclaimerConfig::with_max_threads(2));
        let mut owner = domain.register();
        let helper = domain.register();

        let node = owner.alloc(99u64);
        let root: Atomic<u64> = Atomic::new(node);

        let tid = owner.thread_id();
        let slot = 0usize;
        let tag = domain
            .reservations
            .get(tid, slot)
            .load_second(Ordering::SeqCst);

        // Stage the request (Figure 4, lines 31-33).
        domain.counter_start.fetch_add(1, Ordering::SeqCst);
        let state = domain.state.get(tid, slot);
        state
            .pointer
            .store(root.as_raw_atomic() as *const _ as usize, Ordering::SeqCst);
        state.era.store(ERA_INF, Ordering::SeqCst);
        state.result.store((INVPTR, tag));
        assert!(state.is_pending());

        // A thread about to advance the era must first help.
        domain.increment_era(helper.thread_id());

        let produced = state.result.load();
        assert_ne!(produced.0, INVPTR, "request was completed by the helper");
        assert_eq!(produced.0, node as u64, "helper read the hazardous pointer");
        let reservation = domain.reservations.get(tid, slot).load();
        assert_eq!(
            reservation.0, produced.1,
            "reservation era set on requester's behalf"
        );
        assert_eq!(reservation.1, tag + 1, "tag advanced to close the cycle");
        // Helper pins are withdrawn.
        assert_eq!(
            domain
                .reservations
                .get(helper.thread_id(), domain.parent_slot())
                .load_first(Ordering::SeqCst),
            ERA_INF
        );
        assert_eq!(
            domain
                .reservations
                .get(helper.thread_id(), domain.handover_slot())
                .load_first(Ordering::SeqCst),
            ERA_INF
        );
        assert!(domain.stats().helps >= 1);

        // Finish the staged cycle the way get_protected would.
        domain.counter_end.fetch_add(1, Ordering::SeqCst);
        // SAFETY: test-owned block, unlinked and freed exactly once.
        unsafe { Linked::dealloc(node) };
    }

    #[test]
    fn help_thread_ignores_stale_requests() {
        // If the requester's tag has already moved past the tag recorded in
        // the request, the helper must not touch anything.
        let domain = Wfe::with_config(ReclaimerConfig::with_max_threads(2));
        let owner = domain.register();
        let helper = domain.register();
        let tid = owner.thread_id();

        let root: Atomic<u64> = Atomic::null();
        let state = domain.state.get(tid, 0);
        state
            .pointer
            .store(root.as_raw_atomic() as *const _ as usize, Ordering::SeqCst);
        state.era.store(ERA_INF, Ordering::SeqCst);
        // Stage a request whose tag is already out of date (reservation tag is
        // 0, the request claims tag 5).
        state.result.store((INVPTR, 5));

        domain.help_thread(tid, 0, helper.thread_id());

        assert!(state.is_pending(), "stale request left untouched");
        assert_eq!(
            domain.reservations.get(tid, 0).load(),
            (ERA_INF, 0),
            "requester's reservation untouched"
        );
    }

    #[test]
    fn increment_era_without_pending_requests_just_bumps_the_clock() {
        let domain = Wfe::with_config(ReclaimerConfig::with_max_threads(2));
        let handle = domain.register();
        let before = domain.era();
        domain.increment_era(handle.thread_id());
        assert_eq!(domain.era(), before + 1);
        assert_eq!(domain.stats().helps, 0);
    }
}
