//! The per-(thread, reservation-index) slow-path state records (Figure 3).
//!
//! Each record describes one outstanding help request:
//!
//! * `pointer` — the address of the hazardous location (`block** ptr`) the
//!   requester is trying to read,
//! * `era` — the `alloc_era` of the *parent* block containing that location
//!   (`ERA_INF` when the location is a data-structure root),
//! * `result` — a 16-byte pair that doubles as request flag and reply box.
//!   While a request is pending it holds `(INVPTR, tag)`; helpers (or the
//!   requester itself, when it cancels) flip it with WCAS to
//!   `(pointer-value, era)`.

use wfe_sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use wfe_atomics::AtomicPair;
use wfe_reclaim::{ERA_INF, INVPTR};

/// One slow-path request record.
#[repr(align(64))]
#[derive(Debug)]
pub(crate) struct State {
    /// Request flag / reply box: `(INVPTR, tag)` while pending,
    /// `(value, era)` once produced, `(0, ERA_INF)` after a cancel.
    pub(crate) result: AtomicPair,
    /// `alloc_era` of the parent block (`ERA_INF` for roots).
    pub(crate) era: AtomicU64,
    /// Address of the hazardous location being read.
    pub(crate) pointer: AtomicUsize,
}

impl State {
    fn new() -> Self {
        Self {
            result: AtomicPair::new(0, ERA_INF),
            era: AtomicU64::new(ERA_INF),
            pointer: AtomicUsize::new(0),
        }
    }

    /// Whether the record currently advertises a pending request.
    #[inline]
    pub(crate) fn is_pending(&self) -> bool {
        self.result.load_first(Ordering::Acquire) == INVPTR // ORDER: pairs with the SeqCst publish/close of the slow-path result.
    }
}

/// Dense `max_threads × slots` table of [`State`] records.
#[derive(Debug)]
pub(crate) struct StateTable {
    records: Box<[State]>,
    slots: usize,
}

impl StateTable {
    pub(crate) fn new(threads: usize, slots: usize) -> Self {
        assert!(threads > 0 && slots > 0);
        Self {
            records: (0..threads * slots).map(|_| State::new()).collect(),
            slots,
        }
    }

    #[inline]
    pub(crate) fn get(&self, thread: usize, slot: usize) -> &State {
        debug_assert!(slot < self.slots);
        &self.records[thread * self.slots + slot]
    }

    #[inline]
    pub(crate) fn slots(&self) -> usize {
        self.slots
    }

    #[inline]
    pub(crate) fn threads(&self) -> usize {
        self.records.len() / self.slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_records_are_idle() {
        let table = StateTable::new(3, 4);
        assert_eq!(table.threads(), 3);
        assert_eq!(table.slots(), 4);
        for t in 0..3 {
            for s in 0..4 {
                let record = table.get(t, s);
                assert!(!record.is_pending());
                assert_eq!(record.result.load(), (0, ERA_INF));
                assert_eq!(record.era.load(Ordering::Relaxed), ERA_INF);
                assert_eq!(record.pointer.load(Ordering::Relaxed), 0);
            }
        }
    }

    #[test]
    fn pending_flag_follows_result_word() {
        let table = StateTable::new(1, 1);
        let record = table.get(0, 0);
        record.result.store((INVPTR, 7));
        assert!(record.is_pending());
        record.result.store((0x1000, 3));
        assert!(!record.is_pending());
    }

    #[test]
    fn records_do_not_share_cache_lines_within_a_row() {
        let table = StateTable::new(1, 2);
        let a = table.get(0, 0) as *const _ as usize;
        let b = table.get(0, 1) as *const _ as usize;
        assert!(b - a >= 64);
    }
}
