//! Hazard Eras (Figure 1 of the paper).
//!
//! Hazard Eras [Ramalhete & Correia, SPAA'17] merges epoch-based reclamation
//! with Hazard Pointers: instead of publishing the *pointer* it is about to
//! dereference, a thread publishes the current value of a global era clock in
//! one of its reservation slots. A retired block may be freed once no
//! published era falls inside its `[alloc_era, retire_era]` lifespan.
//!
//! Every operation except `get_protected()` is wait-free (given wait-free
//! fetch-and-add); `get_protected()` is only lock-free because its loop keeps
//! retrying while other threads advance the era clock — this is exactly the
//! loop WFE (in the `wfe-core` crate) makes wait-free.

use std::sync::Arc;
use wfe_sync::atomic::{AtomicUsize, Ordering};

use wfe_sync::EraSource;

use crate::api::{debug_assert_slot_index, Progress, RawHandle, Reclaimer, ReclaimerConfig};
use crate::block::{BlockHeader, ERA_INF};
use crate::cache::{BlockCaches, LocalBlockCache, ShardCache};
use crate::guard::ShieldSlots;
use crate::registry::ThreadRegistry;
use crate::retired::{OrphanStack, RetiredBatch};
use crate::scan::EraSnapshot;
use crate::slots::SlotArray;
use crate::stats::{Counters, SmrStats};

/// The Hazard Eras domain.
pub struct He {
    config: ReclaimerConfig,
    registry: ThreadRegistry,
    counters: Counters,
    orphans: OrphanStack,
    global_era: EraSource,
    /// `max_threads × slots_per_thread` published eras (`ERA_INF` = none).
    reservations: SlotArray,
    /// Per-shard size-class block caches (empty when disabled).
    caches: BlockCaches,
}

impl He {
    /// Current value of the global era clock.
    #[inline]
    pub fn era(&self) -> u64 {
        self.global_era.load(Ordering::Acquire) // ORDER: era clock read; pairs with the AcqRel era advances.
    }

    /// The domain's era clock. Exposed so deterministic model tests can pin
    /// or bump the clock mid-schedule; production code never writes through
    /// this (it only ever advances the clock via retirement).
    pub fn era_source(&self) -> &EraSource {
        &self.global_era
    }

    #[inline]
    fn advance_era(&self) {
        self.global_era.advance(Ordering::AcqRel); // ORDER: era advance; orders the clock with the operations it brackets.
    }

    /// Snapshots every published era once per cleanup pass, sorted so the
    /// Figure-1 `can_delete` lifespan test becomes one binary search per
    /// block instead of a full reservation-table walk. The walk goes
    /// shard-by-shard and skips wholly-idle shards (see
    /// [`ThreadRegistry::occupied_ranges`]).
    fn fill_snapshot(&self, snapshot: &mut EraSnapshot) {
        snapshot.clear();
        for range in self.registry.occupied_ranges() {
            for thread in range {
                for slot in 0..self.reservations.slots() {
                    // ORDER: snapshot load; pairs with the Release era withdrawal (see scan.rs safety argument).
                    snapshot.insert(self.reservations.get(thread, slot).load(Ordering::Acquire));
                }
            }
        }
        snapshot.seal();
    }
}

impl Reclaimer for He {
    type Handle = HeHandle;

    fn with_config(config: ReclaimerConfig) -> Arc<Self> {
        let registry = config.build_registry();
        let caches = BlockCaches::new(&config.block_cache, registry.shard_count());
        Arc::new(Self {
            registry,
            caches,
            counters: Counters::new(),
            orphans: OrphanStack::new(),
            global_era: EraSource::new(1),
            reservations: SlotArray::new(config.max_threads, config.slots_per_thread, ERA_INF),
            config,
        })
    }

    fn try_register(self: &Arc<Self>) -> Option<HeHandle> {
        let tid = self.registry.try_acquire()?;
        Some(HeHandle {
            shield_slots: ShieldSlots::new(self.config.slots_per_thread),
            cache_shard: self.registry.shard_of(tid),
            local_cache: LocalBlockCache::new(),
            domain: Arc::clone(self),
            tid,
            retired: RetiredBatch::new(),
            snapshot: EraSnapshot::new(),
            since_cleanup: 0,
            alloc_counter: 0,
        })
    }

    fn name() -> &'static str {
        "HE"
    }

    fn progress() -> Progress {
        Progress::LockFree
    }

    fn stats(&self) -> SmrStats {
        let mut stats = self.counters.snapshot(self.era());
        self.caches.merge_into(&mut stats);
        stats
    }

    fn config(&self) -> &ReclaimerConfig {
        &self.config
    }

    fn registry(&self) -> &ThreadRegistry {
        &self.registry
    }
}

impl Drop for He {
    fn drop(&mut self) {
        // No handle can exist any more (handles hold an Arc), so every
        // orphaned block is unreachable and unprotected.
        // SAFETY: no handle can exist any more (handles hold an `Arc` to the
        // domain), so every orphaned block is unreachable and unprotected.
        unsafe {
            self.orphans.free_all();
        }
    }
}

impl core::fmt::Debug for He {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("He")
            .field("era", &self.era())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Per-thread Hazard Eras handle.
pub struct HeHandle {
    /// Lease table for this handle's [`Shield`](crate::Shield)s.
    shield_slots: Arc<ShieldSlots>,
    /// Home registry shard, fixed at registration (indexes the block caches).
    cache_shard: usize,
    /// Private block-cache magazine fronting the home shard's freelists.
    local_cache: LocalBlockCache,
    domain: Arc<He>,
    tid: usize,
    retired: RetiredBatch,
    /// Reusable era snapshot (the batch scan scratch).
    snapshot: EraSnapshot,
    /// Retirements since the last cleanup pass.
    since_cleanup: usize,
    alloc_counter: usize,
}

impl HeHandle {
    /// One cleanup pass of the batch scan protocol
    /// ([`crate::retired::cleanup_pass`]).
    fn cleanup(&mut self) {
        self.since_cleanup = 0;
        let domain = &self.domain;
        let shard = domain.caches.shard(self.cache_shard);
        // SAFETY: `fill_snapshot` reads the reservation tables inside
        // `cleanup_pass`, i.e. after the orphan pop and after every block on the
        // batch was retired — the snapshot-freshness contract.
        unsafe {
            crate::retired::cleanup_pass(
                &mut self.retired,
                &domain.orphans,
                &domain.counters,
                &mut self.snapshot,
                shard.is_some().then_some(&mut self.local_cache),
                shard,
                |snapshot| domain.fill_snapshot(snapshot),
            );
        }
    }
}

// SAFETY: `protect_raw` publishes the scheme's reservation before returning,
// so the returned pointer stays valid until the slot is overwritten or
// cleared — the `RawHandle` validity contract.
unsafe impl RawHandle for HeHandle {
    fn thread_id(&self) -> usize {
        self.tid
    }

    fn slots(&self) -> usize {
        self.domain.config.slots_per_thread
    }

    fn shield_slots(&self) -> &Arc<ShieldSlots> {
        &self.shield_slots
    }

    fn begin_op(&mut self) {}

    fn end_op(&mut self) {
        self.clear();
    }

    fn protect_raw(
        &mut self,
        src: &AtomicUsize,
        index: usize,
        _parent: *mut BlockHeader,
        _mask: usize,
    ) -> usize {
        debug_assert_slot_index(index, self.slots());
        let reservation = self.domain.reservations.get(self.tid, index);
        let mut prev_era = reservation.load(Ordering::Relaxed); // ORDER: own slot re-read; the publish that matters is the SeqCst store in the loop.
        loop {
            let value = src.load(Ordering::Acquire); // ORDER: pairs with the Release publish of the pointer being protected.
            let new_era = self.domain.era();
            if prev_era == new_era {
                return value;
            }
            // Publishing the era must become visible to era-advancing threads
            // before we re-read the source pointer, hence SeqCst (the paper's
            // pseudo-code assumes sequential consistency here).
            reservation.store(new_era, Ordering::SeqCst);
            prev_era = new_era;
        }
    }

    // SAFETY: contract inherited from the trait declaration (`# Safety`
    // on `RawHandle::retire_raw`); the obligations are the caller's.
    unsafe fn retire_raw(&mut self, block: *mut BlockHeader) {
        let era = self.domain.era();
        // SAFETY: the caller's `retire_raw` contract — `block` is a valid,
        // unreachable block retired exactly once — covers both the header
        // stamp and the batch push.
        unsafe {
            (*block).retire_era.store(era, Ordering::Release); // ORDER: stamps the header before the push that makes it scannable.
            self.retired.push(block);
        }
        self.domain.counters.on_retire();
        self.since_cleanup += 1;
        if self.since_cleanup >= self.domain.config.cleanup_freq {
            // Figure 1, lines 27-28: only advance the clock if nothing else
            // advanced it since this block was stamped, then scan.
            // SAFETY: same contract — the header is valid for the whole call.
            if unsafe { (*block).retire_era() } == self.domain.era() {
                self.domain.advance_era();
            }
            self.cleanup();
        }
    }

    fn clear(&mut self) {
        self.domain
            .reservations
            .fill_row(self.tid, ERA_INF, Ordering::Release); // ORDER: withdraws the eras; pairs with the snapshot's Acquire loads.
    }

    fn pre_alloc(&mut self) -> u64 {
        self.domain.counters.on_alloc();
        self.alloc_counter += 1;
        if self.alloc_counter % self.domain.config.era_freq == 0 {
            self.domain.advance_era();
        }
        self.domain.era()
    }

    fn force_cleanup(&mut self) {
        self.domain.advance_era();
        self.cleanup();
    }

    fn block_caches(&mut self) -> (Option<&mut LocalBlockCache>, Option<&ShardCache>) {
        let shard = self.domain.caches.shard(self.cache_shard);
        (shard.is_some().then_some(&mut self.local_cache), shard)
    }
}

impl Drop for HeHandle {
    fn drop(&mut self) {
        self.clear();
        self.cleanup();
        // Park the magazine's blocks on the home shard (freeing them when the
        // cache is off) so surviving threads can recycle them.
        self.local_cache
            .drain(self.domain.caches.shard(self.cache_shard));
        // Whatever the final pass could not free is parked on the orphan
        // stack; the next live thread's cleanup pass adopts it.
        self.domain.orphans.push(self.retired.take());
        self.domain.registry.release(self.tid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    #[test]
    fn naming_and_progress() {
        assert_eq!(He::name(), "HE");
        assert_eq!(He::progress(), Progress::LockFree);
    }

    #[test]
    fn basic_lifecycle() {
        conformance::basic_lifecycle::<He>();
    }

    #[test]
    fn protection_blocks_reclamation() {
        conformance::protection_blocks_reclamation::<He>();
    }

    #[test]
    fn all_blocks_freed_on_drop() {
        conformance::all_blocks_freed_on_drop::<He>();
    }

    #[test]
    fn concurrent_stack_stress() {
        conformance::concurrent_stack_stress::<He>(4, 2_000);
    }

    #[test]
    fn unreclaimed_is_bounded() {
        conformance::unreclaimed_is_bounded::<He>(4_000);
    }

    #[test]
    fn orphan_adoption() {
        conformance::orphan_adoption_reclaims_exited_threads_blocks::<He>(true);
    }

    #[test]
    fn era_advances_with_allocations() {
        let domain = He::with_config(ReclaimerConfig {
            era_freq: 10,
            ..ReclaimerConfig::with_max_threads(2)
        });
        let mut handle = domain.register();
        let before = domain.era();
        for _ in 0..100 {
            let ptr = crate::Handle::alloc(&mut handle, 0u64);
            // SAFETY: the block was never published and never retired; freed once.
            unsafe { crate::Linked::dealloc(ptr) };
        }
        assert!(
            domain.era() >= before + 9,
            "era clock advanced by era_freq steps"
        );
    }
}
