//! Reclamation statistics.
//!
//! The paper's second metric ("average number of unreclaimed objects per
//! operation", Figures 5b/5d and the right-hand plots of Figures 6–11)
//! requires every scheme to expose how many retired blocks have not yet been
//! freed. The counters here are shared by all schemes and sampled by the
//! benchmark harness.

use wfe_sync::atomic::{AtomicU64, Ordering};

use wfe_atomics::CachePadded;

/// Shared monotonic counters maintained by every scheme.
#[derive(Debug, Default)]
pub struct Counters {
    /// Number of blocks allocated through `alloc_block`.
    pub allocated: CachePadded<AtomicU64>,
    /// Number of blocks passed to `retire`.
    pub retired: CachePadded<AtomicU64>,
    /// Number of retired blocks actually freed.
    pub freed: CachePadded<AtomicU64>,
    /// Number of orphaned batches adopted from exited threads.
    pub adopted_batches: CachePadded<AtomicU64>,
    /// Number of blocks freed while scanning an adopted batch (a subset of
    /// `freed`).
    pub freed_via_adoption: CachePadded<AtomicU64>,
    /// Number of slow-path cycles taken (WFE only; 0 elsewhere).
    pub slow_path: CachePadded<AtomicU64>,
    /// Number of `help_thread` invocations (WFE only; 0 elsewhere).
    pub helps: CachePadded<AtomicU64>,
}

impl Counters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one `alloc_block` call.
    #[inline]
    pub fn on_alloc(&self) {
        self.allocated.fetch_add(1, Ordering::Relaxed); // ORDER: statistics counter only.
    }

    /// Records one `retire` call.
    #[inline]
    pub fn on_retire(&self) {
        self.retired.fetch_add(1, Ordering::Relaxed); // ORDER: statistics counter only.
    }

    /// Records `n` blocks freed by a cleanup scan.
    #[inline]
    pub fn on_free(&self, n: u64) {
        if n != 0 {
            self.freed.fetch_add(n, Ordering::Relaxed); // ORDER: statistics counter only.
        }
    }

    /// Records the adoption of one orphaned batch from which `freed` blocks
    /// were reclaimed (the freed blocks must *also* be reported through
    /// [`on_free`](Self::on_free) so `unreclaimed` stays consistent).
    #[inline]
    pub fn on_adoption(&self, freed: u64) {
        self.adopted_batches.fetch_add(1, Ordering::Relaxed); // ORDER: statistics counter only.
        if freed != 0 {
            self.freed_via_adoption.fetch_add(freed, Ordering::Relaxed); // ORDER: statistics counter only.
        }
    }

    /// Records one slow-path entry (used by `wfe-core`).
    #[inline]
    pub fn on_slow_path(&self) {
        self.slow_path.fetch_add(1, Ordering::Relaxed); // ORDER: statistics counter only.
    }

    /// Records one helping attempt (used by `wfe-core`).
    #[inline]
    pub fn on_help(&self) {
        self.helps.fetch_add(1, Ordering::Relaxed); // ORDER: statistics counter only.
    }

    /// Takes a consistent-enough snapshot for reporting.
    pub fn snapshot(&self, current_era: u64) -> SmrStats {
        let retired = self.retired.load(Ordering::Relaxed); // ORDER: statistics counter only.
        let freed = self.freed.load(Ordering::Relaxed); // ORDER: statistics counter only.
        SmrStats {
            allocated: self.allocated.load(Ordering::Relaxed), // ORDER: statistics counter only.
            retired,
            freed,
            unreclaimed: retired.saturating_sub(freed),
            adopted_batches: self.adopted_batches.load(Ordering::Relaxed), // ORDER: statistics counter only.
            freed_via_adoption: self.freed_via_adoption.load(Ordering::Relaxed), // ORDER: statistics counter only.
            slow_path: self.slow_path.load(Ordering::Relaxed), // ORDER: statistics counter only.
            helps: self.helps.load(Ordering::Relaxed),         // ORDER: statistics counter only.
            // The cache counters live on the per-shard caches, not here; the
            // owning domain merges them in (`BlockCaches::merge_into`).
            cache_hits: 0,
            cache_misses: 0,
            cached_bytes: 0,
            era: current_era,
        }
    }
}

/// A point-in-time snapshot of a scheme's reclamation activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SmrStats {
    /// Blocks allocated so far.
    pub allocated: u64,
    /// Blocks retired so far.
    pub retired: u64,
    /// Retired blocks already freed.
    pub freed: u64,
    /// Retired blocks still waiting to be freed (`retired - freed`).
    pub unreclaimed: u64,
    /// Orphaned batches adopted from exited threads.
    pub adopted_batches: u64,
    /// Blocks freed while scanning an adopted batch (a subset of `freed`).
    pub freed_via_adoption: u64,
    /// Slow-path cycles taken (WFE only).
    pub slow_path: u64,
    /// `help_thread` calls performed (WFE only).
    pub helps: u64,
    /// Cacheable allocations served from a shard's block cache (0 when the
    /// cache is disabled). Merged from the per-shard caches at snapshot time.
    pub cache_hits: u64,
    /// Cacheable allocations that found their shard's freelist empty and fell
    /// through to the allocator.
    pub cache_misses: u64,
    /// Bytes currently parked on the domain's block-cache freelists.
    pub cached_bytes: u64,
    /// Current value of the global era/epoch clock (0 for schemes without one).
    pub era: u64,
}

impl SmrStats {
    /// Fraction of cacheable allocations served from the block cache
    /// (`0.0` when none were attempted, e.g. cache disabled).
    pub fn cache_hit_rate(&self) -> f64 {
        let attempts = self.cache_hits + self.cache_misses;
        if attempts == 0 {
            0.0
        } else {
            self.cache_hits as f64 / attempts as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counts() {
        let c = Counters::new();
        c.on_alloc();
        c.on_alloc();
        c.on_retire();
        c.on_free(1);
        c.on_adoption(1);
        c.on_adoption(0);
        c.on_slow_path();
        c.on_help();
        let s = c.snapshot(42);
        assert_eq!(s.allocated, 2);
        assert_eq!(s.retired, 1);
        assert_eq!(s.freed, 1);
        assert_eq!(s.unreclaimed, 0);
        assert_eq!(s.adopted_batches, 2);
        assert_eq!(s.freed_via_adoption, 1);
        assert_eq!(s.slow_path, 1);
        assert_eq!(s.helps, 1);
        assert_eq!(s.era, 42);
    }

    #[test]
    fn unreclaimed_saturates() {
        let c = Counters::new();
        c.on_free(3);
        assert_eq!(c.snapshot(0).unreclaimed, 0);
    }

    #[test]
    fn cache_hit_rate_handles_zero_attempts() {
        let mut s = SmrStats::default();
        assert_eq!(s.cache_hit_rate(), 0.0);
        s.cache_hits = 3;
        s.cache_misses = 1;
        assert_eq!(s.cache_hit_rate(), 0.75);
    }

    #[test]
    fn on_free_zero_is_a_noop() {
        let c = Counters::new();
        c.on_free(0);
        assert_eq!(c.snapshot(0).freed, 0);
    }
}
