//! Generic safe-memory-reclamation (SMR) framework plus the baseline schemes
//! used by the WFE paper's evaluation.
//!
//! The paper compares its contribution, Wait-Free Eras (implemented in the
//! `wfe-core` crate), against five existing reclamation approaches. This crate
//! provides:
//!
//! * the **common API** every scheme implements ([`Reclaimer`], [`RawHandle`],
//!   [`Handle`]) — a Rust rendering of the Hazard-Pointers-compatible
//!   interface the paper describes (`get_protected` / `retire` / `clear` /
//!   `alloc_block`), matching the harness of Wen et al.'s IBR benchmark that
//!   the evaluation reuses; `RawHandle` is the SPI for scheme implementors;
//! * the **safe guard layer** application code uses instead of raw slot
//!   indices: [`Guard`] operation brackets, owned [`Shield`] reservation
//!   leases and borrow-checked [`Protected`] pointers (see [`guard`]);
//! * the intrusive allocation header ([`BlockHeader`], [`Linked`]) that keeps
//!   the two era fields every era-based scheme needs;
//! * the baseline schemes:
//!   [`Ebr`] (epoch-based reclamation), [`Hp`] (hazard pointers),
//!   [`He`] (hazard eras, Figure 1 of the paper), [`Ibr2Ge`] (the 2GEIBR
//!   variant of interval-based reclamation) and [`Leak`] (no reclamation);
//! * the scale-out layers beyond the paper: the sharded
//!   [`ThreadRegistry`] (NUMA-friendly slot management whose idle shards are
//!   skipped by cleanup scans) and the [`HandlePool`] of parked handles for
//!   executor-style task churn.
//!
//! Data structures in `wfe-ds` are generic over `R: Reclaimer`, so every
//! workload of the evaluation can be paired with every scheme, exactly as in
//! the paper.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod api;
pub mod block;
pub mod cache;
pub mod conformance;
pub mod ebr;
pub mod guard;
pub mod he;
pub mod hp;
pub mod ibr;
pub mod leak;
pub mod pool;
pub mod ptr;
pub mod registry;
pub mod retired;
pub mod scan;
pub mod slots;
pub mod stats;
mod treiber;

pub use api::{
    DomainConfig, DomainConfigBuilder, Handle, Progress, RawHandle, Reclaimer, ReclaimerConfig,
};
pub use block::{BlockHeader, Linked, ERA_INF, INVPTR};
pub use cache::{BlockCacheConfig, BlockCaches, LocalBlockCache, ShardCache, SizeClass};
pub use ebr::Ebr;
pub use guard::{Guard, Protected, Shield, ShieldError, ShieldSlots};
pub use he::He;
pub use hp::Hp;
pub use ibr::Ibr2Ge;
pub use leak::Leak;
pub use pool::{HandlePool, PoolStats, PooledHandle};
pub use ptr::Atomic;
pub use registry::ThreadRegistry;
pub use stats::SmrStats;
#[doc(hidden)]
pub use treiber::TypeStableStack;

// Compile-time auto-trait facts, stated as the `static_assertions` idiom
// (const fns, no dependency). Each line is a load-bearing API property: a
// private field change that breaks one of these would silently break every
// consumer that shares domains across threads or moves handles between
// executor workers. `Guard` and `Protected` are deliberately absent — they
// are `!Send` by design (raw-pointer fields), and their docs carry
// `compile_fail` tests proving it.
const fn _assert_send<T: Send>() {}
const fn _assert_send_sync<T: Send + Sync>() {}
#[allow(dead_code)] // checked at definition, never called
const fn _auto_trait_facts() {
    // Domains live behind `Arc` and are hammered from every thread.
    _assert_send_sync::<Ebr>();
    _assert_send_sync::<He>();
    _assert_send_sync::<Hp>();
    _assert_send_sync::<Ibr2Ge>();
    _assert_send_sync::<Leak>();
    _assert_send_sync::<ThreadRegistry>();
    // `Atomic` is a shared-memory link by definition.
    _assert_send_sync::<Atomic<u64>>();
    // Stats snapshots travel to sampler/reporter threads.
    _assert_send_sync::<SmrStats>();
    // The block caches hang off domains, so they must share the same facts.
    _assert_send_sync::<BlockCaches>();
    _assert_send_sync::<ShardCache>();
}
#[allow(dead_code)] // the bounds must hold for *all* R / T / H
const fn _auto_trait_facts_generic<R: Reclaimer, T, H: RawHandle>() {
    // The pool is the cross-thread hand-off point for handles, and a
    // checked-out handle migrates with whatever task owns it.
    _assert_send_sync::<HandlePool<R>>();
    _assert_send::<PooledHandle<R>>();
    // A shield is an owned lease meant to be held across suspension points,
    // so it is `Send + Sync` for *any* `T` (its type parameters are
    // variance-only markers; no `T` is ever stored).
    _assert_send_sync::<Shield<T, H>>();
}
