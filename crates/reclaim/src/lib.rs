//! Generic safe-memory-reclamation (SMR) framework plus the baseline schemes
//! used by the WFE paper's evaluation.
//!
//! The paper compares its contribution, Wait-Free Eras (implemented in the
//! `wfe-core` crate), against five existing reclamation approaches. This crate
//! provides:
//!
//! * the **common API** every scheme implements ([`Reclaimer`], [`RawHandle`],
//!   [`Handle`]) — a Rust rendering of the Hazard-Pointers-compatible
//!   interface the paper describes (`get_protected` / `retire` / `clear` /
//!   `alloc_block`), matching the harness of Wen et al.'s IBR benchmark that
//!   the evaluation reuses; `RawHandle` is the SPI for scheme implementors;
//! * the **safe guard layer** application code uses instead of raw slot
//!   indices: [`Guard`] operation brackets, owned [`Shield`] reservation
//!   leases and borrow-checked [`Protected`] pointers (see [`guard`]);
//! * the intrusive allocation header ([`BlockHeader`], [`Linked`]) that keeps
//!   the two era fields every era-based scheme needs;
//! * the baseline schemes:
//!   [`Ebr`] (epoch-based reclamation), [`Hp`] (hazard pointers),
//!   [`He`] (hazard eras, Figure 1 of the paper), [`Ibr2Ge`] (the 2GEIBR
//!   variant of interval-based reclamation) and [`Leak`] (no reclamation);
//! * the scale-out layers beyond the paper: the sharded
//!   [`ThreadRegistry`] (NUMA-friendly slot management whose idle shards are
//!   skipped by cleanup scans) and the [`HandlePool`] of parked handles for
//!   executor-style task churn.
//!
//! Data structures in `wfe-ds` are generic over `R: Reclaimer`, so every
//! workload of the evaluation can be paired with every scheme, exactly as in
//! the paper.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod api;
pub mod block;
pub mod conformance;
pub mod ebr;
pub mod guard;
pub mod he;
pub mod hp;
pub mod ibr;
pub mod leak;
pub mod pool;
pub mod ptr;
pub mod registry;
pub mod retired;
pub mod scan;
pub mod slots;
pub mod stats;
mod treiber;

pub use api::{
    DomainConfig, DomainConfigBuilder, Handle, Progress, RawHandle, Reclaimer, ReclaimerConfig,
};
pub use block::{BlockHeader, Linked, ERA_INF, INVPTR};
pub use ebr::Ebr;
pub use guard::{Guard, Protected, Shield, ShieldError, ShieldSlots};
pub use he::He;
pub use hp::Hp;
pub use ibr::Ibr2Ge;
pub use leak::Leak;
pub use pool::{HandlePool, PoolStats, PooledHandle};
pub use ptr::Atomic;
pub use registry::ThreadRegistry;
pub use stats::SmrStats;
#[doc(hidden)]
pub use treiber::TypeStableStack;
