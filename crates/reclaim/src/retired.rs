//! Per-thread retired lists and the global orphan list.
//!
//! Retired blocks wait on an intrusive, owner-thread-only list until a
//! `cleanup()` pass proves no reservation can still reach them. When a thread
//! handle is dropped with blocks still pending, the remainder is parked on the
//! owning domain's *orphan list* and freed when the domain itself is dropped
//! (at which point no reservations exist any more). This mirrors what the
//! reference implementations do when a thread detaches.

use core::ptr;
use std::sync::Mutex;

use crate::block::{free_block, BlockHeader};

/// Owner-thread-only list of retired blocks, linked through the block
/// header's `next_retired` field.
#[derive(Debug)]
pub struct RetiredList {
    head: *mut BlockHeader,
    len: usize,
}

// The list is owned by exactly one thread at a time; sending it (e.g. into an
// orphan list) transfers that ownership.
unsafe impl Send for RetiredList {}

impl RetiredList {
    /// Creates an empty list.
    pub const fn new() -> Self {
        Self {
            head: ptr::null_mut(),
            len: 0,
        }
    }

    /// Number of blocks currently parked on the list.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pushes a retired block.
    ///
    /// # Safety
    ///
    /// `block` must be a valid, retired, unreachable block owned by the caller
    /// and not present on any other list.
    pub unsafe fn push(&mut self, block: *mut BlockHeader) {
        (*block).next_retired = self.head;
        self.head = block;
        self.len += 1;
    }

    /// Scans the list, freeing every block for which `can_free` returns true.
    /// Returns the number of blocks freed.
    ///
    /// # Safety
    ///
    /// `can_free(block)` must only return `true` when no thread can still hold
    /// or acquire a reference to `block` (the scheme's safety condition).
    pub unsafe fn scan(&mut self, mut can_free: impl FnMut(*mut BlockHeader) -> bool) -> usize {
        let mut kept_head: *mut BlockHeader = ptr::null_mut();
        let mut kept_len = 0usize;
        let mut freed = 0usize;
        let mut cur = self.head;
        while !cur.is_null() {
            let next = (*cur).next_retired;
            if can_free(cur) {
                free_block(cur);
                freed += 1;
            } else {
                (*cur).next_retired = kept_head;
                kept_head = cur;
                kept_len += 1;
            }
            cur = next;
        }
        self.head = kept_head;
        self.len = kept_len;
        freed
    }

    /// Unconditionally frees every block on the list. Returns the count.
    ///
    /// # Safety
    ///
    /// No thread may still hold or acquire references to any block on the
    /// list (e.g. the owning domain is being dropped).
    pub unsafe fn free_all(&mut self) -> usize {
        self.scan(|_| true)
    }

    /// Moves every block from `other` onto `self`.
    pub fn append(&mut self, other: &mut RetiredList) {
        // Splice `other` in front of our head.
        if other.head.is_null() {
            return;
        }
        unsafe {
            let mut tail = other.head;
            while !(*tail).next_retired.is_null() {
                tail = (*tail).next_retired;
            }
            (*tail).next_retired = self.head;
        }
        self.head = other.head;
        self.len += other.len;
        other.head = ptr::null_mut();
        other.len = 0;
    }
}

impl Default for RetiredList {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for RetiredList {
    fn drop(&mut self) {
        debug_assert!(
            self.is_empty(),
            "RetiredList dropped with {} blocks still pending; \
             they must be moved to an orphan list or freed first",
            self.len
        );
    }
}

/// Blocks abandoned by exited threads, freed when the domain is dropped.
#[derive(Debug, Default)]
pub struct OrphanList {
    inner: Mutex<RetiredList>,
}

impl OrphanList {
    /// Creates an empty orphan list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parks the contents of `list` on the orphan list.
    pub fn adopt(&self, list: &mut RetiredList) {
        if list.is_empty() {
            return;
        }
        self.inner.lock().unwrap().append(list);
    }

    /// Number of orphaned blocks.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Whether there are no orphaned blocks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Frees every orphaned block. Returns the count.
    ///
    /// # Safety
    ///
    /// Callable only when no thread can still reach the orphaned blocks
    /// (typically from the domain's `Drop`).
    pub unsafe fn free_all(&self) -> usize {
        self.inner.lock().unwrap().free_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Linked;
    use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};
    use std::sync::Arc;

    struct Canary(Arc<AtomicUsize>);
    impl Drop for Canary {
        fn drop(&mut self) {
            self.0.fetch_add(1, SeqCst);
        }
    }

    fn make(drops: &Arc<AtomicUsize>) -> *mut BlockHeader {
        Linked::as_header(Linked::alloc(Canary(drops.clone()), 0))
    }

    #[test]
    fn push_scan_keep_and_free() {
        let drops = Arc::new(AtomicUsize::new(0));
        let mut list = RetiredList::new();
        let a = make(&drops);
        let b = make(&drops);
        let c = make(&drops);
        unsafe {
            list.push(a);
            list.push(b);
            list.push(c);
        }
        assert_eq!(list.len(), 3);
        // Free only block `b`.
        let freed = unsafe { list.scan(|blk| blk == b) };
        assert_eq!(freed, 1);
        assert_eq!(list.len(), 2);
        assert_eq!(drops.load(SeqCst), 1);
        let freed = unsafe { list.free_all() };
        assert_eq!(freed, 2);
        assert_eq!(drops.load(SeqCst), 3);
        assert!(list.is_empty());
    }

    #[test]
    fn append_moves_all_blocks() {
        let drops = Arc::new(AtomicUsize::new(0));
        let mut a_list = RetiredList::new();
        let mut b_list = RetiredList::new();
        unsafe {
            a_list.push(make(&drops));
            b_list.push(make(&drops));
            b_list.push(make(&drops));
        }
        a_list.append(&mut b_list);
        assert_eq!(a_list.len(), 3);
        assert!(b_list.is_empty());
        a_list.append(&mut b_list); // appending an empty list is a no-op
        assert_eq!(a_list.len(), 3);
        unsafe { a_list.free_all() };
        assert_eq!(drops.load(SeqCst), 3);
    }

    #[test]
    fn orphans_are_freed_on_demand() {
        let drops = Arc::new(AtomicUsize::new(0));
        let orphans = OrphanList::new();
        let mut list = RetiredList::new();
        unsafe {
            list.push(make(&drops));
            list.push(make(&drops));
        }
        orphans.adopt(&mut list);
        assert!(list.is_empty());
        assert_eq!(orphans.len(), 2);
        assert_eq!(unsafe { orphans.free_all() }, 2);
        assert!(orphans.is_empty());
        assert_eq!(drops.load(SeqCst), 2);
    }
}
