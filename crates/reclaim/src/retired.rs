//! Per-thread retired batches and the lock-free orphan stack.
//!
//! Retired blocks wait on an intrusive, owner-thread-only batch until a
//! cleanup pass drains the batch against a reservation snapshot
//! ([`crate::scan::ReservationSet`]) taken once per pass. When a thread
//! handle is dropped with blocks still pending, the leftover batch is pushed
//! onto the owning domain's [`OrphanStack`] — a lock-free Treiber stack of
//! whole batches — and the next live thread's cleanup pass *adopts* it, so
//! memory retired by exited threads is reclaimed while the domain is still
//! running instead of waiting for domain teardown.

use core::ptr;
use wfe_sync::atomic::{AtomicU64, Ordering};

use crate::block::{free_block, BlockHeader};
use crate::cache::{LocalBlockCache, ShardCache};
use crate::scan::ReservationSet;
use crate::stats::Counters;
use crate::treiber::TypeStableStack;

/// Owner-thread-only batch of retired blocks, linked through the block
/// header's `next_retired` field.
///
/// `retire` appends; every `cleanup_freq` retirements the owning handle
/// drains the whole batch against one reservation snapshot
/// ([`RetiredBatch::scan_against`]). Blocks that survive stay on the batch
/// for the next pass.
#[derive(Debug)]
pub struct RetiredBatch {
    head: *mut BlockHeader,
    len: usize,
}

// The batch is owned by exactly one thread at a time; sending it (e.g. onto
// the orphan stack) transfers that ownership.
// SAFETY: the batch is owned by exactly one thread at a time; sending it
// (e.g. onto the orphan stack) transfers that ownership wholesale.
unsafe impl Send for RetiredBatch {}

impl RetiredBatch {
    /// Creates an empty batch.
    pub const fn new() -> Self {
        Self {
            head: ptr::null_mut(),
            len: 0,
        }
    }

    /// Number of blocks currently parked on the batch.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pushes a retired block.
    ///
    /// # Safety
    ///
    /// `block` must be a valid, retired, unreachable block owned by the caller
    /// and not present on any other batch.
    pub unsafe fn push(&mut self, block: *mut BlockHeader) {
        // SAFETY: the caller owns `block`, so the intrusive link is ours to
        // write; no other thread can reach a retired, unreachable block.
        unsafe { (*block).next_retired = self.head };
        self.head = block;
        self.len += 1;
    }

    /// Drains the batch against a reservation snapshot: every block the
    /// snapshot does not cover is freed, the rest are kept for the next pass.
    /// Returns the number of blocks freed.
    ///
    /// This is the batch scan protocol: the caller takes the snapshot **once**
    /// (after every block in the batch has been retired — for adopted batches,
    /// after popping them from the orphan stack) and the per-block test runs
    /// against the snapshot without touching shared memory.
    ///
    /// Freed class blocks are routed into `local` (the scanning thread's
    /// private magazine) first, spilling into `shard` (its home-shard cache)
    /// when the magazine fills; with neither, blocks free straight to the
    /// allocator.
    ///
    /// # Safety
    ///
    /// `snapshot` must have been filled from the domain's reservation tables
    /// *after* every block on this batch was retired, so that any reservation
    /// still protecting a block is visible in it.
    pub unsafe fn scan_against<S: ReservationSet>(
        &mut self,
        snapshot: &S,
        mut local: Option<&mut LocalBlockCache>,
        shard: Option<&ShardCache>,
    ) -> usize {
        let mut kept_head: *mut BlockHeader = ptr::null_mut();
        let mut kept_len = 0usize;
        let mut freed = 0usize;
        let mut cur = self.head;
        while !cur.is_null() {
            // SAFETY: every block on the batch is owned by this batch (push
            // contract), so the header and its intrusive link are valid and
            // exclusively ours; a block the snapshot does not cover is — per
            // the caller's snapshot-freshness contract — unprotected and
            // unreachable, so `free_block` frees it exactly once.
            unsafe {
                let next = (*cur).next_retired;
                if snapshot.covers(&*cur) {
                    (*cur).next_retired = kept_head;
                    kept_head = cur;
                    kept_len += 1;
                } else {
                    free_block(cur, local.as_deref_mut(), shard);
                    freed += 1;
                }
                cur = next;
            }
        }
        self.head = kept_head;
        self.len = kept_len;
        freed
    }

    /// Unconditionally frees every block on the batch. Returns the count.
    ///
    /// # Safety
    ///
    /// No thread may still hold or acquire references to any block on the
    /// batch (e.g. the owning domain is being dropped).
    pub unsafe fn free_all(&mut self) -> usize {
        let mut freed = 0usize;
        let mut cur = self.head;
        while !cur.is_null() {
            // SAFETY: the caller guarantees no thread can still reach these
            // blocks; the batch owns them, so each is freed exactly once.
            unsafe {
                let next = (*cur).next_retired;
                free_block(cur, None, None);
                freed += 1;
                cur = next;
            }
        }
        self.head = ptr::null_mut();
        self.len = 0;
        freed
    }

    /// Moves every block from `other` onto `self`.
    pub fn append(&mut self, other: &mut RetiredBatch) {
        // Splice `other` in front of our head.
        if other.head.is_null() {
            return;
        }
        // SAFETY: both batches are exclusively borrowed, so every intrusive
        // link they own is valid and unaliased.
        unsafe {
            let mut tail = other.head;
            while !(*tail).next_retired.is_null() {
                tail = (*tail).next_retired;
            }
            (*tail).next_retired = self.head;
        }
        self.head = other.head;
        self.len += other.len;
        other.head = ptr::null_mut();
        other.len = 0;
    }

    /// Takes the whole batch, leaving `self` empty.
    pub fn take(&mut self) -> RetiredBatch {
        RetiredBatch {
            head: core::mem::replace(&mut self.head, ptr::null_mut()),
            len: core::mem::replace(&mut self.len, 0),
        }
    }
}

impl Default for RetiredBatch {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for RetiredBatch {
    fn drop(&mut self) {
        debug_assert!(
            self.is_empty(),
            "RetiredBatch dropped with {} blocks still pending; \
             they must be pushed onto an orphan stack or freed first",
            self.len
        );
    }
}

/// One cleanup pass of the batch scan protocol, shared by every scheme's
/// handle: pop an orphaned batch (if any), take the reservation snapshot once
/// via `fill`, then drain the own batch and the adopted batch against that
/// single snapshot, crediting `counters` (frees and adoption).
///
/// The orphan batch is popped *before* `fill` runs so that every adopted
/// block was retired before the snapshot's loads — the batch scan safety
/// condition. Adopted survivors are appended to `retired` and rescanned on
/// the owner's next pass. Freed class blocks land on `local` (the scanning
/// thread's private magazine), spilling into `shard` (its home-shard block
/// cache) when the magazine fills; the magazine's hit/miss tallies are
/// flushed to the shard at the end of the pass, so domain-level stats lag by
/// at most one cleanup interval.
///
/// # Safety
///
/// Same contract as [`RetiredBatch::scan_against`]: `fill` must fill
/// `snapshot` from the domain's reservation tables such that any reservation
/// still protecting a block on `retired` (or on the popped orphan batch) is
/// visible in it.
pub unsafe fn cleanup_pass<S: ReservationSet>(
    retired: &mut RetiredBatch,
    orphans: &OrphanStack,
    counters: &Counters,
    snapshot: &mut S,
    mut local: Option<&mut LocalBlockCache>,
    shard: Option<&ShardCache>,
    fill: impl FnOnce(&mut S),
) {
    let adopted = orphans.pop();
    fill(snapshot);
    // SAFETY: `fill` ran after every block on `retired` was retired and after
    // the orphan batch was popped, so the snapshot-freshness contract of
    // `scan_against` holds for both batches (the caller's obligation).
    let freed = unsafe { retired.scan_against(snapshot, local.as_deref_mut(), shard) };
    counters.on_free(freed as u64);
    if let Some(mut batch) = adopted {
        // SAFETY: as above — the snapshot was taken after the pop.
        let freed = unsafe { batch.scan_against(snapshot, local.as_deref_mut(), shard) };
        counters.on_free(freed as u64);
        counters.on_adoption(freed as u64);
        retired.append(&mut batch);
    }
    if let (Some(local), Some(shard)) = (local, shard) {
        local.flush_stats(shard);
    }
}

/// Lock-free Treiber stack of whole retired batches abandoned by exited
/// threads.
///
/// A dropping handle [`push`](Self::push)es its leftover batch; any live
/// thread's cleanup pass [`pop`](Self::pop)s one batch and adopts it (scans
/// it against its freshly taken reservation snapshot and keeps the
/// survivors). The stack itself is a `TypeStableStack` — versioned
/// wide-CAS ends, recycled nodes — so it is lock-free and ABA-safe; whatever
/// is still parked when the domain drops is freed by
/// [`free_all`](Self::free_all).
pub struct OrphanStack {
    stack: TypeStableStack<RetiredBatch>,
    /// Blocks currently parked (approximate between operations, exact when
    /// quiescent); used by stats and tests.
    blocks: AtomicU64,
}

impl OrphanStack {
    /// Creates an empty orphan stack.
    pub fn new() -> Self {
        Self {
            stack: TypeStableStack::new(),
            blocks: AtomicU64::new(0),
        }
    }

    /// Number of orphaned blocks currently parked.
    pub fn len(&self) -> usize {
        self.blocks.load(Ordering::Acquire) as usize // ORDER: gauge read; pairs with the AcqRel park/adopt updates.
    }

    /// Whether no blocks are parked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Parks `batch` on the stack (no-op for an empty batch).
    pub fn push(&self, batch: RetiredBatch) {
        if batch.is_empty() {
            return;
        }
        self.blocks.fetch_add(batch.len() as u64, Ordering::AcqRel); // ORDER: keeps the gauge ordered with the batch push it mirrors.
        self.stack.push(batch);
    }

    /// Pops one parked batch for adoption, if any.
    ///
    /// The caller must take its reservation snapshot **after** this returns,
    /// so that any reservation still protecting an adopted block is observed
    /// by the snapshot.
    pub fn pop(&self) -> Option<RetiredBatch> {
        // Opportunistic empty check: the common no-orphans cleanup pass must
        // not pay a wide-CAS RMW on the shared head line. A batch whose push
        // is in flight may be missed — adoption is opportunistic, the next
        // pass will see it.
        // ORDER: opportunistic empty check; a missed in-flight push is adopted next pass.
        if self.blocks.load(Ordering::Acquire) == 0 {
            return None;
        }
        let batch = self.stack.pop()?;
        self.blocks.fetch_sub(batch.len() as u64, Ordering::AcqRel); // ORDER: keeps the gauge ordered with the batch pop it mirrors.
        Some(batch)
    }

    /// Frees every parked block. Returns the count.
    ///
    /// # Safety
    ///
    /// Callable only when no thread can still reach the orphaned blocks
    /// (typically from the domain's `Drop`).
    pub unsafe fn free_all(&self) -> usize {
        let mut freed = 0usize;
        while let Some(mut batch) = self.pop() {
            // SAFETY: forwarded contract — no thread can reach these blocks.
            freed += unsafe { batch.free_all() };
        }
        freed
    }
}

impl Default for OrphanStack {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for OrphanStack {
    fn drop(&mut self) {
        debug_assert!(
            self.is_empty(),
            "OrphanStack dropped with {} blocks still parked; \
             the owning domain must call free_all() first",
            self.len()
        );
        // The inner stack deallocates its type-stable nodes.
    }
}

impl core::fmt::Debug for OrphanStack {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("OrphanStack")
            .field("blocks", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Linked;
    use crate::scan::HazardSnapshot;
    use std::sync::Arc;
    use wfe_sync::atomic::{AtomicUsize, Ordering::SeqCst};

    struct Canary(Arc<AtomicUsize>);
    impl Drop for Canary {
        fn drop(&mut self) {
            self.0.fetch_add(1, SeqCst);
        }
    }

    fn make(drops: &Arc<AtomicUsize>) -> *mut BlockHeader {
        Linked::as_header(Linked::alloc(Canary(drops.clone()), 0))
    }

    #[test]
    fn push_scan_keep_and_free() {
        let drops = Arc::new(AtomicUsize::new(0));
        let mut batch = RetiredBatch::new();
        let a = make(&drops);
        let b = make(&drops);
        let c = make(&drops);
        // SAFETY: freshly allocated blocks owned by the test; each pushed once.
        unsafe {
            batch.push(a);
            batch.push(b);
            batch.push(c);
        }
        assert_eq!(batch.len(), 3);
        // Snapshot covering `a` and `c`: only `b` may be freed.
        let mut snap = HazardSnapshot::new();
        snap.insert(a as usize);
        snap.insert(c as usize);
        snap.seal();
        // SAFETY: the snapshot was filled after every push; nothing else references
        // the blocks.
        let freed = unsafe { batch.scan_against(&snap, None, None) };
        assert_eq!(freed, 1);
        assert_eq!(batch.len(), 2);
        assert_eq!(drops.load(SeqCst), 1);
        // SAFETY: no other thread references the batch's blocks.
        let freed = unsafe { batch.free_all() };
        assert_eq!(freed, 2);
        assert_eq!(drops.load(SeqCst), 3);
        assert!(batch.is_empty());
    }

    #[test]
    fn scan_routes_freed_blocks_into_the_cache() {
        let drops = Arc::new(AtomicUsize::new(0));
        let caches = crate::cache::BlockCaches::new(
            &crate::cache::BlockCacheConfig {
                enabled: true,
                per_class_capacity: 8,
            },
            1,
        );
        let mut batch = RetiredBatch::new();
        // SAFETY: freshly allocated blocks owned by the test; each pushed once.
        unsafe {
            batch.push(make(&drops));
            batch.push(make(&drops));
        }
        // An empty (sealed) snapshot covers nothing: everything is freeable.
        let mut snap = HazardSnapshot::new();
        snap.seal();
        // SAFETY: snapshot taken after the pushes; nothing else references them.
        let freed = unsafe { batch.scan_against(&snap, None, caches.shard(0)) };
        assert_eq!(freed, 2);
        assert_eq!(drops.load(SeqCst), 2, "payloads dropped");
        assert!(
            caches.shard(0).unwrap().cached_bytes() > 0,
            "freed memory parked on the shard cache"
        );
    }

    #[test]
    fn append_moves_all_blocks() {
        let drops = Arc::new(AtomicUsize::new(0));
        let mut a_batch = RetiredBatch::new();
        let mut b_batch = RetiredBatch::new();
        // SAFETY: freshly allocated blocks owned by the test; each pushed once.
        unsafe {
            a_batch.push(make(&drops));
            b_batch.push(make(&drops));
            b_batch.push(make(&drops));
        }
        a_batch.append(&mut b_batch);
        assert_eq!(a_batch.len(), 3);
        assert!(b_batch.is_empty());
        a_batch.append(&mut b_batch); // appending an empty batch is a no-op
        assert_eq!(a_batch.len(), 3);
        let taken = a_batch.take();
        assert!(a_batch.is_empty());
        let mut taken = taken;
        // SAFETY: no other thread references the batch's blocks.
        unsafe { taken.free_all() };
        assert_eq!(drops.load(SeqCst), 3);
    }

    #[test]
    fn orphan_stack_push_pop_is_lifo_batches() {
        let drops = Arc::new(AtomicUsize::new(0));
        let stack = OrphanStack::new();
        let mut first = RetiredBatch::new();
        let mut second = RetiredBatch::new();
        // SAFETY: freshly allocated blocks owned by the test; each pushed once.
        unsafe {
            first.push(make(&drops));
            second.push(make(&drops));
            second.push(make(&drops));
        }
        stack.push(first);
        stack.push(second);
        assert_eq!(stack.len(), 3);
        let mut adopted = stack.pop().expect("a batch is parked");
        assert_eq!(adopted.len(), 2, "batches pop LIFO");
        assert_eq!(stack.len(), 1);
        // SAFETY: no other thread references the batch's blocks.
        unsafe { adopted.free_all() };
        // SAFETY: all pushes happened-before; nothing references the parked blocks.
        assert_eq!(unsafe { stack.free_all() }, 1);
        assert!(stack.is_empty());
        assert!(stack.pop().is_none());
        assert_eq!(drops.load(SeqCst), 3);
    }

    #[test]
    fn orphan_stack_recycles_nodes() {
        let drops = Arc::new(AtomicUsize::new(0));
        let stack = OrphanStack::new();
        for _ in 0..10 {
            let mut batch = RetiredBatch::new();
            // SAFETY: freshly allocated blocks owned by the test; each pushed once.
            unsafe { batch.push(make(&drops)) };
            stack.push(batch);
            let mut adopted = stack.pop().unwrap();
            // SAFETY: no other thread references the batch's blocks.
            unsafe { adopted.free_all() };
        }
        assert!(stack.is_empty());
        assert_eq!(drops.load(SeqCst), 10);
    }

    #[test]
    fn empty_batch_push_is_a_noop() {
        let stack = OrphanStack::new();
        stack.push(RetiredBatch::new());
        assert!(stack.pop().is_none());
    }

    #[test]
    fn concurrent_push_pop_conserves_blocks() {
        const THREADS: usize = 4;
        const BATCHES: usize = 200;
        let drops = Arc::new(AtomicUsize::new(0));
        let stack = Arc::new(OrphanStack::new());
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let drops = Arc::clone(&drops);
                let stack = Arc::clone(&stack);
                scope.spawn(move || {
                    for i in 0..BATCHES {
                        let mut batch = RetiredBatch::new();
                        // SAFETY: freshly allocated blocks owned by the test; each pushed once.
                        unsafe {
                            batch.push(make(&drops));
                            batch.push(make(&drops));
                        }
                        stack.push(batch);
                        if i % 2 == 0 {
                            if let Some(mut adopted) = stack.pop() {
                                // SAFETY: no other thread references the batch's blocks.
                                unsafe { adopted.free_all() };
                            }
                        }
                    }
                });
            }
        });
        // SAFETY: all workers have joined; nothing references the parked blocks.
        let remaining = unsafe { stack.free_all() };
        assert!(stack.is_empty());
        assert_eq!(
            drops.load(SeqCst),
            THREADS * BATCHES * 2,
            "every block freed exactly once (popped {remaining} at teardown)"
        );
    }
}
