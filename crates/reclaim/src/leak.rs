//! The "Leak Memory" baseline: no reclamation at all.
//!
//! The paper's throughput plots include a scheme that simply never frees
//! retired blocks. It provides an upper bound on attainable throughput
//! (no reclamation overhead whatsoever) at the cost of unbounded memory.
//!
//! To keep the test suite leak-free, retired blocks are parked on the domain
//! (a dropping handle pushes its batch onto the orphan stack) and freed when
//! the domain itself is dropped; during the measured run this behaves exactly
//! like leaking — live threads never run a cleanup pass, so they never adopt.

use core::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::api::{Progress, RawHandle, Reclaimer, ReclaimerConfig};
use crate::block::BlockHeader;
use crate::registry::ThreadRegistry;
use crate::retired::{OrphanStack, RetiredBatch};
use crate::stats::{Counters, SmrStats};

/// The leak-memory domain.
pub struct Leak {
    config: ReclaimerConfig,
    registry: ThreadRegistry,
    counters: Counters,
    orphans: OrphanStack,
}

impl Reclaimer for Leak {
    type Handle = LeakHandle;

    fn with_config(config: ReclaimerConfig) -> Arc<Self> {
        Arc::new(Self {
            registry: config.build_registry(),
            counters: Counters::new(),
            orphans: OrphanStack::new(),
            config,
        })
    }

    fn try_register(self: &Arc<Self>) -> Option<LeakHandle> {
        let tid = self.registry.try_acquire()?;
        Some(LeakHandle {
            domain: Arc::clone(self),
            tid,
            retired: RetiredBatch::new(),
        })
    }

    fn name() -> &'static str {
        "Leak"
    }

    fn progress() -> Progress {
        Progress::None
    }

    fn stats(&self) -> SmrStats {
        self.counters.snapshot(0)
    }

    fn config(&self) -> &ReclaimerConfig {
        &self.config
    }

    fn registry(&self) -> &ThreadRegistry {
        &self.registry
    }
}

impl Drop for Leak {
    fn drop(&mut self) {
        unsafe {
            self.orphans.free_all();
        }
    }
}

impl core::fmt::Debug for Leak {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Leak")
            .field("stats", &self.stats())
            .finish()
    }
}

/// Per-thread leak-memory handle.
pub struct LeakHandle {
    domain: Arc<Leak>,
    tid: usize,
    retired: RetiredBatch,
}

unsafe impl RawHandle for LeakHandle {
    fn thread_id(&self) -> usize {
        self.tid
    }

    fn slots(&self) -> usize {
        self.domain.config.slots_per_thread
    }

    fn begin_op(&mut self) {}

    fn end_op(&mut self) {}

    fn protect_raw(
        &mut self,
        src: &AtomicUsize,
        _index: usize,
        _parent: *mut BlockHeader,
        _mask: usize,
    ) -> usize {
        src.load(Ordering::Acquire)
    }

    unsafe fn retire_raw(&mut self, block: *mut BlockHeader) {
        self.retired.push(block);
        self.domain.counters.on_retire();
    }

    fn clear(&mut self) {}

    fn pre_alloc(&mut self) -> u64 {
        self.domain.counters.on_alloc();
        0
    }

    fn force_cleanup(&mut self) {
        // Leaking means never cleaning up.
    }
}

impl Drop for LeakHandle {
    fn drop(&mut self) {
        self.domain.orphans.push(self.retired.take());
        self.domain.registry.release(self.tid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;
    use crate::Handle;

    #[test]
    fn naming_and_progress() {
        assert_eq!(Leak::name(), "Leak");
        assert_eq!(Leak::progress(), Progress::None);
    }

    #[test]
    fn basic_lifecycle() {
        conformance::basic_lifecycle::<Leak>();
    }

    #[test]
    fn all_blocks_freed_on_drop() {
        conformance::all_blocks_freed_on_drop::<Leak>();
    }

    #[test]
    fn concurrent_stack_stress() {
        conformance::concurrent_stack_stress::<Leak>(4, 2_000);
    }

    #[test]
    fn orphans_wait_for_domain_drop() {
        conformance::orphan_adoption_reclaims_exited_threads_blocks::<Leak>(false);
    }

    #[test]
    fn nothing_is_ever_freed_while_running() {
        let domain = Leak::with_config(ReclaimerConfig::with_max_threads(1));
        let mut handle = domain.register();
        for _ in 0..50 {
            let ptr = handle.alloc(0u64);
            unsafe { handle.retire(ptr) };
        }
        handle.force_cleanup();
        let stats = domain.stats();
        assert_eq!(stats.retired, 50);
        assert_eq!(stats.freed, 0);
        assert_eq!(stats.unreclaimed, 50);
    }
}
