//! The "Leak Memory" baseline: no reclamation at all.
//!
//! The paper's throughput plots include a scheme that simply never frees
//! retired blocks. It provides an upper bound on attainable throughput
//! (no reclamation overhead whatsoever) at the cost of unbounded memory.
//!
//! To keep the test suite leak-free, retired blocks are parked on the domain
//! (a dropping handle pushes its batch onto the orphan stack) and freed when
//! the domain itself is dropped; during the measured run this behaves exactly
//! like leaking — live threads never run a cleanup pass, so they never adopt.

use std::sync::Arc;
use wfe_sync::atomic::{AtomicUsize, Ordering};

use crate::api::{debug_assert_slot_index, Progress, RawHandle, Reclaimer, ReclaimerConfig};
use crate::block::BlockHeader;
use crate::guard::ShieldSlots;
use crate::registry::ThreadRegistry;
use crate::retired::{OrphanStack, RetiredBatch};
use crate::stats::{Counters, SmrStats};

/// The leak-memory domain.
pub struct Leak {
    config: ReclaimerConfig,
    registry: ThreadRegistry,
    counters: Counters,
    orphans: OrphanStack,
}

impl Reclaimer for Leak {
    type Handle = LeakHandle;

    fn with_config(config: ReclaimerConfig) -> Arc<Self> {
        Arc::new(Self {
            registry: config.build_registry(),
            counters: Counters::new(),
            orphans: OrphanStack::new(),
            config,
        })
    }

    fn try_register(self: &Arc<Self>) -> Option<LeakHandle> {
        let tid = self.registry.try_acquire()?;
        Some(LeakHandle {
            shield_slots: ShieldSlots::new(self.config.slots_per_thread),
            domain: Arc::clone(self),
            tid,
            retired: RetiredBatch::new(),
        })
    }

    fn name() -> &'static str {
        "Leak"
    }

    fn progress() -> Progress {
        Progress::None
    }

    fn stats(&self) -> SmrStats {
        self.counters.snapshot(0)
    }

    fn config(&self) -> &ReclaimerConfig {
        &self.config
    }

    fn registry(&self) -> &ThreadRegistry {
        &self.registry
    }
}

impl Drop for Leak {
    fn drop(&mut self) {
        // SAFETY: no handle can exist any more, and Leak never frees while running,
        // so every parked block is unreachable; domain drop is the one free point.
        unsafe {
            self.orphans.free_all();
        }
    }
}

impl core::fmt::Debug for Leak {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Leak")
            .field("stats", &self.stats())
            .finish()
    }
}

/// Per-thread leak-memory handle.
pub struct LeakHandle {
    /// Lease table for this handle's [`Shield`](crate::Shield)s. Leak never
    /// reclaims, but leases keep data structures scheme-generic.
    shield_slots: Arc<ShieldSlots>,
    domain: Arc<Leak>,
    tid: usize,
    retired: RetiredBatch,
}

// SAFETY: nothing is ever freed while the domain lives, so every pointer
// trivially satisfies the `RawHandle` validity contract.
unsafe impl RawHandle for LeakHandle {
    fn thread_id(&self) -> usize {
        self.tid
    }

    fn slots(&self) -> usize {
        self.domain.config.slots_per_thread
    }

    fn shield_slots(&self) -> &Arc<ShieldSlots> {
        &self.shield_slots
    }

    fn begin_op(&mut self) {}

    fn end_op(&mut self) {}

    fn protect_raw(
        &mut self,
        src: &AtomicUsize,
        index: usize,
        _parent: *mut BlockHeader,
        _mask: usize,
    ) -> usize {
        // Nothing is ever reclaimed, so no reservation is needed — but a
        // stray index is still a caller bug: check it uniformly.
        debug_assert_slot_index(index, self.slots());
        src.load(Ordering::Acquire) // ORDER: pairs with the Release publish of the pointer being protected.
    }

    // SAFETY: contract inherited from the trait declaration (`# Safety`
    // on `RawHandle::retire_raw`); the obligations are the caller's.
    unsafe fn retire_raw(&mut self, block: *mut BlockHeader) {
        // SAFETY: forwarded `retire_raw` contract — `block` is valid,
        // unreachable and retired exactly once.
        unsafe { self.retired.push(block) };
        self.domain.counters.on_retire();
    }

    fn clear(&mut self) {}

    fn pre_alloc(&mut self) -> u64 {
        self.domain.counters.on_alloc();
        0
    }

    fn force_cleanup(&mut self) {
        // Leaking means never cleaning up.
    }
}

impl Drop for LeakHandle {
    fn drop(&mut self) {
        self.domain.orphans.push(self.retired.take());
        self.domain.registry.release(self.tid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;
    use crate::Handle;

    #[test]
    fn naming_and_progress() {
        assert_eq!(Leak::name(), "Leak");
        assert_eq!(Leak::progress(), Progress::None);
    }

    #[test]
    fn basic_lifecycle() {
        conformance::basic_lifecycle::<Leak>();
    }

    #[test]
    fn all_blocks_freed_on_drop() {
        conformance::all_blocks_freed_on_drop::<Leak>();
    }

    #[test]
    fn concurrent_stack_stress() {
        conformance::concurrent_stack_stress::<Leak>(4, 2_000);
    }

    #[test]
    fn orphans_wait_for_domain_drop() {
        conformance::orphan_adoption_reclaims_exited_threads_blocks::<Leak>(false);
    }

    #[test]
    fn nothing_is_ever_freed_while_running() {
        let domain = Leak::with_config(ReclaimerConfig::with_max_threads(1));
        let mut handle = domain.register();
        for _ in 0..50 {
            let ptr = handle.alloc(0u64);
            // SAFETY: the block was never published; retired exactly once.
            unsafe { handle.retire(ptr) };
        }
        handle.force_cleanup();
        let stats = domain.stats();
        assert_eq!(stats.retired, 50);
        assert_eq!(stats.freed, 0);
        assert_eq!(stats.unreclaimed, 50);
    }
}
