//! Sharded thread-slot registry.
//!
//! Every scheme in the suite (like the paper and the IBR benchmark harness)
//! assumes a bounded number of participating threads, `max_threads`, and gives
//! each registered thread a dense index into the per-thread reservation
//! arrays. The registry hands out those indices and recycles them when a
//! thread's handle is dropped.
//!
//! The slot space is split into cache-line-padded **shards** so that sockets
//! (and, under task churn, executor workers) do not contend on one contiguous
//! region:
//!
//! * each acquiring thread probes its **home shard** first — a per-thread
//!   ordinal maps every OS thread to a fixed shard, so repeated
//!   acquire/release cycles from the same thread stay on the same cache
//!   lines — and falls back to **work-stealing** from the other shards only
//!   when the home shard is full;
//! * each shard maintains an **occupancy counter**, updated with sequentially
//!   consistent RMWs, that cleanup scans use to skip wholly-idle shards
//!   without touching their reservation rows (see
//!   [`occupied_ranges`](ThreadRegistry::occupied_ranges) for why the skip
//!   can never hide a live reservation);
//! * within a shard, acquisition starts from a rotating hint, so a burst of
//!   registrations (the cold-start pattern of every benchmark run) is O(1)
//!   per thread uncontended.
//!
//! The shard count defaults to the host's available parallelism (capped by
//! `max_threads`) and can be pinned through
//! [`DomainConfig::shards`](crate::api::DomainConfig).

use core::ops::Range;
use wfe_sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use wfe_atomics::CachePadded;

/// One cache-line-padded shard of the slot space.
#[derive(Debug)]
struct Shard {
    /// Acquisition state of each slot in this shard.
    slots: Box<[CachePadded<AtomicBool>]>,
    /// Number of currently acquired slots in this shard. Incremented *after*
    /// winning a slot and decremented *after* the releasing thread has
    /// cleared its reservations, so `occupancy == 0` implies every
    /// reservation row of the shard reads as empty (the shard-skip safety
    /// condition).
    occupancy: CachePadded<AtomicUsize>,
    /// Rotating start hint for the next acquire within this shard.
    hint: CachePadded<AtomicUsize>,
}

impl Shard {
    fn new(len: usize) -> Self {
        Self {
            slots: (0..len)
                .map(|_| CachePadded::new(AtomicBool::new(false)))
                .collect(),
            occupancy: CachePadded::new(AtomicUsize::new(0)),
            hint: CachePadded::new(AtomicUsize::new(0)),
        }
    }
}

/// Returns a small dense ordinal for the calling thread, assigned on first
/// use. Used to pick a stable home shard per OS thread.
fn thread_ordinal() -> usize {
    use std::cell::Cell;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static ORDINAL: Cell<Option<usize>> = const { Cell::new(None) };
    }
    ORDINAL.with(|ordinal| match ordinal.get() {
        Some(value) => value,
        None => {
            let value = NEXT.fetch_add(1, Ordering::Relaxed); // ORDER: process-wide ordinal; only uniqueness matters.
            ordinal.set(Some(value));
            value
        }
    })
}

/// Sharded allocator of dense thread indices in `0..max_threads`.
#[derive(Debug)]
pub struct ThreadRegistry {
    shards: Box<[Shard]>,
    /// Slots per shard (every shard except possibly the last is this big).
    shard_size: usize,
    capacity: usize,
}

impl ThreadRegistry {
    /// Creates a registry with `max_threads` slots and an automatically
    /// chosen shard count (the host's available parallelism, capped by
    /// `max_threads`).
    pub fn new(max_threads: usize) -> Self {
        Self::with_shards(max_threads, 0)
    }

    /// Creates a registry with `max_threads` slots split over `shards`
    /// shards (`0` = choose automatically from available parallelism). The
    /// shard count is clamped to `1..=max_threads`.
    pub fn with_shards(max_threads: usize, shards: usize) -> Self {
        assert!(max_threads > 0, "max_threads must be at least 1");
        let shards = if shards == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            shards
        }
        .clamp(1, max_threads);
        let shard_size = max_threads.div_ceil(shards);
        // `shard_size` rounding can make trailing shards redundant; drop them.
        let shards = max_threads.div_ceil(shard_size);
        let built = (0..shards)
            .map(|shard| {
                let start = shard * shard_size;
                let end = (start + shard_size).min(max_threads);
                Shard::new(end - start)
            })
            .collect();
        Self {
            shards: built,
            shard_size,
            capacity: max_threads,
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of shards the slot space is split into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The global slot-index range covered by `shard`.
    pub fn shard_range(&self, shard: usize) -> Range<usize> {
        let start = shard * self.shard_size;
        start..(start + self.shards[shard].slots.len())
    }

    /// The shard a global slot index belongs to.
    pub fn shard_of(&self, idx: usize) -> usize {
        debug_assert!(idx < self.capacity);
        idx / self.shard_size
    }

    /// Number of currently acquired slots in `shard`.
    pub fn shard_occupancy(&self, shard: usize) -> usize {
        self.shards[shard].occupancy.load(Ordering::SeqCst)
    }

    /// Number of shards with at least one acquired slot.
    pub fn occupied_shards(&self) -> usize {
        self.shards
            .iter()
            .filter(|shard| shard.occupancy.load(Ordering::SeqCst) != 0)
            .count()
    }

    /// Iterates over the slot-index ranges of every shard that currently has
    /// at least one acquired slot. Cleanup scans walk these ranges instead of
    /// `0..capacity`, skipping wholly-idle shards.
    ///
    /// Skipping is safe — a reservation in shard *N* is never missed:
    /// occupancy is incremented (SeqCst) *before* the owning thread can
    /// publish any reservation and decremented (SeqCst) only *after* the
    /// handle teardown has cleared its rows. A scan that reads `occupancy ==
    /// 0` therefore either observes the decrement (and, through its
    /// release/acquire edge, the preceding row clear) or precedes the
    /// increment in the single total order of SeqCst operations — in which
    /// case every later reservation store by that thread is also absent, and
    /// reading the rows would have found them empty anyway. Reservations
    /// published *after* the scan's loads can only concern blocks that were
    /// still reachable then, never the already-retired blocks being scanned
    /// (the batch scan protocol's standing argument, see [`crate::scan`]).
    pub fn occupied_ranges(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        self.shards.iter().enumerate().filter_map(|(idx, shard)| {
            if shard.occupancy.load(Ordering::SeqCst) != 0 {
                Some(self.shard_range(idx))
            } else {
                None
            }
        })
    }

    /// Tries to claim a free slot within one shard.
    fn try_acquire_in(&self, shard_idx: usize) -> Option<usize> {
        let shard = &self.shards[shard_idx];
        let len = shard.slots.len();
        // Fast skip of full shards without touching their slot lines.
        // ORDER: full-shard fast skip; a stale value only misroutes the probe.
        if shard.occupancy.load(Ordering::Relaxed) >= len {
            return None;
        }
        let start = shard.hint.fetch_add(1, Ordering::Relaxed) % len; // ORDER: rotation hint only; no data is ordered by it.
        for probe in 0..len {
            let offset = (start + probe) % len;
            let slot = &shard.slots[offset];
            if !slot.load(Ordering::Relaxed) // ORDER: optimistic pre-check; the CAS below decides.
                && slot
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed) // ORDER: success publishes the slot claim; failure just probes on.
                    .is_ok()
            {
                // SeqCst so a concurrent scan that misses this increment
                // cannot observe any reservation published after it
                // (shard-skip safety; see `occupied_ranges`).
                shard.occupancy.fetch_add(1, Ordering::SeqCst);
                return Some(shard_idx * self.shard_size + offset);
            }
        }
        None
    }

    /// Claims a free slot, or returns `None` when every slot is taken, so
    /// callers can degrade gracefully (shed the thread, queue the work)
    /// instead of panicking.
    ///
    /// The probe starts at the calling thread's home shard (a stable
    /// per-thread assignment) and steals from the other shards only when the
    /// home shard is full, so the uncontended cost is one load plus one CAS
    /// on lines no other shard's threads write.
    pub fn try_acquire(&self) -> Option<usize> {
        let shard_count = self.shards.len();
        let home = thread_ordinal() % shard_count;
        for probe in 0..shard_count {
            let shard = (home + probe) % shard_count;
            if let Some(idx) = self.try_acquire_in(shard) {
                return Some(idx);
            }
        }
        None
    }

    /// Claims a free slot.
    ///
    /// # Panics
    ///
    /// Panics if more than `max_threads` handles are alive simultaneously —
    /// the same error condition the original C++ schemes treat as a
    /// configuration bug. Use [`try_acquire`](Self::try_acquire) to handle
    /// exhaustion without panicking.
    pub fn acquire(&self) -> usize {
        self.try_acquire().unwrap_or_else(|| {
            panic!(
                "thread registry exhausted: more than {} concurrent handles; \
                 raise ReclaimerConfig::max_threads",
                self.capacity
            )
        })
    }

    /// Returns a slot to the free pool.
    ///
    /// Callers must have cleared every reservation of the slot first (handle
    /// teardown does); the occupancy decrement is what lets scans skip the
    /// shard afterwards.
    pub fn release(&self, idx: usize) {
        let shard = &self.shards[self.shard_of(idx)];
        // Occupancy is decremented *before* the slot bit is published free:
        // the full-shard fast skip in `try_acquire_in` must never observe a
        // durably freed slot behind a stale "full" counter (a probe that
        // races the window between the two stores merely retries elsewhere,
        // exactly as it would against the pre-shard registry). Scan safety is
        // unaffected — the reservation rows were cleared before this call.
        shard.occupancy.fetch_sub(1, Ordering::SeqCst);
        let was = shard.slots[idx % self.shard_size].swap(false, Ordering::AcqRel); // ORDER: pairs with the AcqRel claim CAS; the SeqCst occupancy store above carries scan safety.
        debug_assert!(was, "releasing a slot that was not acquired");
    }

    /// Number of currently registered threads.
    pub fn registered(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.occupancy.load(Ordering::SeqCst))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn acquire_release_recycles_slots() {
        let reg = ThreadRegistry::new(2);
        let a = reg.acquire();
        let b = reg.acquire();
        assert_ne!(a, b);
        assert_eq!(reg.registered(), 2);
        reg.release(a);
        // With the registry full except for `a`, the stealing probe must find
        // it again regardless of which shard it lives in.
        let c = reg.acquire();
        assert_eq!(c, a, "released slot is found again");
        reg.release(b);
        reg.release(c);
        assert_eq!(reg.registered(), 0);
    }

    #[test]
    fn try_acquire_returns_none_when_exhausted() {
        let reg = ThreadRegistry::new(2);
        let a = reg.try_acquire().unwrap();
        let b = reg.try_acquire().unwrap();
        assert_ne!(a, b);
        assert_eq!(reg.try_acquire(), None, "no panic, graceful degradation");
        reg.release(a);
        assert_eq!(reg.try_acquire(), Some(a), "released slot usable again");
    }

    #[test]
    #[should_panic(expected = "thread registry exhausted")]
    fn exhaustion_panics() {
        let reg = ThreadRegistry::new(2);
        let _a = reg.acquire();
        let _b = reg.acquire();
        let _c = reg.acquire();
    }

    #[test]
    fn concurrent_acquisition_yields_unique_indices() {
        const THREADS: usize = 16;
        let reg = Arc::new(ThreadRegistry::new(THREADS));
        let mut joins = Vec::new();
        for _ in 0..THREADS {
            let reg = reg.clone();
            joins.push(std::thread::spawn(move || reg.acquire()));
        }
        let ids: HashSet<usize> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        assert_eq!(ids.len(), THREADS, "all indices distinct");
        assert!(ids.iter().all(|&i| i < THREADS));
    }

    #[test]
    #[should_panic(expected = "max_threads must be at least 1")]
    fn zero_capacity_rejected() {
        let _ = ThreadRegistry::new(0);
    }

    #[test]
    fn shard_geometry_covers_the_slot_space_exactly() {
        for (capacity, shards) in [(1, 1), (2, 2), (7, 3), (8, 4), (128, 0), (5, 64)] {
            let reg = ThreadRegistry::with_shards(capacity, shards);
            assert_eq!(reg.capacity(), capacity);
            assert!(reg.shard_count() >= 1 && reg.shard_count() <= capacity);
            // The shard ranges partition 0..capacity without gaps or overlap.
            let mut covered = 0;
            for shard in 0..reg.shard_count() {
                let range = reg.shard_range(shard);
                assert_eq!(range.start, covered, "ranges are contiguous");
                assert!(!range.is_empty(), "no empty shard");
                for idx in range.clone() {
                    assert_eq!(reg.shard_of(idx), shard);
                }
                covered = range.end;
            }
            assert_eq!(covered, capacity);
        }
    }

    #[test]
    fn explicit_shard_count_is_honoured() {
        let reg = ThreadRegistry::with_shards(8, 4);
        assert_eq!(reg.shard_count(), 4);
        assert_eq!(reg.shard_range(0), 0..2);
        assert_eq!(reg.shard_range(3), 6..8);
    }

    #[test]
    fn occupancy_tracks_acquires_per_shard() {
        let reg = ThreadRegistry::with_shards(8, 4);
        assert_eq!(reg.occupied_shards(), 0);
        assert_eq!(reg.occupied_ranges().count(), 0);
        let idx = reg.acquire();
        let shard = reg.shard_of(idx);
        assert_eq!(reg.shard_occupancy(shard), 1);
        assert_eq!(reg.occupied_shards(), 1);
        let ranges: Vec<_> = reg.occupied_ranges().collect();
        assert_eq!(ranges, vec![reg.shard_range(shard)]);
        reg.release(idx);
        assert_eq!(reg.occupied_shards(), 0);
    }

    #[test]
    fn home_shard_is_stable_and_acquires_stay_local_until_full() {
        // A single thread acquiring repeatedly stays inside one shard until
        // that shard is full, then steals from the others.
        let reg = ThreadRegistry::with_shards(8, 4);
        let a = reg.acquire();
        let b = reg.acquire();
        assert_eq!(
            reg.shard_of(a),
            reg.shard_of(b),
            "home shard reused while it has space"
        );
        let c = reg.acquire();
        assert_ne!(
            reg.shard_of(c),
            reg.shard_of(a),
            "full home shard falls back to stealing"
        );
        // Occupancy reflects the two shards in use.
        assert_eq!(reg.registered(), 3);
        assert_eq!(reg.occupied_shards(), 2);
        for idx in [a, b, c] {
            reg.release(idx);
        }
    }

    #[test]
    fn cross_shard_churn_stress() {
        // Many threads acquiring and releasing against a deliberately small,
        // heavily sharded registry: indices must stay unique among
        // concurrently held slots and every slot must be returned.
        const THREADS: usize = 8;
        const ROUNDS: usize = 2_000;
        let reg = Arc::new(ThreadRegistry::with_shards(6, 3));
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let reg = Arc::clone(&reg);
                scope.spawn(move || {
                    for round in 0..ROUNDS {
                        // With 8 threads over 6 slots some acquires must
                        // fail; both outcomes are exercised.
                        if let Some(idx) = reg.try_acquire() {
                            assert!(idx < reg.capacity());
                            if round % 7 == 0 {
                                std::thread::yield_now();
                            }
                            reg.release(idx);
                        } else {
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        assert_eq!(reg.registered(), 0, "every slot returned after the churn");
        assert_eq!(reg.occupied_shards(), 0);
    }
}
