//! Thread-slot registry.
//!
//! Every scheme in the suite (like the paper and the IBR benchmark harness)
//! assumes a bounded number of participating threads, `max_threads`, and gives
//! each registered thread a dense index into the per-thread reservation
//! arrays. The registry hands out those indices and recycles them when a
//! thread's handle is dropped.
//!
//! Acquisition starts from a rotating per-acquire hint instead of linearly
//! scanning from slot 0, so a burst of registrations (the cold-start pattern
//! of every benchmark run) is O(1) per thread uncontended: each acquire
//! probes "its own" slot first instead of stampeding over the slots already
//! claimed by earlier threads.

use core::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use wfe_atomics::CachePadded;

/// Allocator of dense thread indices in `0..max_threads`.
#[derive(Debug)]
pub struct ThreadRegistry {
    slots: Box<[CachePadded<AtomicBool>]>,
    /// Rotating start hint for the next acquire.
    hint: CachePadded<AtomicUsize>,
}

impl ThreadRegistry {
    /// Creates a registry with `max_threads` slots.
    pub fn new(max_threads: usize) -> Self {
        assert!(max_threads > 0, "max_threads must be at least 1");
        Self {
            slots: (0..max_threads)
                .map(|_| CachePadded::new(AtomicBool::new(false)))
                .collect(),
            hint: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Claims a free slot, or returns `None` when every slot is taken, so
    /// callers can degrade gracefully (shed the thread, queue the work)
    /// instead of panicking.
    ///
    /// The probe starts at a rotating hint and wraps around, so concurrent
    /// acquires spread over distinct slots and the uncontended cost is one
    /// load plus one CAS.
    pub fn try_acquire(&self) -> Option<usize> {
        let capacity = self.slots.len();
        let start = self.hint.fetch_add(1, Ordering::Relaxed) % capacity;
        for probe in 0..capacity {
            let idx = (start + probe) % capacity;
            let slot = &self.slots[idx];
            if !slot.load(Ordering::Relaxed)
                && slot
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                return Some(idx);
            }
        }
        None
    }

    /// Claims a free slot.
    ///
    /// # Panics
    ///
    /// Panics if more than `max_threads` handles are alive simultaneously —
    /// the same error condition the original C++ schemes treat as a
    /// configuration bug. Use [`try_acquire`](Self::try_acquire) to handle
    /// exhaustion without panicking.
    pub fn acquire(&self) -> usize {
        self.try_acquire().unwrap_or_else(|| {
            panic!(
                "thread registry exhausted: more than {} concurrent handles; \
                 raise ReclaimerConfig::max_threads",
                self.slots.len()
            )
        })
    }

    /// Returns a slot to the free pool.
    pub fn release(&self, idx: usize) {
        let was = self.slots[idx].swap(false, Ordering::AcqRel);
        debug_assert!(was, "releasing a slot that was not acquired");
    }

    /// Number of currently registered threads.
    pub fn registered(&self) -> usize {
        self.slots
            .iter()
            .filter(|slot| slot.load(Ordering::Relaxed))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn acquire_release_recycles_slots() {
        let reg = ThreadRegistry::new(2);
        let a = reg.acquire();
        let b = reg.acquire();
        assert_ne!(a, b);
        assert_eq!(reg.registered(), 2);
        reg.release(a);
        // With the registry full except for `a`, the wrapping probe must find
        // it again regardless of where the hint points.
        let c = reg.acquire();
        assert_eq!(c, a, "released slot is found by the wrapping probe");
        reg.release(b);
        reg.release(c);
        assert_eq!(reg.registered(), 0);
    }

    #[test]
    fn rotating_hint_spreads_cold_start_acquires() {
        // A fresh registry hands out 0, 1, 2, ... because each acquire's hint
        // points at the next untouched slot — the O(1) cold-start path.
        let reg = ThreadRegistry::new(4);
        assert_eq!(reg.acquire(), 0);
        assert_eq!(reg.acquire(), 1);
        assert_eq!(reg.acquire(), 2);
        assert_eq!(reg.acquire(), 3);
    }

    #[test]
    fn try_acquire_returns_none_when_exhausted() {
        let reg = ThreadRegistry::new(2);
        let a = reg.try_acquire().unwrap();
        let b = reg.try_acquire().unwrap();
        assert_ne!(a, b);
        assert_eq!(reg.try_acquire(), None, "no panic, graceful degradation");
        reg.release(a);
        assert_eq!(reg.try_acquire(), Some(a), "released slot usable again");
    }

    #[test]
    #[should_panic(expected = "thread registry exhausted")]
    fn exhaustion_panics() {
        let reg = ThreadRegistry::new(2);
        let _a = reg.acquire();
        let _b = reg.acquire();
        let _c = reg.acquire();
    }

    #[test]
    fn concurrent_acquisition_yields_unique_indices() {
        const THREADS: usize = 16;
        let reg = Arc::new(ThreadRegistry::new(THREADS));
        let mut joins = Vec::new();
        for _ in 0..THREADS {
            let reg = reg.clone();
            joins.push(std::thread::spawn(move || reg.acquire()));
        }
        let ids: HashSet<usize> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        assert_eq!(ids.len(), THREADS, "all indices distinct");
        assert!(ids.iter().all(|&i| i < THREADS));
    }

    #[test]
    #[should_panic(expected = "max_threads must be at least 1")]
    fn zero_capacity_rejected() {
        let _ = ThreadRegistry::new(0);
    }
}
