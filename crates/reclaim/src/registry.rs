//! Thread-slot registry.
//!
//! Every scheme in the suite (like the paper and the IBR benchmark harness)
//! assumes a bounded number of participating threads, `max_threads`, and gives
//! each registered thread a dense index into the per-thread reservation
//! arrays. The registry hands out those indices and recycles them when a
//! thread's handle is dropped.

use core::sync::atomic::{AtomicBool, Ordering};

use wfe_atomics::CachePadded;

/// Allocator of dense thread indices in `0..max_threads`.
#[derive(Debug)]
pub struct ThreadRegistry {
    slots: Box<[CachePadded<AtomicBool>]>,
}

impl ThreadRegistry {
    /// Creates a registry with `max_threads` slots.
    pub fn new(max_threads: usize) -> Self {
        assert!(max_threads > 0, "max_threads must be at least 1");
        Self {
            slots: (0..max_threads)
                .map(|_| CachePadded::new(AtomicBool::new(false)))
                .collect(),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Claims a free slot.
    ///
    /// # Panics
    ///
    /// Panics if more than `max_threads` handles are alive simultaneously —
    /// the same error condition the original C++ schemes treat as a
    /// configuration bug.
    pub fn acquire(&self) -> usize {
        for (idx, slot) in self.slots.iter().enumerate() {
            if !slot.load(Ordering::Relaxed)
                && slot
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                return idx;
            }
        }
        panic!(
            "thread registry exhausted: more than {} concurrent handles; \
             raise ReclaimerConfig::max_threads",
            self.slots.len()
        );
    }

    /// Returns a slot to the free pool.
    pub fn release(&self, idx: usize) {
        let was = self.slots[idx].swap(false, Ordering::AcqRel);
        debug_assert!(was, "releasing a slot that was not acquired");
    }

    /// Number of currently registered threads.
    pub fn registered(&self) -> usize {
        self.slots
            .iter()
            .filter(|slot| slot.load(Ordering::Relaxed))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn acquire_release_recycles_slots() {
        let reg = ThreadRegistry::new(4);
        let a = reg.acquire();
        let b = reg.acquire();
        assert_ne!(a, b);
        assert_eq!(reg.registered(), 2);
        reg.release(a);
        let c = reg.acquire();
        assert_eq!(c, a, "released slot is reused");
        reg.release(b);
        reg.release(c);
        assert_eq!(reg.registered(), 0);
    }

    #[test]
    #[should_panic(expected = "thread registry exhausted")]
    fn exhaustion_panics() {
        let reg = ThreadRegistry::new(2);
        let _a = reg.acquire();
        let _b = reg.acquire();
        let _c = reg.acquire();
    }

    #[test]
    fn concurrent_acquisition_yields_unique_indices() {
        const THREADS: usize = 16;
        let reg = Arc::new(ThreadRegistry::new(THREADS));
        let mut joins = Vec::new();
        for _ in 0..THREADS {
            let reg = reg.clone();
            joins.push(std::thread::spawn(move || reg.acquire()));
        }
        let ids: HashSet<usize> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        assert_eq!(ids.len(), THREADS, "all indices distinct");
        assert!(ids.iter().all(|&i| i < THREADS));
    }

    #[test]
    #[should_panic(expected = "max_threads must be at least 1")]
    fn zero_capacity_rejected() {
        let _ = ThreadRegistry::new(0);
    }
}
