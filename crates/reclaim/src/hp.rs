//! Hazard Pointers (Michael, 2004).
//!
//! Each thread owns a small set of *hazard slots*; before dereferencing a
//! shared pointer it publishes the pointer in a slot and re-reads the source
//! to validate that the pointer is still reachable. A retired block may be
//! freed once its address appears in no slot. Memory usage is tightly bounded
//! (at most `max_threads × slots` blocks can be pinned), but every traversal
//! step pays a store + fence + re-read, which is why HP is the slowest scheme
//! in most of the paper's figures.

use std::sync::Arc;
use wfe_sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use wfe_atomics::CachePadded;

use crate::api::{debug_assert_slot_index, Progress, RawHandle, Reclaimer, ReclaimerConfig};
use crate::block::BlockHeader;
use crate::cache::{BlockCaches, LocalBlockCache, ShardCache};
use crate::guard::ShieldSlots;
use crate::registry::ThreadRegistry;
use crate::retired::{OrphanStack, RetiredBatch};
use crate::scan::HazardSnapshot;
use crate::slots::PtrSlotArray;
use crate::stats::{Counters, SmrStats};

/// The Hazard Pointers domain.
pub struct Hp {
    config: ReclaimerConfig,
    registry: ThreadRegistry,
    counters: Counters,
    orphans: OrphanStack,
    /// `max_threads × slots_per_thread` published addresses (0 = none).
    hazards: PtrSlotArray,
    /// Not used for safety — only reported in stats for uniformity.
    op_clock: CachePadded<AtomicU64>,
    /// Per-shard size-class block caches (empty when disabled).
    caches: BlockCaches,
}

impl Hp {
    /// Snapshots the current hazard set once per cleanup pass, sorted so the
    /// per-block membership test is one binary search. The walk goes
    /// shard-by-shard and skips wholly-idle shards (see
    /// [`ThreadRegistry::occupied_ranges`]).
    fn fill_snapshot(&self, snapshot: &mut HazardSnapshot) {
        snapshot.clear();
        for range in self.registry.occupied_ranges() {
            for thread in range {
                for slot in 0..self.hazards.slots() {
                    // ORDER: snapshot load; pairs with the Release hazard clear (see scan.rs safety argument).
                    snapshot.insert(self.hazards.get(thread, slot).load(Ordering::Acquire));
                }
            }
        }
        snapshot.seal();
    }
}

impl Reclaimer for Hp {
    type Handle = HpHandle;

    fn with_config(config: ReclaimerConfig) -> Arc<Self> {
        let registry = config.build_registry();
        let caches = BlockCaches::new(&config.block_cache, registry.shard_count());
        Arc::new(Self {
            registry,
            caches,
            counters: Counters::new(),
            orphans: OrphanStack::new(),
            hazards: PtrSlotArray::new(config.max_threads, config.slots_per_thread),
            op_clock: CachePadded::new(AtomicU64::new(0)),
            config,
        })
    }

    fn try_register(self: &Arc<Self>) -> Option<HpHandle> {
        let tid = self.registry.try_acquire()?;
        Some(HpHandle {
            shield_slots: ShieldSlots::new(self.config.slots_per_thread),
            cache_shard: self.registry.shard_of(tid),
            local_cache: LocalBlockCache::new(),
            domain: Arc::clone(self),
            tid,
            retired: RetiredBatch::new(),
            snapshot: HazardSnapshot::new(),
            since_cleanup: 0,
        })
    }

    fn name() -> &'static str {
        "HP"
    }

    fn progress() -> Progress {
        Progress::LockFree
    }

    fn stats(&self) -> SmrStats {
        let mut stats = self
            .counters
            .snapshot(self.op_clock.load(Ordering::Relaxed)); // ORDER: advisory op clock for stats only.
        self.caches.merge_into(&mut stats);
        stats
    }

    fn config(&self) -> &ReclaimerConfig {
        &self.config
    }

    fn registry(&self) -> &ThreadRegistry {
        &self.registry
    }
}

impl Drop for Hp {
    fn drop(&mut self) {
        // SAFETY: no handle can exist any more (handles hold an `Arc` to the
        // domain), so every orphaned block is unreachable and unprotected.
        unsafe {
            self.orphans.free_all();
        }
    }
}

impl core::fmt::Debug for Hp {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Hp").field("stats", &self.stats()).finish()
    }
}

/// Per-thread Hazard Pointers handle.
pub struct HpHandle {
    /// Lease table for this handle's [`Shield`](crate::Shield)s.
    shield_slots: Arc<ShieldSlots>,
    /// Home registry shard, fixed at registration (indexes the block caches).
    cache_shard: usize,
    /// Private block-cache magazine fronting the home shard's freelists.
    local_cache: LocalBlockCache,
    domain: Arc<Hp>,
    tid: usize,
    retired: RetiredBatch,
    /// Reusable hazard snapshot (the batch scan scratch).
    snapshot: HazardSnapshot,
    /// Retirements since the last cleanup pass.
    since_cleanup: usize,
}

impl HpHandle {
    /// One cleanup pass of the batch scan protocol
    /// ([`crate::retired::cleanup_pass`]).
    fn cleanup(&mut self) {
        self.since_cleanup = 0;
        let domain = &self.domain;
        let shard = domain.caches.shard(self.cache_shard);
        // SAFETY: `fill_snapshot` reads the reservation tables inside
        // `cleanup_pass`, i.e. after the orphan pop and after every block on the
        // batch was retired — the snapshot-freshness contract.
        unsafe {
            crate::retired::cleanup_pass(
                &mut self.retired,
                &domain.orphans,
                &domain.counters,
                &mut self.snapshot,
                shard.is_some().then_some(&mut self.local_cache),
                shard,
                |snapshot| domain.fill_snapshot(snapshot),
            );
        }
    }
}

// SAFETY: `protect_raw` publishes the scheme's reservation before returning,
// so the returned pointer stays valid until the slot is overwritten or
// cleared — the `RawHandle` validity contract.
unsafe impl RawHandle for HpHandle {
    fn thread_id(&self) -> usize {
        self.tid
    }

    fn slots(&self) -> usize {
        self.domain.config.slots_per_thread
    }

    fn shield_slots(&self) -> &Arc<ShieldSlots> {
        &self.shield_slots
    }

    fn begin_op(&mut self) {}

    fn end_op(&mut self) {
        self.clear();
    }

    fn protect_raw(
        &mut self,
        src: &AtomicUsize,
        index: usize,
        _parent: *mut BlockHeader,
        mask: usize,
    ) -> usize {
        debug_assert_slot_index(index, self.slots());
        let slot = self.domain.hazards.get(self.tid, index);
        let mut value = src.load(Ordering::Acquire); // ORDER: first read is optimistic; the SeqCst publish + re-read below validate it.
        loop {
            // Publish the (untagged) address, then validate that the source
            // still holds the same value: if it does, the block cannot have
            // been retired-and-scanned before our publication became visible.
            slot.store(value & mask, Ordering::SeqCst);
            let again = src.load(Ordering::Acquire); // ORDER: re-validation read; pairs with the Release publish of the pointer.
            if again == value {
                return value;
            }
            value = again;
        }
    }

    // SAFETY: contract inherited from the trait declaration (`# Safety`
    // on `RawHandle::retire_raw`); the obligations are the caller's.
    unsafe fn retire_raw(&mut self, block: *mut BlockHeader) {
        // SAFETY: the caller's `retire_raw` contract — `block` is a valid,
        // unreachable block retired exactly once — covers both the header
        // stamp and the batch push.
        unsafe {
            (*block).retire_era.store(0, Ordering::Relaxed); // ORDER: HP ignores eras; the stamp is never read for ordering.
            self.retired.push(block);
        }
        self.domain.counters.on_retire();
        self.domain.op_clock.fetch_add(1, Ordering::Relaxed); // ORDER: advisory op clock for stats only.
        self.since_cleanup += 1;
        if self.since_cleanup >= self.domain.config.cleanup_freq {
            self.cleanup();
        }
    }

    fn clear(&mut self) {
        self.domain.hazards.fill_row(self.tid, 0, Ordering::Release); // ORDER: withdraws the hazards; pairs with the snapshot's Acquire loads.
    }

    fn pre_alloc(&mut self) -> u64 {
        self.domain.counters.on_alloc();
        0
    }

    fn force_cleanup(&mut self) {
        self.cleanup();
    }

    fn block_caches(&mut self) -> (Option<&mut LocalBlockCache>, Option<&ShardCache>) {
        let shard = self.domain.caches.shard(self.cache_shard);
        (shard.is_some().then_some(&mut self.local_cache), shard)
    }
}

impl Drop for HpHandle {
    fn drop(&mut self) {
        self.clear();
        self.cleanup();
        // Park the magazine's blocks on the home shard (freeing them when the
        // cache is off) so surviving threads can recycle them.
        self.local_cache
            .drain(self.domain.caches.shard(self.cache_shard));
        // Whatever the final pass could not free is parked on the orphan
        // stack; the next live thread's cleanup pass adopts it.
        self.domain.orphans.push(self.retired.take());
        self.domain.registry.release(self.tid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;
    use crate::{Atomic, Handle};

    #[test]
    fn naming_and_progress() {
        assert_eq!(Hp::name(), "HP");
        assert_eq!(Hp::progress(), Progress::LockFree);
    }

    #[test]
    fn basic_lifecycle() {
        conformance::basic_lifecycle::<Hp>();
    }

    #[test]
    fn protection_blocks_reclamation() {
        conformance::protection_blocks_reclamation::<Hp>();
    }

    #[test]
    fn all_blocks_freed_on_drop() {
        conformance::all_blocks_freed_on_drop::<Hp>();
    }

    #[test]
    fn concurrent_stack_stress() {
        conformance::concurrent_stack_stress::<Hp>(4, 2_000);
    }

    #[test]
    fn unreclaimed_is_bounded() {
        conformance::unreclaimed_is_bounded::<Hp>(2_000);
    }

    #[test]
    fn orphan_adoption() {
        conformance::orphan_adoption_reclaims_exited_threads_blocks::<Hp>(true);
    }

    #[test]
    fn hazard_protects_exact_address_not_tag() {
        // Protecting a tagged pointer must publish the *untagged* address,
        // otherwise the scan would not recognise the block as protected.
        let domain = Hp::with_config(ReclaimerConfig::with_max_threads(2));
        let mut owner = domain.register();
        let mut other = domain.register();

        let node = owner.alloc(7u64);
        let tagged = crate::ptr::tag::with_tag(node, 1);
        let root: Atomic<u64> = Atomic::new(tagged);

        let seen = other.protect(&root, 0, core::ptr::null_mut());
        assert_eq!(seen, tagged, "raw tagged value is returned");

        // Retire from the owner; the other thread's hazard must keep it alive.
        root.store(core::ptr::null_mut(), Ordering::SeqCst);
        // SAFETY: `node` was just unlinked from `root`; retired exactly once.
        unsafe { owner.retire(node) };
        owner.force_cleanup();
        assert_eq!(
            domain.stats().unreclaimed,
            1,
            "hazard pointer pins the block"
        );

        other.clear();
        owner.force_cleanup();
        assert_eq!(domain.stats().unreclaimed, 0);
    }
}
