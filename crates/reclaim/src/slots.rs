//! Padded per-thread reservation arrays.
//!
//! Every scheme keeps a `max_threads × K` table that each thread writes on its
//! own row and every thread reads during `cleanup()`. Rows are padded to a
//! multiple of the cache line so writers never false-share.

use wfe_sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use wfe_atomics::AtomicPair;

/// Number of bytes a row is padded to (two cache lines, matching
/// [`wfe_atomics::CachePadded`]).
const ROW_BYTES: usize = 128;

/// A `max_threads × slots` table of `AtomicU64`s with padded rows.
#[derive(Debug)]
pub struct SlotArray {
    data: Box<[AtomicU64]>,
    stride: usize,
    slots: usize,
    threads: usize,
}

impl SlotArray {
    /// Creates a table initialised to `init`.
    pub fn new(threads: usize, slots: usize, init: u64) -> Self {
        assert!(threads > 0 && slots > 0);
        let per_row = ROW_BYTES / core::mem::size_of::<AtomicU64>();
        let stride = slots.div_ceil(per_row) * per_row;
        let data = (0..threads * stride)
            .map(|_| AtomicU64::new(init))
            .collect();
        Self {
            data,
            stride,
            slots,
            threads,
        }
    }

    /// Number of logical slots per thread.
    #[inline]
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Number of thread rows.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Returns the cell for `(thread, slot)`.
    #[inline]
    pub fn get(&self, thread: usize, slot: usize) -> &AtomicU64 {
        debug_assert!(slot < self.slots);
        &self.data[thread * self.stride + slot]
    }

    /// Stores `value` into every slot of `thread`'s row.
    pub fn fill_row(&self, thread: usize, value: u64, order: Ordering) {
        for slot in 0..self.slots {
            self.get(thread, slot).store(value, order);
        }
    }
}

/// A `max_threads × slots` table of `AtomicUsize`s with padded rows
/// (used by Hazard Pointers, which reserve addresses instead of eras).
#[derive(Debug)]
pub struct PtrSlotArray {
    data: Box<[AtomicUsize]>,
    stride: usize,
    slots: usize,
}

impl PtrSlotArray {
    /// Creates a table initialised to null.
    pub fn new(threads: usize, slots: usize) -> Self {
        assert!(threads > 0 && slots > 0);
        let per_row = ROW_BYTES / core::mem::size_of::<AtomicUsize>();
        let stride = slots.div_ceil(per_row) * per_row;
        let data = (0..threads * stride).map(|_| AtomicUsize::new(0)).collect();
        Self {
            data,
            stride,
            slots,
        }
    }

    /// Number of logical slots per thread.
    #[inline]
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Returns the cell for `(thread, slot)`.
    #[inline]
    pub fn get(&self, thread: usize, slot: usize) -> &AtomicUsize {
        debug_assert!(slot < self.slots);
        &self.data[thread * self.stride + slot]
    }

    /// Stores `value` into every slot of `thread`'s row.
    pub fn fill_row(&self, thread: usize, value: usize, order: Ordering) {
        for slot in 0..self.slots {
            self.get(thread, slot).store(value, order);
        }
    }
}

/// A `max_threads × slots` table of 16-byte [`AtomicPair`]s with padded rows
/// (used by WFE, whose reservations are `(era, tag)` pairs).
#[derive(Debug)]
pub struct PairSlotArray {
    data: Box<[AtomicPair]>,
    stride: usize,
    slots: usize,
    threads: usize,
}

impl PairSlotArray {
    /// Creates a table with every pair initialised to `init`.
    pub fn new(threads: usize, slots: usize, init: (u64, u64)) -> Self {
        assert!(threads > 0 && slots > 0);
        let per_row = ROW_BYTES / core::mem::size_of::<AtomicPair>();
        let stride = slots.div_ceil(per_row) * per_row;
        let data = (0..threads * stride)
            .map(|_| AtomicPair::new(init.0, init.1))
            .collect();
        Self {
            data,
            stride,
            slots,
            threads,
        }
    }

    /// Number of logical slots per thread.
    #[inline]
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Number of thread rows.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Returns the pair cell for `(thread, slot)`.
    #[inline]
    pub fn get(&self, thread: usize, slot: usize) -> &AtomicPair {
        debug_assert!(slot < self.slots);
        &self.data[thread * self.stride + slot]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfe_sync::atomic::Ordering::Relaxed;

    #[test]
    fn rows_are_padded_and_independent() {
        let arr = SlotArray::new(3, 5, 7);
        assert_eq!(arr.slots(), 5);
        assert_eq!(arr.threads(), 3);
        // Row stride covers at least a full padding unit.
        let a = arr.get(0, 0) as *const _ as usize;
        let b = arr.get(1, 0) as *const _ as usize;
        assert!(b - a >= ROW_BYTES);
        arr.get(1, 4).store(99, Relaxed);
        assert_eq!(arr.get(1, 4).load(Relaxed), 99);
        assert_eq!(arr.get(0, 4).load(Relaxed), 7);
        let cells = |arr: &SlotArray| {
            (0..arr.threads())
                .flat_map(|t| (0..arr.slots()).map(move |s| (t, s)))
                .collect::<Vec<_>>()
        };
        let modified = cells(&arr)
            .iter()
            .filter(|&&(t, s)| arr.get(t, s).load(Relaxed) == 99)
            .count();
        assert_eq!(modified, 1, "exactly one cell was written");
        arr.fill_row(1, 7, Relaxed);
        assert!(cells(&arr)
            .iter()
            .all(|&(t, s)| arr.get(t, s).load(Relaxed) == 7));
    }

    #[test]
    fn ptr_slots_behave_like_u64_slots() {
        let arr = PtrSlotArray::new(2, 3);
        assert_eq!(arr.slots(), 3);
        arr.get(0, 1).store(0xdead, Relaxed);
        assert_eq!(arr.get(0, 1).load(Relaxed), 0xdead);
        arr.fill_row(0, 0, Relaxed);
        for slot in 0..arr.slots() {
            assert_eq!(arr.get(0, slot).load(Relaxed), 0);
            assert_eq!(arr.get(1, slot).load(Relaxed), 0);
        }
    }

    #[test]
    fn pair_slots_hold_independent_pairs() {
        let arr = PairSlotArray::new(2, 4, (u64::MAX, 0));
        assert_eq!(arr.get(1, 3).load(), (u64::MAX, 0));
        arr.get(1, 3).store((5, 6));
        assert_eq!(arr.get(1, 3).load(), (5, 6));
        assert_eq!(arr.get(0, 3).load(), (u64::MAX, 0));
        // Pairs must stay 16-byte aligned even inside the padded rows.
        assert_eq!(arr.get(1, 1) as *const _ as usize % 16, 0);
    }

    #[test]
    fn wide_rows_grow_stride() {
        // More slots than fit in one padding unit still works.
        let arr = SlotArray::new(2, 40, 1);
        arr.get(0, 39).store(2, Relaxed);
        assert_eq!(arr.get(0, 39).load(Relaxed), 2);
        assert_eq!(arr.get(1, 39).load(Relaxed), 1);
    }
}
