//! Per-shard, size-class-indexed caches of raw block memory.
//!
//! After the batched scan pipeline (PR 3) the dominant cost left in the
//! retire→free→alloc cycle is the global allocator: every reclaimed block
//! took a full deallocation round trip and every [`Linked::alloc`] a fresh
//! heap allocation, so the memory churning through `smr_ops/alloc_retire`
//! never stayed cache-hot. This module keeps that traffic local: freed blocks
//! are parked on the **home shard's** freelist (one bounded
//! [`TypeStableStack`] per size class, the same versioned-wide-CAS idiom the
//! orphan stack and handle pool already use, so recycling is ABA-safe) and
//! the next allocation of a matching layout pops one instead of calling the
//! allocator.
//!
//! The key split happens in `block.rs`: a block whose layout fits a size
//! class is allocated with that class's [`Layout`] (not `Box`), and its
//! type-erased `drop_fn` runs `drop_in_place` on the payload but hands the
//! *memory* back to the caller — which routes it here, or straight back to
//! the allocator when no cache applies. Blocks whose layout exceeds the
//! largest class keep the plain `Box` path end to end.
//!
//! The layer is two-tier, in the style of a malloc thread cache: each handle
//! owns a small **non-atomic** [`LocalBlockCache`] ("magazine") that absorbs
//! the owner-thread retire→free→alloc cycle with plain loads and stores, and
//! spills to / refills from its home [`ShardCache`] half a magazine at a
//! time — so the shared freelist's versioned-CAS cost is amortized away from
//! the hot path while cross-thread recycling still flows through the shard.
//!
//! Boundedness: each magazine holds at most `LOCAL_MAGAZINE_CAP` blocks per
//! class and each per-shard freelist at most
//! [`BlockCacheConfig::per_class_capacity`]; overflow goes straight to the
//! real allocator, so WFE's bounded-memory guarantee survives. Every cache
//! is drained (deallocated) when its handle and domain drop. The whole layer
//! is switched with
//! [`DomainConfig::block_cache`](crate::DomainConfig::block_cache) or the
//! `WFE_BLOCK_CACHE` environment variable.
//!
//! [`Linked::alloc`]: crate::Linked::alloc

use core::alloc::Layout;
use wfe_sync::atomic::{AtomicU64, Ordering};

use crate::stats::SmrStats;
use crate::treiber::TypeStableStack;

/// The block sizes (in bytes) served by the cache, one freelist per entry.
///
/// The progression covers every node type in the suite (list/map nodes are
/// ~48 bytes with the header, BST internal nodes ~64, queue descriptors up to
/// a few hundred); anything larger falls through to the allocator.
pub const CLASS_SIZES: [usize; 5] = [64, 128, 256, 512, 1024];

/// Alignment of every class allocation. Covers all fundamental alignments up
/// to 16 (the `BlockHeader` itself needs 8); over-aligned payloads fall
/// through to the `Box` path.
pub const CLASS_ALIGN: usize = 16;

/// A size class of the block cache: an index into [`CLASS_SIZES`].
///
/// A block's class is decided once, at allocation time, from the layout of
/// its `Linked<T>`; the class is what the type-erased free path returns so
/// the memory can be recycled without knowing `T`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeClass(u8);

impl SizeClass {
    /// The smallest class whose block fits `size` bytes at alignment `align`,
    /// or `None` when the layout must use the plain allocator path.
    pub const fn of(size: usize, align: usize) -> Option<SizeClass> {
        if align > CLASS_ALIGN {
            return None;
        }
        let mut index = 0;
        while index < CLASS_SIZES.len() {
            if size <= CLASS_SIZES[index] {
                return Some(SizeClass(index as u8));
            }
            index += 1;
        }
        None
    }

    /// The class's block size in bytes.
    #[inline]
    pub const fn size(self) -> usize {
        CLASS_SIZES[self.0 as usize]
    }

    /// The fixed allocation layout of this class. Every block of the class is
    /// allocated *and* deallocated with exactly this layout, which is what
    /// lets blocks of different `T` share a freelist.
    #[inline]
    pub fn layout(self) -> Layout {
        // SAFETY-free: both constants are non-zero powers of two and the
        // sizes are far below isize::MAX, so the layout is always valid.
        Layout::from_size_align(self.size(), CLASS_ALIGN).expect("class layout is valid")
    }

    /// Index into [`CLASS_SIZES`] / a cache's class array.
    #[inline]
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// Debug-build balance of class allocations minus class deallocations, used
/// by leak tests to prove every cached block is returned to the allocator.
/// Deliberately a core atomic, not a `wfe_sync` one: pure observability, so
/// it must not add interleaving points to model schedules (and the sync
/// layer exports no `AtomicIsize` for the same reason).
// wfe-analyze: allow(raw-atomic): debug-only accounting, not synchronization.
#[cfg(debug_assertions)]
static OUTSTANDING: core::sync::atomic::AtomicIsize = core::sync::atomic::AtomicIsize::new(0);

/// In debug builds, the process-wide number of class-allocated blocks not yet
/// deallocated (`Some(0)` when every block has been returned); `None` in
/// release builds, where the counter would cost an RMW per allocation.
///
/// Test-only observability — the counter is global, so assertions about it
/// are only meaningful in a process that controls all its allocations.
#[doc(hidden)]
pub fn outstanding_cached_allocs() -> Option<isize> {
    #[cfg(debug_assertions)]
    {
        Some(OUTSTANDING.load(Ordering::SeqCst))
    }
    #[cfg(not(debug_assertions))]
    {
        None
    }
}

/// Allocates one block of `class`'s fixed layout from the global allocator.
pub(crate) fn alloc_class(class: SizeClass) -> *mut u8 {
    // SAFETY: the class layout has non-zero size.
    let ptr = unsafe { std::alloc::alloc(class.layout()) };
    if ptr.is_null() {
        std::alloc::handle_alloc_error(class.layout());
    }
    #[cfg(debug_assertions)]
    OUTSTANDING.fetch_add(1, Ordering::SeqCst);
    ptr
}

/// Returns one class block to the global allocator.
///
/// # Safety
///
/// `ptr` must come from [`alloc_class`] (directly or via a cache) with the
/// same `class`, must not be freed twice, and its payload must already be
/// dropped.
pub(crate) unsafe fn dealloc_class(class: SizeClass, ptr: *mut u8) {
    #[cfg(debug_assertions)]
    OUTSTANDING.fetch_sub(1, Ordering::SeqCst);
    // SAFETY: forwarded contract — `ptr` was allocated with exactly this
    // class layout and is freed exactly once.
    unsafe { std::alloc::dealloc(ptr, class.layout()) };
}

/// One bounded freelist of recycled blocks of a single size class.
#[derive(Debug)]
struct ClassList {
    /// Recycled block addresses. The stack's nodes are separate, type-stable
    /// allocations, so a block that overflows to the allocator is never
    /// dereferenced by a racing pop (no intrusive links through cached
    /// memory).
    list: TypeStableStack<usize>,
    /// Blocks currently parked (may transiently exceed the list length while
    /// a push is in flight; never used for anything but the capacity bound
    /// and `cached_bytes`).
    len: AtomicU64,
}

impl ClassList {
    fn new() -> Self {
        Self {
            list: TypeStableStack::new(),
            len: AtomicU64::new(0),
        }
    }
}

/// The per-shard block cache: one bounded freelist per size class.
///
/// A shard's cache is shared by every handle registered in that shard (same
/// geometry as the [`ThreadRegistry`](crate::ThreadRegistry) shards), so the
/// retire→free→alloc cycle of co-located threads recycles memory without
/// crossing shard boundaries. Obtained through
/// [`RawHandle::block_caches`](crate::RawHandle::block_caches).
#[derive(Debug)]
pub struct ShardCache {
    classes: [ClassList; CLASS_SIZES.len()],
    per_class_capacity: u64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ShardCache {
    fn new(per_class_capacity: usize) -> Self {
        Self {
            classes: [
                ClassList::new(),
                ClassList::new(),
                ClassList::new(),
                ClassList::new(),
                ClassList::new(),
            ],
            per_class_capacity: per_class_capacity as u64,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Parks one freed block (payload already dropped) for reuse. Returns
    /// `true` when the block was cached, `false` when the freelist was at
    /// capacity and the block went back to the allocator instead.
    ///
    /// Takes ownership of the memory either way.
    ///
    /// # Safety
    ///
    /// `block` must come from `alloc_class` (directly or recycled) with the
    /// same `class`, be exclusively owned by the caller, and its payload must
    /// already be dropped; it must not be pushed or freed again.
    pub unsafe fn push(&self, class: SizeClass, block: *mut u8) -> bool {
        let slot = &self.classes[class.index()];
        // Optimistic reservation: count first, undo on overflow. `len` may
        // transiently exceed the true list length, which only makes the
        // bound slightly conservative.
        // ORDER: optimistic capacity reservation; only the counter itself is ordered.
        if slot.len.fetch_add(1, Ordering::AcqRel) >= self.per_class_capacity {
            slot.len.fetch_sub(1, Ordering::AcqRel); // ORDER: undoes the optimistic reservation above.
                                                     // SAFETY: `push` owns `block`; it came from `alloc_class` with
                                                     // this class (the free path's contract) and is freed once here.
            unsafe { dealloc_class(class, block) };
            return false;
        }
        slot.list.push(block as usize);
        true
    }

    /// Pops one recycled block of `class`, if any. Counts a cache hit or
    /// miss either way; the caller owns the returned memory (uninitialized
    /// bytes of the class layout).
    pub fn pop(&self, class: SizeClass) -> Option<*mut u8> {
        let slot = &self.classes[class.index()];
        match slot.list.pop() {
            Some(addr) => {
                slot.len.fetch_sub(1, Ordering::AcqRel); // ORDER: keeps the gauge ordered with the freelist pop it mirrors.
                self.hits.fetch_add(1, Ordering::Relaxed); // ORDER: cache statistics counter only.
                Some(addr as *mut u8)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed); // ORDER: cache statistics counter only.
                None
            }
        }
    }

    /// Allocations served from this cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed) // ORDER: cache statistics counter only.
    }

    /// Cacheable allocations that fell through to the allocator.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed) // ORDER: cache statistics counter only.
    }

    /// Bytes currently parked on this shard's freelists.
    pub fn cached_bytes(&self) -> u64 {
        self.classes
            .iter()
            .enumerate()
            .map(|(index, slot)| slot.len.load(Ordering::Acquire) * CLASS_SIZES[index] as u64) // ORDER: advisory byte gauge; pairs with the AcqRel len updates.
            .sum()
    }
}

impl ShardCache {
    /// Pops one recycled block *without* touching the hit/miss counters.
    /// Used by [`LocalBlockCache`] refills, which do their own (cheaper,
    /// non-atomic) accounting.
    pub(crate) fn pop_raw(&self, class: SizeClass) -> Option<*mut u8> {
        let slot = &self.classes[class.index()];
        let addr = slot.list.pop()?;
        slot.len.fetch_sub(1, Ordering::AcqRel); // ORDER: keeps the gauge ordered with the freelist pop it mirrors.
        Some(addr as *mut u8)
    }

    /// Folds a handle's locally-counted hits and misses into the shared
    /// counters (called by [`LocalBlockCache::flush_stats`]).
    pub(crate) fn add_counts(&self, hits: u64, misses: u64) {
        if hits > 0 {
            self.hits.fetch_add(hits, Ordering::Relaxed); // ORDER: cache statistics counter only.
        }
        if misses > 0 {
            self.misses.fetch_add(misses, Ordering::Relaxed); // ORDER: cache statistics counter only.
        }
    }
}

impl Drop for ShardCache {
    fn drop(&mut self) {
        // Drain every freelist back to the allocator: a domain drop leaks
        // nothing.
        for (index, slot) in self.classes.iter().enumerate() {
            let class = SizeClass(index as u8);
            while let Some(addr) = slot.list.pop() {
                // SAFETY: every parked address came from `alloc_class` with
                // this class and is popped (hence freed) exactly once.
                unsafe { dealloc_class(class, addr as *mut u8) };
            }
        }
    }
}

/// Blocks a handle's magazine holds per size class before spilling to the
/// shard. Sized to absorb a whole default-`cleanup_freq` (30) burst of frees,
/// so the steady-state retire→free→alloc cycle never leaves the magazine.
const LOCAL_MAGAZINE_CAP: usize = 32;

/// One handle's non-atomic stash of recycled blocks of a single class.
struct Magazine {
    blocks: [*mut u8; LOCAL_MAGAZINE_CAP],
    len: usize,
}

impl Magazine {
    const fn new() -> Self {
        Self {
            blocks: [core::ptr::null_mut(); LOCAL_MAGAZINE_CAP],
            len: 0,
        }
    }
}

impl core::fmt::Debug for Magazine {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Magazine").field("len", &self.len).finish()
    }
}

/// The per-handle front end of a [`ShardCache`]: a bounded, **non-atomic**
/// magazine per size class, in the style of a malloc thread cache.
///
/// The hot retire→free→alloc cycle is owner-thread-only, so it needs no
/// synchronization at all: a cleanup pass parks freed block memory here with
/// plain stores, and the next [`Handle::alloc`](crate::Handle::alloc) of a
/// matching class pops it back with plain loads. Only when a magazine fills
/// (spill half) or empties (refill half) does the handle touch the shared
/// per-shard freelist — so the shard's versioned-CAS cost is amortized over
/// `LOCAL_MAGAZINE_CAP / 2` operations, and cross-thread recycling still
/// works through the shard. Hits and misses are counted locally and folded
/// into the shard's shared counters at every cleanup pass and at handle
/// teardown ([`SmrStats`] lags by at most one magazine's traffic).
///
/// Owned by each scheme handle; reached through
/// [`RawHandle::block_caches`](crate::RawHandle::block_caches).
#[derive(Debug)]
pub struct LocalBlockCache {
    mags: [Magazine; CLASS_SIZES.len()],
    hits: u64,
    misses: u64,
}

// SAFETY: the magazine holds exclusively-owned raw block memory (payloads
// already dropped); moving the owning handle to another thread moves that
// ownership with it.
unsafe impl Send for LocalBlockCache {}

impl Default for LocalBlockCache {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalBlockCache {
    /// An empty magazine set.
    pub const fn new() -> Self {
        Self {
            mags: [
                Magazine::new(),
                Magazine::new(),
                Magazine::new(),
                Magazine::new(),
                Magazine::new(),
            ],
            hits: 0,
            misses: 0,
        }
    }

    /// Pops a recycled block of `class`: magazine first, then a half-magazine
    /// refill from `backing`. Returns `None` (a counted miss) when both are
    /// empty — the caller goes to the allocator.
    pub fn pop(&mut self, class: SizeClass, backing: Option<&ShardCache>) -> Option<*mut u8> {
        let mag = &mut self.mags[class.index()];
        if mag.len == 0 {
            if let Some(shard) = backing {
                while mag.len < LOCAL_MAGAZINE_CAP / 2 {
                    match shard.pop_raw(class) {
                        Some(block) => {
                            mag.blocks[mag.len] = block;
                            mag.len += 1;
                        }
                        None => break,
                    }
                }
            }
        }
        if mag.len > 0 {
            mag.len -= 1;
            self.hits += 1;
            Some(mag.blocks[mag.len])
        } else {
            self.misses += 1;
            None
        }
    }

    /// Parks one freed block (payload already dropped) for reuse. A full
    /// magazine spills its upper half to `backing` first (whose own capacity
    /// bound sends overflow to the allocator); with no backing the block goes
    /// straight back to the allocator.
    ///
    /// # Safety
    ///
    /// `block` must come from `alloc_class` (directly or recycled) with the
    /// same `class`, exclusively owned, payload already dropped.
    pub unsafe fn push(&mut self, class: SizeClass, block: *mut u8, backing: Option<&ShardCache>) {
        let mag = &mut self.mags[class.index()];
        if mag.len == LOCAL_MAGAZINE_CAP {
            match backing {
                Some(shard) => {
                    for spilled in &mag.blocks[LOCAL_MAGAZINE_CAP / 2..] {
                        // SAFETY: every parked block satisfies the push
                        // contract (forwarded from our own) and leaves the
                        // magazine exactly once.
                        unsafe { shard.push(class, *spilled) };
                    }
                    mag.len = LOCAL_MAGAZINE_CAP / 2;
                }
                None => {
                    // SAFETY: forwarded contract.
                    unsafe { dealloc_class(class, block) };
                    return;
                }
            }
        }
        mag.blocks[mag.len] = block;
        mag.len += 1;
    }

    /// Folds the locally-counted hits and misses into `backing`'s shared
    /// counters (so [`SmrStats`] sees them).
    pub fn flush_stats(&mut self, backing: &ShardCache) {
        backing.add_counts(self.hits, self.misses);
        self.hits = 0;
        self.misses = 0;
    }

    /// Hands every parked block to `backing` (or the allocator) and flushes
    /// the counters: handle teardown.
    pub fn drain(&mut self, backing: Option<&ShardCache>) {
        for (index, mag) in self.mags.iter_mut().enumerate() {
            let class = SizeClass(index as u8);
            while mag.len > 0 {
                mag.len -= 1;
                let block = mag.blocks[mag.len];
                match backing {
                    Some(shard) => {
                        // SAFETY: every parked block came from `alloc_class`
                        // with this class and leaves the magazine exactly
                        // once.
                        unsafe { shard.push(class, block) };
                    }
                    // SAFETY: as above — freed exactly once here.
                    None => unsafe { dealloc_class(class, block) },
                }
            }
        }
        if let Some(shard) = backing {
            self.flush_stats(shard);
        }
    }
}

impl Drop for LocalBlockCache {
    fn drop(&mut self) {
        // Safety net for handles that drop without an explicit drain (the
        // scheme handles drain into their shard first, leaving this empty).
        self.drain(None);
    }
}

/// All shard caches of one domain (empty when the cache is disabled).
#[derive(Debug)]
pub struct BlockCaches {
    shards: Box<[ShardCache]>,
}

impl BlockCaches {
    /// Builds the per-shard caches for a registry of `shard_count` shards, or
    /// no caches at all when `config` disables the layer.
    pub fn new(config: &BlockCacheConfig, shard_count: usize) -> Self {
        let shards = if config.enabled && config.per_class_capacity > 0 {
            (0..shard_count)
                .map(|_| ShardCache::new(config.per_class_capacity))
                .collect()
        } else {
            Box::default()
        };
        Self { shards }
    }

    /// The cache of registry shard `shard`, or `None` when the layer is
    /// disabled.
    #[inline]
    pub fn shard(&self, shard: usize) -> Option<&ShardCache> {
        self.shards.get(shard)
    }

    /// Whether the layer is active for this domain.
    pub fn enabled(&self) -> bool {
        !self.shards.is_empty()
    }

    /// Folds the cache counters of every shard into a stats snapshot.
    pub fn merge_into(&self, stats: &mut SmrStats) {
        for shard in self.shards.iter() {
            stats.cache_hits += shard.hits();
            stats.cache_misses += shard.misses();
            stats.cached_bytes += shard.cached_bytes();
        }
    }
}

/// Configuration of the per-shard block cache, set through
/// [`DomainConfig::block_cache`](crate::DomainConfig::block_cache).
///
/// The default is *enabled* with a capacity of 64 blocks per (shard, class)
/// pair, unless the `WFE_BLOCK_CACHE` environment variable is `0`/`off`/
/// `false` — the switch CI uses to run the whole suite down the uncached
/// path.
///
/// ```
/// use wfe_reclaim::{BlockCacheConfig, DomainConfig, Handle, He, Reclaimer};
///
/// // Pin the cache on with a small bound, independent of the environment.
/// let domain = He::with_config(DomainConfig {
///     block_cache: BlockCacheConfig {
///         enabled: true,
///         per_class_capacity: 8,
///     },
///     ..DomainConfig::with_max_threads(4)
/// });
/// let mut handle = domain.register();
/// let node = handle.alloc(1u64);
/// // SAFETY: never published, freed exactly once.
/// unsafe { wfe_reclaim::Linked::dealloc(node) };
///
/// // Or switch the layer off entirely via the builder.
/// let config = DomainConfig::builder().block_cache_enabled(false).build();
/// assert!(!config.block_cache.enabled);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockCacheConfig {
    /// Whether freed blocks are recycled at all.
    pub enabled: bool,
    /// Maximum blocks parked per (shard, size class); overflow goes to the
    /// allocator. `0` disables the layer like `enabled: false`.
    pub per_class_capacity: usize,
}

impl Default for BlockCacheConfig {
    fn default() -> Self {
        let enabled = !matches!(
            std::env::var("WFE_BLOCK_CACHE").as_deref(),
            Ok("0") | Ok("off") | Ok("false")
        );
        Self {
            enabled,
            per_class_capacity: 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_of_picks_smallest_fit() {
        assert_eq!(SizeClass::of(1, 8), Some(SizeClass(0)));
        assert_eq!(SizeClass::of(64, 16), Some(SizeClass(0)));
        assert_eq!(SizeClass::of(65, 8), Some(SizeClass(1)));
        assert_eq!(SizeClass::of(1024, 8), Some(SizeClass(4)));
        assert_eq!(SizeClass::of(1025, 8), None, "too large for any class");
        assert_eq!(SizeClass::of(8, 32), None, "over-aligned");
    }

    #[test]
    fn class_layout_matches_size_and_align() {
        for (index, &size) in CLASS_SIZES.iter().enumerate() {
            let class = SizeClass(index as u8);
            assert_eq!(class.size(), size);
            assert_eq!(class.layout().size(), size);
            assert_eq!(class.layout().align(), CLASS_ALIGN);
        }
    }

    #[test]
    fn push_pop_recycles_the_same_block() {
        let cache = ShardCache::new(4);
        let class = SizeClass::of(64, 8).unwrap();
        let block = alloc_class(class);
        // SAFETY: freshly allocated with this class, pushed exactly once.
        let pushed = unsafe { cache.push(class, block) };
        assert!(pushed, "below capacity: cached");
        assert_eq!(cache.cached_bytes(), 64);
        let popped = cache.pop(class).expect("one block parked");
        assert_eq!(popped, block, "the parked block comes back");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.cached_bytes(), 0);
        assert!(cache.pop(class).is_none());
        assert_eq!(cache.misses(), 1);
        // SAFETY: popped once, freed once.
        unsafe { dealloc_class(class, popped) };
    }

    #[test]
    fn capacity_overflow_goes_to_the_allocator() {
        let cache = ShardCache::new(2);
        let class = SizeClass::of(100, 8).unwrap();
        // SAFETY: each block is freshly allocated with the pushed class and
        // pushed exactly once.
        unsafe {
            assert!(cache.push(class, alloc_class(class)));
            assert!(cache.push(class, alloc_class(class)));
            // Third push overflows: dealloc'd immediately, not parked.
            assert!(!cache.push(class, alloc_class(class)));
            assert_eq!(cache.cached_bytes(), 2 * 128);
            // Other classes have their own bound.
            let other = SizeClass::of(1000, 8).unwrap();
            assert!(cache.push(other, alloc_class(other)));
        }
        // Drop drains the three parked blocks.
    }

    #[test]
    fn disabled_config_builds_no_shards() {
        let config = BlockCacheConfig {
            enabled: false,
            per_class_capacity: 64,
        };
        let caches = BlockCaches::new(&config, 4);
        assert!(!caches.enabled());
        assert!(caches.shard(0).is_none());

        let zero_cap = BlockCacheConfig {
            enabled: true,
            per_class_capacity: 0,
        };
        assert!(!BlockCaches::new(&zero_cap, 4).enabled());
    }

    #[test]
    fn enabled_config_builds_one_cache_per_shard() {
        let config = BlockCacheConfig {
            enabled: true,
            per_class_capacity: 4,
        };
        let caches = BlockCaches::new(&config, 3);
        assert!(caches.enabled());
        assert!(caches.shard(0).is_some());
        assert!(caches.shard(2).is_some());
        assert!(caches.shard(3).is_none(), "out of the shard range");

        let mut stats = SmrStats::default();
        let class = SizeClass::of(64, 8).unwrap();
        // SAFETY: freshly allocated with this class, pushed exactly once.
        unsafe { caches.shard(1).unwrap().push(class, alloc_class(class)) };
        if let Some(ptr) = caches.shard(1).unwrap().pop(class) {
            // SAFETY: popped once, freed once.
            unsafe { dealloc_class(class, ptr) };
        }
        caches.shard(2).unwrap().pop(class);
        caches.merge_into(&mut stats);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cached_bytes, 0);
    }

    #[test]
    fn magazine_recycles_owner_thread_blocks_without_the_shard() {
        let mut local = LocalBlockCache::new();
        let class = SizeClass::of(64, 8).unwrap();
        assert!(local.pop(class, None).is_none(), "starts empty: miss");
        let block = alloc_class(class);
        // SAFETY: freshly allocated class block, no payload to drop.
        unsafe { local.push(class, block, None) };
        assert_eq!(local.pop(class, None), Some(block), "parked block returns");
        // SAFETY: popped once, freed once.
        unsafe { dealloc_class(class, block) };
        assert_eq!((local.hits, local.misses), (1, 1));
    }

    #[test]
    fn magazine_spills_to_and_refills_from_the_shard() {
        let shard = ShardCache::new(LOCAL_MAGAZINE_CAP);
        let mut local = LocalBlockCache::new();
        let class = SizeClass::of(64, 8).unwrap();
        // Overfill the magazine by one: the push spills half to the shard.
        for _ in 0..=LOCAL_MAGAZINE_CAP {
            // SAFETY: fresh class blocks, no payload to drop.
            unsafe { local.push(class, alloc_class(class), Some(&shard)) };
        }
        assert_eq!(
            shard.cached_bytes(),
            (LOCAL_MAGAZINE_CAP / 2 * 64) as u64,
            "half a magazine spilled"
        );
        // Drain the magazine dry, then keep popping: refills come from the
        // shard without touching its atomic hit counter.
        let mut recycled = 0;
        while let Some(block) = local.pop(class, Some(&shard)) {
            recycled += 1;
            // SAFETY: each popped block is exclusively owned, freed once.
            unsafe { dealloc_class(class, block) };
        }
        assert_eq!(recycled, LOCAL_MAGAZINE_CAP + 1, "every block came back");
        assert_eq!(shard.hits(), 0, "magazine traffic is counted locally");
        local.flush_stats(&shard);
        assert_eq!(shard.hits(), recycled as u64);
        assert_eq!(shard.misses(), 1, "the final empty pop");
    }

    #[test]
    fn magazine_drain_routes_through_the_shard_capacity_bound() {
        let shard = ShardCache::new(2);
        let mut local = LocalBlockCache::new();
        let class = SizeClass::of(64, 8).unwrap();
        for _ in 0..4 {
            // SAFETY: fresh class blocks, no payload to drop.
            unsafe { local.push(class, alloc_class(class), Some(&shard)) };
        }
        local.drain(Some(&shard));
        assert_eq!(
            shard.cached_bytes(),
            2 * 64,
            "two parked, two overflowed to the allocator"
        );
        // The shard's Drop frees the two parked blocks.
    }

    #[test]
    fn concurrent_push_pop_conserves_blocks() {
        const THREADS: usize = 4;
        const OPS: usize = 300;
        let cache = std::sync::Arc::new(ShardCache::new(16));
        let class = SizeClass::of(200, 8).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let cache = std::sync::Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..OPS {
                        if i % 2 == 0 {
                            // SAFETY: freshly allocated with this class,
                            // pushed exactly once.
                            unsafe { cache.push(class, alloc_class(class)) };
                        } else if let Some(ptr) = cache.pop(class) {
                            // SAFETY: a popped block is exclusively owned.
                            unsafe { dealloc_class(class, ptr) };
                        }
                    }
                });
            }
        });
        // Whatever stayed parked is drained by Drop; the dedicated leak test
        // (tests/cache_leak.rs) asserts the debug alloc balance reaches zero.
    }
}
