//! A lock-free Treiber stack with type-stable, recycled nodes — the shared
//! substrate of [`crate::retired::OrphanStack`] (parked retired batches) and
//! [`crate::pool::HandlePool`] (parked scheme handles).
//!
//! Both ends are a versioned wide-CAS (`AtomicPair`), so the stack is
//! lock-free and ABA-safe. Nodes are *type-stable*: once allocated they are
//! recycled through a spare freelist and only deallocated when the stack
//! itself is dropped, so a racing `pop` may always dereference a node it
//! read from `head` (the versioned CAS then rejects stale observations).

use core::marker::PhantomData;
use wfe_sync::atomic::{AtomicUsize, Ordering};

use wfe_atomics::AtomicPair;

/// One node: the parked payload plus the intrusive `next` link.
struct Node<T> {
    payload: Option<T>,
    /// `*mut Node<T>` as `usize`; atomic because a slow `pop` may read it
    /// while the node is concurrently recycled for a new `push`.
    next: AtomicUsize,
}

/// A lock-free stack of `T` with type-stable nodes.
///
/// Exported (hidden) so the deterministic model suite can drive the real
/// implementation — and a de-versioned mutant of it — through exact
/// interleavings; it is not part of the supported API.
pub struct TypeStableStack<T> {
    /// `(node ptr, version)` — the version counter makes the CAS ABA-safe.
    head: AtomicPair,
    /// Freelist of spare nodes, same encoding. Keeps nodes type-stable.
    spares: AtomicPair,
    _owns: PhantomData<Box<Node<T>>>,
}

impl<T> core::fmt::Debug for TypeStableStack<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("TypeStableStack").finish_non_exhaustive()
    }
}

// SAFETY: the raw node pointers are owned by the stack; payloads are handed
// across threads only through the versioned-CAS head, so `T: Send` is the
// exact requirement.
unsafe impl<T: Send> Send for TypeStableStack<T> {}
// SAFETY: all shared state is accessed through atomics and the versioned
// CAS; `T: Send` is enough because payloads move, they are never shared.
unsafe impl<T: Send> Sync for TypeStableStack<T> {}

impl<T> TypeStableStack<T> {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Self {
            head: AtomicPair::new(0, 0),
            spares: AtomicPair::new(0, 0),
            _owns: PhantomData,
        }
    }

    /// Pops one node off `list` (either the payload stack or the spare
    /// freelist). The versioned CAS makes this ABA-safe even though nodes
    /// are recycled, and the type-stable allocation makes the racy `next`
    /// read sound.
    fn pop_node(list: &AtomicPair) -> Option<*mut Node<T>> {
        loop {
            let (head, version) = list.load();
            if head == 0 {
                return None;
            }
            let node = head as *mut Node<T>;
            // SAFETY: nodes are never deallocated while the stack lives, so
            // the read is sound even if `node` was concurrently popped; the
            // versioned CAS below fails in that case and we retry.
            let next = unsafe { (*node).next.load(Ordering::Relaxed) }; // ORDER: the versioned WCAS below carries all ordering; a stale read just retries.
            if list
                .compare_exchange((head, version), (next as u64, version + 1))
                .is_ok()
            {
                return Some(node);
            }
        }
    }

    /// Pushes `node` onto `list`.
    fn push_node(list: &AtomicPair, node: *mut Node<T>) {
        loop {
            let (head, version) = list.load();
            // SAFETY: type-stable nodes are never deallocated while the stack lives;
            // the store is atomic, so racing readers see either value.
            unsafe { (*node).next.store(head as usize, Ordering::Relaxed) }; // ORDER: the node is unpublished until the versioned WCAS below succeeds and orders it.
            if list
                .compare_exchange((head, version), (node as u64, version + 1))
                .is_ok()
            {
                return;
            }
        }
    }

    /// Parks `payload` on the stack, recycling a spare node if one exists.
    pub fn push(&self, payload: T) {
        let node = Self::pop_node(&self.spares).unwrap_or_else(|| {
            Box::into_raw(Box::new(Node {
                payload: None,
                next: AtomicUsize::new(0),
            }))
        });
        // SAFETY: the node was just popped off a list (or freshly allocated), so
        // this thread has exclusive access to its payload.
        unsafe { (*node).payload = Some(payload) };
        Self::push_node(&self.head, node);
    }

    /// Pops one parked payload, if any; the emptied node goes back to the
    /// spare freelist.
    pub fn pop(&self) -> Option<T> {
        let node = Self::pop_node(&self.head)?;
        // SAFETY: the pop above transferred exclusive ownership of the node (and
        // its payload) to this thread.
        let payload = unsafe { (*node).payload.take() };
        Self::push_node(&self.spares, node);
        debug_assert!(payload.is_some(), "parked node always carries a payload");
        payload
    }
}

impl<T> Default for TypeStableStack<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for TypeStableStack<T> {
    fn drop(&mut self) {
        // Deallocate the type-stable nodes of both lists; dropping a node
        // drops any payload still parked in it.
        for list in [&self.head, &self.spares] {
            while let Some(node) = Self::pop_node(list) {
                // SAFETY: `Drop` has exclusive access; every node was allocated by this
                // stack and is freed exactly once.
                drop(unsafe { Box::from_raw(node) });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wfe_sync::atomic::AtomicUsize as SyncAtomicUsize;
    use wfe_sync::atomic::Ordering::SeqCst;

    #[test]
    fn push_pop_is_lifo_and_recycles_nodes() {
        let stack = TypeStableStack::new();
        assert_eq!(stack.pop(), None);
        stack.push(1u64);
        stack.push(2u64);
        assert_eq!(stack.pop(), Some(2));
        stack.push(3u64); // recycles the spare node of the pop above
        assert_eq!(stack.pop(), Some(3));
        assert_eq!(stack.pop(), Some(1));
        assert_eq!(stack.pop(), None);
    }

    #[test]
    fn dropping_the_stack_drops_parked_payloads() {
        struct Canary(Arc<SyncAtomicUsize>);
        impl Drop for Canary {
            fn drop(&mut self) {
                self.0.fetch_add(1, SeqCst);
            }
        }
        let drops = Arc::new(SyncAtomicUsize::new(0));
        {
            let stack = TypeStableStack::new();
            stack.push(Canary(Arc::clone(&drops)));
            stack.push(Canary(Arc::clone(&drops)));
            drop(stack.pop());
            assert_eq!(drops.load(SeqCst), 1);
        }
        assert_eq!(drops.load(SeqCst), 2, "parked payload dropped with stack");
    }

    #[test]
    fn concurrent_push_pop_conserves_payloads() {
        const THREADS: usize = 4;
        const ROUNDS: usize = 2_000;
        let stack = Arc::new(TypeStableStack::new());
        let popped = Arc::new(SyncAtomicUsize::new(0));
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let stack = Arc::clone(&stack);
                let popped = Arc::clone(&popped);
                scope.spawn(move || {
                    for i in 0..ROUNDS {
                        stack.push(t * ROUNDS + i);
                        if i % 2 == 0 && stack.pop().is_some() {
                            popped.fetch_add(1, SeqCst);
                        }
                    }
                });
            }
        });
        let mut rest = 0;
        while stack.pop().is_some() {
            rest += 1;
        }
        assert_eq!(popped.load(SeqCst) + rest, THREADS * ROUNDS);
    }
}
