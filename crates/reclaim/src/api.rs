//! The common reclamation API.
//!
//! The paper keeps the Hazard-Pointers-compatible interface of Hazard Eras:
//!
//! * `get_protected(ptr, index [, parent])` → [`RawHandle::protect_raw`] /
//!   [`Handle::protect`]
//! * `retire(ptr)` → [`RawHandle::retire_raw`] / [`Handle::retire`]
//! * `clear()` → [`RawHandle::clear`]
//! * `alloc_block(size)` → [`RawHandle::pre_alloc`] + [`Handle::alloc`]
//!
//! plus `begin_op`/`end_op` brackets that epoch- and interval-based schemes
//! (EBR, 2GEIBR) need, exactly like the benchmark harness of Wen et al. that
//! the paper's evaluation reuses. Data structures are written once against
//! this API and instantiated with any scheme.

use std::sync::Arc;
use wfe_sync::atomic::AtomicUsize;

use crate::block::{BlockHeader, Linked};
use crate::cache::{BlockCacheConfig, LocalBlockCache, ShardCache};
use crate::guard::{Guard, Shield, ShieldError, ShieldSlots};
use crate::ptr::{tag, Atomic};
use crate::registry::ThreadRegistry;
use crate::stats::SmrStats;

/// Progress guarantee provided by a scheme's *reclamation operations*
/// (the data-structure operations on top have their own guarantees).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Progress {
    /// Every reclamation operation completes in a bounded number of steps.
    WaitFree,
    /// At least one thread always makes progress.
    LockFree,
    /// Reclamation can be delayed indefinitely by stalled threads
    /// (unbounded memory usage).
    Blocking,
    /// No reclamation at all (the "Leak Memory" baseline).
    None,
}

/// Tuning knobs shared by every scheme; field names follow the paper.
///
/// One configuration describes one *domain* (registry sharding included),
/// not just the paper's per-scheme constants. Construct it with
/// [`DomainConfig::builder`] (preferred), [`DomainConfig::with_max_threads`],
/// or a struct literal over [`Default`]:
///
/// ```
/// use wfe_reclaim::{DomainConfig, He, Reclaimer};
///
/// let config = DomainConfig::builder()
///     .max_threads(64)
///     .shards(4)
///     .build();
/// let domain = He::with_config(config);
/// assert_eq!(domain.registry().capacity(), 64);
/// assert_eq!(domain.registry().shard_count(), 4);
/// ```
///
/// # Sharding knobs
///
/// The [`shards`](DomainConfig::shards) field controls how the slot registry
/// is partitioned; cleanup scans skip wholly-idle shards, so pinning a shard
/// count close to the number of active sockets or executor workers keeps
/// both registration and scanning off shared cache lines:
///
/// ```
/// use wfe_reclaim::{DomainConfig, He, Reclaimer};
///
/// // 64 slots split into 4 shards (0 would auto-size from the host).
/// let domain = He::with_config(DomainConfig::builder().max_threads(64).shards(4).build());
/// assert_eq!(domain.registry().shard_count(), 4);
///
/// // No handle registered yet: every shard is idle and scans skip them all.
/// assert_eq!(domain.registry().occupied_shards(), 0);
/// let handle = domain.register();
/// assert_eq!(domain.registry().occupied_shards(), 1);
/// drop(handle);
/// ```
#[derive(Debug, Clone)]
pub struct DomainConfig {
    /// Maximum number of simultaneously registered threads (`max_threads`).
    pub max_threads: usize,
    /// Number of reservation indices available to the application per thread
    /// (`max_hes` for era-based schemes, hazard-pointer count for HP).
    pub slots_per_thread: usize,
    /// Increment the global era/epoch every `era_freq` allocations (ν in §5).
    pub era_freq: usize,
    /// Scan the retired list every `cleanup_freq` retirements.
    pub cleanup_freq: usize,
    /// Fast-path attempts before WFE switches to the slow path
    /// (`max_attempts`; the paper uses 16). Ignored by other schemes.
    pub fast_path_attempts: usize,
    /// Number of shards the thread-slot registry is split into; `0` (the
    /// default) picks the host's available parallelism. Clamped to
    /// `1..=max_threads`. More shards mean less acquire/release contention
    /// between sockets and smaller scan windows (idle shards are skipped);
    /// see [`crate::registry::ThreadRegistry`].
    pub shards: usize,
    /// The size-class block cache (per-handle magazines over per-shard
    /// freelists) that keeps retire→free→alloc cycles out of the global
    /// allocator; see [`BlockCacheConfig`] for the
    /// defaults and the `WFE_BLOCK_CACHE` environment switch.
    ///
    /// ```
    /// use wfe_reclaim::{BlockCacheConfig, DomainConfig, Handle, He, RawHandle, Reclaimer};
    ///
    /// let domain = He::with_config(DomainConfig {
    ///     block_cache: BlockCacheConfig {
    ///         enabled: true,
    ///         per_class_capacity: 32,
    ///     },
    ///     cleanup_freq: 1,
    ///     ..DomainConfig::with_max_threads(2)
    /// });
    /// let mut handle = domain.register();
    /// // retire → scan → cache: the freed block's memory is parked on the
    /// // handle's magazine ...
    /// let node = handle.alloc(7u64);
    /// // SAFETY: never published; retired exactly once.
    /// unsafe { handle.retire(node) };
    /// handle.force_cleanup();
    /// // ... and the next allocation of the class recycles it.
    /// let again = handle.alloc(8u64);
    /// // SAFETY: as above.
    /// unsafe { handle.retire(again) };
    /// handle.force_cleanup(); // folds the magazine's hit tally into the stats
    /// assert_eq!(domain.stats().cache_hits, 1);
    /// drop(handle); // drains the magazine into its home shard ...
    /// assert!(domain.stats().cached_bytes > 0); // ... where the block parks
    /// ```
    pub block_cache: BlockCacheConfig,
}

impl Default for DomainConfig {
    fn default() -> Self {
        Self {
            max_threads: 128,
            slots_per_thread: 8,
            era_freq: 150,
            cleanup_freq: 30,
            fast_path_attempts: 16,
            shards: 0,
            block_cache: BlockCacheConfig::default(),
        }
    }
}

impl DomainConfig {
    /// Starts a [`DomainConfigBuilder`] seeded with the defaults.
    pub fn builder() -> DomainConfigBuilder {
        DomainConfigBuilder {
            config: Self::default(),
        }
    }

    /// Convenience constructor used throughout the tests and benches.
    pub fn with_max_threads(max_threads: usize) -> Self {
        Self {
            max_threads,
            ..Self::default()
        }
    }

    /// Builds the sharded slot registry described by this configuration.
    pub(crate) fn build_registry(&self) -> ThreadRegistry {
        ThreadRegistry::with_shards(self.max_threads, self.shards)
    }
}

/// Builder for [`DomainConfig`], started with [`DomainConfig::builder`].
///
/// Every setter has the same name and meaning as the corresponding
/// [`DomainConfig`] field; unset knobs keep their paper defaults.
///
/// ```
/// use wfe_reclaim::DomainConfig;
///
/// let config = DomainConfig::builder()
///     .max_threads(64)
///     .slots_per_thread(4)
///     .era_freq(100)
///     .cleanup_freq(64)
///     .fast_path_attempts(16)
///     .shards(4)
///     .build();
/// assert_eq!(config.max_threads, 64);
/// assert_eq!(config.slots_per_thread, 4);
/// assert_eq!(config.shards, 4);
/// ```
#[derive(Debug, Clone)]
pub struct DomainConfigBuilder {
    config: DomainConfig,
}

impl DomainConfigBuilder {
    /// Maximum number of simultaneously registered threads.
    pub fn max_threads(mut self, max_threads: usize) -> Self {
        self.config.max_threads = max_threads;
        self
    }

    /// Reservation slots available to the application per thread.
    pub fn slots_per_thread(mut self, slots_per_thread: usize) -> Self {
        self.config.slots_per_thread = slots_per_thread;
        self
    }

    /// Advance the global era/epoch every `era_freq` allocations (ν in §5).
    pub fn era_freq(mut self, era_freq: usize) -> Self {
        self.config.era_freq = era_freq;
        self
    }

    /// Scan the retired list every `cleanup_freq` retirements.
    pub fn cleanup_freq(mut self, cleanup_freq: usize) -> Self {
        self.config.cleanup_freq = cleanup_freq;
        self
    }

    /// Fast-path attempts before WFE switches to the slow path.
    pub fn fast_path_attempts(mut self, fast_path_attempts: usize) -> Self {
        self.config.fast_path_attempts = fast_path_attempts;
        self
    }

    /// Number of registry shards (`0` auto-sizes from the host).
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Full per-shard block-cache configuration.
    pub fn block_cache(mut self, block_cache: BlockCacheConfig) -> Self {
        self.config.block_cache = block_cache;
        self
    }

    /// Switches the per-shard block cache on or off without touching the
    /// rest of its configuration.
    pub fn block_cache_enabled(mut self, enabled: bool) -> Self {
        self.config.block_cache.enabled = enabled;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> DomainConfig {
        self.config
    }
}

/// Historical name of [`DomainConfig`], kept so struct-literal construction
/// (`ReclaimerConfig { .. }`) in existing code keeps compiling. New code
/// should use [`DomainConfig::builder`].
pub type ReclaimerConfig = DomainConfig;

/// Uniform out-of-range reservation-slot check every scheme's `protect_raw`
/// performs (debug builds only — the raw SPI stays zero-cost in release).
///
/// Before this check, a bad index was scheme-dependent UB-adjacent behaviour:
/// era schemes would stomp a neighbouring thread's padded row, HP would
/// publish the hazard in the wrong slot and silently protect nothing.
#[inline]
#[track_caller]
pub fn debug_assert_slot_index(index: usize, slots: usize) {
    debug_assert!(
        index < slots,
        "reservation slot index {index} out of range: this handle has {slots} \
         application slots (a stray index would corrupt an unrelated reservation)"
    );
}

/// The type-erased, per-thread reclamation interface each scheme implements.
///
/// This is the **SPI for scheme implementors** — the Rust rendering of the
/// paper's Hazard-Eras-compatible C interface. Application code should use
/// the safe layer instead: [`Handle::enter`] for operation brackets,
/// [`Handle::shield`]/[`Shield`] for reservations and
/// [`Protected`](crate::Protected) for the pointers they return; the raw
/// methods below remain public for new scheme implementations and for
/// harnesses that measure the uncooked operations (the `guard_overhead`
/// bench group).
///
/// # Safety
///
/// Implementations must guarantee that a pointer returned by
/// [`protect_raw`](Self::protect_raw) (with its tag bits masked by `mask`)
/// remains valid — i.e. is not freed — until the same slot `index` is
/// overwritten by a later `protect_raw`, or [`clear`](Self::clear) /
/// [`end_op`](Self::end_op) is called, provided the program obeys the usual
/// SMR contract (blocks are retired only after becoming unreachable, and only
/// once). `protect_raw` must call [`debug_assert_slot_index`] (or an
/// equivalent check) so out-of-range indices fail uniformly in debug builds.
pub unsafe trait RawHandle {
    /// Dense index of this thread in `0..max_threads`.
    fn thread_id(&self) -> usize;

    /// Number of reservation slots available to the application.
    fn slots(&self) -> usize;

    /// The shield lease table of this handle, shared with every outstanding
    /// [`Shield`]. Implementations create one per registration (sized by
    /// [`slots`](Self::slots)) and hand back the same `Arc` for the handle's
    /// whole lifetime — its identity is how [`Shield::protect`] recognises
    /// its owning handle.
    fn shield_slots(&self) -> &Arc<ShieldSlots>;

    /// Marks the beginning of a data-structure operation.
    fn begin_op(&mut self);

    /// Marks the end of a data-structure operation; drops all protections.
    fn end_op(&mut self);

    /// Hazard-Eras `get_protected`: reads the pointer stored at `src` and
    /// publishes whatever reservation the scheme needs so the pointee cannot
    /// be freed. Returns the raw (possibly tagged) value read from `src`;
    /// the *protected* object is `value & mask`.
    ///
    /// `parent` is the block containing `src` (null for data-structure roots)
    /// — only WFE uses it, other schemes ignore it.
    fn protect_raw(
        &mut self,
        src: &AtomicUsize,
        index: usize,
        parent: *mut BlockHeader,
        mask: usize,
    ) -> usize;

    /// Hazard-Eras `retire`: hands an unreachable block to the scheme for
    /// eventual reclamation.
    ///
    /// # Safety
    ///
    /// `block` must have been allocated through [`Handle::alloc`] on the same
    /// domain, must already be unreachable from the data structure (only
    /// in-flight readers may still hold it), and must be retired exactly once.
    unsafe fn retire_raw(&mut self, block: *mut BlockHeader);

    /// Hazard-Eras `clear`: resets every reservation made by this thread.
    fn clear(&mut self);

    /// Hazard-Eras `alloc_block` bookkeeping: advances the era clock if due
    /// and returns the era to stamp into the new block's `alloc_era`.
    fn pre_alloc(&mut self) -> u64;

    /// Forces a retired-list scan regardless of `cleanup_freq`. Used by tests
    /// and by handle teardown; not part of the paper API.
    fn force_cleanup(&mut self);

    /// The two cache tiers consulted by [`Handle::alloc`] before falling back
    /// to the allocator: this thread's private magazine and the block cache of
    /// its home registry shard. The default (`(None, None)`) opts a scheme out
    /// of caching entirely; schemes that wire the cache override this with the
    /// handle's magazine and the shard picked at registration time.
    fn block_caches(&mut self) -> (Option<&mut LocalBlockCache>, Option<&ShardCache>) {
        (None, None)
    }
}

/// Typed convenience layer over [`RawHandle`]; blanket-implemented.
///
/// Besides the paper-shaped `alloc`/`protect`/`retire`, this is where the
/// safe guard API hangs off a handle: [`enter`](Self::enter) opens an
/// operation bracket, [`shield`](Self::shield) leases a reservation slot.
pub trait Handle: RawHandle {
    /// Opens an operation bracket (the paper's `begin_op`), returning the
    /// [`Guard`] through which shared pointers are read. Dropping the guard
    /// closes the bracket (`end_op`).
    ///
    /// The guard borrows the handle exclusively; lease the operation's
    /// [`Shield`]s *before* entering.
    fn enter(&mut self) -> Guard<'_, Self>
    where
        Self: Sized,
    {
        Guard::new(self)
    }

    /// Leases a reservation slot as an owned [`Shield`], or reports
    /// exhaustion as an error instead of silently stomping a neighbouring
    /// reservation.
    fn shield<T>(&self) -> Result<Shield<T, Self>, ShieldError>
    where
        Self: Sized,
    {
        Shield::lease(self)
    }

    /// Allocates a reclaimable block holding `value`
    /// (the paper's `alloc_block`), recycling a block of the matching size
    /// class from this thread's magazine (or its home-shard cache) when one
    /// is parked there.
    fn alloc<T>(&mut self, value: T) -> *mut Linked<T> {
        let era = self.pre_alloc();
        let (local, shard) = self.block_caches();
        Linked::alloc_in(value, era, local, shard)
    }

    /// Protects and returns the pointer stored in `src` (the paper's
    /// `get_protected`).
    ///
    /// The returned pointer keeps any tag bits found in `src`; the protected
    /// object is the untagged pointer. `parent` must be the block that
    /// physically contains `src`, or null when `src` is a data-structure
    /// root; it must itself be protected by the caller (that is the API
    /// convention §3.4 relies upon).
    fn protect<T>(
        &mut self,
        src: &Atomic<T>,
        index: usize,
        parent: *mut Linked<T>,
    ) -> *mut Linked<T> {
        self.protect_raw(
            src.as_raw_atomic(),
            index,
            Linked::as_header(parent),
            tag::ptr_mask::<T>(),
        ) as *mut Linked<T>
    }

    /// Retires an unreachable block (the paper's `retire`).
    ///
    /// # Safety
    ///
    /// Same contract as [`RawHandle::retire_raw`].
    unsafe fn retire<T>(&mut self, ptr: *mut Linked<T>) {
        debug_assert!(!ptr.is_null(), "cannot retire a null block");
        debug_assert_eq!(tag::tag_of(ptr), 0, "cannot retire a tagged pointer");
        // SAFETY: forwarded contract — same obligations as `retire_raw`.
        unsafe { self.retire_raw(Linked::as_header(ptr)) };
    }
}

impl<H: RawHandle + ?Sized> Handle for H {}

/// A reclamation scheme (a *domain* in SMR terminology).
///
/// One domain guards one or more data structures; threads participate by
/// [`register`](Self::register)ing a handle. Handles keep the domain alive
/// through an [`Arc`], so a domain is destroyed only after every handle and
/// every data structure using it has been dropped — at that point any block
/// still waiting on an orphan list is freed.
pub trait Reclaimer: Send + Sync + Sized + 'static {
    /// The per-thread handle type.
    type Handle: RawHandle + Send;

    /// Creates a domain with the given configuration.
    fn with_config(config: ReclaimerConfig) -> Arc<Self>;

    /// Creates a domain with [`ReclaimerConfig::default`].
    fn new_default() -> Arc<Self> {
        Self::with_config(ReclaimerConfig::default())
    }

    /// Registers the calling thread and returns its handle, or `None` when
    /// `max_threads` handles are already registered, so callers can degrade
    /// gracefully (shed the thread, queue the work) instead of panicking.
    ///
    /// ```
    /// use wfe_reclaim::{He, Reclaimer, ReclaimerConfig};
    ///
    /// let domain = He::with_config(ReclaimerConfig::with_max_threads(1));
    /// let first = domain.try_register().expect("one slot is available");
    /// assert!(domain.try_register().is_none(), "registry exhausted");
    /// drop(first);
    /// assert!(domain.try_register().is_some(), "slot recycled");
    /// ```
    fn try_register(self: &Arc<Self>) -> Option<Self::Handle>;

    /// Registers the calling thread and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if `max_threads` handles are already registered. Use
    /// [`try_register`](Self::try_register) to handle exhaustion without
    /// panicking.
    fn register(self: &Arc<Self>) -> Self::Handle {
        self.try_register().unwrap_or_else(|| {
            panic!(
                "thread registry exhausted: more than {} concurrent handles; \
                 raise ReclaimerConfig::max_threads",
                self.config().max_threads
            )
        })
    }

    /// Short scheme name as used in the paper's plots
    /// (`"WFE"`, `"HE"`, `"HP"`, `"EBR"`, `"2GEIBR"`, `"Leak"`).
    fn name() -> &'static str;

    /// Progress guarantee of the reclamation operations.
    fn progress() -> Progress;

    /// Snapshot of the reclamation counters.
    fn stats(&self) -> SmrStats;

    /// The configuration this domain was created with.
    fn config(&self) -> &ReclaimerConfig;

    /// The domain's sharded thread-slot registry (shard geometry and
    /// occupancy are observable for monitoring and benchmarks).
    fn registry(&self) -> &ThreadRegistry;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper_parameters() {
        let cfg = ReclaimerConfig::default();
        assert_eq!(cfg.era_freq, 150);
        assert_eq!(cfg.fast_path_attempts, 16);
        assert!(cfg.cleanup_freq >= 30);
        assert!(cfg.slots_per_thread >= 2);
    }

    #[test]
    fn with_max_threads_overrides_only_that_field() {
        let cfg = ReclaimerConfig::with_max_threads(4);
        assert_eq!(cfg.max_threads, 4);
        assert_eq!(cfg.era_freq, ReclaimerConfig::default().era_freq);
    }
}
