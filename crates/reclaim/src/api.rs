//! The common reclamation API.
//!
//! The paper keeps the Hazard-Pointers-compatible interface of Hazard Eras:
//!
//! * `get_protected(ptr, index [, parent])` → [`RawHandle::protect_raw`] /
//!   [`Handle::protect`]
//! * `retire(ptr)` → [`RawHandle::retire_raw`] / [`Handle::retire`]
//! * `clear()` → [`RawHandle::clear`]
//! * `alloc_block(size)` → [`RawHandle::pre_alloc`] + [`Handle::alloc`]
//!
//! plus `begin_op`/`end_op` brackets that epoch- and interval-based schemes
//! (EBR, 2GEIBR) need, exactly like the benchmark harness of Wen et al. that
//! the paper's evaluation reuses. Data structures are written once against
//! this API and instantiated with any scheme.

use core::sync::atomic::AtomicUsize;
use std::sync::Arc;

use crate::block::{BlockHeader, Linked};
use crate::ptr::{tag, Atomic};
use crate::registry::ThreadRegistry;
use crate::stats::SmrStats;

/// Progress guarantee provided by a scheme's *reclamation operations*
/// (the data-structure operations on top have their own guarantees).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Progress {
    /// Every reclamation operation completes in a bounded number of steps.
    WaitFree,
    /// At least one thread always makes progress.
    LockFree,
    /// Reclamation can be delayed indefinitely by stalled threads
    /// (unbounded memory usage).
    Blocking,
    /// No reclamation at all (the "Leak Memory" baseline).
    None,
}

/// Tuning knobs shared by every scheme; field names follow the paper.
#[derive(Debug, Clone)]
pub struct ReclaimerConfig {
    /// Maximum number of simultaneously registered threads (`max_threads`).
    pub max_threads: usize,
    /// Number of reservation indices available to the application per thread
    /// (`max_hes` for era-based schemes, hazard-pointer count for HP).
    pub slots_per_thread: usize,
    /// Increment the global era/epoch every `era_freq` allocations (ν in §5).
    pub era_freq: usize,
    /// Scan the retired list every `cleanup_freq` retirements.
    pub cleanup_freq: usize,
    /// Fast-path attempts before WFE switches to the slow path
    /// (`max_attempts`; the paper uses 16). Ignored by other schemes.
    pub fast_path_attempts: usize,
    /// Number of shards the thread-slot registry is split into; `0` (the
    /// default) picks the host's available parallelism. Clamped to
    /// `1..=max_threads`. More shards mean less acquire/release contention
    /// between sockets and smaller scan windows (idle shards are skipped);
    /// see [`crate::registry::ThreadRegistry`].
    pub shards: usize,
}

impl Default for ReclaimerConfig {
    fn default() -> Self {
        Self {
            max_threads: 128,
            slots_per_thread: 8,
            era_freq: 150,
            cleanup_freq: 30,
            fast_path_attempts: 16,
            shards: 0,
        }
    }
}

impl ReclaimerConfig {
    /// Convenience constructor used throughout the tests and benches.
    pub fn with_max_threads(max_threads: usize) -> Self {
        Self {
            max_threads,
            ..Self::default()
        }
    }

    /// Builds the sharded slot registry described by this configuration.
    pub(crate) fn build_registry(&self) -> ThreadRegistry {
        ThreadRegistry::with_shards(self.max_threads, self.shards)
    }
}

/// Alias of [`ReclaimerConfig`] emphasising that one configuration describes
/// one *domain* (registry sharding included), not just the paper's per-scheme
/// constants.
///
/// # Sharding knobs
///
/// The [`shards`](ReclaimerConfig::shards) field controls how the slot
/// registry is partitioned; cleanup scans skip wholly-idle shards, so pinning
/// a shard count close to the number of active sockets or executor workers
/// keeps both registration and scanning off shared cache lines:
///
/// ```
/// use wfe_reclaim::{DomainConfig, He, Reclaimer};
///
/// // 64 slots split into 4 shards (0 would auto-size from the host).
/// let config = DomainConfig {
///     shards: 4,
///     ..DomainConfig::with_max_threads(64)
/// };
/// let domain = He::with_config(config);
/// assert_eq!(domain.registry().shard_count(), 4);
/// assert_eq!(domain.registry().capacity(), 64);
///
/// // No handle registered yet: every shard is idle and scans skip them all.
/// assert_eq!(domain.registry().occupied_shards(), 0);
/// let handle = domain.register();
/// assert_eq!(domain.registry().occupied_shards(), 1);
/// drop(handle);
/// ```
pub type DomainConfig = ReclaimerConfig;

/// The type-erased, per-thread reclamation interface each scheme implements.
///
/// # Safety
///
/// Implementations must guarantee that a pointer returned by
/// [`protect_raw`](Self::protect_raw) (with its tag bits masked by `mask`)
/// remains valid — i.e. is not freed — until the same slot `index` is
/// overwritten by a later `protect_raw`, or [`clear`](Self::clear) /
/// [`end_op`](Self::end_op) is called, provided the program obeys the usual
/// SMR contract (blocks are retired only after becoming unreachable, and only
/// once).
pub unsafe trait RawHandle {
    /// Dense index of this thread in `0..max_threads`.
    fn thread_id(&self) -> usize;

    /// Number of reservation slots available to the application.
    fn slots(&self) -> usize;

    /// Marks the beginning of a data-structure operation.
    fn begin_op(&mut self);

    /// Marks the end of a data-structure operation; drops all protections.
    fn end_op(&mut self);

    /// Hazard-Eras `get_protected`: reads the pointer stored at `src` and
    /// publishes whatever reservation the scheme needs so the pointee cannot
    /// be freed. Returns the raw (possibly tagged) value read from `src`;
    /// the *protected* object is `value & mask`.
    ///
    /// `parent` is the block containing `src` (null for data-structure roots)
    /// — only WFE uses it, other schemes ignore it.
    fn protect_raw(
        &mut self,
        src: &AtomicUsize,
        index: usize,
        parent: *mut BlockHeader,
        mask: usize,
    ) -> usize;

    /// Hazard-Eras `retire`: hands an unreachable block to the scheme for
    /// eventual reclamation.
    ///
    /// # Safety
    ///
    /// `block` must have been allocated through [`Handle::alloc`] on the same
    /// domain, must already be unreachable from the data structure (only
    /// in-flight readers may still hold it), and must be retired exactly once.
    unsafe fn retire_raw(&mut self, block: *mut BlockHeader);

    /// Hazard-Eras `clear`: resets every reservation made by this thread.
    fn clear(&mut self);

    /// Hazard-Eras `alloc_block` bookkeeping: advances the era clock if due
    /// and returns the era to stamp into the new block's `alloc_era`.
    fn pre_alloc(&mut self) -> u64;

    /// Forces a retired-list scan regardless of `cleanup_freq`. Used by tests
    /// and by handle teardown; not part of the paper API.
    fn force_cleanup(&mut self);
}

/// Typed convenience layer over [`RawHandle`]; blanket-implemented.
pub trait Handle: RawHandle {
    /// Allocates a reclaimable block holding `value`
    /// (the paper's `alloc_block`).
    fn alloc<T>(&mut self, value: T) -> *mut Linked<T> {
        let era = self.pre_alloc();
        Linked::alloc(value, era)
    }

    /// Protects and returns the pointer stored in `src` (the paper's
    /// `get_protected`).
    ///
    /// The returned pointer keeps any tag bits found in `src`; the protected
    /// object is the untagged pointer. `parent` must be the block that
    /// physically contains `src`, or null when `src` is a data-structure
    /// root; it must itself be protected by the caller (that is the API
    /// convention §3.4 relies upon).
    fn protect<T>(
        &mut self,
        src: &Atomic<T>,
        index: usize,
        parent: *mut Linked<T>,
    ) -> *mut Linked<T> {
        self.protect_raw(
            src.as_raw_atomic(),
            index,
            Linked::as_header(parent),
            tag::ptr_mask::<T>(),
        ) as *mut Linked<T>
    }

    /// Retires an unreachable block (the paper's `retire`).
    ///
    /// # Safety
    ///
    /// Same contract as [`RawHandle::retire_raw`].
    unsafe fn retire<T>(&mut self, ptr: *mut Linked<T>) {
        debug_assert!(!ptr.is_null(), "cannot retire a null block");
        debug_assert_eq!(tag::tag_of(ptr), 0, "cannot retire a tagged pointer");
        self.retire_raw(Linked::as_header(ptr));
    }
}

impl<H: RawHandle + ?Sized> Handle for H {}

/// A reclamation scheme (a *domain* in SMR terminology).
///
/// One domain guards one or more data structures; threads participate by
/// [`register`](Self::register)ing a handle. Handles keep the domain alive
/// through an [`Arc`], so a domain is destroyed only after every handle and
/// every data structure using it has been dropped — at that point any block
/// still waiting on an orphan list is freed.
pub trait Reclaimer: Send + Sync + Sized + 'static {
    /// The per-thread handle type.
    type Handle: RawHandle + Send;

    /// Creates a domain with the given configuration.
    fn with_config(config: ReclaimerConfig) -> Arc<Self>;

    /// Creates a domain with [`ReclaimerConfig::default`].
    fn new_default() -> Arc<Self> {
        Self::with_config(ReclaimerConfig::default())
    }

    /// Registers the calling thread and returns its handle, or `None` when
    /// `max_threads` handles are already registered, so callers can degrade
    /// gracefully (shed the thread, queue the work) instead of panicking.
    ///
    /// ```
    /// use wfe_reclaim::{He, Reclaimer, ReclaimerConfig};
    ///
    /// let domain = He::with_config(ReclaimerConfig::with_max_threads(1));
    /// let first = domain.try_register().expect("one slot is available");
    /// assert!(domain.try_register().is_none(), "registry exhausted");
    /// drop(first);
    /// assert!(domain.try_register().is_some(), "slot recycled");
    /// ```
    fn try_register(self: &Arc<Self>) -> Option<Self::Handle>;

    /// Registers the calling thread and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if `max_threads` handles are already registered. Use
    /// [`try_register`](Self::try_register) to handle exhaustion without
    /// panicking.
    fn register(self: &Arc<Self>) -> Self::Handle {
        self.try_register().unwrap_or_else(|| {
            panic!(
                "thread registry exhausted: more than {} concurrent handles; \
                 raise ReclaimerConfig::max_threads",
                self.config().max_threads
            )
        })
    }

    /// Short scheme name as used in the paper's plots
    /// (`"WFE"`, `"HE"`, `"HP"`, `"EBR"`, `"2GEIBR"`, `"Leak"`).
    fn name() -> &'static str;

    /// Progress guarantee of the reclamation operations.
    fn progress() -> Progress;

    /// Snapshot of the reclamation counters.
    fn stats(&self) -> SmrStats;

    /// The configuration this domain was created with.
    fn config(&self) -> &ReclaimerConfig;

    /// The domain's sharded thread-slot registry (shard geometry and
    /// occupancy are observable for monitoring and benchmarks).
    fn registry(&self) -> &ThreadRegistry;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper_parameters() {
        let cfg = ReclaimerConfig::default();
        assert_eq!(cfg.era_freq, 150);
        assert_eq!(cfg.fast_path_attempts, 16);
        assert!(cfg.cleanup_freq >= 30);
        assert!(cfg.slots_per_thread >= 2);
    }

    #[test]
    fn with_max_threads_overrides_only_that_field() {
        let cfg = ReclaimerConfig::with_max_threads(4);
        assert_eq!(cfg.max_threads, 4);
        assert_eq!(cfg.era_freq, ReclaimerConfig::default().era_freq);
    }
}
