//! Epoch-Based Reclamation (EBR).
//!
//! The classic scheme descending from RCU and Fraser's epochs: a thread
//! publishes the global epoch when it starts an operation and withdraws the
//! reservation when it finishes; a retired block may be freed once every
//! *active* thread's published epoch is newer than the block's retirement
//! epoch. EBR has the lowest per-read overhead of all schemes (reads need no
//! per-pointer work at all), but a stalled or preempted thread pins every
//! block retired after it began its operation — memory usage is unbounded,
//! which is why the paper classifies it as blocking and why it cannot be used
//! under a wait-free data structure without forfeiting the guarantee.

use std::sync::Arc;
use wfe_sync::atomic::{AtomicUsize, Ordering};

use wfe_sync::EraSource;

use crate::api::{debug_assert_slot_index, Progress, RawHandle, Reclaimer, ReclaimerConfig};
use crate::block::{BlockHeader, ERA_INF};
use crate::cache::{BlockCaches, LocalBlockCache, ShardCache};
use crate::guard::ShieldSlots;
use crate::registry::ThreadRegistry;
use crate::retired::{OrphanStack, RetiredBatch};
use crate::scan::EpochSnapshot;
use crate::slots::SlotArray;
use crate::stats::{Counters, SmrStats};

/// The EBR domain.
pub struct Ebr {
    config: ReclaimerConfig,
    registry: ThreadRegistry,
    counters: Counters,
    orphans: OrphanStack,
    global_epoch: EraSource,
    /// One published epoch per thread; `ERA_INF` = quiescent.
    reservations: SlotArray,
    /// Per-shard size-class block caches (empty when disabled).
    caches: BlockCaches,
}

impl Ebr {
    /// Current value of the global epoch clock.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.global_epoch.load(Ordering::Acquire) // ORDER: epoch clock read; pairs with the AcqRel epoch advances.
    }

    /// The domain's epoch clock (injectable in model tests; see [`EraSource`]).
    pub fn era_source(&self) -> &EraSource {
        &self.global_epoch
    }

    /// Snapshots every published epoch once per cleanup pass: only the oldest
    /// active epoch matters, so the scratch is a single word. The walk goes
    /// shard-by-shard and skips wholly-idle shards (see
    /// [`ThreadRegistry::occupied_ranges`]).
    fn fill_snapshot(&self, snapshot: &mut EpochSnapshot) {
        snapshot.clear();
        for range in self.registry.occupied_ranges() {
            for thread in range {
                // ORDER: snapshot load; pairs with the Release epoch withdrawal (see scan.rs safety argument).
                snapshot.insert(self.reservations.get(thread, 0).load(Ordering::Acquire));
            }
        }
    }
}

impl Reclaimer for Ebr {
    type Handle = EbrHandle;

    fn with_config(config: ReclaimerConfig) -> Arc<Self> {
        let registry = config.build_registry();
        let caches = BlockCaches::new(&config.block_cache, registry.shard_count());
        Arc::new(Self {
            registry,
            caches,
            counters: Counters::new(),
            orphans: OrphanStack::new(),
            global_epoch: EraSource::new(1),
            reservations: SlotArray::new(config.max_threads, 1, ERA_INF),
            config,
        })
    }

    fn try_register(self: &Arc<Self>) -> Option<EbrHandle> {
        let tid = self.registry.try_acquire()?;
        Some(EbrHandle {
            shield_slots: ShieldSlots::new(self.config.slots_per_thread),
            cache_shard: self.registry.shard_of(tid),
            local_cache: LocalBlockCache::new(),
            domain: Arc::clone(self),
            tid,
            retired: RetiredBatch::new(),
            snapshot: EpochSnapshot::new(),
            since_cleanup: 0,
            alloc_counter: 0,
        })
    }

    fn name() -> &'static str {
        "EBR"
    }

    fn progress() -> Progress {
        Progress::Blocking
    }

    fn stats(&self) -> SmrStats {
        let mut stats = self.counters.snapshot(self.epoch());
        self.caches.merge_into(&mut stats);
        stats
    }

    fn config(&self) -> &ReclaimerConfig {
        &self.config
    }

    fn registry(&self) -> &ThreadRegistry {
        &self.registry
    }
}

impl Drop for Ebr {
    fn drop(&mut self) {
        // SAFETY: no handle can exist any more (handles hold an `Arc` to the
        // domain), so every orphaned block is unreachable and unprotected.
        unsafe {
            self.orphans.free_all();
        }
    }
}

impl core::fmt::Debug for Ebr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Ebr")
            .field("epoch", &self.epoch())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Per-thread EBR handle.
pub struct EbrHandle {
    /// Lease table for this handle's [`Shield`](crate::Shield)s. EBR ignores
    /// the indices, but leases keep data structures scheme-generic.
    shield_slots: Arc<ShieldSlots>,
    /// Home registry shard, fixed at registration (indexes the block caches).
    cache_shard: usize,
    /// Private block-cache magazine fronting the home shard's freelists.
    local_cache: LocalBlockCache,
    domain: Arc<Ebr>,
    tid: usize,
    retired: RetiredBatch,
    /// Reusable reservation snapshot (the batch scan scratch).
    snapshot: EpochSnapshot,
    /// Retirements since the last cleanup pass.
    since_cleanup: usize,
    alloc_counter: usize,
}

impl EbrHandle {
    /// One cleanup pass of the batch scan protocol
    /// ([`crate::retired::cleanup_pass`]).
    fn cleanup(&mut self) {
        self.since_cleanup = 0;
        let domain = &self.domain;
        let shard = domain.caches.shard(self.cache_shard);
        // SAFETY: `fill_snapshot` reads the reservation tables inside
        // `cleanup_pass`, i.e. after the orphan pop and after every block on the
        // batch was retired — the snapshot-freshness contract.
        unsafe {
            crate::retired::cleanup_pass(
                &mut self.retired,
                &domain.orphans,
                &domain.counters,
                &mut self.snapshot,
                shard.is_some().then_some(&mut self.local_cache),
                shard,
                |snapshot| domain.fill_snapshot(snapshot),
            );
        }
    }
}

// SAFETY: `protect_raw` publishes the scheme's reservation before returning,
// so the returned pointer stays valid until the slot is overwritten or
// cleared — the `RawHandle` validity contract.
unsafe impl RawHandle for EbrHandle {
    fn thread_id(&self) -> usize {
        self.tid
    }

    fn slots(&self) -> usize {
        // EBR protects everything read inside the operation bracket, so the
        // per-pointer index space is irrelevant; report the configured value
        // so data structures can use indices uniformly.
        self.domain.config.slots_per_thread
    }

    fn shield_slots(&self) -> &Arc<ShieldSlots> {
        &self.shield_slots
    }

    fn begin_op(&mut self) {
        let epoch = self.domain.epoch();
        self.domain
            .reservations
            .get(self.tid, 0)
            .store(epoch, Ordering::SeqCst);
    }

    fn end_op(&mut self) {
        self.domain
            .reservations
            .get(self.tid, 0)
            .store(ERA_INF, Ordering::Release); // ORDER: withdraws the epoch; pairs with the snapshot's Acquire loads.
    }

    fn protect_raw(
        &mut self,
        src: &AtomicUsize,
        index: usize,
        _parent: *mut BlockHeader,
        _mask: usize,
    ) -> usize {
        // The index is unused (protection comes from the epoch published in
        // `begin_op`), but a stray one is still a caller bug: check it
        // uniformly so misuse fails the same way under every scheme.
        debug_assert_slot_index(index, self.slots());
        src.load(Ordering::Acquire) // ORDER: pairs with the Release publish of the pointer being protected.
    }

    // SAFETY: contract inherited from the trait declaration (`# Safety`
    // on `RawHandle::retire_raw`); the obligations are the caller's.
    unsafe fn retire_raw(&mut self, block: *mut BlockHeader) {
        let epoch = self.domain.epoch();
        // SAFETY: the caller's `retire_raw` contract — `block` is a valid,
        // unreachable block retired exactly once — covers both the header
        // stamp and the batch push.
        unsafe {
            (*block).retire_era.store(epoch, Ordering::Release); // ORDER: stamps the header before the push that makes it scannable.
            self.retired.push(block);
        }
        self.domain.counters.on_retire();
        self.since_cleanup += 1;
        if self.since_cleanup >= self.domain.config.cleanup_freq {
            // SAFETY: same contract — the header is valid for the whole call.
            if unsafe { (*block).retire_era() } == self.domain.epoch() {
                self.domain.global_epoch.advance(Ordering::AcqRel); // ORDER: epoch advance; orders the clock with the retires it brackets.
            }
            self.cleanup();
        }
    }

    fn clear(&mut self) {
        // Within an operation the epoch reservation must stay put; dropping
        // protection happens in `end_op`.
    }

    fn pre_alloc(&mut self) -> u64 {
        self.domain.counters.on_alloc();
        self.alloc_counter += 1;
        if self.alloc_counter % self.domain.config.era_freq == 0 {
            self.domain.global_epoch.advance(Ordering::AcqRel); // ORDER: epoch advance; orders the clock with the allocations it brackets.
        }
        self.domain.epoch()
    }

    fn force_cleanup(&mut self) {
        self.domain.global_epoch.advance(Ordering::AcqRel); // ORDER: epoch advance; orders the clock with the forced cleanup that follows.
        self.cleanup();
    }

    fn block_caches(&mut self) -> (Option<&mut LocalBlockCache>, Option<&ShardCache>) {
        let shard = self.domain.caches.shard(self.cache_shard);
        (shard.is_some().then_some(&mut self.local_cache), shard)
    }
}

impl Drop for EbrHandle {
    fn drop(&mut self) {
        self.end_op();
        self.cleanup();
        // Park the magazine's blocks on the home shard (freeing them when the
        // cache is off) so surviving threads can recycle them.
        self.local_cache
            .drain(self.domain.caches.shard(self.cache_shard));
        // Whatever the final pass could not free is parked on the orphan
        // stack; the next live thread's cleanup pass adopts it.
        self.domain.orphans.push(self.retired.take());
        self.domain.registry.release(self.tid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    #[test]
    fn naming_and_progress() {
        assert_eq!(Ebr::name(), "EBR");
        assert_eq!(Ebr::progress(), Progress::Blocking);
    }

    #[test]
    fn basic_lifecycle() {
        conformance::basic_lifecycle::<Ebr>();
    }

    #[test]
    fn protection_blocks_reclamation() {
        conformance::protection_blocks_reclamation::<Ebr>();
    }

    #[test]
    fn all_blocks_freed_on_drop() {
        conformance::all_blocks_freed_on_drop::<Ebr>();
    }

    #[test]
    fn concurrent_stack_stress() {
        conformance::concurrent_stack_stress::<Ebr>(4, 2_000);
    }

    #[test]
    fn orphan_adoption() {
        conformance::orphan_adoption_reclaims_exited_threads_blocks::<Ebr>(true);
    }

    #[test]
    fn stalled_reader_pins_memory() {
        // The defining weakness of EBR: a thread inside an operation bracket
        // prevents every later retirement from being freed.
        use crate::Handle;
        let domain = Ebr::with_config(ReclaimerConfig {
            cleanup_freq: 1,
            era_freq: 1,
            ..ReclaimerConfig::with_max_threads(2)
        });
        let mut stalled = domain.register();
        let mut worker = domain.register();
        stalled.begin_op(); // ... and never ends its operation.
        for _ in 0..100 {
            let ptr = worker.alloc(0u64);
            // SAFETY: the block was never published; retired exactly once.
            unsafe { worker.retire(ptr) };
        }
        worker.force_cleanup();
        assert_eq!(
            domain.stats().unreclaimed,
            100,
            "nothing can be freed while a reader is stalled"
        );
        stalled.end_op();
        worker.force_cleanup();
        assert_eq!(
            domain.stats().unreclaimed,
            0,
            "everything freed once the reader leaves"
        );
    }
}
