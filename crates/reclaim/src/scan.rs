//! Reservation snapshots: the batch scan protocol.
//!
//! Under the old protocol every retired block re-read every reservation slot
//! (`can_free` per block, `O(blocks × threads × slots)` atomic loads per
//! cleanup). The batch protocol — the design of the Hazard Eras reference
//! implementation and of Wen et al.'s IBR harness — snapshots all
//! reservations **once** per cleanup pass into a reusable scratch structure
//! and then judges the whole retired batch against that snapshot, so the
//! per-block work drops to a binary search (or a single comparison).
//!
//! Safety of snapshotting once: every block in a batch was retired — and was
//! therefore already unreachable — *before* the snapshot is taken. A
//! reservation that protects such a block must have been published before the
//! block was unlinked (the publish-then-validate protocol guarantees this),
//! hence before the snapshot's loads; the snapshot therefore observes it, or
//! observes a later value of the same slot, which means the owner has since
//! withdrawn that protection. Adopted orphan batches preserve the same
//! argument because they are popped from the orphan stack *before* the
//! snapshot is taken (see [`crate::retired::OrphanStack`]).

use crate::block::{BlockHeader, ERA_INF};

/// A point-in-time snapshot of every reservation in a domain, reused across
/// cleanup passes so the scratch allocation is paid once per thread.
///
/// Implementors are the per-scheme scratch structures; the retired batch is
/// drained against one via
/// [`RetiredBatch::scan_against`](crate::retired::RetiredBatch::scan_against).
pub trait ReservationSet {
    /// Whether some reservation in the snapshot may still reach `block`
    /// (the scheme's safety condition, evaluated against the snapshot).
    fn covers(&self, block: &BlockHeader) -> bool;
}

/// EBR scratch: only the *oldest* active epoch matters, so the snapshot is a
/// single word.
#[derive(Debug, Default)]
pub struct EpochSnapshot {
    min_active: u64,
}

impl EpochSnapshot {
    /// Creates an empty snapshot (no active reader).
    pub fn new() -> Self {
        Self {
            min_active: ERA_INF,
        }
    }

    /// Resets the snapshot to "no active reader".
    #[inline]
    pub fn clear(&mut self) {
        self.min_active = ERA_INF;
    }

    /// Records one published epoch (`ERA_INF` = quiescent, ignored).
    #[inline]
    pub fn insert(&mut self, epoch: u64) {
        self.min_active = self.min_active.min(epoch);
    }

    /// The oldest active epoch observed, or `ERA_INF` if none.
    #[inline]
    pub fn min_active(&self) -> u64 {
        self.min_active
    }
}

impl ReservationSet for EpochSnapshot {
    #[inline]
    fn covers(&self, block: &BlockHeader) -> bool {
        // A block is pinned while some reader entered its operation at or
        // before the block's retirement epoch.
        self.min_active <= block.retire_era()
    }
}

/// Hazard-Eras scratch: the published eras, sorted so that the per-block
/// lifespan test is one binary search.
#[derive(Debug, Default)]
pub struct EraSnapshot {
    eras: Vec<u64>,
}

impl EraSnapshot {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Discards the previous snapshot, keeping the allocation.
    #[inline]
    pub fn clear(&mut self) {
        self.eras.clear();
    }

    /// Records one published era (`ERA_INF` = empty slot, ignored).
    #[inline]
    pub fn insert(&mut self, era: u64) {
        if era != ERA_INF {
            self.eras.push(era);
        }
    }

    /// Sorts the recorded eras; must be called once after the last `insert`
    /// and before the first `covers`/`covers_span` query.
    pub fn seal(&mut self) {
        self.eras.sort_unstable();
        self.eras.dedup();
    }

    /// Whether some recorded era falls inside `[alloc_era, retire_era]`.
    #[inline]
    pub fn covers_span(&self, alloc_era: u64, retire_era: u64) -> bool {
        let idx = self.eras.partition_point(|&era| era < alloc_era);
        idx < self.eras.len() && self.eras[idx] <= retire_era
    }

    /// Number of distinct recorded eras.
    pub fn len(&self) -> usize {
        self.eras.len()
    }

    /// Whether no era was recorded.
    pub fn is_empty(&self) -> bool {
        self.eras.is_empty()
    }
}

impl ReservationSet for EraSnapshot {
    #[inline]
    fn covers(&self, block: &BlockHeader) -> bool {
        self.covers_span(block.alloc_era(), block.retire_era())
    }
}

/// 2GEIBR scratch: one `[lower, upper]` interval per active thread. The
/// per-block test is a linear overlap check over the (few) active intervals —
/// with zero atomic loads, where the old protocol paid two per thread per
/// block.
#[derive(Debug, Default)]
pub struct IntervalSnapshot {
    intervals: Vec<(u64, u64)>,
}

impl IntervalSnapshot {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Discards the previous snapshot, keeping the allocation.
    #[inline]
    pub fn clear(&mut self) {
        self.intervals.clear();
    }

    /// Records one active `[lower, upper]` interval.
    #[inline]
    pub fn insert(&mut self, lower: u64, upper: u64) {
        self.intervals.push((lower, upper));
    }

    /// Number of active intervals recorded.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Whether no interval was recorded.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }
}

impl ReservationSet for IntervalSnapshot {
    #[inline]
    fn covers(&self, block: &BlockHeader) -> bool {
        let (alloc_era, retire_era) = (block.alloc_era(), block.retire_era());
        self.intervals
            .iter()
            .any(|&(lower, upper)| alloc_era <= upper && retire_era >= lower)
    }
}

/// Hazard-Pointers scratch: the published addresses, sorted for binary
/// search.
#[derive(Debug, Default)]
pub struct HazardSnapshot {
    pointers: Vec<usize>,
}

impl HazardSnapshot {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Discards the previous snapshot, keeping the allocation.
    #[inline]
    pub fn clear(&mut self) {
        self.pointers.clear();
    }

    /// Records one published hazard address (0 = empty slot, ignored).
    #[inline]
    pub fn insert(&mut self, pointer: usize) {
        if pointer != 0 {
            self.pointers.push(pointer);
        }
    }

    /// Sorts the recorded addresses; must be called once after the last
    /// `insert` and before the first `covers` query.
    pub fn seal(&mut self) {
        self.pointers.sort_unstable();
        self.pointers.dedup();
    }

    /// Number of distinct recorded addresses.
    pub fn len(&self) -> usize {
        self.pointers.len()
    }

    /// Whether no address was recorded.
    pub fn is_empty(&self) -> bool {
        self.pointers.is_empty()
    }
}

impl ReservationSet for HazardSnapshot {
    #[inline]
    fn covers(&self, block: &BlockHeader) -> bool {
        self.pointers
            .binary_search(&(block as *const BlockHeader as usize))
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Linked;

    fn block_with(alloc_era: u64, retire_era: u64) -> *mut Linked<u64> {
        let ptr = Linked::alloc(0u64, alloc_era);
        // SAFETY: test-owned live block(s); dereferenced and freed exactly once.
        unsafe {
            (*ptr)
                .header
                .retire_era
                .store(retire_era, wfe_sync::atomic::Ordering::Relaxed);
        }
        ptr
    }

    #[test]
    fn epoch_snapshot_pins_blocks_retired_at_or_after_min() {
        let mut snap = EpochSnapshot::new();
        assert_eq!(snap.min_active(), ERA_INF);
        snap.insert(ERA_INF);
        snap.insert(7);
        snap.insert(5);
        assert_eq!(snap.min_active(), 5);

        let old = block_with(1, 4); // retired before the oldest reader
        let pinned = block_with(1, 5); // retired at the oldest reader's epoch
                                       // SAFETY: test-owned live block(s); dereferenced and freed exactly once.
        unsafe {
            assert!(!snap.covers(&*Linked::as_header(old)));
            assert!(snap.covers(&*Linked::as_header(pinned)));
            Linked::dealloc(old);
            Linked::dealloc(pinned);
        }
        snap.clear();
        assert_eq!(snap.min_active(), ERA_INF);
    }

    #[test]
    fn era_snapshot_binary_searches_lifespans() {
        let mut snap = EraSnapshot::new();
        snap.insert(ERA_INF); // ignored
        snap.insert(10);
        snap.insert(20);
        snap.insert(10); // deduped
        snap.seal();
        assert_eq!(snap.len(), 2);
        assert!(!snap.is_empty());

        assert!(snap.covers_span(5, 10), "era 10 inside [5,10]");
        assert!(snap.covers_span(10, 30), "both eras inside");
        assert!(snap.covers_span(15, 25), "era 20 inside [15,25]");
        assert!(!snap.covers_span(11, 19), "gap between the eras");
        assert!(!snap.covers_span(21, 99), "after every era");
        assert!(!snap.covers_span(1, 9), "before every era");

        let block = block_with(15, 25);
        // SAFETY: test-owned live block(s); dereferenced and freed exactly once.
        unsafe {
            assert!(snap.covers(&*Linked::as_header(block)));
            Linked::dealloc(block);
        }
        snap.clear();
        assert!(snap.is_empty());
        assert!(!snap.covers_span(0, ERA_INF));
    }

    #[test]
    fn interval_snapshot_checks_overlap() {
        let mut snap = IntervalSnapshot::new();
        snap.insert(10, 20);
        assert_eq!(snap.len(), 1);
        assert!(!snap.is_empty());

        let overlapping = block_with(15, 30);
        let disjoint = block_with(21, 30);
        // SAFETY: test-owned live block(s); dereferenced and freed exactly once.
        unsafe {
            assert!(snap.covers(&*Linked::as_header(overlapping)));
            assert!(!snap.covers(&*Linked::as_header(disjoint)));
            Linked::dealloc(overlapping);
            Linked::dealloc(disjoint);
        }
        snap.clear();
        assert!(snap.is_empty());
    }

    #[test]
    fn hazard_snapshot_matches_exact_addresses() {
        let a = block_with(0, 0);
        let b = block_with(0, 0);
        let mut snap = HazardSnapshot::new();
        snap.insert(0); // ignored
        snap.insert(a as usize);
        snap.insert(a as usize); // deduped
        snap.seal();
        assert_eq!(snap.len(), 1);
        // SAFETY: test-owned live block(s); dereferenced and freed exactly once.
        unsafe {
            assert!(snap.covers(&*Linked::as_header(a)));
            assert!(!snap.covers(&*Linked::as_header(b)));
            Linked::dealloc(a);
            Linked::dealloc(b);
        }
    }
}
