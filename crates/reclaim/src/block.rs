//! The intrusive allocation header shared by every reclamation scheme.
//!
//! The paper's Figure 2 shows that each reclaimable node embeds a "hazard eras
//! header block" as its first field. [`Linked<T>`] is that layout: a
//! [`BlockHeader`] followed by the user payload. Schemes only ever traffic in
//! `*mut BlockHeader`; the generic convenience methods on
//! [`Handle`](crate::Handle) recover the typed pointer.

use wfe_sync::atomic::{AtomicU64, Ordering};

use crate::cache::{alloc_class, dealloc_class, LocalBlockCache, ShardCache, SizeClass};

/// The "infinite" era: a reservation holding this value protects nothing.
///
/// Matches the `∞` sentinel of the paper's pseudo-code.
pub const ERA_INF: u64 = u64::MAX;

/// The reserved invalid pointer value used by WFE's slow path.
///
/// The paper reserves the maximum integer value because `nullptr` is a
/// legitimate value for hazardous references while no real allocation can ever
/// be placed at the top of the address space (`mmap` returns this value only
/// as `MAP_FAILED`).
pub const INVPTR: u64 = u64::MAX;

/// Reclamation header embedded at offset 0 of every reclaimable allocation.
///
/// * `alloc_era` — global era at allocation time (`alloc_block()`),
/// * `retire_era` — global era at retirement time (`retire()`),
/// * `next_retired` — intrusive link for the owner thread's retired list,
/// * `drop_fn` — type-erased destructor installed at allocation time.
///
/// The era fields are ordinary atomics only because the WFE *helper* threads
/// read `alloc_era` of a parent block concurrently with nothing but the
/// allocation that wrote it; all other accesses are owner-only.
#[repr(C)]
#[derive(Debug)]
pub struct BlockHeader {
    /// Era at which the block was allocated.
    pub alloc_era: AtomicU64,
    /// Era at which the block was retired (meaningful only once retired).
    pub retire_era: AtomicU64,
    /// Intrusive link used by per-thread retired lists. Owner-thread only.
    pub(crate) next_retired: *mut BlockHeader,
    /// Type-erased destructor: drops the payload and either frees the whole
    /// allocation (`Box`-path blocks, returning `None`) or hands the memory
    /// back to the caller keyed by its size class (`Some`), so the free path
    /// can route it into a block cache instead of the allocator.
    pub(crate) drop_fn: unsafe fn(*mut BlockHeader) -> Option<SizeClass>,
}

// The raw link is only ever touched by the thread that owns the retired list
// (or by a helper after the owner has handed the list over), never
// concurrently.
// SAFETY: the intrusive link is only ever touched by the thread that owns
// the retired batch (or by a helper after a hand-over), never concurrently;
// the era fields are atomics.
unsafe impl Send for BlockHeader {}
// SAFETY: as above — shared access is confined to the atomic era fields.
unsafe impl Sync for BlockHeader {}

impl BlockHeader {
    /// Reads the allocation era.
    #[inline]
    pub fn alloc_era(&self) -> u64 {
        self.alloc_era.load(Ordering::Acquire) // ORDER: pairs with the Release era stamps at allocation/retirement.
    }

    /// Reads the retirement era.
    #[inline]
    pub fn retire_era(&self) -> u64 {
        self.retire_era.load(Ordering::Acquire) // ORDER: pairs with the Release era stamps at allocation/retirement.
    }
}

/// A reclaimable allocation: reclamation header followed by the user payload.
///
/// `#[repr(C)]` guarantees the header sits at offset 0 so a `*mut Linked<T>`
/// can be reinterpreted as `*mut BlockHeader` and back.
#[repr(C)]
#[derive(Debug)]
pub struct Linked<T> {
    /// The reclamation header (must stay the first field).
    pub header: BlockHeader,
    /// The user payload (a data-structure node).
    pub value: T,
}

impl<T> Linked<T> {
    /// The size class this block type is cached under, or `None` when its
    /// layout exceeds the largest class and must use the `Box` path.
    pub(crate) const SIZE_CLASS: Option<SizeClass> = SizeClass::of(
        core::mem::size_of::<Linked<T>>(),
        core::mem::align_of::<Linked<T>>(),
    );

    /// Heap-allocates a new block with the given allocation era.
    ///
    /// Returns an owning raw pointer; the allocation is freed either by the
    /// reclamation scheme (after [`retire`](crate::Handle::retire)) or by
    /// [`Linked::dealloc`].
    pub fn alloc(value: T, alloc_era: u64) -> *mut Linked<T> {
        Self::alloc_in(value, alloc_era, None, None)
    }

    /// Like [`alloc`](Self::alloc), but pops a recycled block of the matching
    /// size class from the handle's `local` magazine (refilled from `shard`)
    /// — or, with no magazine, from `shard` directly — before falling back to
    /// the allocator. Blocks whose layout fits no class ignore both.
    pub fn alloc_in(
        value: T,
        alloc_era: u64,
        local: Option<&mut LocalBlockCache>,
        shard: Option<&ShardCache>,
    ) -> *mut Linked<T> {
        let header = |drop_fn: unsafe fn(*mut BlockHeader) -> Option<SizeClass>| BlockHeader {
            alloc_era: AtomicU64::new(alloc_era),
            retire_era: AtomicU64::new(0),
            next_retired: core::ptr::null_mut(),
            drop_fn,
        };
        match Self::SIZE_CLASS {
            Some(class) => {
                let recycled = match local {
                    Some(local) => local.pop(class, shard),
                    None => shard.and_then(|shard| shard.pop(class)),
                };
                let raw = recycled.unwrap_or_else(|| alloc_class(class));
                let ptr = raw.cast::<Linked<T>>();
                // SAFETY: `raw` is a fresh or recycled class block — at least
                // `size_of::<Linked<T>>()` writable bytes at sufficient
                // alignment, exclusively owned.
                unsafe {
                    ptr.write(Linked {
                        header: header(drop_block_classed::<T>),
                        value,
                    });
                }
                ptr
            }
            None => Box::into_raw(Box::new(Linked {
                header: header(drop_block_boxed::<T>),
                value,
            })),
        }
    }

    /// Immediately frees a block that is *not* going through a retire path
    /// (e.g. a node that never became reachable, or remaining nodes freed by
    /// a data structure's `Drop`).
    ///
    /// # Safety
    ///
    /// `ptr` must have been produced by [`Linked::alloc`] /
    /// [`Linked::alloc_in`] for the same `T`, must not have been freed or
    /// retired before, and no other thread may still access it.
    pub unsafe fn dealloc(ptr: *mut Linked<T>) {
        // SAFETY: the caller guarantees `ptr` is a live, unaliased block;
        // dispatching through `drop_fn` frees it down whichever path
        // (class or `Box`) allocated it.
        unsafe { free_block(Self::as_header(ptr), None, None) };
    }

    /// Upcasts a typed block pointer to its header pointer.
    #[inline]
    pub fn as_header(ptr: *mut Linked<T>) -> *mut BlockHeader {
        ptr.cast()
    }
}

/// Frees a type-erased `Box`-path block. Installed as `drop_fn` at
/// allocation time for layouts no size class fits.
///
/// # Safety
///
/// `header` must point to the `BlockHeader` of a live `Linked<T>` allocation
/// of the matching `T` that was allocated through `Box`.
unsafe fn drop_block_boxed<T>(header: *mut BlockHeader) -> Option<SizeClass> {
    // SAFETY: the caller guarantees `header` is the first field of a live
    // `Linked<T>` allocation, so the cast recovers the original `Box`.
    drop(unsafe { Box::from_raw(header as *mut Linked<T>) });
    None
}

/// Drops the payload of a class-path block **without freeing the memory**,
/// returning its size class so the caller routes the block into a cache or
/// back to the allocator. Installed as `drop_fn` at allocation time.
///
/// # Safety
///
/// `header` must point to the `BlockHeader` of a live `Linked<T>` allocation
/// of the matching `T` that was allocated as a class block. After the call
/// the memory is uninitialized and owned by the caller.
unsafe fn drop_block_classed<T>(header: *mut BlockHeader) -> Option<SizeClass> {
    // SAFETY: the caller guarantees `header` is the first field of a live
    // `Linked<T>` allocation; dropping it in place leaves the class memory
    // allocated but uninitialized, exactly what the contract hands back.
    unsafe { core::ptr::drop_in_place(header as *mut Linked<T>) };
    Linked::<T>::SIZE_CLASS
}

/// Frees a retired block through its type-erased destructor, parking the
/// memory of class-path blocks on the handle's `local` magazine (which
/// spills to `shard`) or, with no magazine, on `shard` directly — instead of
/// returning it to the allocator.
///
/// # Safety
///
/// The block must be retired, unreachable and unprotected by every thread.
pub(crate) unsafe fn free_block(
    header: *mut BlockHeader,
    local: Option<&mut LocalBlockCache>,
    shard: Option<&ShardCache>,
) {
    // SAFETY: the caller guarantees the block is retired, unreachable and
    // unprotected; `drop_fn` was installed at allocation for the right `T`.
    let class = unsafe { ((*header).drop_fn)(header) };
    if let Some(class) = class {
        // The payload is dropped; the class memory is ours to route.
        match (local, shard) {
            // SAFETY: the block was allocated as a class block of `class`
            // (`drop_fn` returned it) and enters the magazine exactly once.
            (Some(local), shard) => unsafe { local.push(class, header.cast(), shard) },
            (None, Some(shard)) => {
                // SAFETY: as above — the shard takes ownership exactly once.
                unsafe { shard.push(class, header.cast()) };
            }
            // SAFETY: as above — freed exactly once here.
            (None, None) => unsafe { dealloc_class(class, header.cast()) },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wfe_sync::atomic::{AtomicUsize, Ordering::SeqCst};

    #[test]
    fn header_is_at_offset_zero() {
        let ptr = Linked::alloc(42u64, 7);
        let header = Linked::as_header(ptr);
        assert_eq!(header as usize, ptr as usize);
        // SAFETY: `ptr` was just allocated and is exclusively owned by the test.
        unsafe {
            assert_eq!((*header).alloc_era(), 7);
            assert_eq!((*ptr).value, 42);
            Linked::dealloc(ptr);
        }
    }

    struct Canary(Arc<AtomicUsize>);
    impl Drop for Canary {
        fn drop(&mut self) {
            self.0.fetch_add(1, SeqCst);
        }
    }

    #[test]
    fn drop_fn_runs_payload_destructor() {
        let drops = Arc::new(AtomicUsize::new(0));
        let ptr = Linked::alloc(Canary(drops.clone()), 0);
        // SAFETY: the block is alive, unreachable by any other thread, and freed
        // exactly once through its installed `drop_fn`.
        unsafe { free_block(Linked::as_header(ptr), None, None) };
        assert_eq!(drops.load(SeqCst), 1);
    }

    #[test]
    fn size_class_split_small_vs_large_payloads() {
        // A u64 block fits the smallest class; a 2 KiB payload fits none.
        assert!(Linked::<u64>::SIZE_CLASS.is_some());
        assert!(Linked::<[u8; 2048]>::SIZE_CLASS.is_none());
        // Both paths allocate and free cleanly.
        let small = Linked::alloc(7u64, 0);
        let large = Linked::alloc([0u8; 2048], 0);
        // SAFETY: both blocks are unpublished and freed exactly once.
        unsafe {
            assert_eq!((*small).value, 7);
            Linked::dealloc(small);
            Linked::dealloc(large);
        }
    }

    #[test]
    fn free_into_cache_recycles_memory_and_drops_payload() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cache = crate::cache::BlockCaches::new(
            &crate::cache::BlockCacheConfig {
                enabled: true,
                per_class_capacity: 4,
            },
            1,
        );
        let shard = cache.shard(0);
        let ptr = Linked::alloc_in(Canary(drops.clone()), 0, None, shard);
        let addr = ptr as usize;
        // SAFETY: the block is unpublished; freed exactly once, into the cache.
        unsafe { free_block(Linked::as_header(ptr), None, shard) };
        assert_eq!(drops.load(SeqCst), 1, "payload dropped even when cached");
        assert!(
            shard.unwrap().cached_bytes() > 0,
            "memory parked, not freed"
        );
        // The next allocation of the same class reuses the parked block.
        let reused = Linked::alloc_in(42u64, 0, None, shard);
        assert_eq!(reused as usize, addr, "cache served the recycled block");
        assert_eq!(shard.unwrap().hits(), 1);
        // SAFETY: unpublished, freed exactly once (no cache: straight dealloc).
        unsafe { Linked::dealloc(reused) };
    }

    #[test]
    fn sentinels_are_max_values() {
        assert_eq!(ERA_INF, u64::MAX);
        assert_eq!(INVPTR, u64::MAX);
    }
}
