//! The intrusive allocation header shared by every reclamation scheme.
//!
//! The paper's Figure 2 shows that each reclaimable node embeds a "hazard eras
//! header block" as its first field. [`Linked<T>`] is that layout: a
//! [`BlockHeader`] followed by the user payload. Schemes only ever traffic in
//! `*mut BlockHeader`; the generic convenience methods on
//! [`Handle`](crate::Handle) recover the typed pointer.

use wfe_sync::atomic::{AtomicU64, Ordering};

/// The "infinite" era: a reservation holding this value protects nothing.
///
/// Matches the `∞` sentinel of the paper's pseudo-code.
pub const ERA_INF: u64 = u64::MAX;

/// The reserved invalid pointer value used by WFE's slow path.
///
/// The paper reserves the maximum integer value because `nullptr` is a
/// legitimate value for hazardous references while no real allocation can ever
/// be placed at the top of the address space (`mmap` returns this value only
/// as `MAP_FAILED`).
pub const INVPTR: u64 = u64::MAX;

/// Reclamation header embedded at offset 0 of every reclaimable allocation.
///
/// * `alloc_era` — global era at allocation time (`alloc_block()`),
/// * `retire_era` — global era at retirement time (`retire()`),
/// * `next_retired` — intrusive link for the owner thread's retired list,
/// * `drop_fn` — type-erased destructor installed at allocation time.
///
/// The era fields are ordinary atomics only because the WFE *helper* threads
/// read `alloc_era` of a parent block concurrently with nothing but the
/// allocation that wrote it; all other accesses are owner-only.
#[repr(C)]
#[derive(Debug)]
pub struct BlockHeader {
    /// Era at which the block was allocated.
    pub alloc_era: AtomicU64,
    /// Era at which the block was retired (meaningful only once retired).
    pub retire_era: AtomicU64,
    /// Intrusive link used by per-thread retired lists. Owner-thread only.
    pub(crate) next_retired: *mut BlockHeader,
    /// Type-erased destructor: frees the full `Linked<T>` allocation.
    pub(crate) drop_fn: unsafe fn(*mut BlockHeader),
}

// The raw link is only ever touched by the thread that owns the retired list
// (or by a helper after the owner has handed the list over), never
// concurrently.
// SAFETY: the intrusive link is only ever touched by the thread that owns
// the retired batch (or by a helper after a hand-over), never concurrently;
// the era fields are atomics.
unsafe impl Send for BlockHeader {}
// SAFETY: as above — shared access is confined to the atomic era fields.
unsafe impl Sync for BlockHeader {}

impl BlockHeader {
    /// Reads the allocation era.
    #[inline]
    pub fn alloc_era(&self) -> u64 {
        self.alloc_era.load(Ordering::Acquire)
    }

    /// Reads the retirement era.
    #[inline]
    pub fn retire_era(&self) -> u64 {
        self.retire_era.load(Ordering::Acquire)
    }
}

/// A reclaimable allocation: reclamation header followed by the user payload.
///
/// `#[repr(C)]` guarantees the header sits at offset 0 so a `*mut Linked<T>`
/// can be reinterpreted as `*mut BlockHeader` and back.
#[repr(C)]
#[derive(Debug)]
pub struct Linked<T> {
    /// The reclamation header (must stay the first field).
    pub header: BlockHeader,
    /// The user payload (a data-structure node).
    pub value: T,
}

impl<T> Linked<T> {
    /// Heap-allocates a new block with the given allocation era.
    ///
    /// Returns an owning raw pointer; the allocation is freed either by the
    /// reclamation scheme (after [`retire`](crate::Handle::retire)) or by
    /// [`Linked::dealloc`].
    pub fn alloc(value: T, alloc_era: u64) -> *mut Linked<T> {
        let boxed = Box::new(Linked {
            header: BlockHeader {
                alloc_era: AtomicU64::new(alloc_era),
                retire_era: AtomicU64::new(0),
                next_retired: core::ptr::null_mut(),
                drop_fn: drop_block::<T>,
            },
            value,
        });
        Box::into_raw(boxed)
    }

    /// Immediately frees a block that is *not* going through a retire path
    /// (e.g. a node that never became reachable, or remaining nodes freed by
    /// a data structure's `Drop`).
    ///
    /// # Safety
    ///
    /// `ptr` must have been produced by [`Linked::alloc`] for the same `T`,
    /// must not have been freed or retired before, and no other thread may
    /// still access it.
    pub unsafe fn dealloc(ptr: *mut Linked<T>) {
        // SAFETY: the caller guarantees `ptr` came from `Linked::alloc` (a
        // `Box` allocation) and is not aliased or already freed.
        drop(unsafe { Box::from_raw(ptr) });
    }

    /// Upcasts a typed block pointer to its header pointer.
    #[inline]
    pub fn as_header(ptr: *mut Linked<T>) -> *mut BlockHeader {
        ptr.cast()
    }
}

/// Frees a type-erased block. Installed as `drop_fn` at allocation time.
///
/// # Safety
///
/// `header` must point to the `BlockHeader` of a live `Linked<T>` allocation
/// of the matching `T`.
unsafe fn drop_block<T>(header: *mut BlockHeader) {
    // SAFETY: the caller guarantees `header` is the first field of a live
    // `Linked<T>` allocation, so the cast recovers the original `Box`.
    drop(unsafe { Box::from_raw(header as *mut Linked<T>) });
}

/// Frees a retired block through its type-erased destructor.
///
/// # Safety
///
/// The block must be retired, unreachable and unprotected by every thread.
pub(crate) unsafe fn free_block(header: *mut BlockHeader) {
    // SAFETY: the caller guarantees the block is retired, unreachable and
    // unprotected; `drop_fn` was installed at allocation for the right `T`.
    unsafe { ((*header).drop_fn)(header) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};
    use std::sync::Arc;

    #[test]
    fn header_is_at_offset_zero() {
        let ptr = Linked::alloc(42u64, 7);
        let header = Linked::as_header(ptr);
        assert_eq!(header as usize, ptr as usize);
        // SAFETY: `ptr` was just allocated and is exclusively owned by the test.
        unsafe {
            assert_eq!((*header).alloc_era(), 7);
            assert_eq!((*ptr).value, 42);
            Linked::dealloc(ptr);
        }
    }

    #[test]
    fn drop_fn_runs_payload_destructor() {
        struct Canary(Arc<AtomicUsize>);
        impl Drop for Canary {
            fn drop(&mut self) {
                self.0.fetch_add(1, SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let ptr = Linked::alloc(Canary(drops.clone()), 0);
        // SAFETY: the block is alive, unreachable by any other thread, and freed
        // exactly once through its installed `drop_fn`.
        unsafe { free_block(Linked::as_header(ptr)) };
        assert_eq!(drops.load(SeqCst), 1);
    }

    #[test]
    fn sentinels_are_max_values() {
        assert_eq!(ERA_INF, u64::MAX);
        assert_eq!(INVPTR, u64::MAX);
    }
}
