//! Typed atomic pointers to reclaimable blocks, with low-bit tagging.
//!
//! Data structures store links as [`Atomic<T>`] — an atomic word holding a
//! `*mut Linked<T>` whose low bits may carry marks (Harris-Michael lists mark
//! the next pointer of logically deleted nodes, the Natarajan-Mittal BST flags
//! and tags child edges). The representation is a plain `AtomicUsize`, which
//! is exactly what the WFE slow path needs: a helper thread can re-read the
//! hazardous location through its address without knowing `T`.

use core::marker::PhantomData;
use wfe_sync::atomic::{AtomicUsize, Ordering};

use crate::block::Linked;

/// An atomic, optionally tagged pointer to a [`Linked<T>`] block.
#[repr(transparent)]
pub struct Atomic<T> {
    raw: AtomicUsize,
    _marker: PhantomData<*mut Linked<T>>,
}

// The pointer itself is freely shareable; dereferencing it is where the
// reclamation contract (and `unsafe`) kicks in.
// SAFETY: the pointer itself is freely shareable; dereferencing it is where
// the reclamation contract (and `unsafe`) kicks in.
unsafe impl<T> Send for Atomic<T> {}
// SAFETY: as above — the cell is a plain atomic word.
unsafe impl<T> Sync for Atomic<T> {}

impl<T> Atomic<T> {
    /// Creates a null pointer.
    pub const fn null() -> Self {
        Self {
            raw: AtomicUsize::new(0),
            _marker: PhantomData,
        }
    }

    /// Creates a pointer holding `ptr` (no tag).
    pub fn new(ptr: *mut Linked<T>) -> Self {
        Self {
            raw: AtomicUsize::new(ptr as usize),
            _marker: PhantomData,
        }
    }

    /// Loads the raw (possibly tagged) pointer.
    #[inline]
    pub fn load(&self, order: Ordering) -> *mut Linked<T> {
        self.raw.load(order) as *mut Linked<T>
    }

    /// Stores a raw (possibly tagged) pointer.
    #[inline]
    pub fn store(&self, ptr: *mut Linked<T>, order: Ordering) {
        self.raw.store(ptr as usize, order);
    }

    /// Compare-and-swap on the raw (possibly tagged) pointer value.
    #[inline]
    pub fn compare_exchange(
        &self,
        current: *mut Linked<T>,
        new: *mut Linked<T>,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut Linked<T>, *mut Linked<T>> {
        self.raw
            .compare_exchange(current as usize, new as usize, success, failure)
            .map(|v| v as *mut Linked<T>)
            .map_err(|v| v as *mut Linked<T>)
    }

    /// Weak compare-and-swap (may fail spuriously), for retry loops.
    #[inline]
    pub fn compare_exchange_weak(
        &self,
        current: *mut Linked<T>,
        new: *mut Linked<T>,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut Linked<T>, *mut Linked<T>> {
        self.raw
            .compare_exchange_weak(current as usize, new as usize, success, failure)
            .map(|v| v as *mut Linked<T>)
            .map_err(|v| v as *mut Linked<T>)
    }

    /// Atomically sets tag bits (`fetch_or`) on the stored pointer and returns
    /// the previous raw value. Used by the Natarajan-Mittal BST to flag edges.
    #[inline]
    pub fn fetch_or_tag(&self, tag: usize, order: Ordering) -> *mut Linked<T> {
        self.raw.fetch_or(tag, order) as *mut Linked<T>
    }

    /// Exposes the underlying atomic word. The WFE slow path records this
    /// address so that helper threads can re-read the hazardous location.
    #[inline]
    pub fn as_raw_atomic(&self) -> &AtomicUsize {
        &self.raw
    }
}

impl<T> Default for Atomic<T> {
    fn default() -> Self {
        Self::null()
    }
}

impl<T> core::fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Atomic({:p})", self.load(Ordering::Relaxed)) // ORDER: Debug formatting only.
    }
}

/// Pointer-tagging helpers. All data-structure marks live in the low bits,
/// which are guaranteed free because [`Linked<T>`] allocations are at least
/// word-aligned (the header alone is 32 bytes).
pub mod tag {
    use crate::block::Linked;

    /// Returns the pointer with all tag bits removed.
    #[inline]
    pub fn untagged<T>(ptr: *mut Linked<T>) -> *mut Linked<T> {
        ((ptr as usize) & !low_bits::<T>()) as *mut Linked<T>
    }

    /// Returns the tag bits of the pointer.
    #[inline]
    pub fn tag_of<T>(ptr: *mut Linked<T>) -> usize {
        (ptr as usize) & low_bits::<T>()
    }

    /// Returns the pointer with the given tag bits set (previous tag cleared).
    #[inline]
    pub fn with_tag<T>(ptr: *mut Linked<T>, tag: usize) -> *mut Linked<T> {
        debug_assert_eq!(tag & !low_bits::<T>(), 0, "tag does not fit in low bits");
        ((untagged(ptr) as usize) | tag) as *mut Linked<T>
    }

    /// The mask of low bits available for tagging.
    #[inline]
    pub fn low_bits<T>() -> usize {
        core::mem::align_of::<Linked<T>>() - 1
    }

    /// The mask that strips tags: `!low_bits`.
    #[inline]
    pub fn ptr_mask<T>() -> usize {
        !low_bits::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfe_sync::atomic::Ordering::{Relaxed, SeqCst};

    #[test]
    fn null_and_store_load() {
        let a: Atomic<u64> = Atomic::null();
        assert!(a.load(SeqCst).is_null());
        let p = Linked::alloc(5u64, 0);
        a.store(p, SeqCst);
        assert_eq!(a.load(SeqCst), p);
        // SAFETY: test-owned block(s), never retired; freed exactly once.
        unsafe { Linked::dealloc(p) };
    }

    #[test]
    fn compare_exchange_works() {
        let p = Linked::alloc(1u64, 0);
        let q = Linked::alloc(2u64, 0);
        let a = Atomic::new(p);
        assert!(a.compare_exchange(q, p, SeqCst, SeqCst).is_err());
        assert_eq!(a.compare_exchange(p, q, SeqCst, SeqCst), Ok(p));
        assert_eq!(a.load(SeqCst), q);
        // SAFETY: test-owned block(s), never retired; freed exactly once.
        unsafe {
            Linked::dealloc(p);
            Linked::dealloc(q);
        }
    }

    #[test]
    fn tagging_roundtrip() {
        let p = Linked::alloc(3u32, 0);
        assert!(
            tag::low_bits::<u32>() >= 3,
            "at least two tag bits available"
        );
        let tagged = tag::with_tag(p, 1);
        assert_eq!(tag::tag_of(tagged), 1);
        assert_eq!(tag::untagged(tagged), p);
        let retagged = tag::with_tag(tagged, 2);
        assert_eq!(tag::tag_of(retagged), 2);
        assert_eq!(tag::untagged(retagged), p);
        // SAFETY: test-owned block(s), never retired; freed exactly once.
        unsafe { Linked::dealloc(p) };
    }

    #[test]
    fn fetch_or_tag_marks_in_place() {
        let p = Linked::alloc(3u32, 0);
        let a = Atomic::new(p);
        let before = a.fetch_or_tag(1, SeqCst);
        assert_eq!(before, p);
        assert_eq!(tag::tag_of(a.load(Relaxed)), 1);
        assert_eq!(tag::untagged(a.load(Relaxed)), p);
        // SAFETY: test-owned block(s), never retired; freed exactly once.
        unsafe { Linked::dealloc(p) };
    }

    #[test]
    fn atomic_is_word_sized() {
        assert_eq!(
            core::mem::size_of::<Atomic<u64>>(),
            core::mem::size_of::<usize>()
        );
    }
}
