//! Pooled handles for async executors and thread pools.
//!
//! The paper assumes one long-lived handle per OS thread. Executor-style
//! runtimes break that assumption: a short-lived task that registered its own
//! handle would pay a registry acquire, a final cleanup scan, an orphan-stack
//! push and a registry release *per task*. [`HandlePool`] amortises all of
//! that: dropping a [`PooledHandle`] parks the underlying scheme handle on a
//! lock-free freelist instead of tearing it down, and the next
//! [`check_out`](HandlePool::check_out) revives it in O(1) — no registry
//! traffic, no reservation-table churn, batch and slot carried over.
//!
//! The freelist is a `TypeStableStack` — the same versioned-wide-CAS
//! Treiber stack with recycled nodes that backs
//! [`crate::retired::OrphanStack`] — so check-out/check-in are lock-free and
//! ABA-safe. When the pool itself is dropped, every parked handle is dropped
//! the ordinary way — its final cleanup pass runs and whatever survives is
//! parked on the domain's orphan stack for live threads to adopt, exactly as
//! if the thread had exited.

use core::mem::ManuallyDrop;
use core::ops::{Deref, DerefMut};
use std::sync::Arc;
use wfe_sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::api::{RawHandle, Reclaimer};
use crate::treiber::TypeStableStack;

/// Point-in-time counters of a pool's activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Successful [`check_out`](HandlePool::check_out) calls.
    pub checkouts: u64,
    /// Check-outs served from a parked handle (no registry traffic).
    pub hits: u64,
    /// Check-outs that had to register a fresh handle.
    pub misses: u64,
    /// Check-outs that failed because the registry was exhausted.
    pub exhausted: u64,
    /// Handles currently parked on the freelist.
    pub parked: u64,
}

impl PoolStats {
    /// Fraction of successful check-outs served from the pool, in `0.0..=1.0`
    /// (`0.0` before the first check-out).
    pub fn hit_rate(&self) -> f64 {
        if self.checkouts == 0 {
            0.0
        } else {
            self.hits as f64 / self.checkouts as f64
        }
    }
}

/// A lock-free pool of parked scheme handles on top of one domain.
///
/// Works with every [`Reclaimer`] in the suite. Handles keep their registry
/// slot (and their pending retired batch) while parked, so a shard stays
/// *occupied* as long as handles are parked in it — trading a little scan
/// width for O(1) task-grain check-out/check-in.
///
/// ```
/// use std::sync::Arc;
/// use wfe_reclaim::{Handle, HandlePool, He, Reclaimer, ReclaimerConfig};
///
/// let domain = He::with_config(ReclaimerConfig::with_max_threads(4));
/// let pool = HandlePool::new(Arc::clone(&domain));
///
/// {
///     // First check-out registers a fresh handle (a pool "miss")...
///     let mut task_handle = pool.check_out().expect("registry has room");
///     let block = task_handle.alloc(7u64);
///     unsafe { task_handle.retire(block) };
/// } // ...and dropping the guard *parks* the handle instead of releasing it.
///
/// assert_eq!(pool.stats().parked, 1);
/// let again = pool.check_out().expect("served from the pool");
/// assert_eq!(pool.stats().hits, 1);
/// drop(again);
/// drop(pool); // parked handles tear down normally (orphan parking included)
/// assert_eq!(domain.registry().registered(), 0);
/// ```
pub struct HandlePool<R: Reclaimer> {
    domain: Arc<R>,
    /// Parked handles (the lock-free freelist).
    stack: TypeStableStack<R::Handle>,
    parked: AtomicUsize,
    checkouts: AtomicU64,
    hits: AtomicU64,
    exhausted: AtomicU64,
}

impl<R: Reclaimer> HandlePool<R> {
    /// Creates an empty pool over `domain`.
    pub fn new(domain: Arc<R>) -> Arc<Self> {
        Arc::new(Self {
            domain,
            stack: TypeStableStack::new(),
            parked: AtomicUsize::new(0),
            checkouts: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            exhausted: AtomicU64::new(0),
        })
    }

    /// The domain this pool registers handles with.
    pub fn domain(&self) -> &Arc<R> {
        &self.domain
    }

    /// Checks a handle out: revives a parked handle in O(1) if one is
    /// available, otherwise registers a fresh one. Returns `None` when the
    /// pool is empty *and* the domain's registry is exhausted — which can
    /// happen transiently while a concurrent check-in is mid-park (the
    /// handle still owns its registry slot but is not yet poppable), so
    /// callers running at full registry occupancy should treat `None` as
    /// retryable rather than fatal.
    pub fn check_out(self: &Arc<Self>) -> Option<PooledHandle<R>> {
        let handle = match self.take_parked(true) {
            Some(handle) => {
                self.hits.fetch_add(1, Ordering::Relaxed); // ORDER: pool statistics counter only.
                handle
            }
            None => match self.domain.try_register() {
                Some(handle) => handle,
                // The registry may be exhausted precisely because handles
                // are parked in the pool; re-check the freelist without the
                // opportunistic counter gate before giving up.
                None => match self.take_parked(false) {
                    Some(handle) => {
                        self.hits.fetch_add(1, Ordering::Relaxed); // ORDER: pool statistics counter only.
                        handle
                    }
                    None => {
                        self.exhausted.fetch_add(1, Ordering::Relaxed); // ORDER: pool statistics counter only.
                        return None;
                    }
                },
            },
        };
        self.checkouts.fetch_add(1, Ordering::Relaxed); // ORDER: pool statistics counter only.
        Some(PooledHandle {
            handle: ManuallyDrop::new(handle),
            pool: Arc::clone(self),
        })
    }

    /// Registers and parks fresh handles until `target` handles are parked
    /// (or the registry runs out of slots). Returns the number parked.
    ///
    /// Warming the pool before a run moves registration cost out of the
    /// measured/latency-sensitive window: with `target` at least the peak
    /// handle concurrency, every subsequent check-out is a pool hit. Pair
    /// with [`reset_stats`](Self::reset_stats) to report steady-state
    /// [`hit_rate`](PoolStats::hit_rate).
    pub fn prewarm(&self, target: usize) -> usize {
        while self.parked() < target {
            match self.domain.try_register() {
                Some(handle) => self.park(handle),
                None => break,
            }
        }
        self.parked()
    }

    /// Zeroes the activity counters (`checkouts`/`hits`/`exhausted`) so a
    /// following [`stats`](Self::stats) snapshot reflects only steady-state
    /// traffic — e.g. after a [`prewarm`](Self::prewarm) or warm-up phase.
    /// The `parked` gauge is live state and is not touched.
    pub fn reset_stats(&self) {
        self.checkouts.store(0, Ordering::Relaxed); // ORDER: pool statistics counter only.
        self.hits.store(0, Ordering::Relaxed); // ORDER: pool statistics counter only.
        self.exhausted.store(0, Ordering::Relaxed); // ORDER: pool statistics counter only.
    }

    /// Number of handles currently parked.
    pub fn parked(&self) -> usize {
        self.parked.load(Ordering::Acquire) // ORDER: gauge read; pairs with the AcqRel park/unpark updates.
    }

    /// Snapshot of the pool counters.
    pub fn stats(&self) -> PoolStats {
        let checkouts = self.checkouts.load(Ordering::Relaxed); // ORDER: pool statistics counter only.
        let hits = self.hits.load(Ordering::Relaxed); // ORDER: pool statistics counter only.
        PoolStats {
            checkouts,
            hits,
            misses: checkouts.saturating_sub(hits),
            exhausted: self.exhausted.load(Ordering::Relaxed), // ORDER: pool statistics counter only.
            parked: self.parked() as u64,
        }
    }

    /// Pops one parked handle, if any. With `gate`, an opportunistic counter
    /// check skips the wide-CAS on the common empty-pool path (a handle
    /// whose park is in flight may be missed).
    fn take_parked(&self, gate: bool) -> Option<R::Handle> {
        // ORDER: opportunistic empty-pool gate; a stale zero only skips the pop attempt.
        if gate && self.parked.load(Ordering::Acquire) == 0 {
            return None;
        }
        let handle = self.stack.pop()?;
        self.parked.fetch_sub(1, Ordering::AcqRel); // ORDER: keeps the gauge ordered with the stack pop it mirrors.
        Some(handle)
    }

    /// Parks `handle` for the next check-out (called by `PooledHandle::drop`).
    fn park(&self, mut handle: R::Handle) {
        // Return the handle to a quiescent state so a parked handle can never
        // pin memory: `end_op` drops every protection in every scheme
        // (era/interval withdrawal for EBR/2GEIBR, row clear for the rest).
        handle.end_op();
        self.parked.fetch_add(1, Ordering::AcqRel); // ORDER: keeps the gauge ordered with the stack push it mirrors.
        self.stack.push(handle);
    }
}

impl<R: Reclaimer> Drop for HandlePool<R> {
    fn drop(&mut self) {
        // Drop every parked handle the ordinary way: final cleanup pass,
        // orphan-stack parking of the survivors, registry release. (The
        // inner stack would drop them too; doing it explicitly keeps the
        // teardown order obvious.)
        while let Some(handle) = self.stack.pop() {
            drop(handle);
        }
    }
}

impl<R: Reclaimer> core::fmt::Debug for HandlePool<R> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("HandlePool")
            .field("stats", &self.stats())
            .finish()
    }
}

/// A scheme handle checked out of a [`HandlePool`].
///
/// Dereferences to the underlying [`Reclaimer::Handle`]; dropping it returns
/// the handle to the pool instead of tearing it down.
pub struct PooledHandle<R: Reclaimer> {
    handle: ManuallyDrop<R::Handle>,
    pool: Arc<HandlePool<R>>,
}

impl<R: Reclaimer> PooledHandle<R> {
    /// The pool this handle returns to on drop.
    pub fn pool(&self) -> &Arc<HandlePool<R>> {
        &self.pool
    }
}

impl<R: Reclaimer> Deref for PooledHandle<R> {
    type Target = R::Handle;

    fn deref(&self) -> &R::Handle {
        &self.handle
    }
}

impl<R: Reclaimer> DerefMut for PooledHandle<R> {
    fn deref_mut(&mut self) -> &mut R::Handle {
        &mut self.handle
    }
}

impl<R: Reclaimer> Drop for PooledHandle<R> {
    fn drop(&mut self) {
        // SAFETY: `handle` is never touched again after being taken here.
        let handle = unsafe { ManuallyDrop::take(&mut self.handle) };
        self.pool.park(handle);
    }
}

impl<R: Reclaimer> core::fmt::Debug for PooledHandle<R> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PooledHandle")
            .field("thread_id", &self.handle.thread_id())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{Handle, ReclaimerConfig};
    use crate::conformance::DropCounter;
    use crate::he::He;
    use crate::ptr::Atomic;
    // Through the sync layer so the tests compile under `--cfg wfe_model`.
    use wfe_sync::atomic::AtomicUsize as StdAtomicUsize;
    use wfe_sync::atomic::Ordering::SeqCst;

    #[test]
    fn checkin_parks_and_checkout_revives_the_same_slot() {
        let domain = He::with_config(ReclaimerConfig::with_max_threads(4));
        let pool = HandlePool::new(Arc::clone(&domain));
        let first = pool.check_out().unwrap();
        let tid = first.thread_id();
        drop(first);
        assert_eq!(pool.parked(), 1);
        assert_eq!(domain.registry().registered(), 1, "slot kept while parked");
        let second = pool.check_out().unwrap();
        assert_eq!(second.thread_id(), tid, "parked handle revived");
        let stats = pool.stats();
        assert_eq!(stats.checkouts, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn check_out_returns_none_only_when_pool_and_registry_are_empty() {
        let domain = He::with_config(ReclaimerConfig::with_max_threads(1));
        let pool = HandlePool::new(Arc::clone(&domain));
        let only = pool.check_out().unwrap();
        assert!(
            pool.check_out().is_none(),
            "registry exhausted, none parked"
        );
        assert_eq!(pool.stats().exhausted, 1);
        drop(only);
        assert!(pool.check_out().is_some(), "served from the pool");
    }

    #[test]
    fn parked_handles_never_pin_memory() {
        // A handle that protected a block and was then checked in must not
        // keep the block alive: parking withdraws every reservation.
        let domain = He::with_config(ReclaimerConfig::with_max_threads(4));
        let pool = HandlePool::new(Arc::clone(&domain));
        let mut owner = domain.register();
        let node = owner.alloc(3u64);
        let root: Atomic<u64> = Atomic::new(node);

        let mut reader = pool.check_out().unwrap();
        let seen = reader.protect(&root, 0, core::ptr::null_mut());
        assert_eq!(seen, node);
        drop(reader); // parked: reservation withdrawn

        root.store(core::ptr::null_mut(), SeqCst);
        // SAFETY: `node` was just unlinked from `root`; retired exactly once.
        unsafe { owner.retire(node) };
        owner.force_cleanup();
        assert_eq!(domain.stats().unreclaimed, 0, "parked handle pins nothing");
    }

    #[test]
    fn pool_drop_with_parked_handles_releases_slots_and_frees_blocks() {
        let drops = Arc::new(StdAtomicUsize::new(0));
        let domain = He::with_config(ReclaimerConfig {
            // No automatic scans: the parked handles keep non-empty batches.
            cleanup_freq: usize::MAX,
            ..ReclaimerConfig::with_max_threads(4)
        });
        let pool = HandlePool::new(Arc::clone(&domain));
        for _ in 0..3 {
            let mut guard = pool.check_out().unwrap();
            let block = guard.alloc(DropCounter::new(&drops));
            // SAFETY: the block was never published; retired exactly once.
            unsafe { guard.retire(block) };
        }
        assert_eq!(pool.parked(), 1, "single-threaded churn reuses one handle");
        drop(pool);
        assert_eq!(
            domain.registry().registered(),
            0,
            "pool drop releases every slot"
        );
        drop(domain);
        assert_eq!(
            drops.load(SeqCst),
            3,
            "every retired block freed exactly once"
        );
    }

    #[test]
    fn prewarm_fills_the_pool_and_reset_stats_gives_steady_state_rates() {
        let domain = He::with_config(ReclaimerConfig::with_max_threads(4));
        let pool = HandlePool::new(Arc::clone(&domain));
        assert_eq!(pool.prewarm(3), 3);
        assert_eq!(pool.parked(), 3);
        assert_eq!(pool.prewarm(16), 4, "clamped to registry capacity");

        let held = pool.check_out().unwrap();
        drop(held);
        pool.reset_stats();
        let again = pool.check_out().unwrap();
        let stats = pool.stats();
        assert_eq!(stats.checkouts, 1);
        assert!(
            (stats.hit_rate() - 1.0).abs() < 1e-9,
            "all hits after warm-up"
        );
        drop(again);
    }

    #[test]
    fn concurrent_check_out_in_stress() {
        const THREADS: usize = 8;
        const TASKS: usize = 500;
        let domain = He::with_config(ReclaimerConfig::with_max_threads(THREADS));
        let pool = HandlePool::new(Arc::clone(&domain));
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    for _ in 0..TASKS {
                        let mut guard = loop {
                            match pool.check_out() {
                                Some(guard) => break guard,
                                None => std::thread::yield_now(),
                            }
                        };
                        let block = guard.alloc(1u64);
                        // SAFETY: the block was never published; retired exactly once.
                        unsafe { guard.retire(block) };
                    }
                });
            }
        });
        let stats = pool.stats();
        assert_eq!(stats.checkouts, (THREADS * TASKS) as u64);
        assert!(
            stats.hits > stats.checkouts / 2,
            "steady-state churn is served from the pool (hits = {}, checkouts = {})",
            stats.hits,
            stats.checkouts
        );
        drop(pool);
        assert_eq!(domain.registry().registered(), 0);
    }
}
