//! The safe, guard-based protection API.
//!
//! The raw [`RawHandle`] interface mirrors the paper's Hazard-Eras-compatible
//! C API: bare slot indices, raw `*mut Linked<T>` results, and an `unsafe fn
//! retire` whose three-part contract every caller must re-derive by hand. It
//! remains available as the SPI for scheme implementors; application code is
//! written against the three types of this module instead:
//!
//! * [`Guard`] — an *operation bracket* created by
//!   [`Handle::enter`]. Construction runs `begin_op`,
//!   drop runs `end_op`, and every hazardous read goes through a guard, so an
//!   operation can no longer forget to open or close its bracket.
//! * [`Shield`] — an owned reservation slot leased from a handle with
//!   [`Handle::shield`]. Slot indices become a managed
//!   resource: exhaustion is an [`Err`](ShieldError) instead of a silent stomp
//!   on a neighbouring reservation, and the slot is returned when the shield
//!   is dropped. A shield is independent of any single guard, so it can be
//!   held across operations (or `.await` points) and reused.
//! * [`Protected`] — a tagged, borrow-checked pointer returned by
//!   [`Shield::protect`]. Its lifetime is tied to the guard it was read
//!   under, so it cannot outlive the operation bracket. Dereferencing via
//!   [`Protected::as_ref`] carries a single `unsafe` obligation — the shield
//!   that produced the value has not re-protected since (lease one shield
//!   per simultaneously-live pointer) — and debug builds verify that
//!   obligation at runtime. Retirement is [`Protected::retire_in`], whose
//!   single obligation is "I unlinked it".
//!
//! ```
//! use std::sync::Arc;
//! use wfe_reclaim::{Atomic, Handle, He, Reclaimer};
//!
//! let domain = He::new_default();
//! let mut handle = domain.register();
//!
//! // A shield is leased once and reused across operations.
//! let mut shield = handle.shield::<u64>().expect("slots available");
//!
//! let node = handle.alloc(42u64);
//! let root: Atomic<u64> = Atomic::new(node);
//!
//! {
//!     let guard = handle.enter(); // begin_op
//!     let value = shield.protect(&guard, &root, None);
//!     // SAFETY: `shield` does not re-protect while `value` is in use.
//!     assert_eq!(unsafe { value.as_ref() }, Some(&42));
//! } // end_op
//!
//! // Unlink, then retire through the typed API: the *only* obligation left
//! // is that the block really was unlinked.
//! root.store(core::ptr::null_mut(), core::sync::atomic::Ordering::SeqCst);
//! let guard = handle.enter();
//! // SAFETY: `node` was just unlinked from `root` and is retired once.
//! unsafe { wfe_reclaim::Protected::from_unlinked(node).retire_in(&guard) };
//! ```
//!
//! # What the borrow checker enforces — and what it cannot
//!
//! A [`Protected`] cannot outlive its [`Guard`] (compile error), and a
//! [`Shield`] leased from one scheme's handle cannot be used with a guard of
//! another scheme (type error); using it with a *different handle of the same
//! scheme* panics at runtime. One granularity the type system does not
//! track: re-protecting through the *same* shield overwrites the reservation
//! slot and thereby ends the protection of the pointer the shield
//! previously returned. This is exactly why [`Protected::as_ref`] is
//! `unsafe`. Tying the returned value to `&mut self` of the shield (the
//! `haphazard` approach) would move the check to compile time, but it also
//! rejects the hand-over-hand window every list/tree traversal here returns
//! from its retry loop: a borrow that flows into a returned window is
//! extended to the whole function body under non-lexical lifetimes, so each
//! loop-back re-protect through the same shield conflicts with it (rustc
//! E0499 — the classic NLL "problem case #3"). Until the borrow checker can
//! express that pattern, the discipline is *lease one shield per
//! simultaneously-live pointer*, exactly as the data structures in `wfe-ds`
//! do — and debug builds verify it: every [`Shield::protect`] bumps a
//! per-slot generation that is stamped into the [`Protected`] it returns,
//! and a stale [`as_ref`](Protected::as_ref) panics deterministically
//! instead of touching freed memory.

use core::marker::PhantomData;
use core::ptr;
use std::sync::Arc;
use wfe_sync::atomic::{AtomicUsize, Ordering};

use crate::api::{Handle, RawHandle};
use crate::block::Linked;
use crate::ptr::{tag, Atomic};

/// The lease table behind a handle's [`Shield`]s: one bit per application
/// reservation slot.
///
/// Shared (via `Arc`) between the handle and every shield leased from it, so
/// a shield can return its slot even after the handle moved or was parked in
/// a [`HandlePool`](crate::pool::HandlePool). The `Arc` identity doubles as
/// the handle identity [`Shield::protect`] validates at runtime.
#[derive(Debug)]
pub struct ShieldSlots {
    /// Bit `i` set ⇔ slot `i` is currently leased to a live `Shield`.
    bitmap: AtomicUsize,
    /// Number of leasable slots (the handle's application slots, capped at
    /// one machine word of bits).
    slots: usize,
    /// Per-slot protect generation, bumped by every [`Shield::protect`] and
    /// stamped into the [`Protected`] it returns so a stale value (one whose
    /// slot has since been re-protected) is caught at `as_ref` time.
    /// Debug builds only — release builds carry no stamp.
    #[cfg(debug_assertions)]
    generations: Box<[AtomicUsize]>,
}

impl ShieldSlots {
    /// Creates a lease table for `slots` application reservation slots.
    ///
    /// At most [`usize::BITS`] slots are leasable through shields; schemes
    /// configured with more still expose them through the raw SPI (and
    /// [`ShieldError`]'s message points this out when the capped table is
    /// exhausted).
    pub fn new(slots: usize) -> Arc<Self> {
        let slots = slots.min(usize::BITS as usize);
        Arc::new(Self {
            bitmap: AtomicUsize::new(0),
            slots,
            #[cfg(debug_assertions)]
            generations: (0..slots).map(|_| AtomicUsize::new(0)).collect(),
        })
    }

    /// Number of slots this table can lease.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots
    }

    /// Number of slots currently leased.
    pub fn leased(&self) -> usize {
        self.bitmap.load(Ordering::Acquire).count_ones() as usize // ORDER: pairs with the AcqRel lease/release RMWs on the bitmap.
    }

    /// Leases the lowest free slot, or `None` when all are taken.
    fn lease(&self) -> Option<usize> {
        let mut current = self.bitmap.load(Ordering::Relaxed); // ORDER: optimistic first read; the CAS below re-validates it.
        loop {
            let slot = (!current).trailing_zeros() as usize;
            if slot >= self.slots {
                return None;
            }
            match self.bitmap.compare_exchange_weak(
                current,
                current | (1 << slot),
                Ordering::AcqRel, // ORDER: success publishes the lease; a failed read is retried with the observed value.
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(slot),
                Err(observed) => current = observed,
            }
        }
    }

    /// Returns a leased slot (called by `Shield::drop`).
    fn release(&self, slot: usize) {
        let prev = self.bitmap.fetch_and(!(1 << slot), Ordering::AcqRel); // ORDER: pairs with the Acquire reads of the bitmap; the slot contents are not transferred through it.
        debug_assert!(prev & (1 << slot) != 0, "releasing a slot never leased");
    }

    /// The protect-generation cell of `slot` (see [`Shield::protect`]).
    #[cfg(debug_assertions)]
    #[inline]
    fn generation(&self, slot: usize) -> &AtomicUsize {
        &self.generations[slot]
    }
}

/// Error returned by [`Handle::shield`] when every
/// reservation slot of the handle is already leased.
///
/// The raw API would have let the extra index silently stomp a neighbouring
/// reservation (a use-after-free time bomb); the typed API reports it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShieldError {
    /// Number of *leasable* slots the handle has (all currently leased).
    ///
    /// Capped at [`usize::BITS`] even when `DomainConfig::slots_per_thread`
    /// is larger — slots beyond the cap exist but are only reachable through
    /// the raw SPI (see [`ShieldSlots::new`]).
    pub slots: usize,
}

impl core::fmt::Display for ShieldError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.slots >= usize::BITS as usize {
            // Raising `slots_per_thread` cannot help past the lease cap, so
            // the usual advice would be misleading here.
            write!(
                f,
                "reservation slots exhausted: all {} leasable slots of this handle \
                 are leased (shields can lease at most {} slots per handle; slots \
                 beyond that cap are only reachable through the raw SPI — drop an \
                 unused Shield instead)",
                self.slots,
                usize::BITS
            )
        } else {
            write!(
                f,
                "reservation slots exhausted: all {} slots of this handle are leased \
                 (raise DomainConfig slots_per_thread or drop an unused Shield)",
                self.slots
            )
        }
    }
}

impl std::error::Error for ShieldError {}

/// An operation bracket: the region between `begin_op` and `end_op` in which
/// shared pointers may be read.
///
/// Created by [`Handle::enter`]; dropping the guard
/// closes the bracket (dropping every protection for the epoch- and
/// interval-based schemes, clearing reservations for the rest). The guard
/// borrows the handle mutably for its whole lifetime, so an operation cannot
/// interleave raw handle calls with guarded reads.
///
/// A [`Protected`] pointer cannot outlive the guard it was read under:
///
/// ```compile_fail
/// use wfe_reclaim::{Atomic, Handle, He, Reclaimer};
/// let domain = He::new_default();
/// let mut handle = domain.register();
/// let mut shield = handle.shield::<u64>().unwrap();
/// let node = handle.alloc(1u64);
/// let root: Atomic<u64> = Atomic::new(node);
/// let escaped = {
///     let guard = handle.enter();
///     shield.protect(&guard, &root, None)
/// }; // ERROR: `guard` dropped while `escaped` still borrows it
/// unsafe { escaped.as_ref() };
/// ```
///
/// And the bracket cannot leave its thread — protection is per-registry-slot
/// state owned by the handle, so the guard is deliberately `!Send` (this is
/// what forces async code through the poll-scoped `AsyncGuard` of the task
/// layer rather than holding a bracket across `.await`):
///
/// ```compile_fail,E0277
/// use wfe_reclaim::{Handle, He, Reclaimer};
/// fn requires_send<T: Send>(_: T) {}
/// let domain = He::new_default();
/// let mut handle = domain.register();
/// let guard = handle.enter();
/// requires_send(guard); // ERROR: `Guard<'_, HeHandle>` is not `Send`
/// ```
pub struct Guard<'h, H: RawHandle> {
    /// Exclusive access to the handle for the guard's lifetime. A raw pointer
    /// (rather than `&'h mut H`) so that [`Shield::protect`] can take `&self`:
    /// several `Protected` values may borrow the guard *shared* at once while
    /// protect/retire calls still reach the handle's `&mut` methods.
    handle: *mut H,
    _marker: PhantomData<&'h mut H>,
}

impl<'h, H: RawHandle> Guard<'h, H> {
    /// Opens the bracket. Called by [`Handle::enter`].
    pub(crate) fn new(handle: &'h mut H) -> Self {
        handle.begin_op();
        Self {
            handle,
            _marker: PhantomData,
        }
    }

    /// Runs `f` with exclusive access to the handle.
    ///
    /// SAFETY argument for the interior `&mut`: the guard was constructed
    /// from `&'h mut H` (no other reference to the handle can exist for
    /// `'h`), the raw-pointer field makes the guard `!Send`/`!Sync` (no
    /// cross-thread aliasing), and every closure passed here is a leaf call
    /// into the handle that never re-enters the guard (no reentrant `&mut`).
    #[inline]
    fn with<R>(&self, f: impl FnOnce(&mut H) -> R) -> R {
        // SAFETY: see above — exclusive, single-threaded, non-reentrant.
        f(unsafe { &mut *self.handle })
    }

    /// Dense index of the underlying thread in `0..max_threads`.
    #[inline]
    pub fn thread_id(&self) -> usize {
        self.with(|h| h.thread_id())
    }

    /// Number of reservation slots of the underlying handle.
    #[inline]
    pub fn slots(&self) -> usize {
        self.with(|h| h.slots())
    }

    /// Allocates a reclaimable block mid-operation (the paper's
    /// `alloc_block`). The pointer is owned by the caller until it is either
    /// published into the data structure or freed with [`Linked::dealloc`].
    #[inline]
    pub fn alloc<T>(&self, value: T) -> *mut Linked<T> {
        self.with(|h| h.alloc(value))
    }

    /// The lease-table identity of the underlying handle (used by
    /// [`Shield::protect`] to reject shields leased from another handle).
    #[inline]
    fn slots_identity(&self) -> *const ShieldSlots {
        self.with(|h| Arc::as_ptr(h.shield_slots()))
    }

    /// The protect-generation cell of `slot` in the handle's lease table,
    /// reborrowed for the guard's lifetime. [`Shield::protect`] stamps it
    /// into every [`Protected`] so a stale value can be detected.
    #[cfg(debug_assertions)]
    #[inline]
    fn generation_cell(&self, slot: usize) -> &AtomicUsize {
        // SAFETY: `RawHandle::shield_slots` hands back the same `Arc` for
        // the handle's whole lifetime (trait contract), the guard keeps the
        // handle borrowed for at least as long as `self`, and the table is
        // never structurally mutated — so the cell outlives every borrow of
        // this guard.
        unsafe { (*self.slots_identity()).generation(slot) }
    }

    /// Protects and returns the pointer at `src` through slot `index` of this
    /// guard's handle. Internal engine of [`Shield::protect`].
    #[inline]
    fn protect_in_slot<'g, T>(
        &'g self,
        index: usize,
        src: &Atomic<T>,
        parent: Option<Protected<'_, T>>,
    ) -> Protected<'g, T> {
        let parent_ptr = parent.map_or(ptr::null_mut(), |p| p.untagged().as_raw());
        let raw = self.with(|h| h.protect(src, index, parent_ptr));
        Protected::from_raw(raw)
    }

    /// Retires `block` (called by [`Protected::retire_in`]).
    ///
    /// # Safety
    ///
    /// Same contract as [`crate::Handle::retire`].
    #[inline]
    unsafe fn retire_block<T>(&self, block: *mut Linked<T>) {
        // SAFETY: forwarded contract — the caller (`Protected::retire_in`)
        // guarantees the block is unlinked and retired exactly once.
        self.with(|h| unsafe { h.retire(block) })
    }
}

impl<H: RawHandle> Drop for Guard<'_, H> {
    fn drop(&mut self) {
        self.with(|h| h.end_op());
    }
}

impl<H: RawHandle> core::fmt::Debug for Guard<'_, H> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Guard")
            .field("thread_id", &self.thread_id())
            .finish()
    }
}

/// Variance/auto-trait marker for [`Shield`]: the shield is tied to a
/// protected type `T` and a handle type `H` without owning either.
type ShieldMarker<T, H> = PhantomData<(fn() -> T, fn(&H))>;

/// An owned reservation slot, leased from a handle with
/// [`Handle::shield`] and returned on drop.
///
/// One shield protects one pointer at a time: [`Shield::protect`] publishes
/// whatever reservation the scheme needs in the leased slot and hands back a
/// borrow-checked [`Protected`]. Lease as many shields as the operation has
/// simultaneously-live pointers (a list traversal needs two, the BST window
/// needs five).
///
/// The shield is typed by the scheme's handle, so it cannot cross schemes:
///
/// ```compile_fail
/// use wfe_reclaim::{Atomic, Handle, He, Hp, Reclaimer};
/// let he = He::new_default();
/// let hp = Hp::new_default();
/// let mut he_handle = he.register();
/// let mut hp_handle = hp.register();
/// let mut shield = he_handle.shield::<u64>().unwrap();
/// let root: Atomic<u64> = Atomic::null();
/// let guard = hp_handle.enter();
/// shield.protect(&guard, &root, None); // ERROR: HE shield, HP guard
/// ```
///
/// Using a shield with a different *handle* of the same scheme is rejected at
/// runtime (panic) — see [`Shield::protect`].
pub struct Shield<T, H: RawHandle> {
    slot: usize,
    slots: Arc<ShieldSlots>,
    _marker: ShieldMarker<T, H>,
}

impl<T, H: RawHandle> Shield<T, H> {
    /// Leases the lowest free slot of `handle`. Called by
    /// [`Handle::shield`].
    pub(crate) fn lease(handle: &H) -> Result<Self, ShieldError> {
        let slots = handle.shield_slots();
        match slots.lease() {
            Some(slot) => Ok(Self {
                slot,
                slots: Arc::clone(slots),
                _marker: PhantomData,
            }),
            None => Err(ShieldError {
                slots: slots.capacity(),
            }),
        }
    }

    /// The reservation slot index this shield owns.
    #[inline]
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Hazard-Eras `get_protected`, typed: reads the pointer stored at `src`,
    /// publishes the scheme's reservation in this shield's slot, and returns
    /// a [`Protected`] tied to `guard`.
    ///
    /// `parent` is the protected block that physically contains `src`
    /// (`None` when `src` is a data-structure root). Only WFE's slow path
    /// uses it; passing it is how the paper's §3.4 API convention — "the
    /// parent must itself be protected" — becomes a typed requirement.
    ///
    /// Re-protecting through the same shield releases the protection of the
    /// pointer it previously returned (see the [module docs](self)). In
    /// debug builds each call bumps this slot's generation, so a stale
    /// [`Protected`] kept past that point panics on its next
    /// [`as_ref`](Protected::as_ref) instead of dereferencing freed memory.
    ///
    /// # Panics
    ///
    /// Panics if the shield was leased from a different handle than the one
    /// `guard` brackets — the slot index would otherwise stomp an unrelated
    /// reservation of that handle.
    #[inline]
    pub fn protect<'g>(
        &mut self,
        guard: &'g Guard<'_, H>,
        src: &Atomic<T>,
        parent: Option<Protected<'_, T>>,
    ) -> Protected<'g, T> {
        assert!(
            core::ptr::eq(Arc::as_ptr(&self.slots), guard.slots_identity()),
            "Shield used with a guard of a different handle (lease a shield from \
             the handle that entered this operation)"
        );
        // Invalidate any Protected previously returned for this slot before
        // its reservation is overwritten below.
        #[cfg(debug_assertions)]
        let stamp = {
            let cell = guard.generation_cell(self.slot);
            let gen = cell.load(Ordering::Relaxed).wrapping_add(1); // ORDER: debug-only generation stamp; same-thread accesses.
            cell.store(gen, Ordering::Relaxed); // ORDER: debug-only generation stamp; same-thread accesses.
            SlotStamp { cell, gen }
        };
        #[cfg_attr(not(debug_assertions), allow(unused_mut))]
        let mut protected = guard.protect_in_slot(self.slot, src, parent);
        #[cfg(debug_assertions)]
        {
            protected.stamp = Some(stamp);
        }
        protected
    }
}

impl<T, H: RawHandle> Drop for Shield<T, H> {
    fn drop(&mut self) {
        self.slots.release(self.slot);
    }
}

impl<T, H: RawHandle> core::fmt::Debug for Shield<T, H> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Shield").field("slot", &self.slot).finish()
    }
}

/// A tagged, borrow-checked pointer to a reclaimable block, valid for the
/// lifetime `'g` of the [`Guard`] it was read under.
///
/// Obtained from [`Shield::protect`] (or, as the single unsafe escape hatch,
/// [`Protected::from_unlinked`]). The pointer keeps any low tag bits found in
/// the source; the *protected* object is the untagged block, which is what
/// [`Protected::as_ref`] dereferences.
///
/// Like the guard it borrows, a `Protected` is deliberately `!Send`: the
/// reservation backing it lives in the handle's registry slot, so the value
/// is meaningless on any other thread:
///
/// ```compile_fail,E0277
/// use wfe_reclaim::{Atomic, Handle, He, Reclaimer};
/// fn requires_send<T: Send>(_: T) {}
/// let domain = He::new_default();
/// let mut handle = domain.register();
/// let mut shield = handle.shield::<u64>().unwrap();
/// let root: Atomic<u64> = Atomic::null();
/// let guard = handle.enter();
/// let p = shield.protect(&guard, &root, None);
/// requires_send(p); // ERROR: `Protected<'_, u64>` is not `Send`
/// ```
pub struct Protected<'g, T> {
    /// Raw, possibly tagged pointer.
    ptr: *mut Linked<T>,
    /// Which protect-generation of its slot this value belongs to; `None`
    /// for values not backed by a reservation slot ([`Protected::null`],
    /// [`Protected::from_unlinked`]). Debug builds only.
    #[cfg(debug_assertions)]
    stamp: Option<SlotStamp<'g>>,
    /// Ties the value to the guard's borrow region.
    _guard: PhantomData<&'g ()>,
}

/// The (generation cell, observed generation) pair [`Shield::protect`]
/// stamps into a [`Protected`]; [`Protected::as_ref`] compares the cell
/// against the stamp to detect that the slot has been re-protected (which
/// ends this value's reservation). Debug builds only.
#[cfg(debug_assertions)]
#[derive(Clone, Copy)]
struct SlotStamp<'g> {
    cell: &'g AtomicUsize,
    gen: usize,
}

impl<T> Clone for Protected<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Protected<'_, T> {}

impl<'g, T> Protected<'g, T> {
    /// Wraps a raw pointer with no slot stamp (internal constructor; the
    /// stamped path is [`Shield::protect`]).
    #[inline]
    fn from_raw(ptr: *mut Linked<T>) -> Self {
        Self {
            ptr,
            #[cfg(debug_assertions)]
            stamp: None,
            _guard: PhantomData,
        }
    }

    /// The null pointer (protects nothing; `as_ref` returns `None`).
    #[inline]
    pub fn null() -> Self {
        Self::from_raw(ptr::null_mut())
    }

    /// The unsafe escape hatch: wraps a raw pointer in a `Protected` without
    /// a reservation.
    ///
    /// # Safety
    ///
    /// The caller guarantees the block cannot be reclaimed while this value
    /// (or anything derived from it) is in use. The two legitimate cases:
    ///
    /// * the calling thread just **unlinked** the block and owns its
    ///   retirement (constructing a `Protected` only to call
    ///   [`retire_in`](Self::retire_in), or to read a value only the
    ///   unlinking thread may still access);
    /// * the block is an **immortal sentinel** that its data structure never
    ///   retires (e.g. the Natarajan-Mittal BST's root nodes).
    ///
    /// A value constructed this way and passed to [`retire_in`](Self::retire_in)
    /// must additionally come from the same domain as the retiring guard's
    /// handle (see `retire_in`'s contract).
    #[inline]
    pub unsafe fn from_unlinked(ptr: *mut Linked<T>) -> Self {
        Self::from_raw(ptr)
    }

    /// The raw, possibly tagged pointer (for CAS expected/new values and
    /// pointer comparisons; dereferencing it is on the caller).
    #[inline]
    pub fn as_raw(&self) -> *mut Linked<T> {
        self.ptr
    }

    /// `true` if the untagged pointer is null.
    #[inline]
    pub fn is_null(&self) -> bool {
        tag::untagged(self.ptr).is_null()
    }

    /// The low tag bits carried by the pointer.
    #[inline]
    pub fn tag(&self) -> usize {
        tag::tag_of(self.ptr)
    }

    /// The same protected block with all tag bits cleared.
    #[inline]
    pub fn untagged(self) -> Self {
        Self {
            ptr: tag::untagged(self.ptr),
            ..self
        }
    }

    /// The same protected block carrying `tag` (previous tag cleared).
    #[inline]
    pub fn with_tag(self, tag_bits: usize) -> Self {
        Self {
            ptr: tag::with_tag(self.ptr, tag_bits),
            ..self
        }
    }

    /// Dereferences the protected block. Returns `None` for null.
    ///
    /// The returned reference lives as long as the guard: the reservation
    /// taken by [`Shield::protect`] keeps the block from being freed until
    /// the bracket closes.
    ///
    /// # Safety
    ///
    /// The reservation this value was returned under must still be in
    /// place: the [`Shield`] that produced it must not have re-protected —
    /// and its slot must not have been re-leased and re-protected — between
    /// [`Shield::protect`] and the last use of the returned reference.
    /// Leasing one shield per simultaneously-live pointer (each structure's
    /// `REQUIRED_SLOTS` count) satisfies this by construction. Values built
    /// with [`Protected::from_unlinked`] answer to that constructor's
    /// contract (just-unlinked and owned, or immortal) instead.
    ///
    /// Debug builds verify the obligation: every `Shield::protect` bumps a
    /// per-slot generation, and a stale `as_ref` panics (see the
    /// [module docs](self)).
    ///
    /// # Panics
    ///
    /// In debug builds, panics if the value is stale as described above.
    #[inline]
    pub unsafe fn as_ref(&self) -> Option<&'g T> {
        let clean = tag::untagged(self.ptr);
        if clean.is_null() {
            return None;
        }
        #[cfg(debug_assertions)]
        if let Some(stamp) = self.stamp {
            assert!(
                stamp.cell.load(Ordering::Relaxed) == stamp.gen, // ORDER: debug-only generation stamp; same-thread accesses.
                "stale Protected: its Shield re-protected (or its slot was \
                 re-leased and re-protected) after this value was returned, \
                 which ended its reservation — lease one Shield per \
                 simultaneously-live pointer"
            );
        }
        // SAFETY: the protection invariant — `clean` was published in a
        // reservation slot under `'g`'s guard and the caller guarantees the
        // slot has not been re-protected since (or the value was asserted
        // immortal / owned via `from_unlinked`), so the scheme will not free
        // it while `'g` is live, and `Linked<T>` keeps the payload at a
        // stable address.
        Some(unsafe { &(*clean).value })
    }

    /// `true` if both values point at the same block with the same tag.
    #[inline]
    pub fn ptr_eq(&self, other: Protected<'_, T>) -> bool {
        self.ptr == other.ptr
    }

    /// Retires the block (the paper's `retire`), encapsulating the raw
    /// three-part contract behind one obligation.
    ///
    /// # Safety
    ///
    /// **"I unlinked it":** the calling thread made this block unreachable
    /// from the data structure (it won the unlink CAS, or the block was never
    /// published), and no other thread will retire it. In addition, `guard`
    /// must bracket a handle of the **domain the block was allocated in** —
    /// a different domain's cleanup never scans the readers' reservations and
    /// would free the block under them. Note that `retire_in` is generic
    /// over the guard's handle type and performs no domain-identity check
    /// (the block header does not record its owning domain), so this
    /// obligation binds *every* call: even a `Protected` obtained from
    /// [`Shield::protect`] on domain A can be wrongly handed a guard of
    /// domain B — the type system only rules out crossing *schemes*, not
    /// domains of the same scheme.
    #[inline]
    pub unsafe fn retire_in<H: RawHandle>(self, guard: &Guard<'_, H>) {
        debug_assert!(!self.is_null(), "cannot retire a null block");
        debug_assert_eq!(self.tag(), 0, "cannot retire a tagged pointer");
        // SAFETY: forwarded "unlinked exactly once" obligation.
        unsafe { guard.retire_block(self.ptr) };
    }
}

impl<T> PartialEq for Protected<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.ptr == other.ptr
    }
}

impl<T> Eq for Protected<'_, T> {}

impl<T> core::fmt::Debug for Protected<'_, T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "Protected({:p}, tag {})",
            tag::untagged(self.ptr),
            self.tag()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{Reclaimer, ReclaimerConfig};
    use crate::he::He;

    #[test]
    fn shield_lease_release_roundtrip() {
        let domain = He::with_config(ReclaimerConfig::with_max_threads(2));
        let handle = domain.register();
        let total = handle.shield_slots().capacity();
        assert!(total >= 2);
        let a = Handle::shield::<u64>(&handle).unwrap();
        let b = Handle::shield::<u64>(&handle).unwrap();
        assert_ne!(a.slot(), b.slot());
        assert_eq!(handle.shield_slots().leased(), 2);
        drop(a);
        assert_eq!(handle.shield_slots().leased(), 1);
        let c = Handle::shield::<u64>(&handle).unwrap();
        assert_eq!(c.slot(), 0, "lowest slot is recycled first");
        drop(b);
        drop(c);
        assert_eq!(handle.shield_slots().leased(), 0);
    }

    #[test]
    fn shield_exhaustion_is_an_error_not_a_stomp() {
        let domain = He::with_config(ReclaimerConfig {
            slots_per_thread: 2,
            ..ReclaimerConfig::with_max_threads(1)
        });
        let handle = domain.register();
        let _a = Handle::shield::<u64>(&handle).unwrap();
        let _b = Handle::shield::<u64>(&handle).unwrap();
        let err = Handle::shield::<u64>(&handle).unwrap_err();
        assert_eq!(err.slots, 2);
        assert!(err.to_string().contains("slots_per_thread"));
    }

    #[test]
    fn guard_brackets_protect_and_retire() {
        let domain = He::with_config(ReclaimerConfig::with_max_threads(2));
        let mut handle = domain.register();
        let mut shield = handle.shield::<u64>().unwrap();
        let node = handle.alloc(9u64);
        let root: Atomic<u64> = Atomic::new(node);
        {
            let guard = handle.enter();
            let p = shield.protect(&guard, &root, None);
            assert!(!p.is_null());
            // SAFETY: `shield` does not re-protect while `p` is in use.
            assert_eq!(unsafe { p.as_ref() }, Some(&9));
            assert_eq!(p.as_raw(), node);
        }
        root.store(ptr::null_mut(), Ordering::SeqCst);
        let guard = handle.enter();
        // SAFETY: just unlinked from `root`, retired once.
        unsafe { Protected::from_unlinked(node).retire_in(&guard) };
        drop(guard);
        handle.force_cleanup();
        assert_eq!(domain.stats().unreclaimed, 0);
    }

    #[test]
    fn protect_pins_the_block_until_the_bracket_closes() {
        let domain = He::with_config(ReclaimerConfig {
            cleanup_freq: 1,
            era_freq: 1,
            ..ReclaimerConfig::with_max_threads(2)
        });
        let mut reader = domain.register();
        let mut writer = domain.register();
        let mut shield = reader.shield::<u64>().unwrap();
        let node = writer.alloc(5u64);
        let root: Atomic<u64> = Atomic::new(node);

        let guard = reader.enter();
        let p = shield.protect(&guard, &root, None);
        // SAFETY: `shield` does not re-protect while `p` is in use.
        assert_eq!(unsafe { p.as_ref() }, Some(&5));

        root.store(ptr::null_mut(), Ordering::SeqCst);
        {
            let wguard = writer.enter();
            // SAFETY: unlinked above, retired once.
            unsafe { Protected::from_unlinked(node).retire_in(&wguard) };
        }
        writer.force_cleanup();
        assert_eq!(domain.stats().unreclaimed, 1, "guarded read pins the block");
        // SAFETY: `shield` still has not re-protected; the reservation holds.
        let still_readable = unsafe { p.as_ref() };
        assert_eq!(still_readable, Some(&5), "still readable while protected");

        drop(guard);
        writer.force_cleanup();
        assert_eq!(domain.stats().unreclaimed, 0);
    }

    #[test]
    #[should_panic(expected = "different handle")]
    fn shield_cannot_cross_handles_of_the_same_scheme() {
        let domain = He::with_config(ReclaimerConfig::with_max_threads(2));
        let first = domain.register();
        let mut second = domain.register();
        let mut shield = Handle::shield::<u64>(&first).unwrap();
        let root: Atomic<u64> = Atomic::null();
        let guard = second.enter();
        let _ = shield.protect(&guard, &root, None);
    }

    #[test]
    fn tag_round_trip_on_protected() {
        let domain = He::with_config(ReclaimerConfig::with_max_threads(1));
        let mut handle = domain.register();
        let node = handle.alloc(3u32);
        let root: Atomic<u32> = Atomic::new(tag::with_tag(node, 1));
        let mut shield = handle.shield::<u32>().unwrap();
        let guard = handle.enter();
        let p = shield.protect(&guard, &root, None);
        assert_eq!(p.tag(), 1);
        assert_eq!(p.untagged().tag(), 0);
        assert_eq!(p.with_tag(2).tag(), 2);
        assert_eq!(p.untagged().as_raw(), node);
        // SAFETY: `shield` does not re-protect while `p` is in use.
        assert_eq!(unsafe { p.as_ref() }, Some(&3), "as_ref ignores the tag");
        drop(guard);
        // SAFETY: never published anywhere else; freed exactly once.
        unsafe { Linked::dealloc(node) };
    }

    #[test]
    fn null_protected_behaves() {
        let p: Protected<'_, u64> = Protected::null();
        assert!(p.is_null());
        // SAFETY: null never dereferences.
        assert_eq!(unsafe { p.as_ref() }, None);
        assert_eq!(p.tag(), 0);
        assert!(p.ptr_eq(Protected::null()));
    }

    #[test]
    fn exhaustion_at_the_lease_cap_explains_the_cap() {
        // Constructed directly: leasing 64 real shields would test the same
        // Display path at far greater cost.
        let capped = ShieldError {
            slots: usize::BITS as usize,
        };
        let msg = capped.to_string();
        let cap_phrase = format!("at most {}", usize::BITS);
        assert!(msg.contains(&cap_phrase), "cap message missing: {msg}");
        assert!(
            !msg.contains("raise DomainConfig"),
            "capped message must not advise raising slots_per_thread: {msg}"
        );
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "stale Protected")]
    fn stale_protected_after_reprotect_panics_in_debug() {
        let domain = He::with_config(ReclaimerConfig::with_max_threads(1));
        let mut handle = domain.register();
        let mut shield = handle.shield::<u64>().unwrap();
        let a = handle.alloc(1u64);
        let b = handle.alloc(2u64);
        let root_a: Atomic<u64> = Atomic::new(a);
        let root_b: Atomic<u64> = Atomic::new(b);
        let guard = handle.enter();
        let stale = shield.protect(&guard, &root_a, None);
        let fresh = shield.protect(&guard, &root_b, None);
        // SAFETY: `fresh` is the shield's current reservation.
        assert_eq!(unsafe { fresh.as_ref() }, Some(&2));
        // SAFETY: deliberately violated contract — the generation stamp must
        // turn this use-after-reprotect into a panic, not a stale read.
        let _ = unsafe { stale.as_ref() };
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "stale Protected")]
    fn stale_protected_after_slot_release_and_reuse_panics_in_debug() {
        let domain = He::with_config(ReclaimerConfig::with_max_threads(1));
        let mut handle = domain.register();
        let first = handle.shield::<u64>();
        let mut shield = first.unwrap();
        let slot = shield.slot();
        let table = Arc::clone(handle.shield_slots());
        let node = handle.alloc(7u64);
        let root: Atomic<u64> = Atomic::new(node);
        let guard = handle.enter();
        let stale = shield.protect(&guard, &root, None);
        drop(shield);
        // Re-lease the same slot (the handle itself is borrowed by the
        // guard, so the shield is assembled from the shared lease table the
        // public path uses).
        assert_eq!(table.lease(), Some(slot), "lowest slot is recycled first");
        let mut second: Shield<u64, <He as Reclaimer>::Handle> = Shield {
            slot,
            slots: table,
            _marker: PhantomData,
        };
        let _ = second.protect(&guard, &root, None);
        // SAFETY: deliberately violated contract — the slot was re-leased
        // and re-protected, so the stamp check must fire.
        let _ = unsafe { stale.as_ref() };
    }
}
