//! The safe, guard-based protection API.
//!
//! The raw [`RawHandle`] interface mirrors the paper's Hazard-Eras-compatible
//! C API: bare slot indices, raw `*mut Linked<T>` results, and an `unsafe fn
//! retire` whose three-part contract every caller must re-derive by hand. It
//! remains available as the SPI for scheme implementors; application code is
//! written against the three types of this module instead:
//!
//! * [`Guard`] — an *operation bracket* created by
//!   [`Handle::enter`]. Construction runs `begin_op`,
//!   drop runs `end_op`, and every hazardous read goes through a guard, so an
//!   operation can no longer forget to open or close its bracket.
//! * [`Shield`] — an owned reservation slot leased from a handle with
//!   [`Handle::shield`]. Slot indices become a managed
//!   resource: exhaustion is an [`Err`](ShieldError) instead of a silent stomp
//!   on a neighbouring reservation, and the slot is returned when the shield
//!   is dropped. A shield is independent of any single guard, so it can be
//!   held across operations (or `.await` points) and reused.
//! * [`Protected`] — a tagged, borrow-checked pointer returned by
//!   [`Shield::protect`]. Its lifetime is tied to the guard it was read
//!   under, so it cannot outlive the operation bracket; dereferencing via
//!   [`Protected::as_ref`] is *safe*. Retirement is
//!   [`Protected::retire_in`], whose single obligation is "I unlinked it".
//!
//! ```
//! use std::sync::Arc;
//! use wfe_reclaim::{Atomic, Handle, He, Reclaimer};
//!
//! let domain = He::new_default();
//! let mut handle = domain.register();
//!
//! // A shield is leased once and reused across operations.
//! let mut shield = handle.shield::<u64>().expect("slots available");
//!
//! let node = handle.alloc(42u64);
//! let root: Atomic<u64> = Atomic::new(node);
//!
//! {
//!     let guard = handle.enter(); // begin_op
//!     let value = shield.protect(&guard, &root, None);
//!     assert_eq!(value.as_ref(), Some(&42));
//! } // end_op
//!
//! // Unlink, then retire through the typed API: the *only* obligation left
//! // is that the block really was unlinked.
//! root.store(core::ptr::null_mut(), core::sync::atomic::Ordering::SeqCst);
//! let guard = handle.enter();
//! // SAFETY: `node` was just unlinked from `root` and is retired once.
//! unsafe { wfe_reclaim::Protected::from_unlinked(node).retire_in(&guard) };
//! ```
//!
//! # What the borrow checker enforces — and what it cannot
//!
//! A [`Protected`] cannot outlive its [`Guard`] (compile error), and a
//! [`Shield`] leased from one scheme's handle cannot be used with a guard of
//! another scheme (type error); using it with a *different handle of the same
//! scheme* panics at runtime. One granularity is deliberately not tracked:
//! re-protecting through the *same* shield ends the protection of the pointer
//! it previously returned (the reservation slot is overwritten). Keeping the
//! older [`Protected`] around past that point is a logic error for the
//! slot-based schemes (HP/HE/WFE/2GEIBR); lease one shield per
//! simultaneously-live pointer, exactly as the data structures in `wfe-ds` do.

use core::marker::PhantomData;
use core::ptr;
use core::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::api::{Handle, RawHandle};
use crate::block::Linked;
use crate::ptr::{tag, Atomic};

/// The lease table behind a handle's [`Shield`]s: one bit per application
/// reservation slot.
///
/// Shared (via `Arc`) between the handle and every shield leased from it, so
/// a shield can return its slot even after the handle moved or was parked in
/// a [`HandlePool`](crate::pool::HandlePool). The `Arc` identity doubles as
/// the handle identity [`Shield::protect`] validates at runtime.
#[derive(Debug)]
pub struct ShieldSlots {
    /// Bit `i` set ⇔ slot `i` is currently leased to a live `Shield`.
    bitmap: AtomicUsize,
    /// Number of leasable slots (the handle's application slots, capped at
    /// one machine word of bits).
    slots: usize,
}

impl ShieldSlots {
    /// Creates a lease table for `slots` application reservation slots.
    ///
    /// At most [`usize::BITS`] slots are leasable through shields; schemes
    /// configured with more still expose them through the raw SPI.
    pub fn new(slots: usize) -> Arc<Self> {
        Arc::new(Self {
            bitmap: AtomicUsize::new(0),
            slots: slots.min(usize::BITS as usize),
        })
    }

    /// Number of slots this table can lease.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots
    }

    /// Number of slots currently leased.
    pub fn leased(&self) -> usize {
        self.bitmap.load(Ordering::Acquire).count_ones() as usize
    }

    /// Leases the lowest free slot, or `None` when all are taken.
    fn lease(&self) -> Option<usize> {
        let mut current = self.bitmap.load(Ordering::Relaxed);
        loop {
            let slot = (!current).trailing_zeros() as usize;
            if slot >= self.slots {
                return None;
            }
            match self.bitmap.compare_exchange_weak(
                current,
                current | (1 << slot),
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(slot),
                Err(observed) => current = observed,
            }
        }
    }

    /// Returns a leased slot (called by `Shield::drop`).
    fn release(&self, slot: usize) {
        let prev = self.bitmap.fetch_and(!(1 << slot), Ordering::AcqRel);
        debug_assert!(prev & (1 << slot) != 0, "releasing a slot never leased");
    }
}

/// Error returned by [`Handle::shield`] when every
/// reservation slot of the handle is already leased.
///
/// The raw API would have let the extra index silently stomp a neighbouring
/// reservation (a use-after-free time bomb); the typed API reports it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShieldError {
    /// Number of slots the handle has (all currently leased).
    pub slots: usize,
}

impl core::fmt::Display for ShieldError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "reservation slots exhausted: all {} slots of this handle are leased \
             (raise DomainConfig slots_per_thread or drop an unused Shield)",
            self.slots
        )
    }
}

impl std::error::Error for ShieldError {}

/// An operation bracket: the region between `begin_op` and `end_op` in which
/// shared pointers may be read.
///
/// Created by [`Handle::enter`]; dropping the guard
/// closes the bracket (dropping every protection for the epoch- and
/// interval-based schemes, clearing reservations for the rest). The guard
/// borrows the handle mutably for its whole lifetime, so an operation cannot
/// interleave raw handle calls with guarded reads.
///
/// A [`Protected`] pointer cannot outlive the guard it was read under:
///
/// ```compile_fail
/// use wfe_reclaim::{Atomic, Handle, He, Reclaimer};
/// let domain = He::new_default();
/// let mut handle = domain.register();
/// let mut shield = handle.shield::<u64>().unwrap();
/// let node = handle.alloc(1u64);
/// let root: Atomic<u64> = Atomic::new(node);
/// let escaped = {
///     let guard = handle.enter();
///     shield.protect(&guard, &root, None)
/// }; // ERROR: `guard` dropped while `escaped` still borrows it
/// escaped.as_ref();
/// ```
pub struct Guard<'h, H: RawHandle> {
    /// Exclusive access to the handle for the guard's lifetime. A raw pointer
    /// (rather than `&'h mut H`) so that [`Shield::protect`] can take `&self`:
    /// several `Protected` values may borrow the guard *shared* at once while
    /// protect/retire calls still reach the handle's `&mut` methods.
    handle: *mut H,
    _marker: PhantomData<&'h mut H>,
}

impl<'h, H: RawHandle> Guard<'h, H> {
    /// Opens the bracket. Called by [`Handle::enter`].
    pub(crate) fn new(handle: &'h mut H) -> Self {
        handle.begin_op();
        Self {
            handle,
            _marker: PhantomData,
        }
    }

    /// Runs `f` with exclusive access to the handle.
    ///
    /// SAFETY argument for the interior `&mut`: the guard was constructed
    /// from `&'h mut H` (no other reference to the handle can exist for
    /// `'h`), the raw-pointer field makes the guard `!Send`/`!Sync` (no
    /// cross-thread aliasing), and every closure passed here is a leaf call
    /// into the handle that never re-enters the guard (no reentrant `&mut`).
    #[inline]
    fn with<R>(&self, f: impl FnOnce(&mut H) -> R) -> R {
        // SAFETY: see above — exclusive, single-threaded, non-reentrant.
        f(unsafe { &mut *self.handle })
    }

    /// Dense index of the underlying thread in `0..max_threads`.
    #[inline]
    pub fn thread_id(&self) -> usize {
        self.with(|h| h.thread_id())
    }

    /// Number of reservation slots of the underlying handle.
    #[inline]
    pub fn slots(&self) -> usize {
        self.with(|h| h.slots())
    }

    /// Allocates a reclaimable block mid-operation (the paper's
    /// `alloc_block`). The pointer is owned by the caller until it is either
    /// published into the data structure or freed with [`Linked::dealloc`].
    #[inline]
    pub fn alloc<T>(&self, value: T) -> *mut Linked<T> {
        self.with(|h| h.alloc(value))
    }

    /// The lease-table identity of the underlying handle (used by
    /// [`Shield::protect`] to reject shields leased from another handle).
    #[inline]
    fn slots_identity(&self) -> *const ShieldSlots {
        self.with(|h| Arc::as_ptr(h.shield_slots()))
    }

    /// Protects and returns the pointer at `src` through slot `index` of this
    /// guard's handle. Internal engine of [`Shield::protect`].
    #[inline]
    fn protect_in_slot<'g, T>(
        &'g self,
        index: usize,
        src: &Atomic<T>,
        parent: Option<Protected<'_, T>>,
    ) -> Protected<'g, T> {
        let parent_ptr = parent.map_or(ptr::null_mut(), |p| p.untagged().as_raw());
        let raw = self.with(|h| h.protect(src, index, parent_ptr));
        Protected {
            ptr: raw,
            _guard: PhantomData,
        }
    }

    /// Retires `block` (called by [`Protected::retire_in`]).
    ///
    /// # Safety
    ///
    /// Same contract as [`crate::Handle::retire`].
    #[inline]
    unsafe fn retire_block<T>(&self, block: *mut Linked<T>) {
        // SAFETY: forwarded contract — the caller (`Protected::retire_in`)
        // guarantees the block is unlinked and retired exactly once.
        self.with(|h| unsafe { h.retire(block) })
    }
}

impl<H: RawHandle> Drop for Guard<'_, H> {
    fn drop(&mut self) {
        self.with(|h| h.end_op());
    }
}

impl<H: RawHandle> core::fmt::Debug for Guard<'_, H> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Guard")
            .field("thread_id", &self.thread_id())
            .finish()
    }
}

/// Variance/auto-trait marker for [`Shield`]: the shield is tied to a
/// protected type `T` and a handle type `H` without owning either.
type ShieldMarker<T, H> = PhantomData<(fn() -> T, fn(&H))>;

/// An owned reservation slot, leased from a handle with
/// [`Handle::shield`] and returned on drop.
///
/// One shield protects one pointer at a time: [`Shield::protect`] publishes
/// whatever reservation the scheme needs in the leased slot and hands back a
/// borrow-checked [`Protected`]. Lease as many shields as the operation has
/// simultaneously-live pointers (a list traversal needs two, the BST window
/// needs five).
///
/// The shield is typed by the scheme's handle, so it cannot cross schemes:
///
/// ```compile_fail
/// use wfe_reclaim::{Atomic, Handle, He, Hp, Reclaimer};
/// let he = He::new_default();
/// let hp = Hp::new_default();
/// let mut he_handle = he.register();
/// let mut hp_handle = hp.register();
/// let mut shield = he_handle.shield::<u64>().unwrap();
/// let root: Atomic<u64> = Atomic::null();
/// let guard = hp_handle.enter();
/// shield.protect(&guard, &root, None); // ERROR: HE shield, HP guard
/// ```
///
/// Using a shield with a different *handle* of the same scheme is rejected at
/// runtime (panic) — see [`Shield::protect`].
pub struct Shield<T, H: RawHandle> {
    slot: usize,
    slots: Arc<ShieldSlots>,
    _marker: ShieldMarker<T, H>,
}

impl<T, H: RawHandle> Shield<T, H> {
    /// Leases the lowest free slot of `handle`. Called by
    /// [`Handle::shield`].
    pub(crate) fn lease(handle: &H) -> Result<Self, ShieldError> {
        let slots = handle.shield_slots();
        match slots.lease() {
            Some(slot) => Ok(Self {
                slot,
                slots: Arc::clone(slots),
                _marker: PhantomData,
            }),
            None => Err(ShieldError {
                slots: slots.capacity(),
            }),
        }
    }

    /// The reservation slot index this shield owns.
    #[inline]
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Hazard-Eras `get_protected`, typed: reads the pointer stored at `src`,
    /// publishes the scheme's reservation in this shield's slot, and returns
    /// a [`Protected`] tied to `guard`.
    ///
    /// `parent` is the protected block that physically contains `src`
    /// (`None` when `src` is a data-structure root). Only WFE's slow path
    /// uses it; passing it is how the paper's §3.4 API convention — "the
    /// parent must itself be protected" — becomes a typed requirement.
    ///
    /// Re-protecting through the same shield releases the protection of the
    /// pointer it previously returned (see the [module docs](self)).
    ///
    /// # Panics
    ///
    /// Panics if the shield was leased from a different handle than the one
    /// `guard` brackets — the slot index would otherwise stomp an unrelated
    /// reservation of that handle.
    #[inline]
    pub fn protect<'g>(
        &mut self,
        guard: &'g Guard<'_, H>,
        src: &Atomic<T>,
        parent: Option<Protected<'_, T>>,
    ) -> Protected<'g, T> {
        assert!(
            core::ptr::eq(Arc::as_ptr(&self.slots), guard.slots_identity()),
            "Shield used with a guard of a different handle (lease a shield from \
             the handle that entered this operation)"
        );
        guard.protect_in_slot(self.slot, src, parent)
    }
}

impl<T, H: RawHandle> Drop for Shield<T, H> {
    fn drop(&mut self) {
        self.slots.release(self.slot);
    }
}

impl<T, H: RawHandle> core::fmt::Debug for Shield<T, H> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Shield").field("slot", &self.slot).finish()
    }
}

/// A tagged, borrow-checked pointer to a reclaimable block, valid for the
/// lifetime `'g` of the [`Guard`] it was read under.
///
/// Obtained from [`Shield::protect`] (or, as the single unsafe escape hatch,
/// [`Protected::from_unlinked`]). The pointer keeps any low tag bits found in
/// the source; the *protected* object is the untagged block, which is what
/// [`Protected::as_ref`] dereferences.
pub struct Protected<'g, T> {
    /// Raw, possibly tagged pointer.
    ptr: *mut Linked<T>,
    /// Ties the value to the guard's borrow region.
    _guard: PhantomData<&'g ()>,
}

impl<T> Clone for Protected<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Protected<'_, T> {}

impl<'g, T> Protected<'g, T> {
    /// The null pointer (protects nothing; `as_ref` returns `None`).
    #[inline]
    pub fn null() -> Self {
        Self {
            ptr: ptr::null_mut(),
            _guard: PhantomData,
        }
    }

    /// The unsafe escape hatch: wraps a raw pointer in a `Protected` without
    /// a reservation.
    ///
    /// # Safety
    ///
    /// The caller guarantees the block cannot be reclaimed while this value
    /// (or anything derived from it) is in use. The two legitimate cases:
    ///
    /// * the calling thread just **unlinked** the block and owns its
    ///   retirement (constructing a `Protected` only to call
    ///   [`retire_in`](Self::retire_in), or to read a value only the
    ///   unlinking thread may still access);
    /// * the block is an **immortal sentinel** that its data structure never
    ///   retires (e.g. the Natarajan-Mittal BST's root nodes).
    ///
    /// A value constructed this way and passed to [`retire_in`](Self::retire_in)
    /// must additionally come from the same domain as the retiring guard's
    /// handle (see `retire_in`'s contract).
    #[inline]
    pub unsafe fn from_unlinked(ptr: *mut Linked<T>) -> Self {
        Self {
            ptr,
            _guard: PhantomData,
        }
    }

    /// The raw, possibly tagged pointer (for CAS expected/new values and
    /// pointer comparisons; dereferencing it is on the caller).
    #[inline]
    pub fn as_raw(&self) -> *mut Linked<T> {
        self.ptr
    }

    /// `true` if the untagged pointer is null.
    #[inline]
    pub fn is_null(&self) -> bool {
        tag::untagged(self.ptr).is_null()
    }

    /// The low tag bits carried by the pointer.
    #[inline]
    pub fn tag(&self) -> usize {
        tag::tag_of(self.ptr)
    }

    /// The same protected block with all tag bits cleared.
    #[inline]
    pub fn untagged(self) -> Self {
        Self {
            ptr: tag::untagged(self.ptr),
            _guard: PhantomData,
        }
    }

    /// The same protected block carrying `tag` (previous tag cleared).
    #[inline]
    pub fn with_tag(self, tag_bits: usize) -> Self {
        Self {
            ptr: tag::with_tag(self.ptr, tag_bits),
            _guard: PhantomData,
        }
    }

    /// Dereferences the protected block — *safely*. Returns `None` for null.
    ///
    /// The returned reference lives as long as the guard: the reservation
    /// taken by [`Shield::protect`] keeps the block from being freed until
    /// the bracket closes (or the shield re-protects; see the
    /// [module docs](self)).
    #[inline]
    pub fn as_ref(&self) -> Option<&'g T> {
        let clean = tag::untagged(self.ptr);
        if clean.is_null() {
            None
        } else {
            // SAFETY: the protection invariant — `clean` was published in a
            // reservation slot under `'g`'s guard (or asserted immortal /
            // owned via `from_unlinked`), so the scheme will not free it
            // while `'g` is live, and `Linked<T>` keeps the payload at a
            // stable address.
            Some(unsafe { &(*clean).value })
        }
    }

    /// `true` if both values point at the same block with the same tag.
    #[inline]
    pub fn ptr_eq(&self, other: Protected<'_, T>) -> bool {
        self.ptr == other.ptr
    }

    /// Retires the block (the paper's `retire`), encapsulating the raw
    /// three-part contract behind one obligation.
    ///
    /// # Safety
    ///
    /// **"I unlinked it":** the calling thread made this block unreachable
    /// from the data structure (it won the unlink CAS, or the block was never
    /// published), and no other thread will retire it. In addition, `guard`
    /// must bracket a handle of the **domain the block was allocated in** —
    /// a different domain's cleanup never scans the readers' reservations and
    /// would free the block under them. (A `Protected` obtained from
    /// [`Shield::protect`] was necessarily read through such a handle; the
    /// obligation is only observable via [`Protected::from_unlinked`].)
    #[inline]
    pub unsafe fn retire_in<H: RawHandle>(self, guard: &Guard<'_, H>) {
        debug_assert!(!self.is_null(), "cannot retire a null block");
        debug_assert_eq!(self.tag(), 0, "cannot retire a tagged pointer");
        // SAFETY: forwarded "unlinked exactly once" obligation.
        unsafe { guard.retire_block(self.ptr) };
    }
}

impl<T> PartialEq for Protected<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.ptr == other.ptr
    }
}

impl<T> Eq for Protected<'_, T> {}

impl<T> core::fmt::Debug for Protected<'_, T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "Protected({:p}, tag {})",
            tag::untagged(self.ptr),
            self.tag()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{Reclaimer, ReclaimerConfig};
    use crate::he::He;

    #[test]
    fn shield_lease_release_roundtrip() {
        let domain = He::with_config(ReclaimerConfig::with_max_threads(2));
        let handle = domain.register();
        let total = handle.shield_slots().capacity();
        assert!(total >= 2);
        let a = Handle::shield::<u64>(&handle).unwrap();
        let b = Handle::shield::<u64>(&handle).unwrap();
        assert_ne!(a.slot(), b.slot());
        assert_eq!(handle.shield_slots().leased(), 2);
        drop(a);
        assert_eq!(handle.shield_slots().leased(), 1);
        let c = Handle::shield::<u64>(&handle).unwrap();
        assert_eq!(c.slot(), 0, "lowest slot is recycled first");
        drop(b);
        drop(c);
        assert_eq!(handle.shield_slots().leased(), 0);
    }

    #[test]
    fn shield_exhaustion_is_an_error_not_a_stomp() {
        let domain = He::with_config(ReclaimerConfig {
            slots_per_thread: 2,
            ..ReclaimerConfig::with_max_threads(1)
        });
        let handle = domain.register();
        let _a = Handle::shield::<u64>(&handle).unwrap();
        let _b = Handle::shield::<u64>(&handle).unwrap();
        let err = Handle::shield::<u64>(&handle).unwrap_err();
        assert_eq!(err.slots, 2);
        assert!(err.to_string().contains("slots_per_thread"));
    }

    #[test]
    fn guard_brackets_protect_and_retire() {
        let domain = He::with_config(ReclaimerConfig::with_max_threads(2));
        let mut handle = domain.register();
        let mut shield = handle.shield::<u64>().unwrap();
        let node = handle.alloc(9u64);
        let root: Atomic<u64> = Atomic::new(node);
        {
            let guard = handle.enter();
            let p = shield.protect(&guard, &root, None);
            assert!(!p.is_null());
            assert_eq!(p.as_ref(), Some(&9));
            assert_eq!(p.as_raw(), node);
        }
        root.store(ptr::null_mut(), Ordering::SeqCst);
        let guard = handle.enter();
        // SAFETY: just unlinked from `root`, retired once.
        unsafe { Protected::from_unlinked(node).retire_in(&guard) };
        drop(guard);
        handle.force_cleanup();
        assert_eq!(domain.stats().unreclaimed, 0);
    }

    #[test]
    fn protect_pins_the_block_until_the_bracket_closes() {
        let domain = He::with_config(ReclaimerConfig {
            cleanup_freq: 1,
            era_freq: 1,
            ..ReclaimerConfig::with_max_threads(2)
        });
        let mut reader = domain.register();
        let mut writer = domain.register();
        let mut shield = reader.shield::<u64>().unwrap();
        let node = writer.alloc(5u64);
        let root: Atomic<u64> = Atomic::new(node);

        let guard = reader.enter();
        let p = shield.protect(&guard, &root, None);
        assert_eq!(p.as_ref(), Some(&5));

        root.store(ptr::null_mut(), Ordering::SeqCst);
        {
            let wguard = writer.enter();
            // SAFETY: unlinked above, retired once.
            unsafe { Protected::from_unlinked(node).retire_in(&wguard) };
        }
        writer.force_cleanup();
        assert_eq!(domain.stats().unreclaimed, 1, "guarded read pins the block");
        assert_eq!(p.as_ref(), Some(&5), "still readable while protected");

        drop(guard);
        writer.force_cleanup();
        assert_eq!(domain.stats().unreclaimed, 0);
    }

    #[test]
    #[should_panic(expected = "different handle")]
    fn shield_cannot_cross_handles_of_the_same_scheme() {
        let domain = He::with_config(ReclaimerConfig::with_max_threads(2));
        let first = domain.register();
        let mut second = domain.register();
        let mut shield = Handle::shield::<u64>(&first).unwrap();
        let root: Atomic<u64> = Atomic::null();
        let guard = second.enter();
        let _ = shield.protect(&guard, &root, None);
    }

    #[test]
    fn tag_round_trip_on_protected() {
        let domain = He::with_config(ReclaimerConfig::with_max_threads(1));
        let mut handle = domain.register();
        let node = handle.alloc(3u32);
        let root: Atomic<u32> = Atomic::new(tag::with_tag(node, 1));
        let mut shield = handle.shield::<u32>().unwrap();
        let guard = handle.enter();
        let p = shield.protect(&guard, &root, None);
        assert_eq!(p.tag(), 1);
        assert_eq!(p.untagged().tag(), 0);
        assert_eq!(p.with_tag(2).tag(), 2);
        assert_eq!(p.untagged().as_raw(), node);
        assert_eq!(p.as_ref(), Some(&3), "as_ref ignores the tag");
        drop(guard);
        // SAFETY: never published anywhere else; freed exactly once.
        unsafe { Linked::dealloc(node) };
    }

    #[test]
    fn null_protected_behaves() {
        let p: Protected<'_, u64> = Protected::null();
        assert!(p.is_null());
        assert_eq!(p.as_ref(), None);
        assert_eq!(p.tag(), 0);
        assert!(p.ptr_eq(Protected::null()));
    }
}
