//! Interval-Based Reclamation, 2GE variant (Wen et al., PPoPP'18).
//!
//! 2GEIBR ("two global epochs") keeps one `[lower, upper]` era interval per
//! thread instead of one era per protected pointer. `begin_op` seeds both
//! bounds with the current era; every hazardous read bumps `upper` to the era
//! observed while reading. A retired block may be freed when its
//! `[alloc_era, retire_era]` lifespan overlaps no thread's interval.
//!
//! Compared with Hazard Eras, IBR needs no per-pointer index, but a single
//! long-running operation widens its interval without bound, so a stalled
//! thread can pin arbitrarily many blocks (the paper keeps HE as its base for
//! exactly this reason). The paper notes WFE's helping idea applies to 2GEIBR
//! as well; the wait-free extension in this repository targets HE.

use std::sync::Arc;
use wfe_sync::atomic::{AtomicUsize, Ordering};

use wfe_sync::EraSource;

use crate::api::{debug_assert_slot_index, Progress, RawHandle, Reclaimer, ReclaimerConfig};
use crate::block::{BlockHeader, ERA_INF};
use crate::cache::{BlockCaches, LocalBlockCache, ShardCache};
use crate::guard::ShieldSlots;
use crate::registry::ThreadRegistry;
use crate::retired::{OrphanStack, RetiredBatch};
use crate::scan::IntervalSnapshot;
use crate::slots::SlotArray;
use crate::stats::{Counters, SmrStats};

const LOWER: usize = 0;
const UPPER: usize = 1;

/// The 2GEIBR domain.
pub struct Ibr2Ge {
    config: ReclaimerConfig,
    registry: ThreadRegistry,
    counters: Counters,
    orphans: OrphanStack,
    global_era: EraSource,
    /// `max_threads × 2`: per-thread `[lower, upper]` interval (`ERA_INF` = idle).
    reservations: SlotArray,
    /// Per-shard size-class block caches (empty when disabled).
    caches: BlockCaches,
}

impl Ibr2Ge {
    /// Current value of the global era clock.
    #[inline]
    pub fn era(&self) -> u64 {
        self.global_era.load(Ordering::Acquire) // ORDER: era clock read; pairs with the AcqRel era advances.
    }

    /// The domain's era clock (injectable in model tests; see [`EraSource`]).
    pub fn era_source(&self) -> &EraSource {
        &self.global_era
    }

    /// Snapshots every active `[lower, upper]` interval once per cleanup
    /// pass; the per-block overlap test then runs without atomic loads. The
    /// walk goes shard-by-shard and skips wholly-idle shards (see
    /// [`ThreadRegistry::occupied_ranges`]).
    fn fill_snapshot(&self, snapshot: &mut IntervalSnapshot) {
        snapshot.clear();
        for range in self.registry.occupied_ranges() {
            for thread in range {
                let lower = self.reservations.get(thread, LOWER).load(Ordering::Acquire); // ORDER: snapshot load; pairs with the Release interval withdrawal (see scan.rs safety argument).
                if lower == ERA_INF {
                    continue;
                }
                let upper = self.reservations.get(thread, UPPER).load(Ordering::Acquire); // ORDER: snapshot load; pairs with the Release interval withdrawal.
                snapshot.insert(lower, upper);
            }
        }
    }
}

impl Reclaimer for Ibr2Ge {
    type Handle = IbrHandle;

    fn with_config(config: ReclaimerConfig) -> Arc<Self> {
        let registry = config.build_registry();
        let caches = BlockCaches::new(&config.block_cache, registry.shard_count());
        Arc::new(Self {
            registry,
            caches,
            counters: Counters::new(),
            orphans: OrphanStack::new(),
            global_era: EraSource::new(1),
            reservations: SlotArray::new(config.max_threads, 2, ERA_INF),
            config,
        })
    }

    fn try_register(self: &Arc<Self>) -> Option<IbrHandle> {
        let tid = self.registry.try_acquire()?;
        Some(IbrHandle {
            shield_slots: ShieldSlots::new(self.config.slots_per_thread),
            cache_shard: self.registry.shard_of(tid),
            local_cache: LocalBlockCache::new(),
            domain: Arc::clone(self),
            tid,
            retired: RetiredBatch::new(),
            snapshot: IntervalSnapshot::new(),
            since_cleanup: 0,
            alloc_counter: 0,
        })
    }

    fn name() -> &'static str {
        "2GEIBR"
    }

    fn progress() -> Progress {
        Progress::LockFree
    }

    fn stats(&self) -> SmrStats {
        let mut stats = self.counters.snapshot(self.era());
        self.caches.merge_into(&mut stats);
        stats
    }

    fn config(&self) -> &ReclaimerConfig {
        &self.config
    }

    fn registry(&self) -> &ThreadRegistry {
        &self.registry
    }
}

impl Drop for Ibr2Ge {
    fn drop(&mut self) {
        // SAFETY: no handle can exist any more (handles hold an `Arc` to the
        // domain), so every orphaned block is unreachable and unprotected.
        unsafe {
            self.orphans.free_all();
        }
    }
}

impl core::fmt::Debug for Ibr2Ge {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Ibr2Ge")
            .field("era", &self.era())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Per-thread 2GEIBR handle.
pub struct IbrHandle {
    /// Lease table for this handle's [`Shield`](crate::Shield)s. 2GEIBR
    /// ignores the indices, but leases keep data structures scheme-generic.
    shield_slots: Arc<ShieldSlots>,
    /// Home registry shard, fixed at registration (indexes the block caches).
    cache_shard: usize,
    /// Private block-cache magazine fronting the home shard's freelists.
    local_cache: LocalBlockCache,
    domain: Arc<Ibr2Ge>,
    tid: usize,
    retired: RetiredBatch,
    /// Reusable interval snapshot (the batch scan scratch).
    snapshot: IntervalSnapshot,
    /// Retirements since the last cleanup pass.
    since_cleanup: usize,
    alloc_counter: usize,
}

impl IbrHandle {
    /// One cleanup pass of the batch scan protocol
    /// ([`crate::retired::cleanup_pass`]).
    fn cleanup(&mut self) {
        self.since_cleanup = 0;
        let domain = &self.domain;
        let shard = domain.caches.shard(self.cache_shard);
        // SAFETY: `fill_snapshot` reads the reservation tables inside
        // `cleanup_pass`, i.e. after the orphan pop and after every block on the
        // batch was retired — the snapshot-freshness contract.
        unsafe {
            crate::retired::cleanup_pass(
                &mut self.retired,
                &domain.orphans,
                &domain.counters,
                &mut self.snapshot,
                shard.is_some().then_some(&mut self.local_cache),
                shard,
                |snapshot| domain.fill_snapshot(snapshot),
            );
        }
    }
}

// SAFETY: `protect_raw` publishes the scheme's reservation before returning,
// so the returned pointer stays valid until the slot is overwritten or
// cleared — the `RawHandle` validity contract.
unsafe impl RawHandle for IbrHandle {
    fn thread_id(&self) -> usize {
        self.tid
    }

    fn slots(&self) -> usize {
        self.domain.config.slots_per_thread
    }

    fn shield_slots(&self) -> &Arc<ShieldSlots> {
        &self.shield_slots
    }

    fn begin_op(&mut self) {
        let era = self.domain.era();
        let res = &self.domain.reservations;
        // Seed the interval with the current era; `lower` is published last so
        // a scanner never observes an active interval with a stale upper bound.
        res.get(self.tid, UPPER).store(era, Ordering::SeqCst);
        res.get(self.tid, LOWER).store(era, Ordering::SeqCst);
    }

    fn end_op(&mut self) {
        let res = &self.domain.reservations;
        res.get(self.tid, LOWER).store(ERA_INF, Ordering::Release); // ORDER: withdraws the interval; pairs with the snapshot's Acquire loads.
        res.get(self.tid, UPPER).store(ERA_INF, Ordering::Release); // ORDER: withdraws the interval; pairs with the snapshot's Acquire loads.
    }

    fn protect_raw(
        &mut self,
        src: &AtomicUsize,
        index: usize,
        _parent: *mut BlockHeader,
        _mask: usize,
    ) -> usize {
        // The index is unused (the interval lives in the fixed LOWER/UPPER
        // cells), but a stray one is still a caller bug: check it uniformly.
        debug_assert_slot_index(index, self.slots());
        let upper = self.domain.reservations.get(self.tid, UPPER);
        let mut prev_era = upper.load(Ordering::Relaxed); // ORDER: own slot re-read; the publish that matters is the SeqCst store below.
        loop {
            let value = src.load(Ordering::Acquire); // ORDER: pairs with the Release publish of the pointer being protected.
            let new_era = self.domain.era();
            if prev_era == new_era {
                return value;
            }
            upper.store(new_era, Ordering::SeqCst);
            prev_era = new_era;
        }
    }

    // SAFETY: contract inherited from the trait declaration (`# Safety`
    // on `RawHandle::retire_raw`); the obligations are the caller's.
    unsafe fn retire_raw(&mut self, block: *mut BlockHeader) {
        let era = self.domain.era();
        // SAFETY: the caller's `retire_raw` contract — `block` is a valid,
        // unreachable block retired exactly once — covers both the header
        // stamp and the batch push.
        unsafe {
            (*block).retire_era.store(era, Ordering::Release); // ORDER: stamps the header before the push that makes it scannable.
            self.retired.push(block);
        }
        self.domain.counters.on_retire();
        self.since_cleanup += 1;
        if self.since_cleanup >= self.domain.config.cleanup_freq {
            // SAFETY: same contract — the header is valid for the whole call.
            if unsafe { (*block).retire_era() } == self.domain.era() {
                self.domain.global_era.advance(Ordering::AcqRel); // ORDER: era advance; orders the clock with the retires it brackets.
            }
            self.cleanup();
        }
    }

    fn clear(&mut self) {
        // Protection is interval-based; dropping it happens in `end_op`.
    }

    fn pre_alloc(&mut self) -> u64 {
        self.domain.counters.on_alloc();
        self.alloc_counter += 1;
        if self.alloc_counter % self.domain.config.era_freq == 0 {
            self.domain.global_era.advance(Ordering::AcqRel); // ORDER: era advance; orders the clock with the allocations it brackets.
        }
        self.domain.era()
    }

    fn force_cleanup(&mut self) {
        self.domain.global_era.advance(Ordering::AcqRel); // ORDER: era advance; orders the clock with the forced cleanup that follows.
        self.cleanup();
    }

    fn block_caches(&mut self) -> (Option<&mut LocalBlockCache>, Option<&ShardCache>) {
        let shard = self.domain.caches.shard(self.cache_shard);
        (shard.is_some().then_some(&mut self.local_cache), shard)
    }
}

impl Drop for IbrHandle {
    fn drop(&mut self) {
        self.end_op();
        self.cleanup();
        // Park the magazine's blocks on the home shard (freeing them when the
        // cache is off) so surviving threads can recycle them.
        self.local_cache
            .drain(self.domain.caches.shard(self.cache_shard));
        // Whatever the final pass could not free is parked on the orphan
        // stack; the next live thread's cleanup pass adopts it.
        self.domain.orphans.push(self.retired.take());
        self.domain.registry.release(self.tid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;
    use crate::Handle;

    #[test]
    fn naming_and_progress() {
        assert_eq!(Ibr2Ge::name(), "2GEIBR");
        assert_eq!(Ibr2Ge::progress(), Progress::LockFree);
    }

    #[test]
    fn basic_lifecycle() {
        conformance::basic_lifecycle::<Ibr2Ge>();
    }

    #[test]
    fn protection_blocks_reclamation() {
        conformance::protection_blocks_reclamation::<Ibr2Ge>();
    }

    #[test]
    fn all_blocks_freed_on_drop() {
        conformance::all_blocks_freed_on_drop::<Ibr2Ge>();
    }

    #[test]
    fn concurrent_stack_stress() {
        conformance::concurrent_stack_stress::<Ibr2Ge>(4, 2_000);
    }

    #[test]
    fn orphan_adoption() {
        conformance::orphan_adoption_reclaims_exited_threads_blocks::<Ibr2Ge>(true);
    }

    #[test]
    fn interval_only_pins_overlapping_lifespans() {
        let domain = Ibr2Ge::with_config(ReclaimerConfig {
            cleanup_freq: 1,
            era_freq: 1,
            ..ReclaimerConfig::with_max_threads(2)
        });
        let mut reader = domain.register();
        let mut writer = domain.register();

        // Blocks allocated and retired strictly before the reader's interval
        // begins can always be reclaimed.
        for _ in 0..10 {
            let ptr = writer.alloc(1u64);
            // SAFETY: the block was never published; retired exactly once.
            unsafe { writer.retire(ptr) };
        }
        writer.force_cleanup();
        assert_eq!(domain.stats().unreclaimed, 0);

        // A block allocated *before* the reader's interval starts but retired
        // *after* overlaps the interval and stays pinned.
        let pinned = writer.alloc(2u64);
        reader.begin_op();
        // SAFETY: `pinned` was never published; retired exactly once.
        unsafe { writer.retire(pinned) };
        writer.force_cleanup();
        assert_eq!(
            domain.stats().unreclaimed,
            1,
            "the overlapping block is pinned"
        );

        // A block allocated *after* the interval began is invisible to the
        // reader (it never protected it), so IBR may reclaim it right away.
        let fresh = writer.alloc(3u64);
        // SAFETY: `fresh` was never published; retired exactly once.
        unsafe { writer.retire(fresh) };
        writer.force_cleanup();
        assert_eq!(
            domain.stats().unreclaimed,
            1,
            "the non-overlapping block is reclaimed immediately"
        );

        reader.end_op();
        writer.force_cleanup();
        assert_eq!(domain.stats().unreclaimed, 0);
    }
}
