//! Reusable conformance scenarios for reclamation schemes.
//!
//! Every scheme in the suite (the baselines here and WFE in `wfe-core`) must
//! behave identically through the [`Reclaimer`]/[`Handle`] API. The functions
//! in this module encode the behavioural contract once, so each scheme's test
//! module — and the integration tests — simply instantiate them. They are
//! compiled into the library (not `#[cfg(test)]`) precisely so that dependent
//! crates can reuse them.

use core::ptr;
use std::sync::Arc;
use wfe_sync::atomic::{AtomicUsize, Ordering};

use crate::api::{Handle, RawHandle, Reclaimer, ReclaimerConfig};
use crate::block::Linked;
use crate::ptr::Atomic;

/// A payload that counts its drops, used to prove blocks are really freed.
pub struct DropCounter {
    counter: Arc<AtomicUsize>,
}

impl DropCounter {
    /// Creates a counter handle; `counter` is incremented on drop.
    pub fn new(counter: &Arc<AtomicUsize>) -> Self {
        Self {
            counter: Arc::clone(counter),
        }
    }
}

impl Drop for DropCounter {
    fn drop(&mut self) {
        self.counter.fetch_add(1, Ordering::SeqCst);
    }
}

/// Node of the miniature Treiber stack used by the stress scenarios.
pub struct StackNode {
    next: *mut Linked<StackNode>,
    value: usize,
    _drops: Option<DropCounter>,
}

/// A miniature Treiber stack written directly against the raw SMR API.
///
/// This is intentionally the same shape as Figure 2 of the paper (the usage
/// example for Hazard Eras): `pop` protects the head with reservation index 0,
/// unlinks it with CAS and retires it.
pub struct MiniStack {
    head: Atomic<StackNode>,
}

impl MiniStack {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Self {
            head: Atomic::null(),
        }
    }

    /// Pushes `value` using `handle` for allocation.
    pub fn push<H: RawHandle>(&self, handle: &mut H, value: usize, drops: Option<DropCounter>) {
        let node = handle.alloc(StackNode {
            next: ptr::null_mut(),
            value,
            _drops: drops,
        });
        loop {
            let head = self.head.load(Ordering::Acquire); // ORDER: pairs with the AcqRel push/pop CASes on `head`.
                                                          // SAFETY: `node` is owned and unpublished until the CAS succeeds.
            unsafe { (*node).value.next = head };
            if self
                .head
                .compare_exchange_weak(head, node, Ordering::AcqRel, Ordering::Acquire) // ORDER: success publishes the node (and its `next` write); failure observes the winner.
                .is_ok()
            {
                return;
            }
        }
    }

    /// Pops the top element, if any.
    pub fn pop<H: RawHandle>(&self, handle: &mut H) -> Option<usize> {
        handle.begin_op();
        let result = loop {
            let node = handle.protect(&self.head, 0, ptr::null_mut());
            if node.is_null() {
                break None;
            }
            // SAFETY: `node` is protected by reservation slot 0, so the read is valid.
            let next = unsafe { (*node).value.next };
            if self
                .head
                .compare_exchange(node, next, Ordering::AcqRel, Ordering::Acquire) // ORDER: success publishes the unlink; failure observes the winning pop/push.
                .is_ok()
            {
                // SAFETY: we won the unlink CAS; the node stays valid until retired readers
                // finish, and its value is ours.
                let value = unsafe { (*node).value.value };
                // SAFETY: the same CAS unlinked the node; it is retired exactly once.
                unsafe { handle.retire(node) };
                break Some(value);
            }
        };
        handle.end_op();
        result
    }

    /// Frees every node still in the stack (no concurrency allowed).
    pub fn drain(&self) -> usize {
        let mut count = 0;
        let mut cur = self.head.load(Ordering::Acquire); // ORDER: `drain` requires no concurrency; Acquire is more than enough.
        self.head.store(ptr::null_mut(), Ordering::Release); // ORDER: `drain` requires no concurrency; Release is more than enough.
        while !cur.is_null() {
            // SAFETY: `drain` requires no concurrency; every node is exclusively owned.
            let next = unsafe { (*cur).value.next };
            // SAFETY: as above — exclusive access, freed exactly once.
            unsafe { Linked::dealloc(cur) };
            cur = next;
            count += 1;
        }
        count
    }
}

impl Default for MiniStack {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for MiniStack {
    fn drop(&mut self) {
        self.drain();
    }
}

/// A freshly created domain hands out distinct thread ids, allocates blocks
/// stamped with its era clock, and reclaims a retired block once nothing
/// protects it.
pub fn basic_lifecycle<R: Reclaimer>() {
    let domain = R::with_config(ReclaimerConfig::with_max_threads(4));
    let mut h1 = domain.register();
    let mut h2 = domain.register();
    assert_ne!(h1.thread_id(), h2.thread_id());
    assert!(h1.slots() >= 2);

    let node = h1.alloc(123u64);
    assert!(!node.is_null());
    // SAFETY: the block was just allocated and is owned by this thread.
    unsafe {
        assert_eq!((*node).value, 123);
    }
    let stats = domain.stats();
    assert_eq!(stats.allocated, 1);
    assert_eq!(stats.retired, 0);

    // SAFETY: the block was never published; it is trivially unreachable and
    // retired exactly once.
    unsafe { h1.retire(node) };
    assert_eq!(domain.stats().retired, 1);

    // Give bounded schemes every chance to reclaim; Leak legitimately won't.
    for _ in 0..4 {
        h1.force_cleanup();
        h2.force_cleanup();
    }
    let stats = domain.stats();
    assert!(stats.freed <= stats.retired);
    drop(h1);
    drop(h2);
}

/// While a reservation (or operation bracket) covers a block, a cleanup by the
/// retiring thread must not free it; dropping the protection releases it.
///
/// Skipped automatically for schemes that never reclaim (`Leak`).
pub fn protection_blocks_reclamation<R: Reclaimer>() {
    let domain = R::with_config(ReclaimerConfig {
        cleanup_freq: 1,
        era_freq: 1,
        ..ReclaimerConfig::with_max_threads(2)
    });
    let mut reader = domain.register();
    let mut writer = domain.register();

    let stack = MiniStack::new();
    stack.push(&mut writer, 1, None);

    // Reader protects the head node mid-operation and then stalls.
    reader.begin_op();
    let protected = reader.protect(&stack.head, 0, ptr::null_mut());
    assert!(!protected.is_null());

    // Writer pops (and thereby retires) that same node, then tries hard to
    // reclaim it.
    let popped = stack.pop(&mut writer);
    assert_eq!(popped, Some(1));
    for _ in 0..4 {
        writer.force_cleanup();
    }
    assert_eq!(
        domain.stats().unreclaimed,
        1,
        "a protected block must survive cleanup"
    );
    // The block is still readable.
    // SAFETY: the reader's reservation from slot 0 still pins the block.
    unsafe {
        assert_eq!((*protected).value.value, 1);
    }

    // Dropping the protection allows reclamation.
    reader.clear();
    reader.end_op();
    for _ in 0..4 {
        writer.force_cleanup();
    }
    assert_eq!(
        domain.stats().unreclaimed,
        0,
        "unprotected block is reclaimed"
    );
}

/// Every allocated block is eventually dropped exactly once: either reclaimed
/// during the run, freed by the stack's `Drop`, or released when the domain
/// is destroyed (orphans).
pub fn all_blocks_freed_on_drop<R: Reclaimer>() {
    const NODES: usize = 500;
    let drops = Arc::new(AtomicUsize::new(0));
    {
        let domain = R::with_config(ReclaimerConfig::with_max_threads(2));
        let mut handle = domain.register();
        let stack = MiniStack::new();
        for i in 0..NODES {
            stack.push(&mut handle, i, Some(DropCounter::new(&drops)));
        }
        // Pop half of them (these go through retire), leave the rest in the
        // stack (these are freed by MiniStack::drop).
        for _ in 0..NODES / 2 {
            stack.pop(&mut handle);
        }
        drop(stack);
        drop(handle);
        drop(domain);
    }
    assert_eq!(
        drops.load(Ordering::SeqCst),
        NODES,
        "every node dropped exactly once"
    );
}

/// Multi-threaded push/pop stress; checks value conservation and that no node
/// is dropped twice or leaked (drop counter equals allocation count).
pub fn concurrent_stack_stress<R: Reclaimer>(threads: usize, ops_per_thread: usize) {
    let drops = Arc::new(AtomicUsize::new(0));
    let pushed_sum = Arc::new(AtomicUsize::new(0));
    let popped_sum = Arc::new(AtomicUsize::new(0));
    let allocated = Arc::new(AtomicUsize::new(0));
    {
        let domain = R::with_config(ReclaimerConfig {
            cleanup_freq: 8,
            era_freq: 4,
            ..ReclaimerConfig::with_max_threads(threads)
        });
        let stack = MiniStack::new();
        std::thread::scope(|scope| {
            for t in 0..threads {
                let domain = Arc::clone(&domain);
                let stack = &stack;
                let drops = Arc::clone(&drops);
                let pushed_sum = Arc::clone(&pushed_sum);
                let popped_sum = Arc::clone(&popped_sum);
                let allocated = Arc::clone(&allocated);
                scope.spawn(move || {
                    let mut handle = domain.register();
                    for i in 0..ops_per_thread {
                        let value = t * ops_per_thread + i + 1;
                        if i % 2 == 0 {
                            stack.push(&mut handle, value, Some(DropCounter::new(&drops)));
                            pushed_sum.fetch_add(value, Ordering::Relaxed); // ORDER: oracle counter, checked after the threads join.
                            allocated.fetch_add(1, Ordering::Relaxed); // ORDER: oracle counter, checked after the threads join.
                        } else if let Some(v) = stack.pop(&mut handle) {
                            popped_sum.fetch_add(v, Ordering::Relaxed); // ORDER: oracle counter, checked after the threads join.
                        }
                    }
                });
            }
        });
        let in_stack: usize = {
            // Count and sum what's left before dropping everything.
            let mut sum = 0usize;
            let mut cur = stack.head.load(Ordering::Acquire); // ORDER: all workers joined; the stack is exclusively owned here.
            while !cur.is_null() {
                // SAFETY: all workers have joined; the stack is exclusively owned here.
                sum += unsafe { (*cur).value.value };
                // SAFETY: as above.
                cur = unsafe { (*cur).value.next };
            }
            sum
        };
        assert_eq!(
            pushed_sum.load(Ordering::Relaxed), // ORDER: oracle counter, checked after the threads join.
            popped_sum.load(Ordering::Relaxed) + in_stack, // ORDER: oracle counter, checked after the threads join.
            "every pushed value is either popped or still in the stack"
        );
        drop(stack);
        drop(domain);
    }
    assert_eq!(
        drops.load(Ordering::SeqCst),
        allocated.load(Ordering::SeqCst),
        "every allocated node dropped exactly once, none leaked, none double-freed"
    );
}

/// Orphan adoption: a handle dropped with pending retirements parks them on
/// the domain's orphan stack, and a *surviving* thread's next cleanup pass
/// adopts and frees them — before the domain is dropped.
///
/// `reclaims` is `false` for schemes that never run cleanup passes (`Leak`):
/// for those the scenario instead asserts the orphans survive untouched until
/// domain teardown.
pub fn orphan_adoption_reclaims_exited_threads_blocks<R: Reclaimer>(reclaims: bool) {
    const NODES: usize = 40;
    let drops = Arc::new(AtomicUsize::new(0));
    {
        let domain = R::with_config(ReclaimerConfig {
            // No automatic cleanup during the retire burst: the exiting
            // thread must leave with a non-empty batch.
            cleanup_freq: usize::MAX,
            era_freq: 1,
            ..ReclaimerConfig::with_max_threads(3)
        });
        let mut survivor = domain.register();
        let mut reader = domain.register();
        let stack = MiniStack::new();
        {
            let mut exiting = domain.register();
            for i in 0..NODES {
                stack.push(&mut exiting, i, Some(DropCounter::new(&drops)));
            }
            // The reader pins the head (era/epoch schemes thereby pin every
            // block retired from here on; HP pins at least the head block).
            reader.begin_op();
            let protected = reader.protect(&stack.head, 0, ptr::null_mut());
            assert!(!protected.is_null());
            while stack.pop(&mut exiting).is_some() {}
            // The exiting thread's final cleanup cannot free the protected
            // block(s); the leftover batch is pushed onto the orphan stack.
            drop(exiting);
        }
        assert!(
            drops.load(Ordering::SeqCst) < NODES,
            "the reader's protection must orphan at least one block"
        );

        // Protection released: the surviving thread's cleanup pass must now
        // adopt the orphaned batch and free it.
        reader.clear();
        reader.end_op();
        survivor.force_cleanup();
        survivor.force_cleanup();

        let stats = domain.stats();
        if reclaims {
            assert!(
                stats.adopted_batches >= 1,
                "the survivor adopted the orphaned batch"
            );
            assert!(
                stats.freed_via_adoption >= 1,
                "adoption freed at least one orphaned block"
            );
            assert_eq!(
                drops.load(Ordering::SeqCst),
                NODES,
                "every retired block freed before domain drop"
            );
        } else {
            assert_eq!(
                stats.freed, 0,
                "a leaking scheme frees nothing while running"
            );
            assert_eq!(stats.adopted_batches, 0);
        }
        drop(stack);
        drop(reader);
        drop(survivor);
        drop(domain);
    }
    assert_eq!(
        drops.load(Ordering::SeqCst),
        NODES,
        "every node dropped exactly once"
    );
}

/// For schemes with bounded memory usage, the number of unreclaimed blocks
/// after a long single-threaded churn must stay below `bound`.
pub fn unreclaimed_is_bounded<R: Reclaimer>(bound: u64) {
    let domain = R::with_config(ReclaimerConfig {
        cleanup_freq: 16,
        era_freq: 8,
        ..ReclaimerConfig::with_max_threads(2)
    });
    let mut handle = domain.register();
    let stack = MiniStack::new();
    for i in 0..20_000 {
        stack.push(&mut handle, i, None);
        stack.pop(&mut handle);
    }
    let stats = domain.stats();
    assert!(
        stats.unreclaimed <= bound,
        "unreclaimed {} exceeds bound {}",
        stats.unreclaimed,
        bound
    );
    drop(stack);
    drop(handle);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_counter_counts() {
        let counter = Arc::new(AtomicUsize::new(0));
        drop(DropCounter::new(&counter));
        drop(DropCounter::new(&counter));
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn mini_stack_is_lifo_single_threaded() {
        let domain = crate::He::new_default();
        let mut handle = domain.register();
        let stack = MiniStack::new();
        for i in 0..10 {
            stack.push(&mut handle, i, None);
        }
        for i in (0..10).rev() {
            assert_eq!(stack.pop(&mut handle), Some(i));
        }
        assert_eq!(stack.pop(&mut handle), None);
    }

    #[test]
    fn drain_frees_remaining_nodes() {
        let domain = crate::He::new_default();
        let mut handle = domain.register();
        let stack = MiniStack::new();
        for i in 0..5 {
            stack.push(&mut handle, i, None);
        }
        assert_eq!(stack.drain(), 5);
        assert_eq!(stack.pop(&mut handle), None);
    }
}
