//! Shalev-Herlihy split-ordered resizable lock-free hash map.
//!
//! The production-shaped KV workload: unlike [`MichaelHashMap`]'s fixed
//! bucket array, this map **grows**. It is built from two pieces:
//!
//! * one Harris-Michael sorted list holding *every* node, ordered by the
//!   bit-reversed *split-order key* (`reverse_bits(mix64(key)) | 1` for data
//!   nodes, `reverse_bits(bucket)` for the immortal per-bucket dummy nodes).
//!   Nodes never move when the table grows — doubling the table merely
//!   *splits* each bucket by lacing a new dummy into the middle of its run;
//! * a **bucket directory**: a power-of-two array caching the dummy node of
//!   each bucket, initialised lazily (a bucket's dummy is spliced in after
//!   its parent bucket — the index with the top bit cleared — on first
//!   touch). The directory is itself a reclaimable block: a resize allocates
//!   a doubled copy, publishes it with one CAS, and **retires the superseded
//!   array through the [`Reclaimer`]** — readers still traversing from the
//!   old array are pinned by their [`Shield`], exactly like a reader of an
//!   unlinked list node. Directory blocks ride the same size-class block
//!   cache and batch retirement pipeline as every other block.
//!
//! This is the workload the WFE paper's reclamation schemes exist for but
//! its fixed-size evaluation never exercises: array-sized blocks retired
//! mid-operation while concurrent readers hold them.
//!
//! [`MichaelHashMap`]: crate::MichaelHashMap
//! [`Reclaimer`]: wfe_reclaim::Reclaimer
//! [`Shield`]: wfe_reclaim::Shield

use std::sync::Arc;
use wfe_sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use wfe_reclaim::ptr::tag;
use wfe_reclaim::{Atomic, Guard, Handle, Linked, Protected, Reclaimer, Shield};

use crate::hash::mix64;
use crate::traits::{ConcurrentMap, MapServiceStats};

/// Mark bit set on `next` when the owning node is logically deleted.
const MARK: usize = 1;

/// A node of the split-ordered list: either a data node (`value` is `Some`)
/// or a bucket dummy (`value` is `None`, never retired).
pub struct Node<V> {
    /// Split-order key: `reverse_bits(mix64(key)) | 1` for data nodes (odd),
    /// `reverse_bits(bucket)` for dummies (even) — so a bucket's dummy sorts
    /// immediately before the bucket's data run and the two kinds never
    /// collide.
    so_key: u64,
    /// The user key for data nodes, the bucket index for dummies (used only
    /// as a tie-break so equal `so_key`s still have a total order).
    key: u64,
    value: Option<V>,
    next: Atomic<Node<V>>,
}

/// The bucket directory: the retirable array of cached dummy pointers.
///
/// `slots.len()` is the current table size (a power of two); a null slot
/// means the bucket's dummy has not been spliced in (or cached) yet and is
/// initialised lazily from its parent bucket.
struct Directory<V> {
    slots: Box<[Atomic<Node<V>>]>,
}

/// The result of a split-ordered `find`, identical in shape to the
/// Harris-Michael window: `prev_src` is the link that led to `curr`, `curr`
/// the first node with `(so_key, key) >=` the target.
struct Window<'g, V> {
    prev_src: &'g Atomic<Node<V>>,
    curr: Protected<'g, Node<V>>,
    found: bool,
}

/// Shalev-Herlihy split-ordered hash map, parameterised by the reclamation
/// scheme. Grows by directory doubling; superseded directories are retired
/// through `R` so pinned readers stay safe.
pub struct ResizableHashMap<V, R: Reclaimer> {
    /// The current bucket directory. Swapped wholesale by `try_resize`; the
    /// superseded array is retired through the domain.
    dir: Atomic<Directory<V>>,
    /// The immortal bucket-0 dummy: the head of the whole split-ordered list
    /// (its `so_key` 0 is the global minimum).
    head: Atomic<Node<V>>,
    /// Data nodes currently in the map (dummies excluded).
    len: AtomicUsize,
    /// Mirror of the current directory size, readable without protection
    /// (stats and the resize trigger must not open a bracket).
    buckets: AtomicUsize,
    /// Completed directory doublings.
    resizes: AtomicU64,
    /// Cumulative bucket slots carried from superseded arrays into their
    /// replacements.
    migrated: AtomicU64,
    /// Test-only mutant switch: replaces the publish CAS of `try_resize`
    /// with a de-fenced load/check/store (see `debug_set_racy_publish`).
    racy_publish: AtomicBool,
    domain: Arc<R>,
}

// SAFETY: nodes own their `V`s; sending the structure sends those values.
unsafe impl<V: Send, R: Reclaimer> Send for ResizableHashMap<V, R> {}
// SAFETY: concurrent operations hand out `&V` (via `get`/clone), so `V`
// must be `Sync` as well as `Send`; the structure's own synchronisation is
// the lock-free algorithm plus the reclamation protocol.
unsafe impl<V: Send + Sync, R: Reclaimer> Sync for ResizableHashMap<V, R> {}

/// Split-order key of a data node: full-avalanche mix, bit-reversed so the
/// bucket bits (the hash's low bits) become the most significant, with the
/// lowest bit set to keep data keys disjoint from (and ordered after) the
/// even dummy keys.
#[inline]
fn data_so_key(key: u64) -> u64 {
    mix64(key).reverse_bits() | 1
}

/// Split-order key of bucket `bucket`'s dummy.
#[inline]
fn dummy_so_key(bucket: usize) -> u64 {
    (bucket as u64).reverse_bits()
}

/// The bucket whose run bucket `bucket` splits off from: the index with its
/// most significant set bit cleared.
#[inline]
fn parent_bucket(bucket: usize) -> usize {
    debug_assert!(bucket > 0, "bucket 0 has no parent");
    bucket ^ (1usize << (usize::BITS - 1 - bucket.leading_zeros()))
}

/// `(so_key, key)` lexicographic order — the total order of the list.
#[inline]
fn precedes(a_so: u64, a_key: u64, b_so: u64, b_key: u64) -> bool {
    a_so < b_so || (a_so == b_so && a_key < b_key)
}

impl<V, R: Reclaimer> ResizableHashMap<V, R> {
    /// Reservation slots the map needs per thread: one for the bucket
    /// directory plus the hand-over-hand `(prev, curr)` list window.
    pub const REQUIRED_SLOTS: usize = 3;

    /// Initial directory size of [`new`](Self::new): deliberately tiny so
    /// realistic workloads exercise the resize path.
    pub const DEFAULT_INITIAL_BUCKETS: usize = 8;

    /// Hard cap on the directory size (2^22 buckets ≈ 33 MiB of slots), so a
    /// runaway growth loop cannot exhaust memory through doubling alone.
    pub const MAX_BUCKETS: usize = 1 << 22;

    /// Data nodes per bucket that trigger a doubling.
    const RESIZE_AVG: usize = 3;

    /// Creates a map with [`DEFAULT_INITIAL_BUCKETS`](Self::DEFAULT_INITIAL_BUCKETS)
    /// buckets guarded by `domain`.
    pub fn new(domain: Arc<R>) -> Self {
        Self::with_initial_buckets(domain, Self::DEFAULT_INITIAL_BUCKETS)
    }

    /// Creates a map whose directory starts at `buckets` (rounded up to a
    /// power of two) guarded by `domain`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn with_initial_buckets(domain: Arc<R>, buckets: usize) -> Self {
        assert!(buckets > 0, "a hash map needs at least one bucket");
        let buckets = buckets.next_power_of_two().min(Self::MAX_BUCKETS);
        debug_assert!(
            domain.config().slots_per_thread >= Self::REQUIRED_SLOTS,
            "ResizableHashMap needs {} reservation slots per thread, domain provides {}",
            Self::REQUIRED_SLOTS,
            domain.config().slots_per_thread,
        );
        // The bucket-0 dummy is the head of the split-ordered list and lives
        // for the whole map (it is never retired), so era 0 is correct: it
        // predates every reservation.
        let head = Linked::alloc(
            Node {
                so_key: dummy_so_key(0),
                key: 0,
                value: None,
                next: Atomic::null(),
            },
            0,
        );
        let slots: Box<[Atomic<Node<V>>]> = (0..buckets)
            .map(|bucket| {
                if bucket == 0 {
                    Atomic::new(head)
                } else {
                    Atomic::null()
                }
            })
            .collect();
        let dir = Linked::alloc(Directory { slots }, 0);
        Self {
            dir: Atomic::new(dir),
            head: Atomic::new(head),
            len: AtomicUsize::new(0),
            buckets: AtomicUsize::new(buckets),
            resizes: AtomicU64::new(0),
            migrated: AtomicU64::new(0),
            racy_publish: AtomicBool::new(false),
            domain,
        }
    }

    /// The reclamation domain guarding this map.
    pub fn domain(&self) -> &Arc<R> {
        &self.domain
    }

    /// Number of data entries currently in the map (racy but monotonic
    /// between quiescent points).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire) // ORDER: advisory size read; pairs with the AcqRel len updates.
    }

    /// `true` when [`len`](Self::len) is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current directory size (bucket count).
    pub fn buckets(&self) -> usize {
        self.buckets.load(Ordering::Acquire) // ORDER: pairs with the Release store after a directory publish.
    }

    /// Service statistics: current load factor, completed resizes, and
    /// bucket slots migrated into replacement directories.
    pub fn stats(&self) -> MapServiceStats {
        let buckets = self.buckets().max(1);
        MapServiceStats {
            load_factor: self.len() as f64 / buckets as f64,
            resizes: self.resizes.load(Ordering::Relaxed), // ORDER: statistics counter only.
            migrated_buckets: self.migrated.load(Ordering::Relaxed), // ORDER: statistics counter only.
        }
    }

    /// Leases the two shields of the hand-over-hand list window.
    fn window_shields(handle: &R::Handle) -> [Shield<Node<V>, R::Handle>; 2] {
        let lease = || {
            handle
                .shield()
                .expect("ResizableHashMap: reservation slots exhausted (find needs two Shields)")
        };
        [lease(), lease()]
    }

    /// Leases the shield protecting the bucket directory.
    fn dir_shield(handle: &R::Handle) -> Shield<Directory<V>, R::Handle> {
        handle
            .shield()
            .expect("ResizableHashMap: reservation slots exhausted (the directory needs a Shield)")
    }

    /// The `next` link of an immortal dummy, with a caller-chosen lifetime.
    ///
    /// # Safety
    ///
    /// `dummy` must be one of this map's dummy nodes: dummies are never
    /// retired, so the reference cannot dangle for any lifetime shorter than
    /// the map's.
    #[inline]
    unsafe fn dummy_next<'a>(dummy: *mut Linked<Node<V>>) -> &'a Atomic<Node<V>> {
        // SAFETY: forwarded contract — the dummy is immortal.
        unsafe { &(*dummy).value.next }
    }

    /// Protects and returns the current directory.
    fn current_dir<'g>(
        &'g self,
        guard: &'g Guard<'_, R::Handle>,
        dir_shield: &mut Shield<Directory<V>, R::Handle>,
    ) -> (Protected<'g, Directory<V>>, &'g Directory<V>) {
        let dir = dir_shield.protect(guard, &self.dir, None);
        // SAFETY: `dir_shield` is not re-protected while the reference is in
        // use (each retry iteration re-protects only after the previous
        // reference is dead), and the directory pointer is never null.
        let dir_ref = unsafe { dir.as_ref() }.expect("directory pointer is never null");
        (dir, dir_ref)
    }

    /// Split-ordered `find` from `dummy`'s link: positions the window at the
    /// first node with `(so_key, key) >=` the target, unlinking and retiring
    /// logically deleted nodes on the way. Restarting on interference goes
    /// back to `dummy` (never the global head) — dummies are immortal and
    /// never marked, so the restart point is always valid.
    fn find_from<'g>(
        &'g self,
        guard: &'g Guard<'_, R::Handle>,
        shields: &mut [Shield<Node<V>, R::Handle>; 2],
        dummy: *mut Linked<Node<V>>,
        so_key: u64,
        key: u64,
    ) -> Window<'g, V> {
        'retry: loop {
            // SAFETY: `dummy` is immortal (the sentinel case of
            // `from_unlinked`), so it may serve as the window's parent
            // without a reservation.
            let mut prev: Protected<'g, Node<V>> = unsafe { Protected::from_unlinked(dummy) };
            // SAFETY: as above — immortal dummy.
            let mut prev_src: &'g Atomic<Node<V>> = unsafe { Self::dummy_next(dummy) };
            // Which of the two shields currently protects `curr` (the other
            // protects `prev`); they swap as the window slides.
            let mut shield_curr = 0usize;
            let mut curr = shields[shield_curr].protect(guard, prev_src, Some(prev));
            loop {
                if curr.is_null() {
                    return Window {
                        prev_src,
                        curr: Protected::null(),
                        found: false,
                    };
                }
                if curr.tag() != 0 {
                    // The link we came through is marked, i.e. `prev` itself
                    // is being deleted: restart from the bucket dummy.
                    continue 'retry;
                }
                // SAFETY: `curr` is protected by `shields[shield_curr]`;
                // that shield is only re-protected after `curr` leaves the
                // window (the other shield covers `prev`), so the reference
                // stays pinned while it is used.
                let curr_ref = unsafe { curr.as_ref() }.expect("non-null protected node");
                let next_raw = curr_ref.next.load(Ordering::Acquire); // ORDER: pairs with the AcqRel link and mark writes on `next`.
                if tag::tag_of(next_raw) == MARK {
                    // `curr` is logically deleted: unlink it and retire it.
                    let next = tag::untagged(next_raw);
                    match prev_src.compare_exchange(
                        curr.as_raw(),
                        next,
                        Ordering::AcqRel, // ORDER: success publishes the unlink; failure observes the winner.
                        Ordering::Acquire,
                    ) {
                        Ok(_) => {
                            // SAFETY: we won the unlink CAS, so `curr` is
                            // unreachable and ours to retire exactly once.
                            unsafe { curr.retire_in(guard) };
                            curr = shields[shield_curr].protect(guard, prev_src, Some(prev));
                            continue;
                        }
                        Err(_) => continue 'retry,
                    }
                }
                let (curr_so, curr_key) = (curr_ref.so_key, curr_ref.key);
                // Validate that `curr` is still linked after we protected
                // it; if not, the keys we just read may belong to a node
                // that was removed and the window would be stale.
                // ORDER: window re-validation; pairs with AcqRel link/unlink CASes.
                if prev_src.load(Ordering::Acquire) != curr.as_raw() {
                    continue 'retry;
                }
                if !precedes(curr_so, curr_key, so_key, key) {
                    return Window {
                        prev_src,
                        curr,
                        found: curr_so == so_key && curr_key == key,
                    };
                }
                // Advance hand-over-hand: `curr` becomes the new `prev` and
                // keeps its shield; `prev`'s shield is recycled for the new
                // `curr`.
                prev = curr;
                prev_src = &curr_ref.next;
                shield_curr = 1 - shield_curr;
                curr = shields[shield_curr].protect(guard, prev_src, Some(prev));
            }
        }
    }

    /// Returns bucket `bucket`'s dummy under `dir`, splicing it into the
    /// list (after its parent bucket's dummy, recursively) and caching it in
    /// the directory slot on first touch.
    ///
    /// The returned pointer is immortal, so it stays valid even if `dir` is
    /// superseded and retired while the caller still traverses from it —
    /// that is exactly the reader-on-the-old-array case the retirement
    /// protocol exists for.
    fn bucket_dummy<'g>(
        &'g self,
        guard: &'g Guard<'_, R::Handle>,
        shields: &mut [Shield<Node<V>, R::Handle>; 2],
        dir: &'g Directory<V>,
        bucket: usize,
    ) -> *mut Linked<Node<V>> {
        let slot = &dir.slots[bucket];
        let cached = slot.load(Ordering::Acquire); // ORDER: pairs with the AcqRel cache fill of this slot.
        if !cached.is_null() {
            return cached;
        }
        if bucket == 0 {
            // Slot 0 of a replacement directory could only be null if the
            // copy raced construction, which cannot happen (the head is
            // cached before the map is shared); recover regardless.
            let head = self.head.load(Ordering::Relaxed); // ORDER: the head is fixed at construction; no ordering needed.
            let _ = slot.compare_exchange(
                core::ptr::null_mut(),
                head,
                Ordering::AcqRel, // ORDER: success publishes the cached head; failure means another thread cached it.
                Ordering::Acquire,
            );
            return head;
        }
        let parent = self.bucket_dummy(guard, shields, dir, parent_bucket(bucket));
        let (so_key, key) = (dummy_so_key(bucket), bucket as u64);
        let mut node: *mut Linked<Node<V>> = core::ptr::null_mut();
        let dummy = loop {
            let window = self.find_from(guard, shields, parent, so_key, key);
            if window.found {
                // Another thread spliced the dummy in first: adopt it.
                if !node.is_null() {
                    // SAFETY: our candidate never became reachable; freed
                    // exactly once.
                    unsafe { Linked::dealloc(node) };
                }
                break window.curr.as_raw();
            }
            if node.is_null() {
                node = guard.alloc(Node {
                    so_key,
                    key,
                    value: None,
                    next: Atomic::null(),
                });
            }
            // SAFETY: `node` is owned and unpublished until the CAS succeeds.
            unsafe {
                (*node)
                    .value
                    .next
                    .store(window.curr.as_raw(), Ordering::Release) // ORDER: publishes the node's link before the CAS publishes the node.
            };
            if window
                .prev_src
                .compare_exchange(
                    window.curr.as_raw(),
                    node,
                    Ordering::AcqRel, // ORDER: success publishes the node; failure observes the winning link.
                    Ordering::Acquire,
                )
                .is_ok()
            {
                break node;
            }
        };
        // Cache the dummy; a lost race cached the same pointer (exactly one
        // dummy per split-order key is ever in the list).
        let _ = slot.compare_exchange(
            core::ptr::null_mut(),
            dummy,
            Ordering::AcqRel, // ORDER: success caches the dummy; a failure cached the same pointer.
            Ordering::Acquire,
        );
        dummy
    }

    /// Inserts `key → value`; returns `false` (dropping `value`) if the key
    /// is already present. May trigger a directory doubling on the way out.
    pub fn insert(&self, handle: &mut R::Handle, key: u64, value: V) -> bool {
        let so_key = data_so_key(key);
        let inserted = {
            let mut dir_shield = Self::dir_shield(handle);
            let mut shields = Self::window_shields(handle);
            let node = handle.alloc(Node {
                so_key,
                key,
                value: Some(value),
                next: Atomic::null(),
            });
            let guard = handle.enter();
            loop {
                let (_dir, dir_ref) = self.current_dir(&guard, &mut dir_shield);
                let bucket = mix64(key) as usize & (dir_ref.slots.len() - 1);
                let dummy = self.bucket_dummy(&guard, &mut shields, dir_ref, bucket);
                let window = self.find_from(&guard, &mut shields, dummy, so_key, key);
                if window.found {
                    // Key already present: the freshly allocated node was
                    // never published, so it can be freed immediately.
                    // SAFETY: `node` never became reachable; freed once.
                    unsafe { Linked::dealloc(node) };
                    break false;
                }
                // SAFETY: `node` is owned and unpublished until the CAS
                // succeeds.
                unsafe {
                    (*node)
                        .value
                        .next
                        .store(window.curr.as_raw(), Ordering::Release) // ORDER: publishes the node's link before the CAS publishes the node.
                };
                if window
                    .prev_src
                    .compare_exchange(
                        window.curr.as_raw(),
                        node,
                        Ordering::AcqRel, // ORDER: success publishes the node; failure observes the winning link.
                        Ordering::Acquire,
                    )
                    .is_ok()
                {
                    break true;
                }
            }
        };
        if inserted {
            let len = self.len.fetch_add(1, Ordering::AcqRel) + 1; // ORDER: advisory size counter driving the resize trigger.
            if len
                >= self
                    .buckets
                    .load(Ordering::Acquire) // ORDER: pairs with the Release store after a directory publish.
                    .saturating_mul(Self::RESIZE_AVG)
            {
                self.try_resize(handle);
            }
        }
        inserted
    }

    /// Removes `key`; returns `true` if it was present.
    pub fn remove(&self, handle: &mut R::Handle, key: u64) -> bool {
        let so_key = data_so_key(key);
        let mut dir_shield = Self::dir_shield(handle);
        let mut shields = Self::window_shields(handle);
        let guard = handle.enter();
        loop {
            let (_dir, dir_ref) = self.current_dir(&guard, &mut dir_shield);
            let bucket = mix64(key) as usize & (dir_ref.slots.len() - 1);
            let dummy = self.bucket_dummy(&guard, &mut shields, dir_ref, bucket);
            let window = self.find_from(&guard, &mut shields, dummy, so_key, key);
            if !window.found {
                return false;
            }
            let curr = window.curr;
            // SAFETY: the window's shields are not re-protected between
            // `find_from` returning and the last use of this reference (the
            // unlink-failure `find_from` below runs after it).
            let curr_ref = unsafe { curr.as_ref() }.expect("found window has a node");
            let next_raw = curr_ref.next.load(Ordering::Acquire); // ORDER: pairs with the AcqRel mark/link writes on `next`.
            if tag::tag_of(next_raw) == MARK {
                // Another remover got here first; retry to settle who wins.
                continue;
            }
            // Logical deletion: mark the next pointer of `curr`.
            if curr_ref
                .next
                .compare_exchange(
                    next_raw,
                    tag::with_tag(next_raw, MARK),
                    Ordering::AcqRel, // ORDER: success publishes the logical delete; failure observes the winner.
                    Ordering::Acquire,
                )
                .is_err()
            {
                continue;
            }
            self.len.fetch_sub(1, Ordering::AcqRel); // ORDER: advisory size counter (resize trigger and stats).
                                                     // Physical deletion: unlink it ourselves or let a later find do
                                                     // it.
            if window
                .prev_src
                .compare_exchange(
                    curr.as_raw(),
                    tag::untagged(next_raw),
                    Ordering::AcqRel, // ORDER: success publishes the unlink; failure defers to a later find.
                    Ordering::Acquire,
                )
                .is_ok()
            {
                // SAFETY: we marked and then unlinked `curr`; the winning
                // unlink CAS makes it ours to retire exactly once.
                unsafe { curr.retire_in(&guard) };
            } else {
                let _ = self.find_from(&guard, &mut shields, dummy, so_key, key);
            }
            return true;
        }
    }

    /// Returns `true` if `key` is present.
    pub fn contains(&self, handle: &mut R::Handle, key: u64) -> bool {
        let so_key = data_so_key(key);
        let mut dir_shield = Self::dir_shield(handle);
        let mut shields = Self::window_shields(handle);
        let guard = handle.enter();
        let (_dir, dir_ref) = self.current_dir(&guard, &mut dir_shield);
        let bucket = mix64(key) as usize & (dir_ref.slots.len() - 1);
        let dummy = self.bucket_dummy(&guard, &mut shields, dir_ref, bucket);
        self.find_from(&guard, &mut shields, dummy, so_key, key)
            .found
    }

    /// Doubles the directory now, regardless of load factor. Returns `true`
    /// if this call performed the doubling (`false` when another thread's
    /// resize superseded the directory first, or the size cap is reached).
    pub fn force_resize(&self, handle: &mut R::Handle) -> bool {
        self.try_resize(handle).is_some()
    }

    /// The resize engine: snapshots the current directory under protection,
    /// builds a doubled copy carrying the old bucket caches forward, and
    /// publishes it with a single CAS. The winner retires the superseded
    /// array through the domain; the loser frees its unpublished copy.
    ///
    /// Returns the address of the array this thread retired, for the
    /// retired-exactly-once model schedule.
    fn try_resize(&self, handle: &mut R::Handle) -> Option<usize> {
        let mut dir_shield = Self::dir_shield(handle);
        let guard = handle.enter();
        let (old, old_ref) = self.current_dir(&guard, &mut dir_shield);
        let old_size = old_ref.slots.len();
        if old_size >= Self::MAX_BUCKETS {
            return None;
        }
        let new_size = old_size * 2;
        // Carry the cached dummy pointers forward; slots initialised in the
        // old array after this copy are re-derived lazily (the dummy is
        // already in the list, so the first touch adopts it). The upper half
        // starts empty: those buckets split lazily on first touch.
        let slots: Box<[Atomic<Node<V>>]> = (0..new_size)
            .map(|bucket| {
                if bucket < old_size {
                    Atomic::new(old_ref.slots[bucket].load(Ordering::Acquire)) // ORDER: pairs with the AcqRel cache fill in the old directory.
                } else {
                    Atomic::null()
                }
            })
            .collect();
        let new_dir = guard.alloc(Directory { slots });
        // ORDER: test-hook flag, set before the map is shared.
        let won = if self.racy_publish.load(Ordering::Relaxed) {
            // MUTANT (test hook): de-fenced publish — a plain load/check/
            // store instead of one atomic CAS. Two resizers can both pass
            // the check and both believe they unlinked the same array.
            // ORDER: test-mutant path: the missing fence is the defect under test.
            if self.dir.load(Ordering::Acquire) == old.as_raw() {
                self.dir.store(new_dir, Ordering::Release); // ORDER: test-mutant path: deliberately a plain store, not a CAS.
                true
            } else {
                false
            }
        } else {
            self.dir
                .compare_exchange(old.as_raw(), new_dir, Ordering::AcqRel, Ordering::Acquire) // ORDER: success publishes the new directory; failure observes the winner.
                .is_ok()
        };
        if won {
            self.buckets.store(new_size, Ordering::Release); // ORDER: pairs with Acquire reads of the bucket count.
            self.resizes.fetch_add(1, Ordering::Relaxed); // ORDER: statistics counter only.
            self.migrated.fetch_add(old_size as u64, Ordering::Relaxed); // ORDER: statistics counter only.
                                                                         // ORDER: test-hook flag, set before the map is shared.
            if !self.racy_publish.load(Ordering::Relaxed) {
                // SAFETY: we won the publish CAS, so the old array is
                // unreachable from `self.dir` and ours to retire exactly
                // once; the guard brackets a handle of the owning domain.
                unsafe { old.retire_in(&guard) };
            }
            // Mutant mode deliberately skips the retire: the model harness
            // asserts on the returned address (a double report == a double
            // retire) without actually double-freeing the block.
            Some(old.as_raw() as usize)
        } else {
            // SAFETY: our copy never became reachable; freed exactly once.
            unsafe { Linked::dealloc(new_dir) };
            None
        }
    }

    /// Test hook: replaces the resize publish CAS with a de-fenced
    /// load/check/store, so the deterministic scheduler can demonstrate the
    /// double-retire that the CAS prevents. Never enable outside a model
    /// harness — a "won" mutant resize leaks the superseded array instead of
    /// retiring it (precisely so the double-retire is observable without
    /// corrupting the heap).
    #[doc(hidden)]
    pub fn debug_set_racy_publish(&self, racy: bool) {
        self.racy_publish.store(racy, Ordering::SeqCst);
    }

    /// Test hook: runs one forced doubling and reports the address of the
    /// array this thread retired (`None` if it lost the publish race). The
    /// retired-exactly-once model schedule asserts these addresses are
    /// distinct across threads.
    #[doc(hidden)]
    pub fn debug_force_resize(&self, handle: &mut R::Handle) -> Option<usize> {
        self.try_resize(handle)
    }
}

impl<V: Clone, R: Reclaimer> ResizableHashMap<V, R> {
    /// Looks up `key`, returning a clone of its value.
    pub fn get(&self, handle: &mut R::Handle, key: u64) -> Option<V> {
        let so_key = data_so_key(key);
        let mut dir_shield = Self::dir_shield(handle);
        let mut shields = Self::window_shields(handle);
        let guard = handle.enter();
        let (_dir, dir_ref) = self.current_dir(&guard, &mut dir_shield);
        let bucket = mix64(key) as usize & (dir_ref.slots.len() - 1);
        let dummy = self.bucket_dummy(&guard, &mut shields, dir_ref, bucket);
        let window = self.find_from(&guard, &mut shields, dummy, so_key, key);
        if window.found {
            // SAFETY: the window's shields are not re-protected after
            // `find_from` returns, so `curr` stays pinned while the value is
            // cloned. A found data node always has `Some` value (dummies
            // have even split-order keys and can never match a data target).
            unsafe { window.curr.as_ref() }.and_then(|node| node.value.clone())
        } else {
            None
        }
    }
}

impl<V, R: Reclaimer> Drop for ResizableHashMap<V, R> {
    fn drop(&mut self) {
        // Exclusive access: walk the whole split-ordered list (dummies and
        // data nodes alike) and free every node directly, then the current
        // directory. Superseded directories were retired through the domain
        // and are freed by its own teardown.
        let mut cur = tag::untagged(self.head.load(Ordering::Relaxed)); // ORDER: Drop has exclusive access.
        while !cur.is_null() {
            // SAFETY: `Drop` has exclusive access; every reachable node is
            // valid and freed exactly once.
            let next = tag::untagged(unsafe { (*cur).value.next.load(Ordering::Relaxed) }); // ORDER: Drop has exclusive access.
                                                                                            // SAFETY: as above — exclusive access, freed exactly once.
            unsafe { Linked::dealloc(cur) };
            cur = next;
        }
        let dir = self.dir.load(Ordering::Relaxed); // ORDER: Drop has exclusive access.
                                                    // SAFETY: exclusive access; the current directory is freed once.
        unsafe { Linked::dealloc(dir) };
    }
}

impl<R: Reclaimer> ConcurrentMap<R> for ResizableHashMap<u64, R> {
    fn with_domain(domain: Arc<R>) -> Self {
        Self::new(domain)
    }

    fn insert(&self, handle: &mut R::Handle, key: u64, value: u64) -> bool {
        ResizableHashMap::insert(self, handle, key, value)
    }

    fn remove(&self, handle: &mut R::Handle, key: u64) -> bool {
        ResizableHashMap::remove(self, handle, key)
    }

    fn get(&self, handle: &mut R::Handle, key: u64) -> Option<u64> {
        ResizableHashMap::get(self, handle, key)
    }

    fn required_slots() -> usize {
        Self::REQUIRED_SLOTS
    }

    fn node_bytes() -> usize {
        core::mem::size_of::<wfe_reclaim::Linked<Node<u64>>>()
    }

    fn service_stats(&self) -> MapServiceStats {
        ResizableHashMap::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap as StdHashMap;
    use wfe_reclaim::{Ebr, He, Hp, Ibr2Ge, Leak, ReclaimerConfig};

    fn small_config(threads: usize) -> ReclaimerConfig {
        ReclaimerConfig {
            cleanup_freq: 8,
            era_freq: 16,
            ..ReclaimerConfig::with_max_threads(threads)
        }
    }

    fn growth_semantics<R: Reclaimer>() {
        let domain = R::with_config(small_config(1));
        let map = ResizableHashMap::<u64, R>::with_initial_buckets(Arc::clone(&domain), 2);
        let mut handle = domain.register();
        for key in 0..256 {
            assert!(map.insert(&mut handle, key, key * 7));
            assert!(!map.insert(&mut handle, key, 0), "duplicate rejected");
        }
        let stats = map.stats();
        assert!(stats.resizes > 0, "256 inserts from 2 buckets must resize");
        assert!(stats.migrated_buckets > 0);
        assert!(map.buckets() > 2);
        for key in 0..256 {
            assert_eq!(map.get(&mut handle, key), Some(key * 7), "key {key}");
        }
        for key in (0..256).step_by(2) {
            assert!(map.remove(&mut handle, key));
            assert!(!map.remove(&mut handle, key), "double remove rejected");
        }
        for key in 0..256 {
            assert_eq!(map.contains(&mut handle, key), key % 2 == 1);
        }
        assert_eq!(map.len(), 128);
    }

    #[test]
    fn growth_semantics_under_every_scheme() {
        // `Wfe` lives upstream of this crate; the six-scheme matrix
        // (including WFE) runs in `tests/conformance_smoke.rs`.
        growth_semantics::<He>();
        growth_semantics::<Ebr>();
        growth_semantics::<Hp>();
        growth_semantics::<Ibr2Ge>();
        growth_semantics::<Leak>();
    }

    #[test]
    fn matches_a_sequential_model_across_resizes() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(0x5EED);
        let domain = He::with_config(small_config(1));
        let map = ResizableHashMap::<u64, He>::with_initial_buckets(Arc::clone(&domain), 2);
        let mut handle = domain.register();
        let mut model: StdHashMap<u64, u64> = StdHashMap::new();
        for step in 0..8_000u64 {
            let key = rng.gen_range(0..512u64);
            match rng.gen_range(0..4) {
                0 | 1 => {
                    let fresh = !model.contains_key(&key);
                    assert_eq!(map.insert(&mut handle, key, step), fresh);
                    model.entry(key).or_insert(step);
                }
                2 => assert_eq!(map.remove(&mut handle, key), model.remove(&key).is_some()),
                _ => assert_eq!(map.get(&mut handle, key), model.get(&key).copied()),
            }
        }
        assert_eq!(map.len(), model.len());
        assert!(map.stats().resizes > 0, "the workload must grow the table");
    }

    #[test]
    fn concurrent_threads_own_disjoint_keys_through_resizes() {
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 1_500;
        let domain = He::with_config(small_config(THREADS));
        let map = ResizableHashMap::<u64, He>::with_initial_buckets(Arc::clone(&domain), 2);
        std::thread::scope(|scope| {
            for t in 0..THREADS as u64 {
                let map = &map;
                let domain = Arc::clone(&domain);
                scope.spawn(move || {
                    let mut handle = domain.register();
                    for i in 0..PER_THREAD {
                        let key = t * PER_THREAD + i;
                        assert!(map.insert(&mut handle, key, key));
                        assert_eq!(map.get(&mut handle, key), Some(key));
                        if i % 2 == 0 {
                            assert!(map.remove(&mut handle, key));
                        }
                    }
                });
            }
        });
        let mut handle = domain.register();
        for key in 0..THREADS as u64 * PER_THREAD {
            assert_eq!(map.contains(&mut handle, key), key % 2 == 1, "key {key}");
        }
        assert!(map.stats().resizes > 0);
    }

    #[test]
    fn forced_resize_reports_the_superseded_array_once() {
        let domain = He::with_config(small_config(1));
        let map = ResizableHashMap::<u64, He>::with_initial_buckets(Arc::clone(&domain), 4);
        let mut handle = domain.register();
        let first = map.debug_force_resize(&mut handle);
        let second = map.debug_force_resize(&mut handle);
        let (first, second) = (first.expect("uncontended"), second.expect("uncontended"));
        assert_ne!(first, second, "each doubling retires a distinct array");
        assert_eq!(map.buckets(), 16);
        assert_eq!(map.stats().resizes, 2);
        assert_eq!(map.stats().migrated_buckets, 4 + 8);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_rejected() {
        let domain = He::new_default();
        let _ = ResizableHashMap::<u64, He>::with_initial_buckets(domain, 0);
    }

    #[test]
    fn split_order_keys_are_disjoint_and_ordered() {
        // Dummy keys are even, data keys odd: the two kinds never collide.
        for bucket in 0..64 {
            assert_eq!(dummy_so_key(bucket) & 1, 0);
        }
        for key in 0..64 {
            assert_eq!(data_so_key(key) & 1, 1);
        }
        // A bucket's dummy precedes every key hashed into it, and the
        // split dummy of the upper half lands inside the parent's run.
        for key in 0..1024u64 {
            let bucket = mix64(key) as usize & 7;
            assert!(dummy_so_key(bucket) < data_so_key(key) || bucket == 0);
            let wide = mix64(key) as usize & 15;
            assert!(dummy_so_key(wide) <= data_so_key(key));
            if wide != bucket {
                assert_eq!(parent_bucket(wide), bucket, "split keeps the parent prefix");
            }
        }
    }
}
