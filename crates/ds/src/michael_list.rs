//! Harris-Michael lock-free sorted linked list.
//!
//! The "Linked List" workload of Figures 6 and 9: a sorted singly-linked list
//! of key-value pairs with lock-free `insert`, `remove` and `get`
//! (Harris's logical-deletion mark combined with Michael's hazard-pointer
//! compatible `find`). A logically deleted node has the low bit of its `next`
//! pointer set; `find` physically unlinks such nodes as it passes them and
//! retires them through the reclamation scheme.

use core::ptr;
use core::sync::atomic::Ordering;
use std::sync::Arc;

use wfe_reclaim::ptr::tag;
use wfe_reclaim::{Atomic, Handle, Linked, RawHandle, Reclaimer};

use crate::traits::ConcurrentMap;

/// Mark bit set on `next` when the owning node is logically deleted.
const MARK: usize = 1;

/// A node of the list.
pub struct Node<V> {
    key: u64,
    value: V,
    next: Atomic<Node<V>>,
}

/// The result of a `find`: the location of the link to `curr` (`prev_src`),
/// the node containing that link (`prev_node`, null when the link is the list
/// head) and the first node with `node.key >= key` (`curr`, null at the end
/// of the list).
struct Window<V> {
    prev_src: *const Atomic<Node<V>>,
    curr: *mut Linked<Node<V>>,
    found: bool,
}

/// Harris-Michael sorted linked list, parameterised by the reclamation scheme.
pub struct MichaelList<V, R: Reclaimer> {
    head: Atomic<Node<V>>,
    domain: Arc<R>,
}

unsafe impl<V: Send, R: Reclaimer> Send for MichaelList<V, R> {}
unsafe impl<V: Send + Sync, R: Reclaimer> Sync for MichaelList<V, R> {}

impl<V, R: Reclaimer> MichaelList<V, R> {
    /// Reservation slot protecting `curr` (swapped with [`Self::SLOT_PREV`]
    /// as the traversal advances, hand-over-hand).
    const SLOT_CURR: usize = 0;
    /// Reservation slot protecting `prev`.
    const SLOT_PREV: usize = 1;

    /// Reservation slots the list needs per thread: the hand-over-hand
    /// `(prev, curr)` window.
    pub const REQUIRED_SLOTS: usize = 2;

    /// Creates an empty list guarded by `domain`.
    pub fn new(domain: Arc<R>) -> Self {
        debug_assert!(
            domain.config().slots_per_thread >= Self::REQUIRED_SLOTS,
            "MichaelList needs {} reservation slots per thread, domain provides {}",
            Self::REQUIRED_SLOTS,
            domain.config().slots_per_thread,
        );
        Self {
            head: Atomic::null(),
            domain,
        }
    }

    /// The reclamation domain guarding this list.
    pub fn domain(&self) -> &Arc<R> {
        &self.domain
    }

    /// Michael's `find`: positions a window `(prev, curr)` such that `curr` is
    /// the first node with `curr.key >= key`, unlinking any logically deleted
    /// node encountered on the way. Both window nodes are protected when the
    /// function returns. The caller must already be inside an operation
    /// bracket (`begin_op`).
    fn find(&self, handle: &mut R::Handle, key: u64) -> Window<V> {
        'retry: loop {
            let mut prev_src: *const Atomic<Node<V>> = &self.head;
            let mut prev_node: *mut Linked<Node<V>> = ptr::null_mut();
            let mut slot_curr = Self::SLOT_CURR;
            let mut slot_prev = Self::SLOT_PREV;
            let mut curr = handle.protect(unsafe { &*prev_src }, slot_curr, prev_node);
            loop {
                if tag::untagged(curr).is_null() {
                    return Window {
                        prev_src,
                        curr: ptr::null_mut(),
                        found: false,
                    };
                }
                if tag::tag_of(curr) != 0 {
                    // The link we came through is marked, i.e. `prev` itself
                    // is being deleted: restart from the head.
                    continue 'retry;
                }
                let next_raw = unsafe { (*curr).value.next.load(Ordering::Acquire) };
                if tag::tag_of(next_raw) == MARK {
                    // `curr` is logically deleted: unlink it and retire it.
                    let next = tag::untagged(next_raw);
                    match unsafe { &*prev_src }.compare_exchange(
                        curr,
                        next,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => {
                            unsafe { handle.retire(curr) };
                            curr = handle.protect(unsafe { &*prev_src }, slot_curr, prev_node);
                            continue;
                        }
                        Err(_) => continue 'retry,
                    }
                }
                let curr_key = unsafe { (*curr).value.key };
                // Validate that `curr` is still linked after we protected it;
                // if not, the key we just read may belong to a node that was
                // removed and the window would be stale.
                if unsafe { &*prev_src }.load(Ordering::Acquire) != curr {
                    continue 'retry;
                }
                if curr_key >= key {
                    return Window {
                        prev_src,
                        curr,
                        found: curr_key == key,
                    };
                }
                // Advance hand-over-hand: `curr` becomes the new `prev` and
                // keeps its protection slot; the old `prev` slot is recycled
                // for the new `curr`.
                prev_node = curr;
                prev_src = unsafe { &(*curr).value.next };
                core::mem::swap(&mut slot_curr, &mut slot_prev);
                curr = handle.protect(unsafe { &*prev_src }, slot_curr, prev_node);
            }
        }
    }

    /// Inserts `key → value`; returns `false` (dropping `value`) if the key
    /// is already present.
    pub fn insert(&self, handle: &mut R::Handle, key: u64, value: V) -> bool {
        handle.begin_op();
        let node = handle.alloc(Node {
            key,
            value,
            next: Atomic::null(),
        });
        let inserted = loop {
            let window = self.find(handle, key);
            if window.found {
                // Key already present: the freshly allocated node was never
                // published, so it can be freed immediately.
                unsafe { Linked::dealloc(node) };
                break false;
            }
            unsafe { (*node).value.next.store(window.curr, Ordering::Release) };
            if unsafe { &*window.prev_src }
                .compare_exchange(window.curr, node, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break true;
            }
        };
        handle.end_op();
        inserted
    }

    /// Removes `key`; returns `true` if it was present.
    pub fn remove(&self, handle: &mut R::Handle, key: u64) -> bool {
        handle.begin_op();
        let removed = loop {
            let window = self.find(handle, key);
            if !window.found {
                break false;
            }
            let curr = window.curr;
            let next_raw = unsafe { (*curr).value.next.load(Ordering::Acquire) };
            if tag::tag_of(next_raw) == MARK {
                // Another remover got here first; retry to settle who wins.
                continue;
            }
            // Logical deletion: mark the next pointer of `curr`.
            if unsafe { &(*curr).value.next }
                .compare_exchange(
                    next_raw,
                    tag::with_tag(next_raw, MARK),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_err()
            {
                continue;
            }
            // Physical deletion: unlink it ourselves or let a later `find` do it.
            if unsafe { &*window.prev_src }
                .compare_exchange(
                    curr,
                    tag::untagged(next_raw),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                unsafe { handle.retire(curr) };
            } else {
                let _ = self.find(handle, key);
            }
            break true;
        };
        handle.end_op();
        removed
    }

    /// Returns `true` if `key` is present.
    pub fn contains(&self, handle: &mut R::Handle, key: u64) -> bool {
        handle.begin_op();
        let found = self.find(handle, key).found;
        handle.end_op();
        found
    }
}

impl<V: Clone, R: Reclaimer> MichaelList<V, R> {
    /// Looks up `key`, returning a clone of its value.
    pub fn get(&self, handle: &mut R::Handle, key: u64) -> Option<V> {
        handle.begin_op();
        let window = self.find(handle, key);
        let value = if window.found {
            Some(unsafe { (*window.curr).value.value.clone() })
        } else {
            None
        };
        handle.end_op();
        value
    }
}

impl<V, R: Reclaimer> Drop for MichaelList<V, R> {
    fn drop(&mut self) {
        // Exclusive access: walk the list and free every node directly.
        let mut cur = tag::untagged(self.head.load(Ordering::Relaxed));
        while !cur.is_null() {
            let next = tag::untagged(unsafe { (*cur).value.next.load(Ordering::Relaxed) });
            unsafe { Linked::dealloc(cur) };
            cur = next;
        }
    }
}

impl<R: Reclaimer> ConcurrentMap<R> for MichaelList<u64, R> {
    fn with_domain(domain: Arc<R>) -> Self {
        Self::new(domain)
    }

    fn insert(&self, handle: &mut R::Handle, key: u64, value: u64) -> bool {
        MichaelList::insert(self, handle, key, value)
    }

    fn remove(&self, handle: &mut R::Handle, key: u64) -> bool {
        MichaelList::remove(self, handle, key)
    }

    fn get(&self, handle: &mut R::Handle, key: u64) -> Option<u64> {
        MichaelList::get(self, handle, key)
    }

    fn required_slots() -> usize {
        Self::REQUIRED_SLOTS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use wfe_reclaim::{Ebr, He, Hp, Ibr2Ge, Leak, ReclaimerConfig};

    fn sequential_semantics<R: Reclaimer>() {
        let domain = R::new_default();
        let list = MichaelList::<u64, R>::new(Arc::clone(&domain));
        let mut handle = domain.register();

        assert!(list.insert(&mut handle, 5, 50));
        assert!(list.insert(&mut handle, 1, 10));
        assert!(list.insert(&mut handle, 3, 30));
        assert!(!list.insert(&mut handle, 3, 31), "duplicate rejected");
        assert_eq!(list.get(&mut handle, 3), Some(30));
        assert_eq!(list.get(&mut handle, 2), None);
        assert!(list.contains(&mut handle, 1));
        assert!(list.remove(&mut handle, 3));
        assert!(!list.remove(&mut handle, 3), "double remove rejected");
        assert_eq!(list.get(&mut handle, 3), None);
        assert!(list.insert(&mut handle, 3, 33), "reinsert after remove");
        assert_eq!(list.get(&mut handle, 3), Some(33));
    }

    #[test]
    fn sequential_semantics_under_every_scheme() {
        sequential_semantics::<He>();
        sequential_semantics::<Ebr>();
        sequential_semantics::<Hp>();
        sequential_semantics::<Ibr2Ge>();
        sequential_semantics::<Leak>();
    }

    #[test]
    fn matches_a_sequential_model() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(0xDECAF);
        let domain = He::new_default();
        let list = MichaelList::<u64, He>::new(Arc::clone(&domain));
        let mut handle = domain.register();
        let mut model = BTreeSet::new();
        for _ in 0..4_000 {
            let key = rng.gen_range(0..64u64);
            match rng.gen_range(0..3) {
                0 => assert_eq!(list.insert(&mut handle, key, key * 2), model.insert(key)),
                1 => assert_eq!(list.remove(&mut handle, key), model.remove(&key)),
                _ => assert_eq!(list.get(&mut handle, key), model.get(&key).map(|&k| k * 2)),
            }
        }
    }

    fn concurrent_inserts_partition<R: Reclaimer>() {
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 500;
        let domain = R::with_config(ReclaimerConfig::with_max_threads(THREADS));
        let list = MichaelList::<u64, R>::new(Arc::clone(&domain));
        std::thread::scope(|scope| {
            for t in 0..THREADS as u64 {
                let list = &list;
                let domain = Arc::clone(&domain);
                scope.spawn(move || {
                    let mut handle = domain.register();
                    for i in 0..PER_THREAD {
                        assert!(list.insert(&mut handle, t * PER_THREAD + i, i));
                    }
                });
            }
        });
        let mut handle = domain.register();
        for key in 0..THREADS as u64 * PER_THREAD {
            assert!(list.contains(&mut handle, key), "missing key {key}");
        }
    }

    #[test]
    fn concurrent_inserts_are_all_visible() {
        concurrent_inserts_partition::<He>();
        concurrent_inserts_partition::<Hp>();
    }

    #[test]
    fn concurrent_mixed_workload_stays_consistent() {
        // Threads fight over the same small key range; afterwards the list
        // must contain exactly the keys that a final sweep observes, with no
        // crashes, leaks or double frees along the way (the latter two are
        // caught by the conformance drop counters in the reclaim crate; here
        // we check structural sanity).
        const THREADS: usize = 4;
        let domain = He::with_config(ReclaimerConfig::with_max_threads(THREADS));
        let list = MichaelList::<u64, He>::new(Arc::clone(&domain));
        std::thread::scope(|scope| {
            for t in 0..THREADS as u64 {
                let list = &list;
                let domain = Arc::clone(&domain);
                scope.spawn(move || {
                    use rand::prelude::*;
                    let mut rng = StdRng::seed_from_u64(t);
                    let mut handle = domain.register();
                    for _ in 0..5_000 {
                        let key = rng.gen_range(0..32u64);
                        if rng.gen_bool(0.5) {
                            list.insert(&mut handle, key, key);
                        } else {
                            list.remove(&mut handle, key);
                        }
                    }
                });
            }
        });
        // The list must still be sorted and duplicate-free.
        let mut handle = domain.register();
        let mut present = Vec::new();
        for key in 0..32u64 {
            if list.contains(&mut handle, key) {
                present.push(key);
            }
        }
        let unique: BTreeSet<u64> = present.iter().copied().collect();
        assert_eq!(unique.len(), present.len());
    }
}
