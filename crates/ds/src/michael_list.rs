//! Harris-Michael lock-free sorted linked list.
//!
//! The "Linked List" workload of Figures 6 and 9: a sorted singly-linked list
//! of key-value pairs with lock-free `insert`, `remove` and `get`
//! (Harris's logical-deletion mark combined with Michael's hazard-pointer
//! compatible `find`). A logically deleted node has the low bit of its `next`
//! pointer set; `find` physically unlinks such nodes as it passes them and
//! retires them through the reclamation scheme.

use std::sync::Arc;
use wfe_sync::atomic::Ordering;

use wfe_reclaim::ptr::tag;
use wfe_reclaim::{Atomic, Guard, Handle, Linked, Protected, Reclaimer, Shield};

use crate::traits::ConcurrentMap;

/// Mark bit set on `next` when the owning node is logically deleted.
const MARK: usize = 1;

/// A node of the list.
pub struct Node<V> {
    key: u64,
    value: V,
    next: Atomic<Node<V>>,
}

/// The result of a `find`: the location of the link to `curr` (`prev_src`,
/// the head or the `next` field of the protected predecessor) and the first
/// node with `node.key >= key` (`curr`, null at the end of the list). Both
/// live only as long as the guard they were read under.
struct Window<'g, V> {
    prev_src: &'g Atomic<Node<V>>,
    curr: Protected<'g, Node<V>>,
    found: bool,
}

/// Harris-Michael sorted linked list, parameterised by the reclamation scheme.
pub struct MichaelList<V, R: Reclaimer> {
    head: Atomic<Node<V>>,
    domain: Arc<R>,
}

// SAFETY: nodes own their `V`s; sending the structure sends those values.
unsafe impl<V: Send, R: Reclaimer> Send for MichaelList<V, R> {}
// SAFETY: concurrent operations hand out `&V` (via `get`/clone), so `V`
// must be `Sync` as well as `Send`; the structure's own synchronisation
// is the lock-free algorithm plus the reclamation protocol.
unsafe impl<V: Send + Sync, R: Reclaimer> Sync for MichaelList<V, R> {}

impl<V, R: Reclaimer> MichaelList<V, R> {
    /// Reservation slots the list needs per thread: the hand-over-hand
    /// `(prev, curr)` window.
    pub const REQUIRED_SLOTS: usize = 2;

    /// Leases the two shields of the hand-over-hand window. The shields swap
    /// roles as the traversal advances, so a node keeps its shield while it
    /// remains part of the window.
    fn window_shields(handle: &R::Handle) -> [Shield<Node<V>, R::Handle>; 2] {
        let lease = || {
            handle
                .shield()
                .expect("MichaelList: reservation slots exhausted (find needs two Shields)")
        };
        [lease(), lease()]
    }

    /// Creates an empty list guarded by `domain`.
    pub fn new(domain: Arc<R>) -> Self {
        debug_assert!(
            domain.config().slots_per_thread >= Self::REQUIRED_SLOTS,
            "MichaelList needs {} reservation slots per thread, domain provides {}",
            Self::REQUIRED_SLOTS,
            domain.config().slots_per_thread,
        );
        Self {
            head: Atomic::null(),
            domain,
        }
    }

    /// The reclamation domain guarding this list.
    pub fn domain(&self) -> &Arc<R> {
        &self.domain
    }

    /// Michael's `find`: positions a window `(prev, curr)` such that `curr` is
    /// the first node with `curr.key >= key`, unlinking any logically deleted
    /// node encountered on the way. Both window nodes are protected (through
    /// the two `shields`) when the function returns.
    fn find<'g>(
        &'g self,
        guard: &'g Guard<'_, R::Handle>,
        shields: &mut [Shield<Node<V>, R::Handle>; 2],
        key: u64,
    ) -> Window<'g, V> {
        'retry: loop {
            let mut prev_src: &Atomic<Node<V>> = &self.head;
            let mut prev: Protected<'g, Node<V>> = Protected::null();
            // Which of the two shields currently protects `curr` (the other
            // protects `prev`); they swap as the window slides.
            let mut shield_curr = 0usize;
            let mut curr = shields[shield_curr].protect(guard, prev_src, Some(prev));
            loop {
                if curr.is_null() {
                    return Window {
                        prev_src,
                        curr: Protected::null(),
                        found: false,
                    };
                }
                if curr.tag() != 0 {
                    // The link we came through is marked, i.e. `prev` itself
                    // is being deleted: restart from the head.
                    continue 'retry;
                }
                // SAFETY: `curr` is protected by `shields[shield_curr]`;
                // that shield is only re-protected after `curr` leaves the
                // window (the other shield covers `prev`), so the reference
                // stays pinned while it is used.
                let curr_ref = unsafe { curr.as_ref() }.expect("non-null protected node");
                let next_raw = curr_ref.next.load(Ordering::Acquire); // ORDER: pairs with the AcqRel link and mark writes on `next`.
                if tag::tag_of(next_raw) == MARK {
                    // `curr` is logically deleted: unlink it and retire it.
                    let next = tag::untagged(next_raw);
                    match prev_src.compare_exchange(
                        curr.as_raw(),
                        next,
                        Ordering::AcqRel, // ORDER: success publishes the unlink; failure observes the winner.
                        Ordering::Acquire,
                    ) {
                        Ok(_) => {
                            // SAFETY: we won the unlink CAS, so `curr` is
                            // unreachable and ours to retire exactly once.
                            unsafe { curr.retire_in(guard) };
                            curr = shields[shield_curr].protect(guard, prev_src, Some(prev));
                            continue;
                        }
                        Err(_) => continue 'retry,
                    }
                }
                let curr_key = curr_ref.key;
                // Validate that `curr` is still linked after we protected it;
                // if not, the key we just read may belong to a node that was
                // removed and the window would be stale.
                // ORDER: window re-validation; pairs with AcqRel link/unlink CASes.
                if prev_src.load(Ordering::Acquire) != curr.as_raw() {
                    continue 'retry;
                }
                if curr_key >= key {
                    return Window {
                        prev_src,
                        curr,
                        found: curr_key == key,
                    };
                }
                // Advance hand-over-hand: `curr` becomes the new `prev` and
                // keeps its shield; `prev`'s shield is recycled for the new
                // `curr`.
                prev = curr;
                prev_src = &curr_ref.next;
                shield_curr = 1 - shield_curr;
                curr = shields[shield_curr].protect(guard, prev_src, Some(prev));
            }
        }
    }

    /// Inserts `key → value`; returns `false` (dropping `value`) if the key
    /// is already present.
    pub fn insert(&self, handle: &mut R::Handle, key: u64, value: V) -> bool {
        let mut shields = Self::window_shields(handle);
        let node = handle.alloc(Node {
            key,
            value,
            next: Atomic::null(),
        });
        let guard = handle.enter();
        loop {
            let window = self.find(&guard, &mut shields, key);
            if window.found {
                // Key already present: the freshly allocated node was never
                // published, so it can be freed immediately.
                // SAFETY: `node` never became reachable; freed exactly once.
                unsafe { Linked::dealloc(node) };
                return false;
            }
            // SAFETY: `node` is owned and unpublished until the CAS succeeds.
            unsafe {
                (*node)
                    .value
                    .next
                    .store(window.curr.as_raw(), Ordering::Release) // ORDER: publishes the node's link before the CAS publishes the node.
            };
            if window
                .prev_src
                .compare_exchange(
                    window.curr.as_raw(),
                    node,
                    Ordering::AcqRel, // ORDER: success publishes the node; failure observes the winning link.
                    Ordering::Acquire,
                )
                .is_ok()
            {
                return true;
            }
        }
    }

    /// Removes `key`; returns `true` if it was present.
    pub fn remove(&self, handle: &mut R::Handle, key: u64) -> bool {
        let mut shields = Self::window_shields(handle);
        let guard = handle.enter();
        loop {
            let window = self.find(&guard, &mut shields, key);
            if !window.found {
                return false;
            }
            let curr = window.curr;
            // SAFETY: the window's shields are not re-protected between
            // `find` returning and the last use of this reference (the
            // unlink-failure `find` below runs after it).
            let curr_ref = unsafe { curr.as_ref() }.expect("found window has a node");
            let next_raw = curr_ref.next.load(Ordering::Acquire); // ORDER: pairs with the AcqRel mark/link writes on `next`.
            if tag::tag_of(next_raw) == MARK {
                // Another remover got here first; retry to settle who wins.
                continue;
            }
            // Logical deletion: mark the next pointer of `curr`.
            if curr_ref
                .next
                .compare_exchange(
                    next_raw,
                    tag::with_tag(next_raw, MARK),
                    Ordering::AcqRel, // ORDER: success publishes the logical delete; failure observes the winner.
                    Ordering::Acquire,
                )
                .is_err()
            {
                continue;
            }
            // Physical deletion: unlink it ourselves or let a later `find` do it.
            if window
                .prev_src
                .compare_exchange(
                    curr.as_raw(),
                    tag::untagged(next_raw),
                    Ordering::AcqRel, // ORDER: success publishes the unlink; failure defers to a later `find`.
                    Ordering::Acquire,
                )
                .is_ok()
            {
                // SAFETY: we marked and then unlinked `curr`; the winning
                // unlink CAS makes it ours to retire exactly once.
                unsafe { curr.retire_in(&guard) };
            } else {
                let _ = self.find(&guard, &mut shields, key);
            }
            return true;
        }
    }

    /// Returns `true` if `key` is present.
    pub fn contains(&self, handle: &mut R::Handle, key: u64) -> bool {
        let mut shields = Self::window_shields(handle);
        let guard = handle.enter();
        self.find(&guard, &mut shields, key).found
    }
}

impl<V: Clone, R: Reclaimer> MichaelList<V, R> {
    /// Looks up `key`, returning a clone of its value.
    pub fn get(&self, handle: &mut R::Handle, key: u64) -> Option<V> {
        let mut shields = Self::window_shields(handle);
        let guard = handle.enter();
        let window = self.find(&guard, &mut shields, key);
        if window.found {
            // SAFETY: the window's shields are not re-protected after `find`
            // returns, so `curr` stays pinned while the value is cloned.
            unsafe { window.curr.as_ref() }.map(|node| node.value.clone())
        } else {
            None
        }
    }
}

impl<V, R: Reclaimer> Drop for MichaelList<V, R> {
    fn drop(&mut self) {
        // Exclusive access: walk the list and free every node directly.
        let mut cur = tag::untagged(self.head.load(Ordering::Relaxed)); // ORDER: Drop has exclusive access.
        while !cur.is_null() {
            // SAFETY: `Drop` has exclusive access; every reachable node is
            // valid and freed exactly once.
            let next = tag::untagged(unsafe { (*cur).value.next.load(Ordering::Relaxed) }); // ORDER: Drop has exclusive access.
                                                                                            // SAFETY: as above — exclusive access, freed exactly once.
            unsafe { Linked::dealloc(cur) };
            cur = next;
        }
    }
}

impl<R: Reclaimer> ConcurrentMap<R> for MichaelList<u64, R> {
    fn with_domain(domain: Arc<R>) -> Self {
        Self::new(domain)
    }

    fn insert(&self, handle: &mut R::Handle, key: u64, value: u64) -> bool {
        MichaelList::insert(self, handle, key, value)
    }

    fn remove(&self, handle: &mut R::Handle, key: u64) -> bool {
        MichaelList::remove(self, handle, key)
    }

    fn get(&self, handle: &mut R::Handle, key: u64) -> Option<u64> {
        MichaelList::get(self, handle, key)
    }

    fn required_slots() -> usize {
        Self::REQUIRED_SLOTS
    }

    fn node_bytes() -> usize {
        core::mem::size_of::<wfe_reclaim::Linked<Node<u64>>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use wfe_reclaim::{Ebr, He, Hp, Ibr2Ge, Leak, ReclaimerConfig};

    fn sequential_semantics<R: Reclaimer>() {
        let domain = R::new_default();
        let list = MichaelList::<u64, R>::new(Arc::clone(&domain));
        let mut handle = domain.register();

        assert!(list.insert(&mut handle, 5, 50));
        assert!(list.insert(&mut handle, 1, 10));
        assert!(list.insert(&mut handle, 3, 30));
        assert!(!list.insert(&mut handle, 3, 31), "duplicate rejected");
        assert_eq!(list.get(&mut handle, 3), Some(30));
        assert_eq!(list.get(&mut handle, 2), None);
        assert!(list.contains(&mut handle, 1));
        assert!(list.remove(&mut handle, 3));
        assert!(!list.remove(&mut handle, 3), "double remove rejected");
        assert_eq!(list.get(&mut handle, 3), None);
        assert!(list.insert(&mut handle, 3, 33), "reinsert after remove");
        assert_eq!(list.get(&mut handle, 3), Some(33));
    }

    #[test]
    fn sequential_semantics_under_every_scheme() {
        sequential_semantics::<He>();
        sequential_semantics::<Ebr>();
        sequential_semantics::<Hp>();
        sequential_semantics::<Ibr2Ge>();
        sequential_semantics::<Leak>();
    }

    #[test]
    fn matches_a_sequential_model() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(0xDECAF);
        let domain = He::new_default();
        let list = MichaelList::<u64, He>::new(Arc::clone(&domain));
        let mut handle = domain.register();
        let mut model = BTreeSet::new();
        for _ in 0..4_000 {
            let key = rng.gen_range(0..64u64);
            match rng.gen_range(0..3) {
                0 => assert_eq!(list.insert(&mut handle, key, key * 2), model.insert(key)),
                1 => assert_eq!(list.remove(&mut handle, key), model.remove(&key)),
                _ => assert_eq!(list.get(&mut handle, key), model.get(&key).map(|&k| k * 2)),
            }
        }
    }

    fn concurrent_inserts_partition<R: Reclaimer>() {
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 500;
        let domain = R::with_config(ReclaimerConfig::with_max_threads(THREADS));
        let list = MichaelList::<u64, R>::new(Arc::clone(&domain));
        std::thread::scope(|scope| {
            for t in 0..THREADS as u64 {
                let list = &list;
                let domain = Arc::clone(&domain);
                scope.spawn(move || {
                    let mut handle = domain.register();
                    for i in 0..PER_THREAD {
                        assert!(list.insert(&mut handle, t * PER_THREAD + i, i));
                    }
                });
            }
        });
        let mut handle = domain.register();
        for key in 0..THREADS as u64 * PER_THREAD {
            assert!(list.contains(&mut handle, key), "missing key {key}");
        }
    }

    #[test]
    fn concurrent_inserts_are_all_visible() {
        concurrent_inserts_partition::<He>();
        concurrent_inserts_partition::<Hp>();
    }

    #[test]
    fn concurrent_mixed_workload_stays_consistent() {
        // Threads fight over the same small key range; afterwards the list
        // must contain exactly the keys that a final sweep observes, with no
        // crashes, leaks or double frees along the way (the latter two are
        // caught by the conformance drop counters in the reclaim crate; here
        // we check structural sanity).
        const THREADS: usize = 4;
        let domain = He::with_config(ReclaimerConfig::with_max_threads(THREADS));
        let list = MichaelList::<u64, He>::new(Arc::clone(&domain));
        std::thread::scope(|scope| {
            for t in 0..THREADS as u64 {
                let list = &list;
                let domain = Arc::clone(&domain);
                scope.spawn(move || {
                    use rand::prelude::*;
                    let mut rng = StdRng::seed_from_u64(t);
                    let mut handle = domain.register();
                    for _ in 0..5_000 {
                        let key = rng.gen_range(0..32u64);
                        if rng.gen_bool(0.5) {
                            list.insert(&mut handle, key, key);
                        } else {
                            list.remove(&mut handle, key);
                        }
                    }
                });
            }
        });
        // The list must still be sorted and duplicate-free.
        let mut handle = domain.register();
        let mut present = Vec::new();
        for key in 0..32u64 {
            if list.contains(&mut handle, key) {
                present.push(key);
            }
        }
        let unique: BTreeSet<u64> = present.iter().copied().collect();
        assert_eq!(unique.len(), present.len());
    }
}
