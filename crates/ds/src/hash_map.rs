//! Michael's lock-free hash map.
//!
//! The "Hash Map" workload of Figures 7 and 10: a fixed-size bucket array in
//! which every bucket is a Harris-Michael sorted linked list. With the key
//! ranges used in the evaluation the per-bucket lists stay short, so the map
//! stresses the constant-factor overhead of the reclamation scheme rather
//! than traversal length (the opposite of the plain linked-list workload).

use std::sync::Arc;

use wfe_reclaim::Reclaimer;

use crate::michael_list::MichaelList;
use crate::traits::ConcurrentMap;

/// Default number of buckets, chosen so the paper's 50 000-element prefill
/// leaves only a handful of keys per bucket.
pub const DEFAULT_BUCKETS: usize = 16 * 1024;

/// Michael's lock-free hash map, parameterised by the reclamation scheme.
pub struct MichaelHashMap<V, R: Reclaimer> {
    buckets: Box<[MichaelList<V, R>]>,
    domain: Arc<R>,
}

impl<V, R: Reclaimer> MichaelHashMap<V, R> {
    /// Reservation slots the map needs per thread: those of one bucket list.
    pub const REQUIRED_SLOTS: usize = MichaelList::<V, R>::REQUIRED_SLOTS;

    /// Creates a map with [`DEFAULT_BUCKETS`] buckets guarded by `domain`.
    pub fn new(domain: Arc<R>) -> Self {
        Self::with_buckets(domain, DEFAULT_BUCKETS)
    }

    /// Creates a map with `buckets` buckets guarded by `domain`.
    pub fn with_buckets(domain: Arc<R>, buckets: usize) -> Self {
        assert!(buckets > 0, "a hash map needs at least one bucket");
        Self {
            buckets: (0..buckets)
                .map(|_| MichaelList::new(Arc::clone(&domain)))
                .collect(),
            domain,
        }
    }

    /// The reclamation domain guarding this map.
    pub fn domain(&self) -> &Arc<R> {
        &self.domain
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.buckets.len()
    }

    #[inline]
    fn bucket(&self, key: u64) -> &MichaelList<V, R> {
        // The shared full-avalanche mixer (`hash::mix64`): every output bit
        // depends on every input bit, so folding the whole word with `%` is
        // uniform for any bucket count. The previous single Fibonacci
        // multiply took `% len` on the high 32 bits only — a silent
        // distribution degradation pinned down by the chi-square test in
        // `crate::hash`.
        let index = crate::hash::mix64(key) as usize % self.buckets.len();
        &self.buckets[index]
    }

    /// Inserts `key → value`; returns `false` if the key is already present.
    pub fn insert(&self, handle: &mut R::Handle, key: u64, value: V) -> bool {
        self.bucket(key).insert(handle, key, value)
    }

    /// Removes `key`; returns `true` if it was present.
    pub fn remove(&self, handle: &mut R::Handle, key: u64) -> bool {
        self.bucket(key).remove(handle, key)
    }

    /// Returns `true` if `key` is present.
    pub fn contains(&self, handle: &mut R::Handle, key: u64) -> bool {
        self.bucket(key).contains(handle, key)
    }
}

impl<V: Clone, R: Reclaimer> MichaelHashMap<V, R> {
    /// Looks up `key`, returning a clone of its value.
    pub fn get(&self, handle: &mut R::Handle, key: u64) -> Option<V> {
        self.bucket(key).get(handle, key)
    }
}

impl<R: Reclaimer> ConcurrentMap<R> for MichaelHashMap<u64, R> {
    fn with_domain(domain: Arc<R>) -> Self {
        Self::new(domain)
    }

    fn insert(&self, handle: &mut R::Handle, key: u64, value: u64) -> bool {
        MichaelHashMap::insert(self, handle, key, value)
    }

    fn remove(&self, handle: &mut R::Handle, key: u64) -> bool {
        MichaelHashMap::remove(self, handle, key)
    }

    fn get(&self, handle: &mut R::Handle, key: u64) -> Option<u64> {
        MichaelHashMap::get(self, handle, key)
    }

    fn required_slots() -> usize {
        Self::REQUIRED_SLOTS
    }

    fn node_bytes() -> usize {
        core::mem::size_of::<wfe_reclaim::Linked<crate::michael_list::Node<u64>>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap as StdHashMap;
    use wfe_reclaim::{He, Hp, Reclaimer, ReclaimerConfig};

    #[test]
    fn basic_map_semantics() {
        let domain = He::new_default();
        let map = MichaelHashMap::<u64, He>::with_buckets(Arc::clone(&domain), 8);
        let mut handle = domain.register();
        for key in 0..100 {
            assert!(map.insert(&mut handle, key, key * 10));
        }
        for key in 0..100 {
            assert!(!map.insert(&mut handle, key, 0), "duplicates rejected");
            assert_eq!(map.get(&mut handle, key), Some(key * 10));
        }
        for key in (0..100).step_by(2) {
            assert!(map.remove(&mut handle, key));
        }
        for key in 0..100 {
            assert_eq!(map.contains(&mut handle, key), key % 2 == 1);
        }
    }

    #[test]
    fn matches_a_sequential_model() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(7);
        let domain = Hp::new_default();
        let map = MichaelHashMap::<u64, Hp>::with_buckets(Arc::clone(&domain), 16);
        let mut handle = domain.register();
        let mut model: StdHashMap<u64, u64> = StdHashMap::new();
        for _ in 0..5_000 {
            let key = rng.gen_range(0..128u64);
            match rng.gen_range(0..3) {
                0 => {
                    let fresh = !model.contains_key(&key);
                    assert_eq!(map.insert(&mut handle, key, key + 1), fresh);
                    model.entry(key).or_insert(key + 1);
                }
                1 => assert_eq!(map.remove(&mut handle, key), model.remove(&key).is_some()),
                _ => assert_eq!(map.get(&mut handle, key), model.get(&key).copied()),
            }
        }
    }

    #[test]
    fn concurrent_threads_own_disjoint_keys() {
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 2_000;
        let domain = He::with_config(ReclaimerConfig::with_max_threads(THREADS));
        let map = MichaelHashMap::<u64, He>::new(Arc::clone(&domain));
        std::thread::scope(|scope| {
            for t in 0..THREADS as u64 {
                let map = &map;
                let domain = Arc::clone(&domain);
                scope.spawn(move || {
                    let mut handle = domain.register();
                    for i in 0..PER_THREAD {
                        let key = t * PER_THREAD + i;
                        assert!(map.insert(&mut handle, key, key));
                        assert_eq!(map.get(&mut handle, key), Some(key));
                        if i % 2 == 0 {
                            assert!(map.remove(&mut handle, key));
                        }
                    }
                });
            }
        });
        let mut handle = domain.register();
        for key in 0..THREADS as u64 * PER_THREAD {
            assert_eq!(map.contains(&mut handle, key), key % 2 == 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_rejected() {
        let domain = He::new_default();
        let _ = MichaelHashMap::<u64, He>::with_buckets(domain, 0);
    }
}
