//! Natarajan-Mittal lock-free external binary search tree (PPoPP 2014).
//!
//! The "Natarajan BST" workload of Figures 8 and 11. The tree is *external*
//! (leaf-oriented): internal nodes only route, every key lives in a leaf.
//! Deletion marks **edges** rather than nodes: the edge to the leaf being
//! deleted is *flagged*, the edge to its sibling is *tagged* (frozen), and the
//! sibling is then promoted into the grandparent with a single CAS, detaching
//! the parent and the flagged leaf.
//!
//! Reservation usage: `seek` protects the four window nodes it hands back
//! (ancestor, parent, leaf and the node currently being examined)
//! hand-over-hand while descending, using five reservation slots that rotate
//! as the window slides down the tree. The *successor* of the seek record is
//! only ever used as an expected CAS value, never dereferenced, so it needs no
//! reservation.

use std::sync::Arc;
use wfe_sync::atomic::Ordering;

use wfe_reclaim::ptr::tag;
use wfe_reclaim::{Atomic, Guard, Handle, Linked, Protected, Reclaimer, Shield};

use crate::traits::ConcurrentMap;

/// Edge bit: the node below this edge is being deleted.
const FLAG: usize = 1;
/// Edge bit: this edge is frozen and must not be modified.
const TAG: usize = 2;

/// Sentinel key ∞₁ (greater than every user key).
const KEY_INF1: u64 = u64::MAX - 1;
/// Sentinel key ∞₂ (greater than ∞₁).
const KEY_INF2: u64 = u64::MAX;

/// A tree node. Internal nodes have both children non-null and `value ==
/// None`; leaves have null children and carry the value.
pub struct Node<V> {
    key: u64,
    value: Option<V>,
    left: Atomic<Node<V>>,
    right: Atomic<Node<V>>,
}

impl<V> Node<V> {
    fn leaf(key: u64, value: Option<V>) -> Self {
        Self {
            key,
            value,
            left: Atomic::null(),
            right: Atomic::null(),
        }
    }
}

/// The window returned by `seek`. Every dereferenced role is a [`Protected`]
/// tied to the operation's guard.
struct SeekRecord<'g, V> {
    /// Deepest node on the path whose outgoing edge towards the key was
    /// untagged; the promotion CAS happens on this node's child edge.
    ancestor: Protected<'g, Node<V>>,
    /// The child of `ancestor` on the path (expected CAS value only, never
    /// dereferenced — which is why it needs no shield).
    successor: Protected<'g, Node<V>>,
    /// Parent of `leaf`.
    parent: Protected<'g, Node<V>>,
    /// The leaf the search ended at.
    leaf: Protected<'g, Node<V>>,
}

/// Natarajan-Mittal lock-free external BST, parameterised by the reclamation
/// scheme. User keys must be smaller than `u64::MAX - 1` (the two largest
/// values are reserved for the sentinels).
pub struct NatarajanBst<V, R: Reclaimer> {
    /// Super-root with key ∞₂; its left subtree holds all data.
    root: *mut Linked<Node<V>>,
    domain: Arc<R>,
}

// SAFETY: nodes own their `V`s; sending the structure sends those values.
unsafe impl<V: Send, R: Reclaimer> Send for NatarajanBst<V, R> {}
// SAFETY: concurrent operations hand out `&V` (via `get`/clone), so `V`
// must be `Sync` as well as `Send`; the structure's own synchronisation
// is the lock-free algorithm plus the reclamation protocol.
unsafe impl<V: Send + Sync, R: Reclaimer> Sync for NatarajanBst<V, R> {}

impl<V, R: Reclaimer> NatarajanBst<V, R> {
    /// Reservation slots the tree needs per thread: the rotating
    /// ancestor/parent/leaf/current window of `seek` plus its spare.
    pub const REQUIRED_SLOTS: usize = 5;

    /// Leases the five shields of the rotating `seek` window.
    fn seek_shields(handle: &R::Handle) -> [Shield<Node<V>, R::Handle>; 5] {
        let lease = || {
            handle
                .shield()
                .expect("NatarajanBst: reservation slots exhausted (seek needs five Shields)")
        };
        [lease(), lease(), lease(), lease(), lease()]
    }

    /// Creates an empty tree guarded by `domain`.
    pub fn new(domain: Arc<R>) -> Self {
        debug_assert!(
            domain.config().slots_per_thread >= Self::REQUIRED_SLOTS,
            "NatarajanBst needs {} reservation slots per thread, domain provides {}",
            Self::REQUIRED_SLOTS,
            domain.config().slots_per_thread,
        );
        let mut handle = domain.register();
        // Sentinel structure: R(∞₂) → { S(∞₁) → { leaf(∞₁), leaf(∞₂) }, leaf(∞₂) }.
        let leaf_inf1 = handle.alloc(Node::leaf(KEY_INF1, None));
        let leaf_inf2a = handle.alloc(Node::leaf(KEY_INF2, None));
        let leaf_inf2b = handle.alloc(Node::leaf(KEY_INF2, None));
        let s = handle.alloc(Node {
            key: KEY_INF1,
            value: None,
            left: Atomic::new(leaf_inf1),
            right: Atomic::new(leaf_inf2a),
        });
        let root = handle.alloc(Node {
            key: KEY_INF2,
            value: None,
            left: Atomic::new(s),
            right: Atomic::new(leaf_inf2b),
        });
        drop(handle);
        Self { root, domain }
    }

    /// The reclamation domain guarding this tree.
    pub fn domain(&self) -> &Arc<R> {
        &self.domain
    }

    #[inline]
    fn child_edge(node: &Node<V>, key: u64) -> &Atomic<Node<V>> {
        if key < node.key {
            &node.left
        } else {
            &node.right
        }
    }

    /// Descends from the root to the leaf where `key` belongs, recording the
    /// (ancestor, successor, parent, leaf) window. All dereferenced nodes of
    /// the returned record are protected by the five rotating shields.
    fn seek<'g>(
        &self,
        guard: &'g Guard<'_, R::Handle>,
        shields: &mut [Shield<Node<V>, R::Handle>; 5],
        key: u64,
    ) -> SeekRecord<'g, V> {
        // SAFETY: the super-root R is an immortal sentinel — it is never
        // retired (only `Drop` frees it, with exclusive access).
        let root: Protected<'g, Node<V>> = unsafe { Protected::from_unlinked(self.root) };
        // SAFETY: the super-root is immortal (see above), so the reference
        // can never dangle.
        let root_ref = unsafe { root.as_ref() }.expect("the super-root always exists");
        // SAFETY: S, the sentinel below R, is likewise never retired.
        let s: Protected<'g, Node<V>> = unsafe {
            // ORDER: pairs with the AcqRel edge CASes below S (sentinel edges).
            Protected::from_unlinked(tag::untagged(root_ref.left.load(Ordering::Acquire)))
        };
        // SAFETY: S is immortal (see above).
        let s_ref = unsafe { s.as_ref() }.expect("the S sentinel always exists");

        // Shield indices for the roles that get dereferenced. They rotate as
        // the window slides down so that a node keeps its shield while it
        // remains part of the window.
        let mut shield_ancestor = 0usize;
        let mut shield_parent = 1usize;
        let mut shield_leaf = 2usize;
        let mut shield_current = 3usize;
        let mut shield_spare = 4usize;

        let mut ancestor = root;
        let mut successor = s;
        let mut parent = s;
        // The sentinels R and S are never retired, so the two protects below
        // are only needed for the nodes hanging off them.
        let leaf_tagged =
            shields[shield_leaf].protect(guard, Self::child_edge(s_ref, key), Some(s));
        let mut leaf = leaf_tagged.untagged();
        // Edge parent→leaf as last read (its TAG bit steers ancestor updates).
        let mut parent_field = leaf_tagged;
        // SAFETY: each dereferenced window role (ancestor, parent, leaf,
        // current) keeps its own shield; a rotation re-protects only the
        // shield whose role has left the dereferenced window, so `leaf`
        // stays pinned by `shields[shield_leaf]` while the child edge is
        // read.
        let leaf_ref = unsafe { leaf.as_ref() }.expect("leaf below S is non-null");
        let mut current =
            shields[shield_current].protect(guard, Self::child_edge(leaf_ref, key), Some(leaf));

        loop {
            if current.is_null() {
                break;
            }
            // Slide the window down one level.
            if parent_field.tag() & TAG == 0 {
                // The edge parent→leaf is untagged: parent is the new ancestor.
                ancestor = parent;
                successor = leaf;
                // `ancestor` adopts `parent`'s shield; the old ancestor
                // shield becomes the spare.
                let freed = shield_ancestor;
                shield_ancestor = shield_parent;
                shield_parent = shield_leaf;
                shield_leaf = shield_current;
                shield_current = shield_spare;
                shield_spare = freed;
            } else {
                let freed = shield_parent;
                shield_parent = shield_leaf;
                shield_leaf = shield_current;
                shield_current = shield_spare;
                shield_spare = freed;
            }
            parent = leaf;
            parent_field = current;
            leaf = current.untagged();
            // SAFETY: see the comment above the first protect — `leaf` is
            // pinned by `shields[shield_leaf]` after the rotation, and the
            // re-protected shield's old role has left the window.
            let leaf_ref = unsafe { leaf.as_ref() }.expect("internal nodes have children");
            current =
                shields[shield_current].protect(guard, Self::child_edge(leaf_ref, key), Some(leaf));
        }
        // Quiet the "assigned but never read" lint on the final rotation.
        let _ = (shield_ancestor, shield_parent, shield_leaf, shield_spare);

        SeekRecord {
            ancestor,
            successor,
            parent,
            leaf,
        }
    }

    /// Detaches the flagged leaf under `record.parent` by promoting its
    /// sibling into `record.ancestor`. Returns `true` when this call performed
    /// the promotion (and retired the detached parent and leaf).
    fn cleanup(&self, guard: &Guard<'_, R::Handle>, key: u64, record: &SeekRecord<'_, V>) -> bool {
        let parent = record.parent;
        // SAFETY: the record's roles each hold their own shield and no
        // shield is re-protected between `seek` returning and the last use
        // of this reference.
        let parent_ref = unsafe { parent.as_ref() }.expect("parent role is protected");

        let (child_edge, sibling_edge) = if key < parent_ref.key {
            (&parent_ref.left, &parent_ref.right)
        } else {
            (&parent_ref.right, &parent_ref.left)
        };
        let child_val = child_edge.load(Ordering::Acquire); // ORDER: pairs with the AcqRel flag/tag edge CASes.
                                                            // The flagged edge points to the leaf being deleted. If it is not the
                                                            // edge on our search path, we are helping a deletion of the sibling.
        let (flagged_edge, promote_edge) = if tag::tag_of(child_val) & FLAG != 0 {
            (child_edge, sibling_edge)
        } else {
            (sibling_edge, child_edge)
        };

        // Freeze the edge that will be promoted so no insert can slip below it.
        promote_edge.fetch_or_tag(TAG, Ordering::AcqRel); // ORDER: freezes the edge; publishes the tag and observes the current child.
        let promote_val = promote_edge.load(Ordering::Acquire); // ORDER: re-read after the freeze; pairs with the AcqRel tag RMW above.
        let flagged_val = flagged_edge.load(Ordering::Acquire); // ORDER: pairs with the AcqRel flag CAS that started this deletion.

        // Promote the sibling subtree into the ancestor, preserving a FLAG the
        // sibling edge may itself carry (a pending deletion of the sibling).
        let promoted = tag::with_tag(tag::untagged(promote_val), tag::tag_of(promote_val) & FLAG);
        // SAFETY: as above — the ancestor role keeps its shield while the
        // record is in use.
        let ancestor_ref = unsafe { record.ancestor.as_ref() }.expect("ancestor role is protected");
        let swapped = Self::child_edge(ancestor_ref, key)
            .compare_exchange(
                record.successor.as_raw(),
                promoted,
                Ordering::AcqRel, // ORDER: success publishes the promotion; failure means another helper won.
                Ordering::Acquire,
            )
            .is_ok();
        if swapped {
            // The parent and the flagged leaf are now unreachable.
            // SAFETY: the promotion CAS we just won detached exactly these
            // two nodes; the FLAG/TAG protocol guarantees no other helper's
            // CAS succeeded, so they are retired exactly once.
            unsafe {
                parent.retire_in(guard);
                Protected::from_unlinked(tag::untagged(flagged_val)).retire_in(guard);
            }
        }
        swapped
    }

    /// Inserts `key → value`; returns `false` (dropping `value`) if the key is
    /// already present.
    ///
    /// # Panics
    ///
    /// Panics if `key >= u64::MAX - 1` (reserved sentinel keys).
    pub fn insert(&self, handle: &mut R::Handle, key: u64, value: V) -> bool {
        assert!(key < KEY_INF1, "keys >= u64::MAX - 1 are reserved");
        let mut shields = Self::seek_shields(handle);
        let guard = handle.enter();
        let mut value = Some(value);
        loop {
            let record = self.seek(&guard, &mut shields, key);
            let leaf = record.leaf;
            // SAFETY: the record's roles each hold their own shield; the
            // next `seek` (which re-protects them) only runs after the last
            // use of this reference.
            let leaf_key = unsafe { leaf.as_ref() }.expect("seek ends at a leaf").key;
            if leaf_key == key {
                return false;
            }
            // Build the replacement subtree: a new internal node whose
            // children are the existing leaf and a new leaf for `key`.
            let new_leaf = guard.alloc(Node::leaf(key, value.take()));
            let (internal_key, left, right) = if key < leaf_key {
                (leaf_key, new_leaf, leaf.as_raw())
            } else {
                (key, leaf.as_raw(), new_leaf)
            };
            let new_internal = guard.alloc(Node {
                key: internal_key,
                value: None,
                left: Atomic::new(left),
                right: Atomic::new(right),
            });

            // SAFETY: as above — the parent role keeps its shield until the
            // next `seek`.
            let parent_ref = unsafe { record.parent.as_ref() }.expect("parent role is protected");
            let parent_edge = Self::child_edge(parent_ref, key);
            match parent_edge.compare_exchange(
                leaf.as_raw(),
                new_internal,
                Ordering::AcqRel, // ORDER: success publishes the new internal node; failure observes the winner.
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(observed) => {
                    // Neither node was published; take the value back and
                    // free them before retrying.
                    // SAFETY: the CAS failed, so both nodes are still owned
                    // by us and unreachable; each is freed exactly once.
                    unsafe {
                        value = (*new_leaf).value.value.take();
                        Linked::dealloc(new_internal);
                        Linked::dealloc(new_leaf);
                    }
                    // If the edge still leads to our leaf but is flagged or
                    // tagged, help the pending deletion along before retrying.
                    if tag::untagged(observed) == leaf.as_raw() && tag::tag_of(observed) != 0 {
                        self.cleanup(&guard, key, &record);
                    }
                }
            }
        }
    }

    /// Removes `key`; returns `true` if it was present.
    pub fn remove(&self, handle: &mut R::Handle, key: u64) -> bool {
        let mut shields = Self::seek_shields(handle);
        let guard = handle.enter();
        let mut injected = false;
        let mut target_leaf: *mut Linked<Node<V>> = core::ptr::null_mut();
        loop {
            let record = self.seek(&guard, &mut shields, key);
            if !injected {
                // Injection phase: flag the edge to the leaf we want gone.
                let leaf = record.leaf;
                // SAFETY: the record's roles each hold their own shield; the
                // next `seek` only runs after this reference's last use.
                if unsafe { leaf.as_ref() }.expect("seek ends at a leaf").key != key {
                    return false;
                }
                // SAFETY: as above — the parent role keeps its shield until
                // the next `seek`.
                let parent_ref =
                    unsafe { record.parent.as_ref() }.expect("parent role is protected");
                let parent_edge = Self::child_edge(parent_ref, key);
                match parent_edge.compare_exchange(
                    leaf.as_raw(),
                    leaf.with_tag(FLAG).as_raw(),
                    Ordering::AcqRel, // ORDER: success publishes the deletion flag; failure observes the competing edit.
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        injected = true;
                        target_leaf = leaf.as_raw();
                        if self.cleanup(&guard, key, &record) {
                            return true;
                        }
                    }
                    Err(observed) => {
                        // Someone else is operating on this edge; help if it
                        // is a deletion of the same leaf, then retry.
                        if tag::untagged(observed) == leaf.as_raw() && tag::tag_of(observed) != 0 {
                            self.cleanup(&guard, key, &record);
                        }
                    }
                }
            } else {
                // Cleanup phase: keep helping until our leaf is detached.
                if record.leaf.as_raw() != target_leaf {
                    // Another thread finished the physical removal for us.
                    return true;
                }
                if self.cleanup(&guard, key, &record) {
                    return true;
                }
            }
        }
    }

    /// Returns `true` if `key` is present.
    pub fn contains(&self, handle: &mut R::Handle, key: u64) -> bool {
        let mut shields = Self::seek_shields(handle);
        let guard = handle.enter();
        let record = self.seek(&guard, &mut shields, key);
        // SAFETY: the leaf role keeps its shield after `seek` returns.
        unsafe { record.leaf.as_ref() }
            .expect("seek ends at a leaf")
            .key
            == key
    }
}

impl<V: Clone, R: Reclaimer> NatarajanBst<V, R> {
    /// Looks up `key`, returning a clone of its value.
    pub fn get(&self, handle: &mut R::Handle, key: u64) -> Option<V> {
        let mut shields = Self::seek_shields(handle);
        let guard = handle.enter();
        let record = self.seek(&guard, &mut shields, key);
        // SAFETY: the leaf role keeps its shield after `seek` returns, so
        // the reference stays pinned while the value is cloned.
        let leaf = unsafe { record.leaf.as_ref() }.expect("seek ends at a leaf");
        if leaf.key == key {
            leaf.value.clone()
        } else {
            None
        }
    }
}

impl<V, R: Reclaimer> Drop for NatarajanBst<V, R> {
    fn drop(&mut self) {
        // Exclusive access: free the whole tree iteratively.
        let mut stack = vec![self.root];
        while let Some(node) = stack.pop() {
            let node = tag::untagged(node);
            if node.is_null() {
                continue;
            }
            // SAFETY: `Drop` has exclusive access; every reachable node is
            // visited and freed exactly once.
            unsafe {
                stack.push((*node).value.left.load(Ordering::Relaxed)); // ORDER: Drop has exclusive access.
                stack.push((*node).value.right.load(Ordering::Relaxed)); // ORDER: Drop has exclusive access.
                Linked::dealloc(node);
            }
        }
    }
}

impl<R: Reclaimer> ConcurrentMap<R> for NatarajanBst<u64, R> {
    fn with_domain(domain: Arc<R>) -> Self {
        Self::new(domain)
    }

    fn insert(&self, handle: &mut R::Handle, key: u64, value: u64) -> bool {
        NatarajanBst::insert(self, handle, key, value)
    }

    fn remove(&self, handle: &mut R::Handle, key: u64) -> bool {
        NatarajanBst::remove(self, handle, key)
    }

    fn get(&self, handle: &mut R::Handle, key: u64) -> Option<u64> {
        NatarajanBst::get(self, handle, key)
    }

    fn required_slots() -> usize {
        Self::REQUIRED_SLOTS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use wfe_reclaim::{Ebr, He, Hp, Ibr2Ge, Reclaimer, ReclaimerConfig};

    fn sequential_semantics<R: Reclaimer>() {
        let domain = R::new_default();
        let tree = NatarajanBst::<u64, R>::new(Arc::clone(&domain));
        let mut handle = domain.register();

        assert_eq!(tree.get(&mut handle, 10), None);
        assert!(tree.insert(&mut handle, 10, 100));
        assert!(tree.insert(&mut handle, 5, 50));
        assert!(tree.insert(&mut handle, 20, 200));
        assert!(!tree.insert(&mut handle, 10, 0), "duplicate rejected");
        assert_eq!(tree.get(&mut handle, 5), Some(50));
        assert_eq!(tree.get(&mut handle, 20), Some(200));
        assert!(tree.remove(&mut handle, 10));
        assert!(!tree.remove(&mut handle, 10), "double remove rejected");
        assert_eq!(tree.get(&mut handle, 10), None);
        assert!(tree.contains(&mut handle, 5));
        assert!(tree.insert(&mut handle, 10, 101));
        assert_eq!(tree.get(&mut handle, 10), Some(101));
        // Empty the tree completely and refill it.
        for key in [5, 10, 20] {
            assert!(tree.remove(&mut handle, key));
        }
        for key in [5, 10, 20] {
            assert!(!tree.contains(&mut handle, key));
            assert!(tree.insert(&mut handle, key, key));
        }
    }

    #[test]
    fn sequential_semantics_under_every_scheme() {
        sequential_semantics::<He>();
        sequential_semantics::<Ebr>();
        sequential_semantics::<Hp>();
        sequential_semantics::<Ibr2Ge>();
    }

    #[test]
    fn matches_a_sequential_model() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        let domain = He::new_default();
        let tree = NatarajanBst::<u64, He>::new(Arc::clone(&domain));
        let mut handle = domain.register();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for _ in 0..8_000 {
            let key = rng.gen_range(0..256u64);
            match rng.gen_range(0..3) {
                0 => {
                    let fresh = !model.contains_key(&key);
                    assert_eq!(tree.insert(&mut handle, key, key * 3), fresh);
                    model.entry(key).or_insert(key * 3);
                }
                1 => assert_eq!(tree.remove(&mut handle, key), model.remove(&key).is_some()),
                _ => assert_eq!(tree.get(&mut handle, key), model.get(&key).copied()),
            }
        }
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn sentinel_keys_are_rejected() {
        let domain = He::new_default();
        let tree = NatarajanBst::<u64, He>::new(Arc::clone(&domain));
        let mut handle = domain.register();
        tree.insert(&mut handle, u64::MAX, 0);
    }

    fn concurrent_disjoint_inserts<R: Reclaimer>() {
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 1_000;
        let domain = R::with_config(ReclaimerConfig::with_max_threads(THREADS));
        let tree = NatarajanBst::<u64, R>::new(Arc::clone(&domain));
        std::thread::scope(|scope| {
            for t in 0..THREADS as u64 {
                let tree = &tree;
                let domain = Arc::clone(&domain);
                scope.spawn(move || {
                    let mut handle = domain.register();
                    for i in 0..PER_THREAD {
                        let key = i * THREADS as u64 + t; // interleaved keys
                        assert!(tree.insert(&mut handle, key, key));
                    }
                    for i in 0..PER_THREAD {
                        let key = i * THREADS as u64 + t;
                        if i % 2 == 0 {
                            assert!(tree.remove(&mut handle, key), "missing own key {key}");
                        }
                    }
                });
            }
        });
        let mut handle = domain.register();
        for t in 0..THREADS as u64 {
            for i in 0..PER_THREAD {
                let key = i * THREADS as u64 + t;
                assert_eq!(tree.contains(&mut handle, key), i % 2 == 1);
            }
        }
    }

    #[test]
    fn concurrent_disjoint_inserts_and_removes() {
        concurrent_disjoint_inserts::<He>();
        concurrent_disjoint_inserts::<Hp>();
    }

    #[test]
    fn concurrent_contended_workload_is_structurally_sound() {
        const THREADS: usize = 4;
        let domain = He::with_config(ReclaimerConfig::with_max_threads(THREADS));
        let tree = NatarajanBst::<u64, He>::new(Arc::clone(&domain));
        std::thread::scope(|scope| {
            for t in 0..THREADS as u64 {
                let tree = &tree;
                let domain = Arc::clone(&domain);
                scope.spawn(move || {
                    use rand::prelude::*;
                    let mut rng = StdRng::seed_from_u64(t + 1000);
                    let mut handle = domain.register();
                    for _ in 0..5_000 {
                        let key = rng.gen_range(0..64u64);
                        match rng.gen_range(0..3) {
                            0 => {
                                tree.insert(&mut handle, key, key);
                            }
                            1 => {
                                tree.remove(&mut handle, key);
                            }
                            _ => {
                                tree.get(&mut handle, key);
                            }
                        }
                    }
                });
            }
        });
        // After the dust settles a single thread must see a consistent set:
        // repeated lookups agree with remove/insert results.
        let mut handle = domain.register();
        for key in 0..64u64 {
            let present = tree.contains(&mut handle, key);
            if present {
                assert!(tree.remove(&mut handle, key));
                assert!(!tree.contains(&mut handle, key));
            } else {
                assert!(tree.insert(&mut handle, key, key));
                assert!(tree.contains(&mut handle, key));
            }
        }
    }
}
