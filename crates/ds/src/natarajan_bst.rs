//! Natarajan-Mittal lock-free external binary search tree (PPoPP 2014).
//!
//! The "Natarajan BST" workload of Figures 8 and 11. The tree is *external*
//! (leaf-oriented): internal nodes only route, every key lives in a leaf.
//! Deletion marks **edges** rather than nodes: the edge to the leaf being
//! deleted is *flagged*, the edge to its sibling is *tagged* (frozen), and the
//! sibling is then promoted into the grandparent with a single CAS, detaching
//! the parent and the flagged leaf.
//!
//! Reservation usage: `seek` protects the four window nodes it hands back
//! (ancestor, parent, leaf and the node currently being examined)
//! hand-over-hand while descending, using five reservation slots that rotate
//! as the window slides down the tree. The *successor* of the seek record is
//! only ever used as an expected CAS value, never dereferenced, so it needs no
//! reservation.

use core::ptr;
use core::sync::atomic::Ordering;
use std::sync::Arc;

use wfe_reclaim::ptr::tag;
use wfe_reclaim::{Atomic, Handle, Linked, RawHandle, Reclaimer};

use crate::traits::ConcurrentMap;

/// Edge bit: the node below this edge is being deleted.
const FLAG: usize = 1;
/// Edge bit: this edge is frozen and must not be modified.
const TAG: usize = 2;

/// Sentinel key ∞₁ (greater than every user key).
const KEY_INF1: u64 = u64::MAX - 1;
/// Sentinel key ∞₂ (greater than ∞₁).
const KEY_INF2: u64 = u64::MAX;

/// A tree node. Internal nodes have both children non-null and `value ==
/// None`; leaves have null children and carry the value.
pub struct Node<V> {
    key: u64,
    value: Option<V>,
    left: Atomic<Node<V>>,
    right: Atomic<Node<V>>,
}

impl<V> Node<V> {
    fn leaf(key: u64, value: Option<V>) -> Self {
        Self {
            key,
            value,
            left: Atomic::null(),
            right: Atomic::null(),
        }
    }
}

/// The window returned by `seek`.
struct SeekRecord<V> {
    /// Deepest node on the path whose outgoing edge towards the key was
    /// untagged; the promotion CAS happens on this node's child edge.
    ancestor: *mut Linked<Node<V>>,
    /// The child of `ancestor` on the path (expected CAS value only).
    successor: *mut Linked<Node<V>>,
    /// Parent of `leaf`.
    parent: *mut Linked<Node<V>>,
    /// The leaf the search ended at.
    leaf: *mut Linked<Node<V>>,
}

/// Natarajan-Mittal lock-free external BST, parameterised by the reclamation
/// scheme. User keys must be smaller than `u64::MAX - 1` (the two largest
/// values are reserved for the sentinels).
pub struct NatarajanBst<V, R: Reclaimer> {
    /// Super-root with key ∞₂; its left subtree holds all data.
    root: *mut Linked<Node<V>>,
    domain: Arc<R>,
}

unsafe impl<V: Send, R: Reclaimer> Send for NatarajanBst<V, R> {}
unsafe impl<V: Send + Sync, R: Reclaimer> Sync for NatarajanBst<V, R> {}

impl<V, R: Reclaimer> NatarajanBst<V, R> {
    /// Reservation slots the tree needs per thread: the rotating
    /// ancestor/parent/leaf/current window of `seek` plus its spare.
    pub const REQUIRED_SLOTS: usize = 5;

    /// Creates an empty tree guarded by `domain`.
    pub fn new(domain: Arc<R>) -> Self {
        debug_assert!(
            domain.config().slots_per_thread >= Self::REQUIRED_SLOTS,
            "NatarajanBst needs {} reservation slots per thread, domain provides {}",
            Self::REQUIRED_SLOTS,
            domain.config().slots_per_thread,
        );
        let mut handle = domain.register();
        // Sentinel structure: R(∞₂) → { S(∞₁) → { leaf(∞₁), leaf(∞₂) }, leaf(∞₂) }.
        let leaf_inf1 = handle.alloc(Node::leaf(KEY_INF1, None));
        let leaf_inf2a = handle.alloc(Node::leaf(KEY_INF2, None));
        let leaf_inf2b = handle.alloc(Node::leaf(KEY_INF2, None));
        let s = handle.alloc(Node {
            key: KEY_INF1,
            value: None,
            left: Atomic::new(leaf_inf1),
            right: Atomic::new(leaf_inf2a),
        });
        let root = handle.alloc(Node {
            key: KEY_INF2,
            value: None,
            left: Atomic::new(s),
            right: Atomic::new(leaf_inf2b),
        });
        drop(handle);
        Self { root, domain }
    }

    /// The reclamation domain guarding this tree.
    pub fn domain(&self) -> &Arc<R> {
        &self.domain
    }

    #[inline]
    fn child_edge(node: *mut Linked<Node<V>>, key: u64) -> *const Atomic<Node<V>> {
        unsafe {
            if key < (*node).value.key {
                &(*node).value.left
            } else {
                &(*node).value.right
            }
        }
    }

    /// Descends from the root to the leaf where `key` belongs, recording the
    /// (ancestor, successor, parent, leaf) window. All dereferenced nodes of
    /// the returned record are protected by reservation slots 0-4.
    fn seek(&self, handle: &mut R::Handle, key: u64) -> SeekRecord<V> {
        let root = self.root;
        let s_raw = unsafe { (*root).value.left.load(Ordering::Acquire) };
        let s = tag::untagged(s_raw);

        // Reservation slots for the roles that get dereferenced. They rotate
        // as the window slides down so that a node keeps its slot while it
        // remains part of the window.
        let mut slot_ancestor = 0usize;
        let mut slot_parent = 1usize;
        let mut slot_leaf = 2usize;
        let mut slot_current = 3usize;
        let mut slot_spare = 4usize;

        let mut ancestor = root;
        let mut successor = s;
        let mut parent = s;
        // The sentinels R and S are never retired, so the two protects below
        // are only needed for the nodes hanging off them.
        let leaf_raw = handle.protect(unsafe { &*Self::child_edge(s, key) }, slot_leaf, s);
        let mut leaf = tag::untagged(leaf_raw);
        // Edge parent→leaf as last read (its TAG bit steers ancestor updates).
        let mut parent_field = leaf_raw;
        let mut current_raw =
            handle.protect(unsafe { &*Self::child_edge(leaf, key) }, slot_current, leaf);

        loop {
            let current = tag::untagged(current_raw);
            if current.is_null() {
                break;
            }
            // Slide the window down one level.
            if tag::tag_of(parent_field) & TAG == 0 {
                // The edge parent→leaf is untagged: parent is the new ancestor.
                ancestor = parent;
                successor = leaf;
                // `ancestor` adopts `parent`'s slot; the old ancestor slot
                // becomes the spare.
                let freed = slot_ancestor;
                slot_ancestor = slot_parent;
                slot_parent = slot_leaf;
                slot_leaf = slot_current;
                slot_current = slot_spare;
                slot_spare = freed;
            } else {
                let freed = slot_parent;
                slot_parent = slot_leaf;
                slot_leaf = slot_current;
                slot_current = slot_spare;
                slot_spare = freed;
            }
            parent = leaf;
            leaf = current;
            parent_field = current_raw;
            current_raw =
                handle.protect(unsafe { &*Self::child_edge(leaf, key) }, slot_current, leaf);
        }

        SeekRecord {
            ancestor,
            successor,
            parent,
            leaf,
        }
    }

    /// Detaches the flagged leaf under `record.parent` by promoting its
    /// sibling into `record.ancestor`. Returns `true` when this call performed
    /// the promotion (and retired the detached parent and leaf).
    fn cleanup(&self, handle: &mut R::Handle, key: u64, record: &SeekRecord<V>) -> bool {
        let ancestor = record.ancestor;
        let parent = record.parent;

        let (child_edge, sibling_edge) = unsafe {
            if key < (*parent).value.key {
                (&(*parent).value.left, &(*parent).value.right)
            } else {
                (&(*parent).value.right, &(*parent).value.left)
            }
        };
        let child_val = child_edge.load(Ordering::Acquire);
        // The flagged edge points to the leaf being deleted. If it is not the
        // edge on our search path, we are helping a deletion of the sibling.
        let (flagged_edge, promote_edge) = if tag::tag_of(child_val) & FLAG != 0 {
            (child_edge, sibling_edge)
        } else {
            (sibling_edge, child_edge)
        };

        // Freeze the edge that will be promoted so no insert can slip below it.
        promote_edge.fetch_or_tag(TAG, Ordering::AcqRel);
        let promote_val = promote_edge.load(Ordering::Acquire);
        let flagged_val = flagged_edge.load(Ordering::Acquire);

        // Promote the sibling subtree into the ancestor, preserving a FLAG the
        // sibling edge may itself carry (a pending deletion of the sibling).
        let promoted = tag::with_tag(tag::untagged(promote_val), tag::tag_of(promote_val) & FLAG);
        let ancestor_edge = unsafe { &*Self::child_edge(ancestor, key) };
        let swapped = ancestor_edge
            .compare_exchange(
                record.successor,
                promoted,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok();
        if swapped {
            // The parent and the flagged leaf are now unreachable.
            unsafe {
                handle.retire(parent);
                handle.retire(tag::untagged(flagged_val));
            }
        }
        swapped
    }

    /// Inserts `key → value`; returns `false` (dropping `value`) if the key is
    /// already present.
    ///
    /// # Panics
    ///
    /// Panics if `key >= u64::MAX - 1` (reserved sentinel keys).
    pub fn insert(&self, handle: &mut R::Handle, key: u64, value: V) -> bool {
        assert!(key < KEY_INF1, "keys >= u64::MAX - 1 are reserved");
        handle.begin_op();
        let mut value = Some(value);
        let inserted = loop {
            let record = self.seek(handle, key);
            let leaf = record.leaf;
            let leaf_key = unsafe { (*leaf).value.key };
            if leaf_key == key {
                break false;
            }
            // Build the replacement subtree: a new internal node whose
            // children are the existing leaf and a new leaf for `key`.
            let new_leaf = handle.alloc(Node::leaf(key, value.take()));
            let (internal_key, left, right) = if key < leaf_key {
                (leaf_key, new_leaf, leaf)
            } else {
                (key, leaf, new_leaf)
            };
            let new_internal = handle.alloc(Node {
                key: internal_key,
                value: None,
                left: Atomic::new(left),
                right: Atomic::new(right),
            });

            let parent_edge = unsafe { &*Self::child_edge(record.parent, key) };
            match parent_edge.compare_exchange(
                leaf,
                new_internal,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break true,
                Err(observed) => {
                    // Neither node was published; take the value back and
                    // free them before retrying.
                    unsafe {
                        value = (*new_leaf).value.value.take();
                        Linked::dealloc(new_internal);
                        Linked::dealloc(new_leaf);
                    }
                    // If the edge still leads to our leaf but is flagged or
                    // tagged, help the pending deletion along before retrying.
                    if tag::untagged(observed) == leaf && tag::tag_of(observed) != 0 {
                        self.cleanup(handle, key, &record);
                    }
                }
            }
        };
        handle.end_op();
        inserted
    }

    /// Removes `key`; returns `true` if it was present.
    pub fn remove(&self, handle: &mut R::Handle, key: u64) -> bool {
        handle.begin_op();
        let mut injected = false;
        let mut target_leaf: *mut Linked<Node<V>> = ptr::null_mut();
        let removed = loop {
            let record = self.seek(handle, key);
            if !injected {
                // Injection phase: flag the edge to the leaf we want gone.
                let leaf = record.leaf;
                if unsafe { (*leaf).value.key } != key {
                    break false;
                }
                let parent_edge = unsafe { &*Self::child_edge(record.parent, key) };
                match parent_edge.compare_exchange(
                    leaf,
                    tag::with_tag(leaf, FLAG),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        injected = true;
                        target_leaf = leaf;
                        if self.cleanup(handle, key, &record) {
                            break true;
                        }
                    }
                    Err(observed) => {
                        // Someone else is operating on this edge; help if it
                        // is a deletion of the same leaf, then retry.
                        if tag::untagged(observed) == leaf && tag::tag_of(observed) != 0 {
                            self.cleanup(handle, key, &record);
                        }
                    }
                }
            } else {
                // Cleanup phase: keep helping until our leaf is detached.
                if record.leaf != target_leaf {
                    // Another thread finished the physical removal for us.
                    break true;
                }
                if self.cleanup(handle, key, &record) {
                    break true;
                }
            }
        };
        handle.end_op();
        removed
    }

    /// Returns `true` if `key` is present.
    pub fn contains(&self, handle: &mut R::Handle, key: u64) -> bool {
        handle.begin_op();
        let record = self.seek(handle, key);
        let found = unsafe { (*record.leaf).value.key } == key;
        handle.end_op();
        found
    }
}

impl<V: Clone, R: Reclaimer> NatarajanBst<V, R> {
    /// Looks up `key`, returning a clone of its value.
    pub fn get(&self, handle: &mut R::Handle, key: u64) -> Option<V> {
        handle.begin_op();
        let record = self.seek(handle, key);
        let leaf = record.leaf;
        let value = unsafe {
            if (*leaf).value.key == key {
                (*leaf).value.value.clone()
            } else {
                None
            }
        };
        handle.end_op();
        value
    }
}

impl<V, R: Reclaimer> Drop for NatarajanBst<V, R> {
    fn drop(&mut self) {
        // Exclusive access: free the whole tree iteratively.
        let mut stack = vec![self.root];
        while let Some(node) = stack.pop() {
            let node = tag::untagged(node);
            if node.is_null() {
                continue;
            }
            unsafe {
                stack.push((*node).value.left.load(Ordering::Relaxed));
                stack.push((*node).value.right.load(Ordering::Relaxed));
                Linked::dealloc(node);
            }
        }
    }
}

impl<R: Reclaimer> ConcurrentMap<R> for NatarajanBst<u64, R> {
    fn with_domain(domain: Arc<R>) -> Self {
        Self::new(domain)
    }

    fn insert(&self, handle: &mut R::Handle, key: u64, value: u64) -> bool {
        NatarajanBst::insert(self, handle, key, value)
    }

    fn remove(&self, handle: &mut R::Handle, key: u64) -> bool {
        NatarajanBst::remove(self, handle, key)
    }

    fn get(&self, handle: &mut R::Handle, key: u64) -> Option<u64> {
        NatarajanBst::get(self, handle, key)
    }

    fn required_slots() -> usize {
        Self::REQUIRED_SLOTS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use wfe_reclaim::{Ebr, He, Hp, Ibr2Ge, Reclaimer, ReclaimerConfig};

    fn sequential_semantics<R: Reclaimer>() {
        let domain = R::new_default();
        let tree = NatarajanBst::<u64, R>::new(Arc::clone(&domain));
        let mut handle = domain.register();

        assert_eq!(tree.get(&mut handle, 10), None);
        assert!(tree.insert(&mut handle, 10, 100));
        assert!(tree.insert(&mut handle, 5, 50));
        assert!(tree.insert(&mut handle, 20, 200));
        assert!(!tree.insert(&mut handle, 10, 0), "duplicate rejected");
        assert_eq!(tree.get(&mut handle, 5), Some(50));
        assert_eq!(tree.get(&mut handle, 20), Some(200));
        assert!(tree.remove(&mut handle, 10));
        assert!(!tree.remove(&mut handle, 10), "double remove rejected");
        assert_eq!(tree.get(&mut handle, 10), None);
        assert!(tree.contains(&mut handle, 5));
        assert!(tree.insert(&mut handle, 10, 101));
        assert_eq!(tree.get(&mut handle, 10), Some(101));
        // Empty the tree completely and refill it.
        for key in [5, 10, 20] {
            assert!(tree.remove(&mut handle, key));
        }
        for key in [5, 10, 20] {
            assert!(!tree.contains(&mut handle, key));
            assert!(tree.insert(&mut handle, key, key));
        }
    }

    #[test]
    fn sequential_semantics_under_every_scheme() {
        sequential_semantics::<He>();
        sequential_semantics::<Ebr>();
        sequential_semantics::<Hp>();
        sequential_semantics::<Ibr2Ge>();
    }

    #[test]
    fn matches_a_sequential_model() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        let domain = He::new_default();
        let tree = NatarajanBst::<u64, He>::new(Arc::clone(&domain));
        let mut handle = domain.register();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for _ in 0..8_000 {
            let key = rng.gen_range(0..256u64);
            match rng.gen_range(0..3) {
                0 => {
                    let fresh = !model.contains_key(&key);
                    assert_eq!(tree.insert(&mut handle, key, key * 3), fresh);
                    model.entry(key).or_insert(key * 3);
                }
                1 => assert_eq!(tree.remove(&mut handle, key), model.remove(&key).is_some()),
                _ => assert_eq!(tree.get(&mut handle, key), model.get(&key).copied()),
            }
        }
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn sentinel_keys_are_rejected() {
        let domain = He::new_default();
        let tree = NatarajanBst::<u64, He>::new(Arc::clone(&domain));
        let mut handle = domain.register();
        tree.insert(&mut handle, u64::MAX, 0);
    }

    fn concurrent_disjoint_inserts<R: Reclaimer>() {
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 1_000;
        let domain = R::with_config(ReclaimerConfig::with_max_threads(THREADS));
        let tree = NatarajanBst::<u64, R>::new(Arc::clone(&domain));
        std::thread::scope(|scope| {
            for t in 0..THREADS as u64 {
                let tree = &tree;
                let domain = Arc::clone(&domain);
                scope.spawn(move || {
                    let mut handle = domain.register();
                    for i in 0..PER_THREAD {
                        let key = i * THREADS as u64 + t; // interleaved keys
                        assert!(tree.insert(&mut handle, key, key));
                    }
                    for i in 0..PER_THREAD {
                        let key = i * THREADS as u64 + t;
                        if i % 2 == 0 {
                            assert!(tree.remove(&mut handle, key), "missing own key {key}");
                        }
                    }
                });
            }
        });
        let mut handle = domain.register();
        for t in 0..THREADS as u64 {
            for i in 0..PER_THREAD {
                let key = i * THREADS as u64 + t;
                assert_eq!(tree.contains(&mut handle, key), i % 2 == 1);
            }
        }
    }

    #[test]
    fn concurrent_disjoint_inserts_and_removes() {
        concurrent_disjoint_inserts::<He>();
        concurrent_disjoint_inserts::<Hp>();
    }

    #[test]
    fn concurrent_contended_workload_is_structurally_sound() {
        const THREADS: usize = 4;
        let domain = He::with_config(ReclaimerConfig::with_max_threads(THREADS));
        let tree = NatarajanBst::<u64, He>::new(Arc::clone(&domain));
        std::thread::scope(|scope| {
            for t in 0..THREADS as u64 {
                let tree = &tree;
                let domain = Arc::clone(&domain);
                scope.spawn(move || {
                    use rand::prelude::*;
                    let mut rng = StdRng::seed_from_u64(t + 1000);
                    let mut handle = domain.register();
                    for _ in 0..5_000 {
                        let key = rng.gen_range(0..64u64);
                        match rng.gen_range(0..3) {
                            0 => {
                                tree.insert(&mut handle, key, key);
                            }
                            1 => {
                                tree.remove(&mut handle, key);
                            }
                            _ => {
                                tree.get(&mut handle, key);
                            }
                        }
                    }
                });
            }
        });
        // After the dust settles a single thread must see a consistent set:
        // repeated lookups agree with remove/insert results.
        let mut handle = domain.register();
        for key in 0..64u64 {
            let present = tree.contains(&mut handle, key);
            if present {
                assert!(tree.remove(&mut handle, key));
                assert!(!tree.contains(&mut handle, key));
            } else {
                assert!(tree.insert(&mut handle, key, key));
                assert!(tree.contains(&mut handle, key));
            }
        }
    }
}
