//! Concurrent data structures generic over a memory-reclamation scheme.
//!
//! These are the workloads of the WFE paper's evaluation (§5), written once
//! against the [`wfe_reclaim::Reclaimer`] API so that every structure can be
//! paired with every scheme (WFE, HE, HP, EBR, 2GEIBR, Leak) exactly as in the
//! paper:
//!
//! * [`TreiberStack`] — the lock-free stack of Figure 2 (the paper's usage
//!   example);
//! * [`MichaelList`] — Harris-Michael sorted linked list (Figures 6 and 9);
//! * [`MichaelHashMap`] — Michael's hash map, one list per bucket
//!   (Figures 7 and 10);
//! * [`ResizableHashMap`] — the Shalev-Herlihy split-ordered resizable hash
//!   map: superseded bucket arrays are retired through the reclamation
//!   scheme (the kv-service workload);
//! * [`NatarajanBst`] — the Natarajan-Mittal external binary search tree
//!   (Figures 8 and 11);
//! * [`KoganPetrankQueue`] — the Kogan-Petrank wait-free queue (Figure 5a/5b);
//! * [`CrTurnQueue`] — the Ramalhete-Correia CRTurn wait-free queue
//!   (Figure 5c/5d);
//! * [`MichaelScottQueue`] — the classic lock-free MS queue, included as an
//!   additional baseline workload.
//!
//! Every operation takes an explicit `&mut R::Handle`: the per-thread
//! reclamation handle obtained from [`wfe_reclaim::Reclaimer::register`].
//! Internally each operation leases its [`wfe_reclaim::Shield`]s, opens a
//! [`wfe_reclaim::Guard`] bracket with
//! [`Handle::enter`](wfe_reclaim::Handle::enter), and reads every shared
//! pointer through `Shield::protect` — the structures contain no raw
//! slot-index `protect` calls and no unsafe dereferences of protected
//! pointers. The [`ConcurrentMap`] and [`ConcurrentQueue`] traits give the
//! benchmark harness a uniform key-value / queue interface, mirroring the
//! abstract interface of the benchmark the paper reuses.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod crturn_queue;
pub mod hash;
pub mod hash_map;
pub mod kp_queue;
pub mod michael_list;
pub mod ms_queue;
pub mod natarajan_bst;
pub mod resizable_map;
pub mod traits;
pub mod treiber_stack;

pub use crturn_queue::CrTurnQueue;
pub use hash_map::MichaelHashMap;
pub use kp_queue::KoganPetrankQueue;
pub use michael_list::MichaelList;
pub use ms_queue::MichaelScottQueue;
pub use natarajan_bst::NatarajanBst;
pub use resizable_map::ResizableHashMap;
pub use traits::{ConcurrentMap, ConcurrentQueue, MapServiceStats};
pub use treiber_stack::TreiberStack;
