//! Treiber's lock-free stack (Figure 2 of the paper).
//!
//! The stack is the paper's running example for the reclamation API: `push`
//! allocates a node through `alloc_block`, `pop` protects the top through a
//! [`Shield`] inside a [`Guard`](wfe_reclaim::Guard) bracket, unlinks it with
//! CAS and retires it.

use core::mem::ManuallyDrop;
use core::ptr;
use std::sync::Arc;
use wfe_sync::atomic::Ordering;

use wfe_atomics::Backoff;
use wfe_reclaim::{Atomic, Handle, Linked, Reclaimer, Shield};

/// A node of the stack.
pub struct Node<T> {
    next: *mut Linked<Node<T>>,
    value: ManuallyDrop<T>,
}

/// Treiber's lock-free stack, parameterised by the reclamation scheme `R`.
///
/// Every method takes the calling thread's reclamation handle; handles are
/// obtained from the same domain that was passed to [`TreiberStack::new`].
pub struct TreiberStack<T, R: Reclaimer> {
    head: Atomic<Node<T>>,
    domain: Arc<R>,
}

// SAFETY: nodes hold `T` by value; all shared-pointer access goes through the reclamation protocol, so sending the
// structure is sending the `T`s it owns.
unsafe impl<T: Send, R: Reclaimer> Send for TreiberStack<T, R> {}
// SAFETY: every `&self` method is lock-free-safe by construction (the
// algorithm's own synchronisation); `T: Send` suffices because values
// are moved in/out, never shared by reference across threads.
unsafe impl<T: Send, R: Reclaimer> Sync for TreiberStack<T, R> {}

impl<T, R: Reclaimer> TreiberStack<T, R> {
    /// Reservation slots the stack needs per thread: only the top node.
    pub const REQUIRED_SLOTS: usize = 1;

    /// Leases the one shield `pop` needs.
    fn top_shield(handle: &R::Handle) -> Shield<Node<T>, R::Handle> {
        handle
            .shield()
            .expect("TreiberStack: reservation slots exhausted (pop needs one Shield)")
    }

    /// Creates an empty stack guarded by `domain`.
    pub fn new(domain: Arc<R>) -> Self {
        debug_assert!(
            domain.config().slots_per_thread >= Self::REQUIRED_SLOTS,
            "TreiberStack needs {} reservation slots per thread, domain provides {}",
            Self::REQUIRED_SLOTS,
            domain.config().slots_per_thread,
        );
        Self {
            head: Atomic::null(),
            domain,
        }
    }

    /// The reclamation domain guarding this stack.
    pub fn domain(&self) -> &Arc<R> {
        &self.domain
    }

    /// Pushes `value` (the paper's `enqueue`, Figure 2 lines 24-31).
    pub fn push(&self, handle: &mut R::Handle, value: T) {
        let node = handle.alloc(Node {
            next: ptr::null_mut(),
            value: ManuallyDrop::new(value),
        });
        let mut backoff = Backoff::new();
        loop {
            let head = self.head.load(Ordering::Acquire); // ORDER: pairs with the AcqRel push/pop CASes on `head`.
                                                          // SAFETY: `node` is owned and unpublished until the CAS succeeds.
            unsafe { (*node).value.next = head };
            if self
                .head
                .compare_exchange_weak(head, node, Ordering::AcqRel, Ordering::Acquire) // ORDER: success publishes the node (and its `next` write); failure observes the winner.
                .is_ok()
            {
                return;
            }
            backoff.spin();
        }
    }

    /// Pops the most recently pushed value (the paper's `dequeue`, Figure 2
    /// lines 9-22).
    pub fn pop(&self, handle: &mut R::Handle) -> Option<T> {
        let mut top = Self::top_shield(handle);
        let guard = handle.enter();
        let mut backoff = Backoff::new();
        loop {
            let node = top.protect(&guard, &self.head, None);
            // SAFETY: `top` protects `node` and is only re-protected at the
            // top of the next loop iteration, after this reference's last use.
            let node_ref = unsafe { node.as_ref() }?; // empty stack
            let next = node_ref.next;
            if self
                .head
                .compare_exchange(node.as_raw(), next, Ordering::AcqRel, Ordering::Acquire) // ORDER: success publishes the unlink; failure observes the winning pop/push.
                .is_ok()
            {
                // We won the CAS, so we own the value; the node itself stays
                // alive until every in-flight reader is done.
                // SAFETY: the unlink CAS transferred ownership of the value
                // to us; nobody else reads it out.
                let value = unsafe { ptr::read(&*node_ref.value) };
                // SAFETY: the same CAS unlinked the node; it is retired once.
                unsafe { node.retire_in(&guard) };
                return Some(value);
            }
            backoff.spin();
        }
    }

    /// Returns `true` if the stack appeared empty at the moment of the call.
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire).is_null() // ORDER: emptiness snapshot; pairs with the AcqRel head CASes.
    }
}

impl<T, R: Reclaimer> Drop for TreiberStack<T, R> {
    fn drop(&mut self) {
        // Exclusive access: free the remaining nodes directly, dropping the
        // values they still own.
        let mut cur = self.head.load(Ordering::Relaxed); // ORDER: Drop has exclusive access.
        while !cur.is_null() {
            // SAFETY: `Drop` has exclusive access; every remaining node is
            // freed exactly once and still owns its value.
            unsafe {
                let next = (*cur).value.next;
                ManuallyDrop::drop(&mut (*cur).value.value);
                Linked::dealloc(cur);
                cur = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfe_reclaim::{Ebr, He, Hp, Ibr2Ge, Leak, ReclaimerConfig};
    use wfe_sync::atomic::{AtomicUsize, Ordering::SeqCst};

    fn lifo_single_threaded<R: Reclaimer>() {
        let domain = R::new_default();
        let stack = TreiberStack::<u64, R>::new(Arc::clone(&domain));
        let mut handle = domain.register();
        assert!(stack.is_empty());
        for i in 0..100 {
            stack.push(&mut handle, i);
        }
        assert!(!stack.is_empty());
        for i in (0..100).rev() {
            assert_eq!(stack.pop(&mut handle), Some(i));
        }
        assert_eq!(stack.pop(&mut handle), None);
    }

    #[test]
    fn lifo_order_under_every_scheme() {
        lifo_single_threaded::<He>();
        lifo_single_threaded::<Ebr>();
        lifo_single_threaded::<Hp>();
        lifo_single_threaded::<Ibr2Ge>();
        lifo_single_threaded::<Leak>();
    }

    #[test]
    fn values_are_dropped_exactly_once() {
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let domain = He::new_default();
            let stack = TreiberStack::<Counted, He>::new(Arc::clone(&domain));
            let mut handle = domain.register();
            for _ in 0..10 {
                stack.push(&mut handle, Counted(Arc::clone(&drops)));
            }
            // Pop half; their values are dropped by the caller right away.
            for _ in 0..5 {
                drop(stack.pop(&mut handle));
            }
            assert_eq!(drops.load(SeqCst), 5);
            // The rest are dropped by the stack's Drop.
        }
        assert_eq!(drops.load(SeqCst), 10);
    }

    #[test]
    fn concurrent_push_pop_conserves_values() {
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 5_000;
        let domain = He::with_config(ReclaimerConfig::with_max_threads(THREADS));
        let stack = TreiberStack::<u64, He>::new(Arc::clone(&domain));
        let popped_sum = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for t in 0..THREADS as u64 {
                let stack = &stack;
                let domain = Arc::clone(&domain);
                let popped_sum = &popped_sum;
                scope.spawn(move || {
                    let mut handle = domain.register();
                    for i in 0..PER_THREAD {
                        stack.push(&mut handle, t * PER_THREAD + i);
                        if let Some(v) = stack.pop(&mut handle) {
                            popped_sum.fetch_add(v as usize, SeqCst);
                        }
                    }
                });
            }
        });
        // Everything pushed was popped (each thread pops right after pushing,
        // and the stack never runs dry overall), so the sums must match.
        let mut handle = domain.register();
        let mut rest = 0usize;
        while let Some(v) = stack.pop(&mut handle) {
            rest += v as usize;
        }
        let expected: usize = (0..(THREADS as u64 * PER_THREAD)).map(|v| v as usize).sum();
        assert_eq!(popped_sum.load(SeqCst) + rest, expected);
    }
}
