//! The one audited hash mixer shared by every hashed structure.
//!
//! Both hash maps ([`MichaelHashMap`](crate::MichaelHashMap) and
//! [`ResizableHashMap`](crate::ResizableHashMap)) derive bucket indices by
//! masking/folding the output of [`mix64`], so the distribution argument has
//! to be made exactly once, here. The mixer is the SplitMix64 finalizer
//! (Steele, Lea & Flood, OOPSLA'14 — the `splitmix64` output stage), a
//! bijective avalanche function: every input bit flips each output bit with
//! probability ≈ 1/2, so masking *any* window of output bits yields a
//! near-uniform bucket index even for the adversarially regular inputs the
//! benchmarks use (contiguous integer key ranges).
//!
//! The previous scheme — a single Fibonacci multiply with the bucket index
//! taken as `(hash >> 32) % len` — silently degraded: a lone multiply has no
//! avalanche on its low output bits and the `%` on the high half compressed
//! the already-thin entropy for non-power-of-two `len`. The chi-square test
//! below pins the replacement's distribution so the wart cannot creep back.

/// SplitMix64 finalizer: a bijective 64-bit mixer with full avalanche.
///
/// ```
/// use wfe_ds::hash::mix64;
/// // Bijective: distinct inputs keep distinct outputs.
/// assert_ne!(mix64(1), mix64(2));
/// // Deterministic: the same key always lands in the same bucket.
/// assert_eq!(mix64(42), mix64(42));
/// ```
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Chi-square statistic of `keys` sequential keys folded into `buckets`
    /// buckets through `fold`.
    fn chi_square(keys: u64, buckets: usize, fold: impl Fn(u64) -> usize) -> f64 {
        let mut counts = vec![0u64; buckets];
        for key in 0..keys {
            counts[fold(key)] += 1;
        }
        let expected = keys as f64 / buckets as f64;
        counts
            .iter()
            .map(|&observed| {
                let delta = observed as f64 - expected;
                delta * delta / expected
            })
            .sum()
    }

    /// The satellite's distribution pin: 1M contiguous keys over 1024
    /// buckets. For a uniform hash the statistic is chi-square distributed
    /// with 1023 degrees of freedom — mean 1023, standard deviation
    /// `sqrt(2 * 1023) ≈ 45` — so 1300 is a > 6-sigma acceptance bound that
    /// still fails catastrophically for a structured mixer (the old
    /// high-half-modulo scheme scores orders of magnitude higher on
    /// non-power-of-two tables and collapses whole bucket ranges).
    #[test]
    fn chi_square_smoke_over_a_million_keys() {
        const KEYS: u64 = 1_000_000;
        const BUCKETS: usize = 1024;
        let masked = chi_square(KEYS, BUCKETS, |k| mix64(k) as usize & (BUCKETS - 1));
        assert!(masked < 1300.0, "low-bits mask skewed: chi-square {masked}");
        // Both maps' folds are covered: the power-of-two mask above
        // (ResizableHashMap) and the modulo fold (MichaelHashMap, which also
        // runs with non-power-of-two bucket counts).
        let modulo = chi_square(KEYS, 1000, |k| mix64(k) as usize % 1000);
        assert!(modulo < 1300.0, "modulo fold skewed: chi-square {modulo}");
    }

    #[test]
    fn mix64_is_not_the_identity_and_spreads_neighbours() {
        let a = mix64(1);
        let b = mix64(2);
        // Neighbouring keys must differ in roughly half their bits.
        let distance = (a ^ b).count_ones();
        assert!(
            (16..=48).contains(&distance),
            "poor avalanche: hamming distance {distance}"
        );
    }
}
